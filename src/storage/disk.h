#pragma once

#include <cstdint>

#include "common/sim_time.h"

namespace dana::storage {

/// Timing model of the backing store that feeds the buffer pool.
///
/// The evaluation machine in the paper used a 256 GB SATA SSD; the default
/// parameters approximate that device. Cold-cache runs pay this cost for
/// every page; warm-cache runs only for pages not resident in the pool.
struct DiskModel {
  /// Sequential read bandwidth, bytes per second.
  double seq_read_bw = 500e6;
  /// Rate at which a page is re-read once it is resident in the OS page
  /// cache (kernel memory copy); re-scans of tables that fit in RAM run at
  /// this rate rather than disk speed.
  double os_cache_bw = 3e9;
  /// Rate for pages held by the optional SSD-style capacity tier below the
  /// OS cache (a faster local device in front of the cold store): between
  /// kernel-copy speed and cold sequential reads.
  double ssd_read_bw = 1.5e9;
  /// Fixed per-request latency (command overhead + flash access).
  dana::SimTime request_latency = dana::SimTime::Micros(80);
  /// Number of pages fetched per read request (read-ahead). Sequential heap
  /// scans amortize request latency over this many pages.
  uint32_t readahead_pages = 32;

  /// Time to sequentially read `bytes` via requests of
  /// `readahead_pages * page_size` bytes.
  dana::SimTime SeqReadTime(uint64_t bytes, uint32_t page_size) const {
    if (bytes == 0) return dana::SimTime::Zero();
    const uint64_t chunk =
        static_cast<uint64_t>(readahead_pages) * page_size;
    const uint64_t requests = (bytes + chunk - 1) / chunk;
    return dana::SimTime::Seconds(static_cast<double>(bytes) / seq_read_bw) +
           request_latency * static_cast<double>(requests);
  }
};

}  // namespace dana::storage
