#pragma once

#include <cstdint>

namespace dana::storage {

/// Byte-level constants of the PostgreSQL-style heap page format produced by
/// this storage engine and parsed by Strider programs (paper Figure 6).
///
/// Layout of a page of `page_size` bytes:
///
///   [ 0, 24)                 page header
///   [24, 24 + 4*n_items)     line pointers (4 bytes each), growing up
///   [lower, upper)           free space
///   [upper, special)         tuple data, growing down from special space
///   [special, page_size)     special space (unused by heap pages)
///
/// Page header fields (offsets in bytes):
///   0  u64  lsn
///   8  u16  checksum
///   10 u16  flags
///   12 u16  lower          -- end of line pointer array
///   14 u16  upper          -- start of tuple data
///   16 u16  special        -- start of special space
///   18 u16  pagesize_version
///   20 u32  prune_xid
///
/// Each line pointer is a packed u32: offset(15) | flags(2) | length(15),
/// exactly PostgreSQL's ItemIdData.
///
/// Each tuple is prefixed by a fixed 24-byte header:
///   0  u32  xmin
///   4  u32  xmax
///   8  u32  field3 (cid / xvac)
///   12 u48  ctid (block u32, offset u16)
///   18 u16  infomask2 (low 11 bits = attribute count)
///   20 u16  infomask
///   22 u8   hoff -- offset of user data from tuple start (== 24 here)
///   23 u8   padding
struct PageLayout {
  /// Total page size in bytes (8, 16, or 32 KiB in the paper's sweeps).
  uint32_t page_size = 32 * 1024;
  /// Size of the fixed page header.
  uint32_t header_size = 24;
  /// Size of one line pointer.
  uint32_t item_id_size = 4;
  /// Size of the fixed per-tuple header.
  uint32_t tuple_header_size = 24;
  /// Bytes reserved at the end of the page (index pages use this; 0 for heap).
  uint32_t special_size = 0;

  /// Offsets of the lower/upper/special fields within the page header.
  /// These are what the Strider program generator reads (config registers),
  /// which is how one ISA targets "a range of RDBMS engines, such as
  /// PostgreSQL and MySQL (innoDB), that have similar back-end page
  /// layouts" (paper 5.1.2): a different engine is a different config.
  uint32_t lower_offset = 12;
  uint32_t upper_offset = 14;
  uint32_t special_offset = 16;

  /// PostgreSQL-compatible defaults (the values above).
  static PageLayout Postgres(uint32_t page_size = 32 * 1024) {
    PageLayout l;
    l.page_size = page_size;
    return l;
  }

  /// A MySQL/InnoDB-flavoured layout: larger page header (FIL header +
  /// page header), compact 16-byte record headers, same slotted-page
  /// structure. Walked by the identical Strider program with different
  /// configuration registers.
  static PageLayout MySqlLike(uint32_t page_size = 16 * 1024) {
    PageLayout l;
    l.page_size = page_size;
    l.header_size = 56;
    l.tuple_header_size = 16;
    l.lower_offset = 20;
    l.upper_offset = 22;
    l.special_offset = 24;
    return l;
  }

  /// Legacy aliases for the PostgreSQL field offsets.
  static constexpr uint32_t kLowerOffset = 12;
  static constexpr uint32_t kUpperOffset = 14;
  static constexpr uint32_t kSpecialOffset = 16;

  /// Offset of the attribute-count (infomask2) field within a tuple header.
  uint32_t AttrCountOffset() const { return tuple_header_size - 6; }
  /// Offset of the hoff byte (user-data start) within a tuple header.
  uint32_t HoffOffset() const { return tuple_header_size - 2; }

  /// Space available for line pointers + tuples on an empty page.
  uint32_t UsableBytes() const {
    return page_size - header_size - special_size;
  }

  /// Bytes consumed per tuple of `payload` user-data bytes (line pointer +
  /// tuple header + payload).
  uint32_t BytesPerTuple(uint32_t payload) const {
    return item_id_size + tuple_header_size + payload;
  }

  /// Max tuples of `payload` user-data bytes that fit on one page.
  uint32_t TuplesPerPage(uint32_t payload) const {
    return UsableBytes() / BytesPerTuple(payload);
  }
};

}  // namespace dana::storage
