#include "storage/residency.h"

#include <algorithm>

namespace dana::storage {

namespace {
/// Residues below this fraction are dropped: they model a handful of stale
/// frames that a real scan would no longer benefit from.
constexpr double kResidencyFloor = 1e-3;
}  // namespace

double CacheResidencyModel::PostRunResidency(double size_ratio) {
  return std::min(1.0, 1.0 / std::max(size_ratio, 1e-9));
}

CacheResidencyModel::SlotEntries::iterator CacheResidencyModel::LowerBound(
    SlotEntries& entries, uint32_t table_id) const {
  // Name order, not id order: ids are assigned in first-sight order, but
  // the historical map iterated alphabetically and the decay/summation
  // float arithmetic must run in that exact order. The string compare runs
  // only here — once per OnRun/lookup, never per page.
  const std::string& name = names_.Name(table_id);
  return std::lower_bound(entries.begin(), entries.end(), name,
                          [this](const Entry& e, const std::string& n) {
                            return names_.Name(e.table_id) < n;
                          });
}

double CacheResidencyModel::ResidentFraction(uint32_t slot,
                                             const std::string& table) const {
  if (slot >= slots_.size()) return 0.0;
  const uint32_t tid = names_.Find(table);
  if (tid == dana::Interner::kInvalidId) return 0.0;
  auto& entries = const_cast<SlotEntries&>(slots_[slot]);
  auto it = LowerBound(entries, tid);
  return it != entries.end() && it->table_id == tid ? it->resident : 0.0;
}

double CacheResidencyModel::OsResidentFraction(
    uint32_t slot, const std::string& table) const {
  if (slot >= slots_.size()) return 0.0;
  const uint32_t tid = names_.Find(table);
  if (tid == dana::Interner::kInvalidId) return 0.0;
  auto& entries = const_cast<SlotEntries&>(slots_[slot]);
  auto it = LowerBound(entries, tid);
  return it != entries.end() && it->table_id == tid ? it->os_resident : 0.0;
}

void CacheResidencyModel::OnRun(uint32_t slot, const std::string& table,
                                double size_ratio, double os_ratio) {
  size_ratio = std::max(size_ratio, 1e-9);
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  SlotEntries& entries = slots_[slot];
  const uint32_t tid = names_.Intern(table);
  // Eviction happens only under install pressure, like the clock sweep it
  // models: the scan installs frames only for its misses (an all-hit warm
  // repeat installs nothing and evicts nothing), free frames absorb
  // installs first, and only the remainder comes out of the other tables'
  // share — proportionally, since the clock hand has no loyalty. The
  // scanned table's own resident pages are re-referenced by the scan and
  // survive it.
  // Pool shares are resident * size_ratio; resident never exceeds
  // min(1, 1/ratio), so every share (and each slot's total) stays <= 1.
  auto self = LowerBound(entries, tid);
  const bool known = self != entries.end() && self->table_id == tid;
  const double prior_resident = known ? self->resident : 0.0;
  const double share_before = prior_resident * size_ratio;
  const double share_after = std::min(1.0, size_ratio);
  const double installs = std::max(0.0, share_after - share_before);
  const double free_share = std::max(0.0, 1.0 - PoolShareTotal(slot));
  const double evicted = std::max(0.0, installs - free_share);
  double others = 0.0;
  for (const Entry& e : entries) {
    if (e.table_id != tid) others += e.resident * e.size_ratio;
  }
  const double keep = others > evicted && others > 0.0
                          ? (others - evicted) / others
                          : 0.0;
  // Decay the co-located tables in place (name order, like the map walk
  // this replaces), dropping entries that fall below the floor. With an OS
  // tier, the share a table loses to this run's installs demotes into its
  // OS share instead of vanishing (the physical pools cascade victims the
  // same way), and an entry survives on OS share alone.
  size_t w = 0;
  for (size_t r = 0; r < entries.size(); ++r) {
    Entry e = entries[r];
    if (e.table_id != tid) {
      const double before = e.resident;
      e.resident *= keep;
      if (os_ratio > 0.0) {
        const double demoted = before - e.resident;
        e.os_resident = std::min(1.0 - e.resident, e.os_resident + demoted);
        if (e.os_resident < kResidencyFloor) e.os_resident = 0.0;
        if (e.resident < kResidencyFloor) {
          e.resident = 0.0;
          if (e.os_resident <= 0.0) continue;
        }
      } else if (e.resident < kResidencyFloor) {
        continue;
      }
    }
    entries[w++] = e;
  }
  entries.resize(w);
  // The scanned table ends as resident as the pool allows: fully when it
  // fits, its trailing pool-sized window otherwise.
  auto it = LowerBound(entries, tid);
  if (it == entries.end() || it->table_id != tid) {
    it = entries.insert(it, Entry{tid, 0.0, 1.0});
  }
  it->size_ratio = size_ratio;
  it->resident = PostRunResidency(size_ratio);
  if (os_ratio > 0.0) {
    // The scanned table's pool overflow streamed through the tier: its
    // leading window (what the pool could not keep) is the freshest OS
    // content, capped by the tier's capacity in working-set units.
    it->os_resident =
        std::min(1.0 - it->resident, os_ratio / size_ratio);
    if (it->os_resident < kResidencyFloor) it->os_resident = 0.0;
    // Normalize the tier to its capacity: total OS share (os_resident *
    // size_ratio, the same units as pool shares) cannot exceed os_ratio —
    // the proportional analogue of the tier evicting.
    double total = 0.0;
    for (const Entry& e : entries) total += e.os_resident * e.size_ratio;
    if (total > os_ratio) {
      const double scale = os_ratio / total;
      for (Entry& e : entries) {
        e.os_resident *= scale;
        if (e.os_resident < kResidencyFloor) e.os_resident = 0.0;
      }
    }
  }
}

void CacheResidencyModel::Reset() {
  for (SlotEntries& entries : slots_) entries.clear();
}

std::vector<std::string> CacheResidencyModel::ResidentTables(
    uint32_t slot) const {
  std::vector<std::string> out;
  if (slot >= slots_.size()) return out;
  for (const Entry& e : slots_[slot]) {
    if (e.resident > 0.0) out.push_back(names_.Name(e.table_id));
  }
  return out;
}

std::vector<uint32_t> CacheResidencyModel::ResidentTableIds(
    uint32_t slot) const {
  std::vector<uint32_t> out;
  if (slot >= slots_.size()) return out;
  for (const Entry& e : slots_[slot]) {
    if (e.resident > 0.0) out.push_back(e.table_id);
  }
  return out;
}

double CacheResidencyModel::PoolShareTotal(uint32_t slot) const {
  if (slot >= slots_.size()) return 0.0;
  double total = 0.0;
  for (const Entry& e : slots_[slot]) {
    total += e.resident * e.size_ratio;
  }
  return total;
}

}  // namespace dana::storage
