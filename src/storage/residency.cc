#include "storage/residency.h"

#include <algorithm>

namespace dana::storage {

namespace {
/// Residues below this fraction are dropped: they model a handful of stale
/// frames that a real scan would no longer benefit from.
constexpr double kResidencyFloor = 1e-3;
}  // namespace

double CacheResidencyModel::PostRunResidency(double size_ratio) {
  return std::min(1.0, 1.0 / std::max(size_ratio, 1e-9));
}

double CacheResidencyModel::ResidentFraction(uint32_t slot,
                                             const std::string& table) const {
  auto s = slots_.find(slot);
  if (s == slots_.end()) return 0.0;
  auto t = s->second.find(table);
  return t == s->second.end() ? 0.0 : t->second.resident;
}

void CacheResidencyModel::OnRun(uint32_t slot, const std::string& table,
                                double size_ratio) {
  size_ratio = std::max(size_ratio, 1e-9);
  auto& tables = slots_[slot];
  // Eviction happens only under install pressure, like the clock sweep it
  // models: the scan installs frames only for its misses (an all-hit warm
  // repeat installs nothing and evicts nothing), free frames absorb
  // installs first, and only the remainder comes out of the other tables'
  // share — proportionally, since the clock hand has no loyalty. The
  // scanned table's own resident pages are re-referenced by the scan and
  // survive it.
  // Pool shares are resident * size_ratio; resident never exceeds
  // min(1, 1/ratio), so every share (and each slot's total) stays <= 1.
  const Entry prior = tables.count(table) ? tables[table] : Entry{0.0, 1.0};
  const double share_before = prior.resident * size_ratio;
  const double share_after = std::min(1.0, size_ratio);
  const double installs = std::max(0.0, share_after - share_before);
  const double free_share = std::max(0.0, 1.0 - PoolShareTotal(slot));
  const double evicted = std::max(0.0, installs - free_share);
  double others = 0.0;
  for (const auto& [id, entry] : tables) {
    if (id != table) others += entry.resident * entry.size_ratio;
  }
  const double keep = others > evicted && others > 0.0
                          ? (others - evicted) / others
                          : 0.0;
  for (auto it = tables.begin(); it != tables.end();) {
    if (it->first != table) {
      it->second.resident *= keep;
      if (it->second.resident < kResidencyFloor) {
        it = tables.erase(it);
        continue;
      }
    }
    ++it;
  }
  // The scanned table ends as resident as the pool allows: fully when it
  // fits, its trailing pool-sized window otherwise.
  Entry& e = tables[table];
  e.size_ratio = size_ratio;
  e.resident = PostRunResidency(size_ratio);
}

std::vector<std::string> CacheResidencyModel::ResidentTables(
    uint32_t slot) const {
  std::vector<std::string> out;
  auto s = slots_.find(slot);
  if (s == slots_.end()) return out;
  for (const auto& [table, entry] : s->second) {
    if (entry.resident > 0.0) out.push_back(table);
  }
  return out;
}

double CacheResidencyModel::PoolShareTotal(uint32_t slot) const {
  auto s = slots_.find(slot);
  if (s == slots_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [table, entry] : s->second) {
    total += entry.resident * entry.size_ratio;
  }
  return total;
}

}  // namespace dana::storage
