#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_layout.h"
#include "storage/schema.h"

namespace dana::storage {

/// A heap table: an ordered collection of page images plus its schema.
///
/// Tables are bulk-loaded once (the paper trains on static tables) and then
/// read through the buffer pool or shipped page-by-page to the accelerator's
/// page buffers.
class Table {
 public:
  Table(std::string name, Schema schema, PageLayout layout)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        layout_(layout) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const PageLayout& layout() const { return layout_; }

  uint64_t num_pages() const { return pages_.size(); }
  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t SizeBytes() const { return num_pages() * layout_.page_size; }

  /// Raw image of page `i` (layout().page_size bytes).
  const uint8_t* PageData(uint64_t i) const { return pages_[i].get(); }

  /// Appends a row, allocating a new page when the current one is full.
  dana::Status AppendRow(const std::vector<double>& values);

  /// Decodes the tuple in (page, slot) into doubles.
  dana::Status ReadRow(uint64_t page, uint32_t slot,
                       std::vector<double>* out) const;

  /// Number of live tuples on page `i`.
  uint32_t TuplesOnPage(uint64_t i) const;

  /// Decodes the entire table into a row-major matrix; convenience for the
  /// CPU reference implementations and tests.
  dana::Result<std::vector<std::vector<double>>> ReadAllRows() const;

 private:
  uint8_t* AddPage();

  std::string name_;
  Schema schema_;
  PageLayout layout_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  uint64_t num_tuples_ = 0;
  std::vector<uint8_t> row_buf_;
};

}  // namespace dana::storage
