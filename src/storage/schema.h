#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dana::storage {

/// Column types supported by the tuple codec. Training data in the paper is
/// numeric; Float4 matches the UCI datasets' storage footprint in Table 3.
enum class ColumnType : uint8_t { kFloat4, kFloat8, kInt32 };

/// Byte width of a column type.
uint32_t ColumnTypeSize(ColumnType t);

/// Name for diagnostics ("float4", ...).
std::string ColumnTypeName(ColumnType t);

/// One column: a name and a type.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kFloat4;
};

/// Fixed-width row schema.
///
/// All workloads in the paper train on fixed-width numeric tuples
/// (features followed by a label, or a user's rating row for LRMF), so the
/// codec supports fixed-width rows only; this is also what makes single
/// tuple-pointer inspection sufficient for the Strider program (§5.1.2).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Convenience factory: `width` feature columns of `type` named f0..fN-1
  /// plus one label column.
  static Schema Dense(uint32_t width, ColumnType type = ColumnType::kFloat4,
                      bool with_label = true);

  const std::vector<Column>& columns() const { return columns_; }
  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }

  /// Total payload bytes of one row.
  uint32_t RowBytes() const { return row_bytes_; }

  /// Byte offset of column `i` within the row payload.
  uint32_t ColumnOffset(uint32_t i) const { return offsets_[i]; }

  /// Encodes `values` (one double per column, converted per column type)
  /// into `out` which must have RowBytes() capacity.
  dana::Status EncodeRow(const std::vector<double>& values,
                         uint8_t* out) const;

  /// Decodes a row payload into doubles, one per column.
  dana::Status DecodeRow(const uint8_t* data, uint32_t len,
                         std::vector<double>* out) const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_bytes_ = 0;
};

}  // namespace dana::storage
