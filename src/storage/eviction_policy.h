#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dana::storage {

/// Replacement policies a cache tier can delegate victim selection to.
enum class EvictionKind : uint8_t {
  kClock = 0,        ///< Second-chance clock sweep (the seed pools' policy).
  kLru = 1,          ///< Strict least-recently-used.
  kPromotional = 2,  ///< Two-segment promotional queues (ZNCache-style).
};

const char* EvictionKindName(EvictionKind kind);
dana::Result<EvictionKind> ParseEvictionKind(std::string_view name);

/// Victim selection over the dense slot indices [0, capacity) of one cache
/// tier. The tier owns the slots and the page identities; the policy only
/// orders them. Contract:
///
///   - OnInsert(i): slot i now holds a (new) page — a fresh fill or the
///     reuse of a just-evicted victim slot.
///   - OnAccess(i): the page in slot i was re-referenced (a hit).
///   - PickVictim(): called only when every slot is occupied; returns the
///     slot to evict. The caller evicts and re-inserts into the same slot
///     (OnInsert relinks it), so PickVictim need not unlink anything.
///   - Reset(): the tier dropped every page (Clear).
///
/// The three implementations are `final` and tiers dispatch to them through
/// concrete pointers (switch on kind), so the hot TouchPage/FetchPage path
/// never pays a virtual call — the interface exists for tests and tooling.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual EvictionKind kind() const = 0;
  virtual void OnInsert(size_t idx) = 0;
  virtual void OnAccess(size_t idx) = 0;
  virtual size_t PickVictim() = 0;
  virtual void Reset() = 0;
};

/// Second-chance clock. Bit-for-bit the seed BufferPool's sweep once the
/// pool is full: referenced slots get their bit cleared and spared one
/// lap; the hand starts (and resets) at slot 0, which is exactly where the
/// seed's hand lands after filling an empty pool.
class ClockEvictionPolicy final : public EvictionPolicy {
 public:
  explicit ClockEvictionPolicy(size_t capacity)
      : referenced_(capacity == 0 ? 1 : capacity, 0) {}

  EvictionKind kind() const override { return EvictionKind::kClock; }
  void OnInsert(size_t idx) override { referenced_[idx] = 1; }
  void OnAccess(size_t idx) override { referenced_[idx] = 1; }
  size_t PickVictim() override {
    while (true) {
      const size_t idx = hand_;
      hand_ = (hand_ + 1) % referenced_.size();
      if (referenced_[idx]) {
        referenced_[idx] = 0;
        continue;
      }
      return idx;
    }
  }
  void Reset() override {
    referenced_.assign(referenced_.size(), 0);
    hand_ = 0;
  }

 private:
  std::vector<uint8_t> referenced_;
  size_t hand_ = 0;
};

/// Strict LRU over an intrusive doubly-linked list of slot indices.
class LruEvictionPolicy final : public EvictionPolicy {
 public:
  explicit LruEvictionPolicy(size_t capacity)
      : prev_(capacity, kNil), next_(capacity, kNil), linked_(capacity, 0) {}

  EvictionKind kind() const override { return EvictionKind::kLru; }
  void OnInsert(size_t idx) override { MoveToFront(idx); }
  void OnAccess(size_t idx) override { MoveToFront(idx); }
  size_t PickVictim() override { return tail_; }
  void Reset() override {
    prev_.assign(prev_.size(), kNil);
    next_.assign(next_.size(), kNil);
    linked_.assign(linked_.size(), 0);
    head_ = tail_ = kNil;
  }

 private:
  static constexpr size_t kNil = static_cast<size_t>(-1);

  void Unlink(size_t idx) {
    if (prev_[idx] != kNil) next_[prev_[idx]] = next_[idx];
    if (next_[idx] != kNil) prev_[next_[idx]] = prev_[idx];
    if (head_ == idx) head_ = next_[idx];
    if (tail_ == idx) tail_ = prev_[idx];
    prev_[idx] = next_[idx] = kNil;
    linked_[idx] = 0;
  }
  void MoveToFront(size_t idx) {
    if (linked_[idx]) {
      if (head_ == idx) return;
      Unlink(idx);
    }
    prev_[idx] = kNil;
    next_[idx] = head_;
    if (head_ != kNil) prev_[head_] = idx;
    head_ = idx;
    if (tail_ == kNil) tail_ = idx;
    linked_[idx] = 1;
  }

  std::vector<size_t> prev_, next_;
  std::vector<uint8_t> linked_;
  size_t head_ = kNil, tail_ = kNil;
};

/// Promotional eviction à la ZNCache's chunk queues: new pages enter a
/// probationary queue; a re-reference *promotes* the page across the queue
/// boundary into a protected segment (capped at half the tier) instead of
/// merely sparing it for a lap. When the protected segment overflows, its
/// LRU page is demoted back to the probationary MRU position. Victims come
/// from the probationary tail, so a one-shot sequential flood churns only
/// the probationary half while re-referenced working sets survive — the
/// scan resistance clock and plain LRU lack.
class PromotionalEvictionPolicy final : public EvictionPolicy {
 public:
  explicit PromotionalEvictionPolicy(size_t capacity)
      : prev_(capacity, kNil),
        next_(capacity, kNil),
        segment_(capacity, kUnlinked),
        protected_cap_(capacity / 2) {}

  EvictionKind kind() const override { return EvictionKind::kPromotional; }
  void OnInsert(size_t idx) override {
    if (segment_[idx] != kUnlinked) Unlink(idx);
    PushFront(kProbation, idx);
  }
  void OnAccess(size_t idx) override {
    if (segment_[idx] == kProtected) {
      if (head_[kProtected] != idx) {
        Unlink(idx);
        PushFront(kProtected, idx);
      }
      return;
    }
    Unlink(idx);
    PushFront(kProtected, idx);
    if (size_[kProtected] > protected_cap_) {
      const size_t demoted = tail_[kProtected];
      Unlink(demoted);
      PushFront(kProbation, demoted);
    }
  }
  size_t PickVictim() override {
    return tail_[kProbation] != kNil ? tail_[kProbation] : tail_[kProtected];
  }
  void Reset() override {
    prev_.assign(prev_.size(), kNil);
    next_.assign(next_.size(), kNil);
    segment_.assign(segment_.size(), kUnlinked);
    head_[0] = head_[1] = tail_[0] = tail_[1] = kNil;
    size_[0] = size_[1] = 0;
  }

 private:
  static constexpr size_t kNil = static_cast<size_t>(-1);
  static constexpr uint8_t kProbation = 0;
  static constexpr uint8_t kProtected = 1;
  static constexpr uint8_t kUnlinked = 2;

  void Unlink(size_t idx) {
    const uint8_t seg = segment_[idx];
    if (prev_[idx] != kNil) next_[prev_[idx]] = next_[idx];
    if (next_[idx] != kNil) prev_[next_[idx]] = prev_[idx];
    if (head_[seg] == idx) head_[seg] = next_[idx];
    if (tail_[seg] == idx) tail_[seg] = prev_[idx];
    prev_[idx] = next_[idx] = kNil;
    segment_[idx] = kUnlinked;
    --size_[seg];
  }
  void PushFront(uint8_t seg, size_t idx) {
    prev_[idx] = kNil;
    next_[idx] = head_[seg];
    if (head_[seg] != kNil) prev_[head_[seg]] = idx;
    head_[seg] = idx;
    if (tail_[seg] == kNil) tail_[seg] = idx;
    segment_[idx] = seg;
    ++size_[seg];
  }

  std::vector<size_t> prev_, next_;
  std::vector<uint8_t> segment_;
  size_t head_[2] = {kNil, kNil};
  size_t tail_[2] = {kNil, kNil};
  size_t size_[2] = {0, 0};
  size_t protected_cap_;
};

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionKind kind,
                                                   size_t capacity);

/// Page identity within a pool/tier: interned table id + page number. Two
/// integers — tier maps never hash or compare a string on the touch path.
struct PageKey {
  uint32_t table_id;
  uint64_t page_no;
  bool operator==(const PageKey&) const = default;
};
struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    // Fibonacci mixing of the two fields; page numbers are sequential,
    // so the multiply is what spreads neighbouring pages across buckets.
    return static_cast<size_t>(
        (k.page_no * 0x9E3779B97F4A7C15ull) ^
        (static_cast<uint64_t>(k.table_id) * 0xC2B2AE3D27D4EB4Full));
  }
};

/// A key-addressed cache tier below the buffer pool: the modeled kernel
/// page cache or an SSD-style capacity tier. It holds page *identities*
/// only (no frames, no data — tier hits are priced by the pool's DiskModel)
/// and delegates victim selection to an EvictionPolicy over its dense slot
/// indices. Unlike the seed's `os_cached_` set, a full tier evicts: a
/// post-saturation insert displaces a victim and reports it so the owner
/// can cascade the demotion down to the next tier.
class PageTier {
 public:
  /// A disabled tier: every operation is a no-op returning "absent".
  PageTier() : PageTier(EvictionKind::kClock, 0) {}
  PageTier(EvictionKind kind, uint64_t capacity);

  bool enabled() const { return capacity_ > 0; }
  uint64_t capacity() const { return capacity_; }
  uint64_t resident() const { return map_.size(); }
  uint64_t resident(uint32_t table_id) const {
    return table_id < per_table_.size() ? per_table_[table_id] : 0;
  }
  uint64_t evictions() const { return evictions_; }

  bool Contains(const PageKey& key) const {
    return map_.find(key) != map_.end();
  }

  /// Re-references `key` (policy OnAccess). Returns true if present.
  bool Touch(const PageKey& key);

  /// Removes `key` — a promotion up the hierarchy. Returns true if it was
  /// present.
  bool Erase(const PageKey& key);

  /// Inserts `key` (a demotion from the tier above). Inserting a present
  /// key is a Touch. When the tier is full a victim is displaced and
  /// written to `*evicted` (when non-null); returns true iff a victim was
  /// displaced — the caller demotes it to the next tier down or drops it.
  bool Insert(const PageKey& key, PageKey* evicted);

  void Clear();

 private:
  void PolicyOnInsert(size_t slot);
  void PolicyOnAccess(size_t slot);
  size_t PolicyPickVictim();

  uint64_t capacity_;
  EvictionKind kind_;
  // Concrete policy pointers: exactly one is non-null, selected by kind_,
  // and calls go through the concrete (final) type — no virtual dispatch.
  std::unique_ptr<ClockEvictionPolicy> clock_;
  std::unique_ptr<LruEvictionPolicy> lru_;
  std::unique_ptr<PromotionalEvictionPolicy> promotional_;
  std::unordered_map<PageKey, size_t, PageKeyHash> map_;
  std::vector<PageKey> slot_keys_;
  std::vector<size_t> free_slots_;
  std::vector<uint64_t> per_table_;
  uint64_t evictions_ = 0;
};

}  // namespace dana::storage
