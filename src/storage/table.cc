#include "storage/table.h"

namespace dana::storage {

uint8_t* Table::AddPage() {
  pages_.push_back(std::make_unique<uint8_t[]>(layout_.page_size));
  uint8_t* data = pages_.back().get();
  Page page(data, layout_);
  page.InitEmpty();
  return data;
}

Status Table::AppendRow(const std::vector<double>& values) {
  row_buf_.resize(schema_.RowBytes());
  DANA_RETURN_NOT_OK(schema_.EncodeRow(values, row_buf_.data()));

  if (pages_.empty()) AddPage();
  {
    Page page(pages_.back().get(), layout_);
    auto slot = page.AddTuple(row_buf_, schema_.num_columns());
    if (slot.ok()) {
      ++num_tuples_;
      return Status::OK();
    }
    if (!slot.status().IsResourceExhausted()) return slot.status();
  }
  // Current page full: start a new one.
  uint8_t* data = AddPage();
  Page page(data, layout_);
  auto slot = page.AddTuple(row_buf_, schema_.num_columns());
  if (!slot.ok()) {
    return Status::InvalidArgument("row of " +
                                   std::to_string(schema_.RowBytes()) +
                                   " bytes does not fit an empty page");
  }
  ++num_tuples_;
  return Status::OK();
}

Status Table::ReadRow(uint64_t page_no, uint32_t slot,
                      std::vector<double>* out) const {
  if (page_no >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " >= page count");
  }
  Page page(const_cast<uint8_t*>(pages_[page_no].get()), layout_);
  DANA_ASSIGN_OR_RETURN(auto payload, page.GetTuplePayload(slot));
  return schema_.DecodeRow(payload.data(),
                           static_cast<uint32_t>(payload.size()), out);
}

uint32_t Table::TuplesOnPage(uint64_t i) const {
  if (i >= pages_.size()) return 0;
  Page page(const_cast<uint8_t*>(pages_[i].get()), layout_);
  return page.ItemCount();
}

Result<std::vector<std::vector<double>>> Table::ReadAllRows() const {
  std::vector<std::vector<double>> rows;
  rows.reserve(num_tuples_);
  for (uint64_t p = 0; p < pages_.size(); ++p) {
    const uint32_t n = TuplesOnPage(p);
    for (uint32_t s = 0; s < n; ++s) {
      std::vector<double> row;
      DANA_RETURN_NOT_OK(ReadRow(p, s, &row));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace dana::storage
