#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page_layout.h"

namespace dana::storage {

/// Read/write view over one heap page image.
///
/// Page does not own the underlying bytes; it is a codec over a caller-owned
/// buffer (a buffer-pool frame or a Table's page image). All multi-byte
/// fields are little-endian, matching the byte layout documented in
/// PageLayout.
class Page {
 public:
  /// Wraps `data` (which must be layout.page_size bytes) without modifying it.
  Page(uint8_t* data, const PageLayout& layout)
      : data_(data), layout_(layout) {}

  /// Formats the buffer as an empty page (PageInit): zeroes the header,
  /// sets lower/upper/special.
  void InitEmpty();

  /// @name Header accessors
  ///@{
  uint16_t lower() const { return ReadU16(layout_.lower_offset); }
  uint16_t upper() const { return ReadU16(layout_.upper_offset); }
  uint16_t special() const { return ReadU16(layout_.special_offset); }
  uint64_t lsn() const { return ReadU64(0); }
  void set_lsn(uint64_t v) { WriteU64(0, v); }
  ///@}

  /// Number of line pointers on the page.
  uint32_t ItemCount() const;

  /// Free bytes between the line pointer array and tuple data.
  uint32_t FreeSpace() const;

  /// Appends a tuple with the given user payload. Writes the tuple header
  /// (attribute count into infomask2, hoff) and a new line pointer.
  /// Returns the 0-based slot index, or ResourceExhausted when full.
  Result<uint32_t> AddTuple(std::span<const uint8_t> payload,
                            uint16_t attr_count);

  /// User payload of the tuple in `slot` (header stripped).
  Result<std::span<const uint8_t>> GetTuplePayload(uint32_t slot) const;

  /// Raw tuple bytes including the 24-byte tuple header.
  Result<std::span<const uint8_t>> GetTupleRaw(uint32_t slot) const;

  /// Line pointer fields for `slot`: byte offset and total length.
  Result<std::pair<uint32_t, uint32_t>> GetItemId(uint32_t slot) const;

  /// Structural validation: bounds, ordering, line pointers inside
  /// [upper, special). Used by tests and by the buffer pool on fetch.
  dana::Status Validate() const;

  const PageLayout& layout() const { return layout_; }
  const uint8_t* data() const { return data_; }

 private:
  uint16_t ReadU16(uint32_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, 2);
    return v;
  }
  uint32_t ReadU32(uint32_t off) const {
    uint32_t v;
    std::memcpy(&v, data_ + off, 4);
    return v;
  }
  uint64_t ReadU64(uint32_t off) const {
    uint64_t v;
    std::memcpy(&v, data_ + off, 8);
    return v;
  }
  void WriteU16(uint32_t off, uint16_t v) { std::memcpy(data_ + off, &v, 2); }
  void WriteU32(uint32_t off, uint32_t v) { std::memcpy(data_ + off, &v, 4); }
  void WriteU64(uint32_t off, uint64_t v) { std::memcpy(data_ + off, &v, 8); }

  uint8_t* data_;
  PageLayout layout_;
};

/// Packs a PostgreSQL ItemIdData: offset(15) | flags(2) | length(15).
uint32_t PackItemId(uint32_t offset, uint32_t flags, uint32_t length);

/// Unpacks an ItemIdData into (offset, flags, length).
void UnpackItemId(uint32_t packed, uint32_t* offset, uint32_t* flags,
                  uint32_t* length);

/// Line-pointer flag values (matching PostgreSQL's LP_*).
inline constexpr uint32_t kLpUnused = 0;
inline constexpr uint32_t kLpNormal = 1;
inline constexpr uint32_t kLpRedirect = 2;
inline constexpr uint32_t kLpDead = 3;

}  // namespace dana::storage
