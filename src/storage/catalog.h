#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace dana::storage {

/// System catalog: table registry plus accelerator metadata.
///
/// The paper stores the generated accelerator design, its schedule, operation
/// map, and Strider/engine instruction streams in the RDBMS catalog (§6.2);
/// query execution looks the UDF up here. Accelerator metadata is stored as
/// an opaque blob keyed by UDF name so that the storage layer stays
/// independent of the compiler layer.
///
/// Lookups are hash-based with heterogeneous string_view keys (C++20
/// transparent hashing): GetTable/HasTable probe without constructing a
/// std::string or walking an ordered tree's string compares. Name listings
/// (TableNames/UdfNames) sort on demand — the historical sorted contract —
/// since listing is reporting, not a hot path.
class Catalog {
 public:
  /// Registers `table` under its name. Fails on duplicate names.
  dana::Status RegisterTable(std::unique_ptr<Table> table);

  /// Looks a table up by name.
  dana::Result<Table*> GetTable(std::string_view name) const;

  /// True iff a table with this name exists.
  bool HasTable(std::string_view name) const {
    return tables_.find(name) != tables_.end();
  }

  /// Removes a table; NotFound if absent.
  dana::Status DropTable(std::string_view name);

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Stores accelerator metadata (serialized design + instruction streams)
  /// under a UDF name, replacing any previous entry.
  void PutUdfMetadata(std::string_view udf_name, std::string blob);

  /// Fetches UDF metadata; NotFound if the UDF was never registered.
  dana::Result<std::string> GetUdfMetadata(std::string_view udf_name) const;

  /// Registered UDF names, sorted.
  std::vector<std::string> UdfNames() const;

 private:
  /// Transparent hash/equality: probe with a string_view, store a string.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct NameEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, std::unique_ptr<Table>, NameHash, NameEq>
      tables_;
  std::unordered_map<std::string, std::string, NameHash, NameEq>
      udf_metadata_;
};

}  // namespace dana::storage
