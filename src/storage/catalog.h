#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace dana::storage {

/// System catalog: table registry plus accelerator metadata.
///
/// The paper stores the generated accelerator design, its schedule, operation
/// map, and Strider/engine instruction streams in the RDBMS catalog (§6.2);
/// query execution looks the UDF up here. Accelerator metadata is stored as
/// an opaque blob keyed by UDF name so that the storage layer stays
/// independent of the compiler layer.
class Catalog {
 public:
  /// Registers `table` under its name. Fails on duplicate names.
  dana::Status RegisterTable(std::unique_ptr<Table> table);

  /// Looks a table up by name.
  dana::Result<Table*> GetTable(const std::string& name) const;

  /// True iff a table with this name exists.
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Removes a table; NotFound if absent.
  dana::Status DropTable(const std::string& name);

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Stores accelerator metadata (serialized design + instruction streams)
  /// under a UDF name, replacing any previous entry.
  void PutUdfMetadata(const std::string& udf_name, std::string blob);

  /// Fetches UDF metadata; NotFound if the UDF was never registered.
  dana::Result<std::string> GetUdfMetadata(const std::string& udf_name) const;

  /// Registered UDF names, sorted.
  std::vector<std::string> UdfNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::string> udf_metadata_;
};

}  // namespace dana::storage
