#include "storage/page.h"

#include <string>

namespace dana::storage {

uint32_t PackItemId(uint32_t offset, uint32_t flags, uint32_t length) {
  return (offset & 0x7FFFu) | ((flags & 0x3u) << 15) |
         ((length & 0x7FFFu) << 17);
}

void UnpackItemId(uint32_t packed, uint32_t* offset, uint32_t* flags,
                  uint32_t* length) {
  *offset = packed & 0x7FFFu;
  *flags = (packed >> 15) & 0x3u;
  *length = (packed >> 17) & 0x7FFFu;
}

void Page::InitEmpty() {
  std::memset(data_, 0, layout_.page_size);
  const uint16_t special =
      static_cast<uint16_t>(layout_.page_size - layout_.special_size);
  WriteU16(layout_.lower_offset, static_cast<uint16_t>(layout_.header_size));
  WriteU16(layout_.upper_offset, special);
  WriteU16(layout_.special_offset, special);
  // pagesize_version: page size in the high bits, version 4 in the low
  // byte, as PostgreSQL stores it (kept outside the parameterized fields).
  if (layout_.header_size >= 20 && layout_.lower_offset != 18) {
    WriteU16(18, static_cast<uint16_t>((layout_.page_size & 0xFF00u) | 4u));
  }
}

uint32_t Page::ItemCount() const {
  const uint16_t lo = lower();
  if (lo <= layout_.header_size) return 0;
  return (lo - layout_.header_size) / layout_.item_id_size;
}

uint32_t Page::FreeSpace() const {
  const uint16_t lo = lower();
  const uint16_t up = upper();
  return up > lo ? static_cast<uint32_t>(up - lo) : 0;
}

Result<uint32_t> Page::AddTuple(std::span<const uint8_t> payload,
                                uint16_t attr_count) {
  const uint32_t tuple_len =
      layout_.tuple_header_size + static_cast<uint32_t>(payload.size());
  const uint32_t needed = tuple_len + layout_.item_id_size;
  if (FreeSpace() < needed) {
    return Status::ResourceExhausted("page full: need " +
                                     std::to_string(needed) + " bytes, have " +
                                     std::to_string(FreeSpace()));
  }
  if (tuple_len > 0x7FFFu) {
    return Status::InvalidArgument("tuple exceeds 32KB line-pointer limit");
  }

  const uint16_t lo = lower();
  const uint16_t up = upper();
  const uint16_t new_upper = static_cast<uint16_t>(up - tuple_len);
  const uint32_t slot = ItemCount();

  // Tuple header.
  uint8_t* t = data_ + new_upper;
  std::memset(t, 0, layout_.tuple_header_size);
  const uint32_t xmin = 2;  // FrozenTransactionId: always-visible bulk load
  std::memcpy(t + 0, &xmin, 4);
  // ctid: (block unknown here, slot+1 as offset number), matching heap rules
  const uint16_t offset_number = static_cast<uint16_t>(slot + 1);
  std::memcpy(t + 16, &offset_number, 2);
  const uint16_t infomask2 = static_cast<uint16_t>(attr_count & 0x07FFu);
  std::memcpy(t + layout_.AttrCountOffset(), &infomask2, 2);
  const uint16_t infomask = 0x0800u;  // HEAP_XMAX_INVALID
  std::memcpy(t + layout_.AttrCountOffset() + 2, &infomask, 2);
  t[layout_.HoffOffset()] =
      static_cast<uint8_t>(layout_.tuple_header_size);  // hoff
  if (!payload.empty()) {
    std::memcpy(t + layout_.tuple_header_size, payload.data(), payload.size());
  }

  // Line pointer.
  const uint32_t packed = PackItemId(new_upper, kLpNormal, tuple_len);
  WriteU32(lo, packed);

  WriteU16(layout_.lower_offset,
           static_cast<uint16_t>(lo + layout_.item_id_size));
  WriteU16(layout_.upper_offset, new_upper);
  return slot;
}

Result<std::pair<uint32_t, uint32_t>> Page::GetItemId(uint32_t slot) const {
  if (slot >= ItemCount()) {
    return Status::OutOfRange("slot " + std::to_string(slot) +
                              " >= item count " +
                              std::to_string(ItemCount()));
  }
  const uint32_t packed =
      ReadU32(layout_.header_size + slot * layout_.item_id_size);
  uint32_t off, flags, len;
  UnpackItemId(packed, &off, &flags, &len);
  if (flags != kLpNormal) {
    return Status::NotFound("slot " + std::to_string(slot) + " is not live");
  }
  return std::make_pair(off, len);
}

Result<std::span<const uint8_t>> Page::GetTupleRaw(uint32_t slot) const {
  DANA_ASSIGN_OR_RETURN(auto item, GetItemId(slot));
  const auto [off, len] = item;
  if (off + len > layout_.page_size) {
    return Status::Corruption("tuple extends past page end");
  }
  return std::span<const uint8_t>(data_ + off, len);
}

Result<std::span<const uint8_t>> Page::GetTuplePayload(uint32_t slot) const {
  DANA_ASSIGN_OR_RETURN(auto raw, GetTupleRaw(slot));
  if (raw.size() < layout_.tuple_header_size) {
    return Status::Corruption("tuple shorter than its header");
  }
  const uint8_t hoff = raw[layout_.HoffOffset()];
  if (hoff > raw.size()) {
    return Status::Corruption("tuple hoff past tuple end");
  }
  return raw.subspan(hoff);
}

Status Page::Validate() const {
  const uint16_t lo = lower();
  const uint16_t up = upper();
  const uint16_t sp = special();
  if (lo < layout_.header_size) {
    return Status::Corruption("lower inside page header");
  }
  if (lo > up) return Status::Corruption("lower > upper");
  if (up > sp) return Status::Corruption("upper > special");
  if (sp > layout_.page_size) return Status::Corruption("special > page size");
  const uint32_t n = ItemCount();
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t packed =
        ReadU32(layout_.header_size + i * layout_.item_id_size);
    uint32_t off, flags, len;
    UnpackItemId(packed, &off, &flags, &len);
    if (flags == kLpUnused) continue;
    if (off < up || off + len > sp) {
      return Status::Corruption("line pointer " + std::to_string(i) +
                                " outside tuple area");
    }
  }
  return Status::OK();
}

}  // namespace dana::storage
