#include "storage/schema.h"

#include <cstring>

namespace dana::storage {

uint32_t ColumnTypeSize(ColumnType t) {
  switch (t) {
    case ColumnType::kFloat4:
      return 4;
    case ColumnType::kFloat8:
      return 8;
    case ColumnType::kInt32:
      return 4;
  }
  return 0;
}

std::string ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kFloat4:
      return "float4";
    case ColumnType::kFloat8:
      return "float8";
    case ColumnType::kInt32:
      return "int32";
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t off = 0;
  for (const auto& c : columns_) {
    offsets_.push_back(off);
    off += ColumnTypeSize(c.type);
  }
  row_bytes_ = off;
}

Schema Schema::Dense(uint32_t width, ColumnType type, bool with_label) {
  std::vector<Column> cols;
  cols.reserve(width + 1);
  for (uint32_t i = 0; i < width; ++i) {
    std::string name = "f";
    name += std::to_string(i);
    cols.push_back({std::move(name), type});
  }
  if (with_label) cols.push_back({"label", type});
  return Schema(std::move(cols));
}

Status Schema::EncodeRow(const std::vector<double>& values,
                         uint8_t* out) const {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    uint8_t* dst = out + offsets_[i];
    switch (columns_[i].type) {
      case ColumnType::kFloat4: {
        const float f = static_cast<float>(values[i]);
        std::memcpy(dst, &f, 4);
        break;
      }
      case ColumnType::kFloat8: {
        std::memcpy(dst, &values[i], 8);
        break;
      }
      case ColumnType::kInt32: {
        const int32_t v = static_cast<int32_t>(values[i]);
        std::memcpy(dst, &v, 4);
        break;
      }
    }
  }
  return Status::OK();
}

Status Schema::DecodeRow(const uint8_t* data, uint32_t len,
                         std::vector<double>* out) const {
  if (len < row_bytes_) {
    return Status::Corruption("row payload shorter than schema width");
  }
  out->resize(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    const uint8_t* src = data + offsets_[i];
    switch (columns_[i].type) {
      case ColumnType::kFloat4: {
        float f;
        std::memcpy(&f, src, 4);
        (*out)[i] = f;
        break;
      }
      case ColumnType::kFloat8: {
        double d;
        std::memcpy(&d, src, 8);
        (*out)[i] = d;
        break;
      }
      case ColumnType::kInt32: {
        int32_t v;
        std::memcpy(&v, src, 4);
        (*out)[i] = v;
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace dana::storage
