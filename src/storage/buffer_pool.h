#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/intern.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/disk.h"
#include "storage/eviction_policy.h"
#include "storage/table.h"

namespace dana::storage {

/// Hit/miss statistics of a BufferPool, per tier. `hits`/`misses`/
/// `evictions` are the buffer-pool (tier 0) counters; the `os_*`/`ssd_*`
/// fields cover the modeled kernel page cache (tier 1) and the optional
/// SSD capacity tier (tier 2): an `os_hit` is a pool miss served at
/// OS-cache speed, an `os_miss` is a pool miss the OS tier did not hold.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t os_hits = 0;
  uint64_t os_misses = 0;
  uint64_t os_evictions = 0;
  uint64_t ssd_hits = 0;
  uint64_t ssd_evictions = 0;
  /// Accumulated simulated disk time spent servicing misses.
  dana::SimTime io_time;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Fixed-capacity page cache at the top of an explicit tier hierarchy:
///
///   tier 0: buffer pool frames (this class's frames_), victim selection
///           delegated to an EvictionPolicy (clock / lru / promotional);
///   tier 1: modeled kernel page cache — under clock this is the legacy
///           admit-until-full `os_cached_` set (bit-compatible with the
///           seed pools); under lru/promotional it is an evicting,
///           *exclusive* PageTier that pool victims demote into;
///   tier 2: optional SSD-style capacity tier (lru/promotional only) that
///           OS-tier victims cascade into before dropping to disk.
///
/// This is the structure Striders interface with in the paper (Figure 2):
/// the RDBMS executor fills the pool from disk and the FPGA reads resident
/// pages directly. All systems in the reproduction (MADlib CPU engines and
/// the DAnA accelerator) fetch pages through the same pool so that I/O time
/// and warm/cold behaviour are identical across systems.
///
/// Pages are identified by (table name, page number) — catalog semantics:
/// two Table objects with the same name alias the same cached pages. This
/// is what lets one pool be shared across a slot's tables (the scheduler's
/// physical residency ground truth) while per-workload pools keep their
/// original behaviour, and it gives the pool exact per-table frame
/// accounting (resident_frames(table), tier_resident_frames(tier, table)).
///
/// Internally table names are interned into dense per-pool ids (InternTable)
/// and every frame, page key, and per-table counter is integer-keyed — a
/// touch hashes two integers, never a string. The string-facing APIs remain
/// as thin shims that intern (mutating calls) or look up (const calls) the
/// name once per call; per-page loops like ScanTable pay the string exactly
/// once per sweep. Ids are stable for the pool's lifetime — Clear() drops
/// pages, not the name table — so callers may cache them across runs.
class BufferPool {
 public:
  /// Tier indices for the per-tier accessors and `tier<j>.*` gauges.
  static constexpr size_t kPoolTier = 0;
  static constexpr size_t kOsTier = 1;
  static constexpr size_t kSsdTier = 2;

  /// Pool of `capacity_bytes / page_size` frames; `disk` supplies miss
  /// costs. Misses for pages held by the OS tier are served at the
  /// OS-page-cache rate instead of disk speed, modeling the kernel cache
  /// above the pool. `os_cache_bytes` semantics: UINT64_MAX keeps the
  /// legacy unlimited set under clock (and disables the tier under
  /// lru/promotional, which need a finite capacity); 0 disables the tier;
  /// anything else caps it at that many bytes of distinct pages.
  /// `ssd_cache_bytes > 0` adds the capacity tier below the OS tier
  /// (effective under lru/promotional, where demotions cascade).
  BufferPool(uint64_t capacity_bytes, uint32_t page_size, DiskModel disk,
             uint64_t os_cache_bytes = UINT64_MAX,
             EvictionKind eviction = EvictionKind::kClock,
             uint64_t ssd_cache_bytes = 0);

  /// Pool sized directly in frames — the shared per-slot residency pools
  /// are specified this way (scale-normalized units, not bytes).
  static BufferPool SizedInFrames(uint64_t frames, uint32_t page_size,
                                  DiskModel disk) {
    return BufferPool(frames * static_cast<uint64_t>(page_size), page_size,
                      disk);
  }
  /// Frame-sized pool with an explicit policy and tier shape; `os_frames`
  /// and `ssd_frames` of 0 disable the respective tier.
  static BufferPool SizedInFrames(uint64_t frames, uint32_t page_size,
                                  DiskModel disk, EvictionKind eviction,
                                  uint64_t os_frames,
                                  uint64_t ssd_frames = 0) {
    const uint64_t ps = page_size;
    return BufferPool(frames * ps, page_size, disk, os_frames * ps, eviction,
                      ssd_frames * ps);
  }

  /// Dense id of logical table `name` in this pool, interning it on first
  /// sight. Stable for the pool's lifetime; the id-taking overloads below
  /// skip the per-call name lookup entirely.
  uint32_t InternTable(std::string_view name) {
    return names_.Intern(name);
  }

  /// Returns the frame holding page `page_no` of `table`, fetching it from
  /// the (modeled) disk on a miss. The returned pointer is valid until the
  /// next Fetch that evicts it; callers in this single-threaded simulator
  /// consume it immediately.
  dana::Result<const uint8_t*> FetchPage(const Table& table, uint64_t page_no);

  /// Data-free residency probe for shared (cross-table) pools: page
  /// `page_no` of logical table `table` is referenced on a hit and
  /// installed — evicting a victim under capacity pressure, exactly like
  /// FetchPage — on a miss. No page image is copied and no I/O time is
  /// charged (the caller prices I/O from measured service profiles; the
  /// pool's job here is to be the occupancy/eviction ground truth).
  /// Hit/miss/eviction counters still advance. Under lru/promotional a
  /// miss consults the lower tiers: an OS/SSD-tier hit promotes the page
  /// into the pool and the displaced victim demotes down the hierarchy.
  /// Returns true on a (pool) hit.
  bool TouchPage(uint32_t table_id, uint64_t page_no);
  bool TouchPage(const std::string& table, uint64_t page_no) {
    return TouchPage(InternTable(table), page_no);
  }

  /// One full sequential sweep of a logical table of `pages` pages through
  /// the pool via TouchPage — the cache footprint of one training epoch's
  /// Strider scan. A table larger than the pool ends with its trailing
  /// pool-sized window resident (clock replacement under a sequential
  /// scan); co-located tables are evicted only under install pressure.
  void ScanTable(uint32_t table_id, uint64_t pages);
  void ScanTable(const std::string& table, uint64_t pages) {
    ScanTable(InternTable(table), pages);
  }

  /// Fraction of a `pages`-page logical table currently resident in the
  /// buffer pool (tier 0), in [0, 1]: resident_frames(table) / pages,
  /// clamped.
  double ResidentShare(uint32_t table_id, uint64_t pages) const;
  double ResidentShare(const std::string& table, uint64_t pages) const {
    return ResidentShare(names_.Find(table), pages);
  }

  /// Fraction of a `pages`-page logical table held by `tier`
  /// (kPoolTier/kOsTier/kSsdTier), clamped to [0, 1]. Under lru/promotional
  /// the tiers are exclusive, so the per-tier shares of one table sum to at
  /// most 1; under clock the legacy OS set is inclusive of the pool.
  double TierResidentShare(size_t tier, uint32_t table_id,
                           uint64_t pages) const;
  double TierResidentShare(size_t tier, const std::string& table,
                           uint64_t pages) const {
    return TierResidentShare(tier, names_.Find(table), pages);
  }

  /// Loads the leading `fraction` of `table`'s pages (capped by the pool
  /// size) without charging I/O time — models a previously-run query having
  /// left that share of the table's working set resident. The default warms
  /// everything the pool can hold. Also marks the table OS-cache resident.
  void Prewarm(const Table& table, double fraction = 1.0);

  /// Marks `table`'s pages resident in the OS page cache without touching
  /// the pool: a prior query streamed them. Under clock this is the legacy
  /// admit-until-full set; under lru/promotional the tier evicts, so a
  /// saturated tier rotates pages in (and cascades victims to the SSD
  /// tier). Bumps version(): the OS tier is pricing state.
  void MarkOsCached(const Table& table);

  /// Fraction of `table` currently resident.
  double ResidentFraction(const Table& table) const;

  /// Drops all cached pages in every tier and resets the policy state.
  /// Interned table ids survive — they name tables, not pages.
  void Clear();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  /// Frames currently holding a valid page. Unlike stats(), this is pool
  /// *state*, not an event counter: ResetStats() does not touch it, only
  /// Clear() and evictions do. Never exceeds num_frames().
  uint64_t resident_frames() const { return resident_frames_; }
  /// Frames currently holding pages of `table` — the per-table partition
  /// of resident_frames(). This is the physical residency signal the
  /// scheduler's executor prices placement from when a slot's tables share
  /// one pool; storage::CacheResidencyModel remains as the logical
  /// predictor it is cross-checked against.
  uint64_t resident_frames(uint32_t table_id) const {
    return table_id < per_table_frames_.size() ? per_table_frames_[table_id]
                                               : 0;
  }
  uint64_t resident_frames(const std::string& table) const {
    return resident_frames(names_.Find(table));
  }

  /// Pages currently held by `tier`: tier 0 is resident_frames(), tier 1
  /// the OS page-cache tier, tier 2 the SSD capacity tier.
  uint64_t tier_resident_frames(size_t tier) const;
  /// The per-table partition of tier_resident_frames(tier).
  uint64_t tier_resident_frames(size_t tier, uint32_t table_id) const;
  uint64_t tier_resident_frames(size_t tier, const std::string& table) const {
    return tier_resident_frames(tier, names_.Find(table));
  }

  EvictionKind eviction() const { return eviction_; }
  /// Capacity of the OS tier in pages (UINT64_MAX = unlimited legacy set).
  uint64_t os_cache_pages() const {
    return eviction_ == EvictionKind::kClock ? os_cache_pages_
                                             : os_tier_.capacity();
  }

  /// Name of the table the pool most recently served (FetchPage, TouchPage,
  /// or Prewarm); empty for a fresh or cleared pool. In shared-pool mode
  /// this is the table whose sweep last reshaped the cache.
  const std::string& last_table() const {
    static const std::string kNone;
    return last_table_id_ == dana::Interner::kInvalidId
               ? kNone
               : names_.Name(last_table_id_);
  }

  /// Monotone counter bumped whenever cached contents change in *any*
  /// tier — a page install, a Clear, or an OS/SSD-tier mutation
  /// (MarkOsCached, the Fetch-path OS admission). Two reads returning the
  /// same value bracket a window in which every tier held the same pages
  /// in the same replacement order — pure hits set bits that were already
  /// set — so a caller that swept the pool can recognise an undisturbed
  /// repeat and skip it (the executor's slice memoization).
  uint64_t version() const { return version_; }

  uint64_t num_frames() const { return frames_.size(); }
  uint32_t page_size() const { return page_size_; }
  const DiskModel& disk() const { return disk_; }

  /// Publishes this pool's counters and occupancy as gauges under
  /// `<prefix>.` (hits, misses, evictions, hit_rate, io_time_s,
  /// resident_frames) plus per-tier gauges under `<prefix>.tier<j>.*`
  /// (tier 2 only when the SSD tier is enabled); a null registry is a
  /// no-op.
  void PublishTo(obs::MetricRegistry* metrics,
                 const std::string& prefix) const;

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    uint32_t table_id = dana::Interner::kInvalidId;
    uint64_t page_no = 0;
    bool valid = false;
  };
  /// Page identity: interned table id + page number (shared with the
  /// lower tiers).
  using Key = PageKey;
  using KeyHash = PageKeyHash;

  /// Returns a frame to install into: the next never-filled frame while
  /// the pool is filling (no policy involved — matches the seed, whose
  /// clock hand always sat on the first invalid frame), else the policy's
  /// victim, evicted; under lru/promotional the victim demotes into the
  /// OS tier.
  size_t AllocFrame();

  /// Indexes frame `idx` as (table_id, page_no), copying the page image
  /// from `src` when given (FetchPage/Prewarm) and leaving the frame
  /// data-less for residency probes (TouchPage).
  void Install(size_t idx, uint32_t table_id, uint64_t page_no,
               const uint8_t* src);

  // Pool-tier policy dispatch: switch on eviction_ through concrete
  // (final) pointers — no virtual calls on the touch path.
  void PoolOnInsert(size_t idx);
  void PoolOnAccess(size_t idx);
  size_t PoolPickVictim();

  /// Demotes an evicted pool page into the OS tier, cascading that tier's
  /// victim into the SSD tier (lru/promotional only).
  void DemoteToOs(const Key& key);

  /// Grows/increments the legacy clock-mode per-table OS-set count.
  void BumpOsCount(uint32_t table_id);

  uint32_t page_size_;
  DiskModel disk_;
  EvictionKind eviction_ = EvictionKind::kClock;
  std::vector<Frame> frames_;
  std::unordered_map<Key, size_t, KeyHash> map_;
  /// Next never-filled frame; only consulted while resident < capacity.
  size_t fill_cursor_ = 0;
  // Pool-tier policy: exactly one is non-null, selected by eviction_.
  std::unique_ptr<ClockEvictionPolicy> pool_clock_;
  std::unique_ptr<LruEvictionPolicy> pool_lru_;
  std::unique_ptr<PromotionalEvictionPolicy> pool_promotional_;
  BufferPoolStats stats_;
  uint64_t resident_frames_ = 0;
  /// Interned table names; ids index per_table_frames_ and key the maps.
  dana::Interner names_;
  /// table id -> frames currently held; values partition resident_frames_.
  std::vector<uint64_t> per_table_frames_;
  uint32_t last_table_id_ = dana::Interner::kInvalidId;
  uint64_t version_ = 0;
  /// Clock mode only: the legacy admit-until-full OS page-cache set and
  /// its per-table partition (bit-compatible with the seed pools).
  std::unordered_set<Key, KeyHash> os_cached_;
  std::vector<uint64_t> os_per_table_;
  uint64_t os_cache_pages_ = UINT64_MAX;
  /// lru/promotional: the evicting OS and SSD tiers (exclusive of the
  /// pool; disabled tiers have capacity 0).
  PageTier os_tier_;
  PageTier ssd_tier_;
};

/// A set of identically-sized buffer pools, one per accelerator slot.
///
/// Concurrent slots used to alias a single pool, so one slot's fetches
/// polluted every other slot's hit/miss accounting. A group gives each slot
/// its own frames and OS-cache set (independent caching state) while every
/// pool shares one DiskModel — the slots contend for the same simulated
/// device, they just stop sharing cache residency.
///
/// Concurrency contract: the *group* is safe to grow concurrently —
/// Resize and the lazily-growing pool(i) serialize on an internal mutex,
/// and returned BufferPool pointers are stable (pools are heap-allocated
/// and never destroyed before the group). Each *pool* itself is
/// externally synchronized: in the threaded runtime, slot i's pool is
/// touched only by slot i's worker (or by the coordinator while that slot
/// is idle), which is the partition the scheduler guarantees. Callers
/// should still PrepareSlots/Resize up front so steady-state pool(i)
/// calls are pure reads.
class BufferPoolGroup {
 public:
  /// Sizing template applied to every pool in the group; `Resize` creates
  /// new pools from it on demand. `eviction` and the tier capacities have
  /// BufferPool's constructor semantics.
  BufferPoolGroup(uint64_t capacity_bytes_per_pool, uint32_t page_size,
                  DiskModel disk, uint64_t os_cache_bytes_per_pool = UINT64_MAX,
                  EvictionKind eviction = EvictionKind::kClock,
                  uint64_t ssd_cache_bytes_per_pool = 0);

  /// Grows (never shrinks below 1) the group to `n` pools; existing pools
  /// keep their cached state.
  void Resize(size_t n);

  size_t size() const {
    dana::MutexLock lock(grow_mu_);
    return pools_.size();
  }

  /// Pool of slot `i`; grows the group when `i` is past the end.
  BufferPool* pool(size_t i);
  const BufferPool* pool(size_t i) const {
    dana::MutexLock lock(grow_mu_);
    return pools_.at(i).get();
  }

  /// Aggregate hit/miss/eviction/io statistics across all pools.
  BufferPoolStats Rollup() const;

  /// Sum of every pool's resident_frames(); the per-pool counts partition
  /// this total (each bounded by its pool's num_frames()).
  uint64_t TotalResidentFrames() const;

  /// Clears every pool's cached state and statistics — the whole machine
  /// back to cold (sweeps reset shared slot pools this way between
  /// configurations).
  void ClearAll();

  /// Publishes the group's rollup under `<prefix>.` plus each slot's pool
  /// under `<prefix>.slot<i>.` (BufferPool::PublishTo, which adds the
  /// per-tier `<prefix>.slot<i>.tier<j>.*` gauges); a null registry is a
  /// no-op.
  void PublishTo(obs::MetricRegistry* metrics,
                 const std::string& prefix = "pool") const;

 private:
  void ResizeLocked(size_t n) REQUIRES(grow_mu_);
  BufferPoolStats RollupLocked() const REQUIRES(grow_mu_);
  uint64_t TotalResidentFramesLocked() const REQUIRES(grow_mu_);

  uint64_t capacity_bytes_;
  uint32_t page_size_;
  DiskModel disk_;
  uint64_t os_cache_bytes_;
  EvictionKind eviction_;
  uint64_t ssd_cache_bytes_;
  /// Guards the pools_ vector (growth + indexing), not the pools' state.
  mutable dana::Mutex grow_mu_;
  std::vector<std::unique_ptr<BufferPool>> pools_ GUARDED_BY(grow_mu_);
};

}  // namespace dana::storage
