#include "storage/catalog.h"

#include <algorithm>

namespace dana::storage {

Status Catalog::RegisterTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.find(name) != tables_.end()) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) +
                            "' not in catalog");
  }
  return it->second.get();
}

Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) +
                            "' not in catalog");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Catalog::PutUdfMetadata(std::string_view udf_name, std::string blob) {
  auto it = udf_metadata_.find(udf_name);
  if (it != udf_metadata_.end()) {
    it->second = std::move(blob);
    return;
  }
  udf_metadata_.emplace(std::string(udf_name), std::move(blob));
}

Result<std::string> Catalog::GetUdfMetadata(std::string_view udf_name) const {
  auto it = udf_metadata_.find(udf_name);
  if (it == udf_metadata_.end()) {
    return Status::NotFound("UDF '" + std::string(udf_name) +
                            "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::UdfNames() const {
  std::vector<std::string> names;
  names.reserve(udf_metadata_.size());
  for (const auto& [name, _] : udf_metadata_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dana::storage
