#include "storage/catalog.h"

namespace dana::storage {

Status Catalog::RegisterTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void Catalog::PutUdfMetadata(const std::string& udf_name, std::string blob) {
  udf_metadata_[udf_name] = std::move(blob);
}

Result<std::string> Catalog::GetUdfMetadata(
    const std::string& udf_name) const {
  auto it = udf_metadata_.find(udf_name);
  if (it == udf_metadata_.end()) {
    return Status::NotFound("UDF '" + udf_name + "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::UdfNames() const {
  std::vector<std::string> names;
  names.reserve(udf_metadata_.size());
  for (const auto& [name, _] : udf_metadata_) names.push_back(name);
  return names;
}

}  // namespace dana::storage
