#include "storage/eviction_policy.h"

namespace dana::storage {

const char* EvictionKindName(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kClock:
      return "clock";
    case EvictionKind::kLru:
      return "lru";
    case EvictionKind::kPromotional:
      return "promotional";
  }
  return "unknown";
}

dana::Result<EvictionKind> ParseEvictionKind(std::string_view name) {
  if (name == "clock") return EvictionKind::kClock;
  if (name == "lru") return EvictionKind::kLru;
  if (name == "promotional") return EvictionKind::kPromotional;
  return Status::InvalidArgument("unknown eviction policy '" +
                                 std::string(name) +
                                 "' (clock, lru, promotional)");
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionKind kind,
                                                   size_t capacity) {
  switch (kind) {
    case EvictionKind::kClock:
      return std::make_unique<ClockEvictionPolicy>(capacity);
    case EvictionKind::kLru:
      return std::make_unique<LruEvictionPolicy>(capacity);
    case EvictionKind::kPromotional:
      return std::make_unique<PromotionalEvictionPolicy>(capacity);
  }
  return nullptr;
}

PageTier::PageTier(EvictionKind kind, uint64_t capacity)
    : capacity_(capacity), kind_(kind) {
  if (capacity_ == 0) return;
  const size_t n = static_cast<size_t>(capacity_);
  switch (kind_) {
    case EvictionKind::kClock:
      clock_ = std::make_unique<ClockEvictionPolicy>(n);
      break;
    case EvictionKind::kLru:
      lru_ = std::make_unique<LruEvictionPolicy>(n);
      break;
    case EvictionKind::kPromotional:
      promotional_ = std::make_unique<PromotionalEvictionPolicy>(n);
      break;
  }
  slot_keys_.resize(n);
  free_slots_.reserve(n);
  // Stacked so the first pops hand out slots 0, 1, 2, ... in order.
  for (size_t i = n; i > 0; --i) free_slots_.push_back(i - 1);
}

void PageTier::PolicyOnInsert(size_t slot) {
  switch (kind_) {
    case EvictionKind::kClock:
      clock_->OnInsert(slot);
      break;
    case EvictionKind::kLru:
      lru_->OnInsert(slot);
      break;
    case EvictionKind::kPromotional:
      promotional_->OnInsert(slot);
      break;
  }
}

void PageTier::PolicyOnAccess(size_t slot) {
  switch (kind_) {
    case EvictionKind::kClock:
      clock_->OnAccess(slot);
      break;
    case EvictionKind::kLru:
      lru_->OnAccess(slot);
      break;
    case EvictionKind::kPromotional:
      promotional_->OnAccess(slot);
      break;
  }
}

size_t PageTier::PolicyPickVictim() {
  switch (kind_) {
    case EvictionKind::kClock:
      return clock_->PickVictim();
    case EvictionKind::kLru:
      return lru_->PickVictim();
    case EvictionKind::kPromotional:
      return promotional_->PickVictim();
  }
  return 0;
}

bool PageTier::Touch(const PageKey& key) {
  if (!enabled()) return false;
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  PolicyOnAccess(it->second);
  return true;
}

bool PageTier::Erase(const PageKey& key) {
  if (!enabled()) return false;
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  const size_t slot = it->second;
  map_.erase(it);
  if (key.table_id < per_table_.size()) --per_table_[key.table_id];
  free_slots_.push_back(slot);
  return true;
}

bool PageTier::Insert(const PageKey& key, PageKey* evicted) {
  if (!enabled()) return false;
  auto it = map_.find(key);
  if (it != map_.end()) {
    PolicyOnAccess(it->second);
    return false;
  }
  bool displaced = false;
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = PolicyPickVictim();
    const PageKey victim = slot_keys_[slot];
    map_.erase(victim);
    if (victim.table_id < per_table_.size()) --per_table_[victim.table_id];
    ++evictions_;
    if (evicted != nullptr) *evicted = victim;
    displaced = true;
  }
  slot_keys_[slot] = key;
  map_[key] = slot;
  if (key.table_id >= per_table_.size()) {
    per_table_.resize(key.table_id + 1, 0);
  }
  ++per_table_[key.table_id];
  PolicyOnInsert(slot);
  return displaced;
}

void PageTier::Clear() {
  if (!enabled()) return;
  map_.clear();
  per_table_.assign(per_table_.size(), 0);
  free_slots_.clear();
  for (size_t i = slot_keys_.size(); i > 0; --i) free_slots_.push_back(i - 1);
  switch (kind_) {
    case EvictionKind::kClock:
      clock_->Reset();
      break;
    case EvictionKind::kLru:
      lru_->Reset();
      break;
    case EvictionKind::kPromotional:
      promotional_->Reset();
      break;
  }
}

}  // namespace dana::storage
