#include "storage/buffer_pool.h"

#include <cstring>
#include <string>

namespace dana::storage {

BufferPool::BufferPool(uint64_t capacity_bytes, uint32_t page_size,
                       DiskModel disk, uint64_t os_cache_bytes,
                       EvictionKind eviction, uint64_t ssd_cache_bytes)
    : page_size_(page_size), disk_(disk), eviction_(eviction) {
  uint64_t n = capacity_bytes / page_size;
  if (n == 0) n = 1;
  frames_.resize(n);
  switch (eviction_) {
    case EvictionKind::kClock:
      pool_clock_ = std::make_unique<ClockEvictionPolicy>(n);
      break;
    case EvictionKind::kLru:
      pool_lru_ = std::make_unique<LruEvictionPolicy>(n);
      break;
    case EvictionKind::kPromotional:
      pool_promotional_ = std::make_unique<PromotionalEvictionPolicy>(n);
      break;
  }
  if (eviction_ == EvictionKind::kClock) {
    // Legacy OS set: UINT64_MAX = unlimited, 0 = disabled.
    if (os_cache_bytes == 0) {
      os_cache_pages_ = 0;
    } else if (os_cache_bytes != UINT64_MAX) {
      os_cache_pages_ = std::max<uint64_t>(1, os_cache_bytes / page_size);
    }
  } else {
    // Evicting tiers need a finite capacity; the legacy "unlimited"
    // default means no OS tier here.
    const uint64_t os_pages =
        (os_cache_bytes == UINT64_MAX || os_cache_bytes == 0)
            ? 0
            : std::max<uint64_t>(1, os_cache_bytes / page_size);
    os_tier_ = PageTier(eviction_, os_pages);
    const uint64_t ssd_pages =
        ssd_cache_bytes == 0
            ? 0
            : std::max<uint64_t>(1, ssd_cache_bytes / page_size);
    ssd_tier_ = PageTier(eviction_, ssd_pages);
  }
}

void BufferPool::PoolOnInsert(size_t idx) {
  switch (eviction_) {
    case EvictionKind::kClock:
      pool_clock_->OnInsert(idx);
      break;
    case EvictionKind::kLru:
      pool_lru_->OnInsert(idx);
      break;
    case EvictionKind::kPromotional:
      pool_promotional_->OnInsert(idx);
      break;
  }
}

void BufferPool::PoolOnAccess(size_t idx) {
  switch (eviction_) {
    case EvictionKind::kClock:
      pool_clock_->OnAccess(idx);
      break;
    case EvictionKind::kLru:
      pool_lru_->OnAccess(idx);
      break;
    case EvictionKind::kPromotional:
      pool_promotional_->OnAccess(idx);
      break;
  }
}

size_t BufferPool::PoolPickVictim() {
  switch (eviction_) {
    case EvictionKind::kClock:
      return pool_clock_->PickVictim();
    case EvictionKind::kLru:
      return pool_lru_->PickVictim();
    case EvictionKind::kPromotional:
      return pool_promotional_->PickVictim();
  }
  return 0;
}

void BufferPool::DemoteToOs(const Key& key) {
  if (!os_tier_.enabled()) return;
  PageKey displaced;
  if (os_tier_.Insert(key, &displaced)) {
    ++stats_.os_evictions;
    if (ssd_tier_.enabled()) {
      PageKey dropped;
      if (ssd_tier_.Insert(displaced, &dropped)) ++stats_.ssd_evictions;
    }
  }
}

void BufferPool::BumpOsCount(uint32_t table_id) {
  if (table_id >= os_per_table_.size()) os_per_table_.resize(table_id + 1, 0);
  ++os_per_table_[table_id];
}

Result<const uint8_t*> BufferPool::FetchPage(const Table& table,
                                             uint64_t page_no) {
  if (table.layout().page_size != page_size_) {
    return Status::InvalidArgument(
        "table page size " + std::to_string(table.layout().page_size) +
        " != pool page size " + std::to_string(page_size_));
  }
  if (page_no >= table.num_pages()) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " past end of table " + table.name());
  }

  const uint32_t tid = InternTable(table.name());
  const Key key{tid, page_no};
  last_table_id_ = tid;
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    PoolOnAccess(it->second);
    // A residency probe (TouchPage) may have installed this page without
    // an image; a data-consuming fetch materializes it now, for free (the
    // page is resident — only the simulator's host copy was elided).
    if (!frame.data) {
      frame.data = std::make_unique<uint8_t[]>(page_size_);
      std::memcpy(frame.data.get(), table.PageData(page_no), page_size_);
    }
    return static_cast<const uint8_t*>(frame.data.get());
  }

  ++stats_.misses;
  // Sequential-scan misses amortize request latency over read-ahead chunks;
  // SeqReadTime of one page accounts for its bandwidth share plus its share
  // of a read-ahead request. Re-reads of OS-cache-resident pages skip the
  // device and pay a kernel memory copy instead; SSD-tier pages pay the
  // capacity device's bandwidth.
  if (eviction_ == EvictionKind::kClock) {
    if (os_cached_.find(key) != os_cached_.end()) {
      ++stats_.os_hits;
      stats_.io_time += dana::SimTime::Seconds(
          static_cast<double>(page_size_) / disk_.os_cache_bw);
    } else {
      ++stats_.os_misses;
      stats_.io_time +=
          dana::SimTime::Seconds(static_cast<double>(page_size_) /
                                 disk_.seq_read_bw) +
          disk_.request_latency /
              static_cast<double>(disk_.readahead_pages);
      if (os_cached_.size() < os_cache_pages_) {
        os_cached_.insert(key);
        BumpOsCount(tid);
        ++version_;
      }
    }
  } else if (os_tier_.Erase(key)) {
    // Exclusive hierarchy: the OS-tier hit promotes into the pool.
    ++stats_.os_hits;
    stats_.io_time += dana::SimTime::Seconds(
        static_cast<double>(page_size_) / disk_.os_cache_bw);
  } else {
    if (os_tier_.enabled()) ++stats_.os_misses;
    if (ssd_tier_.Erase(key)) {
      ++stats_.ssd_hits;
      stats_.io_time += dana::SimTime::Seconds(
          static_cast<double>(page_size_) / disk_.ssd_read_bw);
    } else {
      stats_.io_time +=
          dana::SimTime::Seconds(static_cast<double>(page_size_) /
                                 disk_.seq_read_bw) +
          disk_.request_latency /
              static_cast<double>(disk_.readahead_pages);
    }
  }

  const size_t idx = AllocFrame();
  Install(idx, tid, page_no, table.PageData(page_no));
  return static_cast<const uint8_t*>(frames_[idx].data.get());
}

bool BufferPool::TouchPage(uint32_t table_id, uint64_t page_no) {
  const Key key{table_id, page_no};
  last_table_id_ = table_id;
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    PoolOnAccess(it->second);
    return true;
  }
  // A data-less install: occupancy and eviction behave exactly like
  // FetchPage, but no page image is copied and no I/O time is charged —
  // the shared slot pools are residency ground truth, not data servers.
  ++stats_.misses;
  if (eviction_ != EvictionKind::kClock) {
    if (os_tier_.Erase(key)) {
      ++stats_.os_hits;
    } else {
      if (os_tier_.enabled()) ++stats_.os_misses;
      if (ssd_tier_.Erase(key)) ++stats_.ssd_hits;
    }
  }
  const size_t idx = AllocFrame();
  Install(idx, table_id, page_no, nullptr);
  return false;
}

void BufferPool::ScanTable(uint32_t table_id, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) TouchPage(table_id, p);
}

double BufferPool::ResidentShare(uint32_t table_id, uint64_t pages) const {
  if (pages == 0) return 1.0;
  const double share = static_cast<double>(resident_frames(table_id)) /
                       static_cast<double>(pages);
  return share > 1.0 ? 1.0 : share;
}

uint64_t BufferPool::tier_resident_frames(size_t tier) const {
  switch (tier) {
    case kPoolTier:
      return resident_frames_;
    case kOsTier:
      return eviction_ == EvictionKind::kClock ? os_cached_.size()
                                               : os_tier_.resident();
    case kSsdTier:
      return ssd_tier_.resident();
  }
  return 0;
}

uint64_t BufferPool::tier_resident_frames(size_t tier,
                                          uint32_t table_id) const {
  switch (tier) {
    case kPoolTier:
      return resident_frames(table_id);
    case kOsTier:
      if (eviction_ == EvictionKind::kClock) {
        return table_id < os_per_table_.size() ? os_per_table_[table_id] : 0;
      }
      return os_tier_.resident(table_id);
    case kSsdTier:
      return ssd_tier_.resident(table_id);
  }
  return 0;
}

double BufferPool::TierResidentShare(size_t tier, uint32_t table_id,
                                     uint64_t pages) const {
  if (pages == 0) return tier == kPoolTier ? 1.0 : 0.0;
  const double share =
      static_cast<double>(tier_resident_frames(tier, table_id)) /
      static_cast<double>(pages);
  return share > 1.0 ? 1.0 : share;
}

size_t BufferPool::AllocFrame() {
  // During fill, frames are handed out in index order with no policy
  // involvement. This is the seed clock behaviour bit for bit: evictions
  // immediately reinstall, so occupancy is monotone between Clears and the
  // invalid frames form a contiguous tail the hand always sat at; after
  // the exact fill the seed hand wrapped to 0, where the policy's starts.
  if (resident_frames_ < frames_.size()) return fill_cursor_++;
  const size_t idx = PoolPickVictim();
  Frame& f = frames_[idx];
  const Key victim{f.table_id, f.page_no};
  map_.erase(victim);
  f.valid = false;
  --resident_frames_;
  --per_table_frames_[f.table_id];
  ++stats_.evictions;
  if (eviction_ != EvictionKind::kClock) DemoteToOs(victim);
  return idx;
}

void BufferPool::Install(size_t idx, uint32_t table_id, uint64_t page_no,
                         const uint8_t* src) {
  Frame& f = frames_[idx];
  if (!f.valid) ++resident_frames_;
  if (src != nullptr) {
    if (!f.data) f.data = std::make_unique<uint8_t[]>(page_size_);
    std::memcpy(f.data.get(), src, page_size_);
  } else {
    f.data.reset();
  }
  f.table_id = table_id;
  f.page_no = page_no;
  f.valid = true;
  PoolOnInsert(idx);
  if (table_id >= per_table_frames_.size()) {
    per_table_frames_.resize(table_id + 1, 0);
  }
  ++per_table_frames_[table_id];
  map_[Key{table_id, page_no}] = idx;
  ++version_;
}

void BufferPool::Prewarm(const Table& table, double fraction) {
  fraction = std::min(std::max(fraction, 0.0), 1.0);
  const uint64_t want = static_cast<uint64_t>(
      fraction * static_cast<double>(table.num_pages()) + 0.5);
  const uint64_t n = std::min<uint64_t>(want, frames_.size());
  const uint32_t tid = InternTable(table.name());
  last_table_id_ = tid;
  for (uint64_t p = 0; p < n; ++p) {
    if (map_.find(Key{tid, p}) != map_.end()) continue;
    const size_t idx = AllocFrame();
    Install(idx, tid, p, table.PageData(p));
  }
  MarkOsCached(table);
}

void BufferPool::MarkOsCached(const Table& table) {
  const uint32_t tid = InternTable(table.name());
  bool changed = false;
  if (eviction_ == EvictionKind::kClock) {
    for (uint64_t p = 0; p < table.num_pages(); ++p) {
      if (os_cached_.size() >= os_cache_pages_) break;
      if (os_cached_.insert(Key{tid, p}).second) {
        BumpOsCount(tid);
        changed = true;
      }
    }
  } else if (os_tier_.enabled()) {
    for (uint64_t p = 0; p < table.num_pages(); ++p) {
      const Key key{tid, p};
      // Exclusive tiers: pages the pool already holds stay out of the OS
      // tier; the rest stream in, displacing victims down the cascade.
      if (map_.find(key) != map_.end()) continue;
      PageKey displaced;
      if (os_tier_.Insert(key, &displaced)) {
        ++stats_.os_evictions;
        if (ssd_tier_.enabled()) {
          PageKey dropped;
          if (ssd_tier_.Insert(displaced, &dropped)) ++stats_.ssd_evictions;
        }
      }
      changed = true;
    }
  }
  // OS-tier contents are pricing state: memoized sweeps must not survive
  // a tier reshape they did not see.
  if (changed) ++version_;
}

double BufferPool::ResidentFraction(const Table& table) const {
  if (table.num_pages() == 0) return 1.0;
  const uint32_t tid = names_.Find(table.name());
  if (tid == dana::Interner::kInvalidId) return 0.0;
  uint64_t resident = 0;
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    if (map_.find(Key{tid, p}) != map_.end()) ++resident;
  }
  return static_cast<double>(resident) /
         static_cast<double>(table.num_pages());
}

void BufferPool::Clear() {
  for (auto& f : frames_) f.valid = false;
  map_.clear();
  os_cached_.clear();
  os_per_table_.assign(os_per_table_.size(), 0);
  os_tier_.Clear();
  ssd_tier_.Clear();
  fill_cursor_ = 0;
  switch (eviction_) {
    case EvictionKind::kClock:
      pool_clock_->Reset();
      break;
    case EvictionKind::kLru:
      pool_lru_->Reset();
      break;
    case EvictionKind::kPromotional:
      pool_promotional_->Reset();
      break;
  }
  resident_frames_ = 0;
  // Ids outlive the pages they name: only the per-id counts reset.
  per_table_frames_.assign(per_table_frames_.size(), 0);
  last_table_id_ = dana::Interner::kInvalidId;
  ++version_;
}

BufferPoolGroup::BufferPoolGroup(uint64_t capacity_bytes_per_pool,
                                 uint32_t page_size, DiskModel disk,
                                 uint64_t os_cache_bytes_per_pool,
                                 EvictionKind eviction,
                                 uint64_t ssd_cache_bytes_per_pool)
    : capacity_bytes_(capacity_bytes_per_pool),
      page_size_(page_size),
      disk_(disk),
      os_cache_bytes_(os_cache_bytes_per_pool),
      eviction_(eviction),
      ssd_cache_bytes_(ssd_cache_bytes_per_pool) {
  Resize(1);
}

void BufferPoolGroup::Resize(size_t n) {
  dana::MutexLock lock(grow_mu_);
  ResizeLocked(n);
}

void BufferPoolGroup::ResizeLocked(size_t n) {
  if (n == 0) n = 1;
  while (pools_.size() < n) {
    pools_.push_back(std::make_unique<BufferPool>(capacity_bytes_, page_size_,
                                                  disk_, os_cache_bytes_,
                                                  eviction_,
                                                  ssd_cache_bytes_));
  }
}

BufferPool* BufferPoolGroup::pool(size_t i) {
  dana::MutexLock lock(grow_mu_);
  if (i >= pools_.size()) ResizeLocked(i + 1);
  return pools_[i].get();
}

// The aggregate walks below take grow_mu_ too: they only guard the pools_
// vector against a concurrent lazily-growing pool(i) — the pools' own
// state stays externally synchronized per the class contract. (The
// annotation pass surfaced these as unlocked iterations.)

BufferPoolStats BufferPoolGroup::Rollup() const {
  dana::MutexLock lock(grow_mu_);
  return RollupLocked();
}

BufferPoolStats BufferPoolGroup::RollupLocked() const {
  BufferPoolStats total;
  for (const auto& p : pools_) {
    const BufferPoolStats& s = p->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.os_hits += s.os_hits;
    total.os_misses += s.os_misses;
    total.os_evictions += s.os_evictions;
    total.ssd_hits += s.ssd_hits;
    total.ssd_evictions += s.ssd_evictions;
    total.io_time += s.io_time;
  }
  return total;
}

uint64_t BufferPoolGroup::TotalResidentFrames() const {
  dana::MutexLock lock(grow_mu_);
  return TotalResidentFramesLocked();
}

uint64_t BufferPoolGroup::TotalResidentFramesLocked() const {
  uint64_t total = 0;
  for (const auto& p : pools_) total += p->resident_frames();
  return total;
}

void BufferPoolGroup::ClearAll() {
  dana::MutexLock lock(grow_mu_);
  for (const auto& p : pools_) {
    p->Clear();
    p->ResetStats();
  }
}

void BufferPool::PublishTo(obs::MetricRegistry* metrics,
                           const std::string& prefix) const {
  if (metrics == nullptr) return;
  obs::SetGauge(metrics, prefix + ".hits", static_cast<double>(stats_.hits));
  obs::SetGauge(metrics, prefix + ".misses",
                static_cast<double>(stats_.misses));
  obs::SetGauge(metrics, prefix + ".evictions",
                static_cast<double>(stats_.evictions));
  obs::SetGauge(metrics, prefix + ".hit_rate", stats_.HitRate());
  obs::SetGauge(metrics, prefix + ".io_time_s", stats_.io_time.seconds());
  obs::SetGauge(metrics, prefix + ".resident_frames",
                static_cast<double>(resident_frames_));
  // Per-tier view: tier0 is the pool itself, tier1 the OS page-cache
  // tier, tier2 the optional SSD capacity tier (published only when
  // enabled, so a given configuration always emits the same gauge set).
  obs::SetGauge(metrics, prefix + ".tier0.hits",
                static_cast<double>(stats_.hits));
  obs::SetGauge(metrics, prefix + ".tier0.evictions",
                static_cast<double>(stats_.evictions));
  obs::SetGauge(metrics, prefix + ".tier0.resident_frames",
                static_cast<double>(resident_frames_));
  obs::SetGauge(metrics, prefix + ".tier1.hits",
                static_cast<double>(stats_.os_hits));
  obs::SetGauge(metrics, prefix + ".tier1.misses",
                static_cast<double>(stats_.os_misses));
  obs::SetGauge(metrics, prefix + ".tier1.evictions",
                static_cast<double>(stats_.os_evictions));
  obs::SetGauge(metrics, prefix + ".tier1.resident_frames",
                static_cast<double>(tier_resident_frames(kOsTier)));
  if (ssd_tier_.enabled()) {
    obs::SetGauge(metrics, prefix + ".tier2.hits",
                  static_cast<double>(stats_.ssd_hits));
    obs::SetGauge(metrics, prefix + ".tier2.evictions",
                  static_cast<double>(stats_.ssd_evictions));
    obs::SetGauge(metrics, prefix + ".tier2.resident_frames",
                  static_cast<double>(ssd_tier_.resident()));
  }
}

void BufferPoolGroup::PublishTo(obs::MetricRegistry* metrics,
                                const std::string& prefix) const {
  if (metrics == nullptr) return;
  dana::MutexLock lock(grow_mu_);
  const BufferPoolStats rollup = RollupLocked();
  obs::SetGauge(metrics, prefix + ".hits", static_cast<double>(rollup.hits));
  obs::SetGauge(metrics, prefix + ".misses",
                static_cast<double>(rollup.misses));
  obs::SetGauge(metrics, prefix + ".evictions",
                static_cast<double>(rollup.evictions));
  obs::SetGauge(metrics, prefix + ".hit_rate", rollup.HitRate());
  obs::SetGauge(metrics, prefix + ".io_time_s", rollup.io_time.seconds());
  obs::SetGauge(metrics, prefix + ".resident_frames",
                static_cast<double>(TotalResidentFramesLocked()));
  for (size_t i = 0; i < pools_.size(); ++i) {
    pools_[i]->PublishTo(metrics,
                         prefix + ".slot" + std::to_string(i));
  }
}

}  // namespace dana::storage
