#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/intern.h"

namespace dana::storage {

/// Logical per-slot cache-residency ledger over the accelerator slots.
///
/// Historically the pricing source for placement: per-workload pools lived
/// inside per-workload instances (every table generated at its own scale),
/// so this model kept the cross-workload bookkeeping no physical pool
/// could. The executor now owns one scale-normalized shared BufferPool per
/// slot and prices from its measured per-table frames; this ledger remains
/// as the cross-checked *predictor* (and the legacy pricing mode) — it
/// decays co-located tables proportionally, where the physical clock sweep
/// evicts in hand order, and the sched_pool divergence suite pins where
/// the two part ways. It predicts, per slot, the
/// fraction of each table's working set still resident after any sequence
/// of runs. A run of table T on slot s leaves T resident (up to what the
/// pool can hold); the scan installs frames only for its misses (an
/// all-hit warm repeat evicts nothing), free pool space absorbs installs
/// first, and only the remainder evicts other tables' frames,
/// proportionally — the behaviour a loyalty-free clock sweep over a
/// shared pool exhibits, normalized to working-set fractions.
///
/// Units: a table's residency is a fraction of *its* working set in [0, 1];
/// its pool share is that fraction times `size_ratio` (table pages / pool
/// frames). The ledger maintains the invariant that each slot's pool shares
/// sum to at most 1 (a pool cannot hold more than itself).
///
/// Table names are interned into dense ids; each slot's entries live in a
/// small vector kept sorted by table *name* — the iteration (and float
/// summation) order of the `std::map<std::string, Entry>` this replaces —
/// so OnRun/PoolShareTotal reproduce the historical arithmetic bit for bit
/// while per-run lookups compare integers, not strings.
class CacheResidencyModel {
 public:
  /// Fraction of `table`'s working set resident on `slot`, in [0, 1].
  /// 0 (cold) for slots or tables never seen.
  double ResidentFraction(uint32_t slot, const std::string& table) const;

  /// Fraction of `table`'s working set the ledger predicts the slot's OS
  /// page-cache tier to hold (exclusive of the pool share above). Always 0
  /// unless runs were recorded with a nonzero `os_ratio`.
  double OsResidentFraction(uint32_t slot, const std::string& table) const;

  /// Records a full-scan run of `table` on `slot`. `size_ratio` is the
  /// table's page count over the slot pool's frame count: ratios <= 1 leave
  /// the table fully resident, larger tables end with `1 / size_ratio` of
  /// their pages resident. Only the scan's installs (its miss share, less
  /// whatever free pool space absorbs) evict other tables' frames.
  /// Epoch-sliced runs call this once per slice: every epoch is a full
  /// sweep, and the update is idempotent for an undisturbed repeat, so a
  /// preempted table stays resident until an intervening query's sweep
  /// evicts it.
  ///
  /// `os_ratio` is the OS tier's capacity over the pool's frame count
  /// (0 = no tier, the legacy arithmetic bit for bit). With a tier, the
  /// ledger predicts the exclusive demotion cascade coarsely: pool share a
  /// co-located table loses to this run's installs demotes into its OS
  /// share, the scanned table's own overflow (the window the pool cannot
  /// hold) streams into the tier, and the tier's total share is normalized
  /// to its capacity — the proportional analogue of the physical tiers'
  /// victim rotation.
  void OnRun(uint32_t slot, const std::string& table, double size_ratio,
             double os_ratio = 0.0);

  /// Residency a run of size ratio `size_ratio` leaves behind: the whole
  /// table when it fits the pool, its trailing pool-sized window otherwise.
  /// The single definition shared by OnRun and by executors that need to
  /// recognise an undisturbed slot when resuming preempted work.
  static double PostRunResidency(double size_ratio);

  /// Drops all residency state (fresh, fully cold slots). Interned table
  /// ids survive (they name tables, not state).
  void Reset();

  /// Tables with nonzero residency on `slot`, for reporting (sorted by
  /// name, as the historical map iteration returned them).
  std::vector<std::string> ResidentTables(uint32_t slot) const;

  /// Interned ids of the tables with nonzero residency on `slot`, in the
  /// same name-sorted order as ResidentTables — the allocation-free form
  /// for callers that only need identities.
  std::vector<uint32_t> ResidentTableIds(uint32_t slot) const;

  /// Sum of pool shares (residency * size ratio) on `slot`; <= 1 + epsilon
  /// by construction. Exposed so tests can assert the invariant.
  double PoolShareTotal(uint32_t slot) const;

 private:
  struct Entry {
    uint32_t table_id = 0;
    double resident = 0.0;    ///< fraction of the table's working set
    double size_ratio = 1.0;  ///< table pages / pool frames
    /// Predicted OS-tier share of the working set (exclusive of
    /// `resident`); nonzero only when runs carry an os_ratio.
    double os_resident = 0.0;
  };
  /// Entries of one slot, sorted by interned table *name*.
  using SlotEntries = std::vector<Entry>;

  /// Iterator to `table_id`'s position in `entries` (match or insertion
  /// point), by name order.
  SlotEntries::iterator LowerBound(SlotEntries& entries,
                                   uint32_t table_id) const;

  dana::Interner names_;
  /// slot -> name-sorted residency entries.
  std::vector<SlotEntries> slots_;
};

}  // namespace dana::storage
