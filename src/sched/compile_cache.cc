#include "sched/compile_cache.h"

namespace dana::sched {

dana::Result<const compiler::CompiledUdf*> CompileCache::GetOrCompile(
    const std::string& key, const Builder& builder) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return static_cast<const compiler::CompiledUdf*>(it->second.get());
  }
  ++misses_;
  DANA_ASSIGN_OR_RETURN(compiler::CompiledUdf udf, builder());
  auto owned = std::make_unique<compiler::CompiledUdf>(std::move(udf));
  const compiler::CompiledUdf* ptr = owned.get();
  cache_[key] = std::move(owned);
  return ptr;
}

const compiler::CompiledUdf* CompileCache::Find(const std::string& key) const {
  auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : it->second.get();
}

}  // namespace dana::sched
