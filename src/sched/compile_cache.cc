#include "sched/compile_cache.h"

namespace dana::sched {

dana::Result<const compiler::CompiledUdf*> CompileCache::GetOrCompile(
    const std::string& key, const Builder& builder) {
  bool filled_here = false;
  dana::Result<const compiler::CompiledUdf*> result =
      cache_.GetOrFill(key, builder, &filled_here);
  if (filled_here) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.ok()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

const compiler::CompiledUdf* CompileCache::Find(const std::string& key) const {
  return cache_.Find(key);
}

}  // namespace dana::sched
