#include "sched/executor.h"

#include "ml/workloads.h"
#include "runtime/cost_model.h"

namespace dana::sched {

namespace {

runtime::DanaSystem::Options MakeSystemOptions(uint32_t epoch_cap) {
  runtime::DanaSystem::Options o;
  o.fpga = runtime::DefaultFpga();
  o.functional_epoch_cap = epoch_cap;
  return o;
}

}  // namespace

DanaQueryExecutor::DanaQueryExecutor() : DanaQueryExecutor(Options{}) {}

DanaQueryExecutor::DanaQueryExecutor(Options options)
    : options_(options),
      system_(cost_model_, MakeSystemOptions(options.functional_epoch_cap)) {}

Result<runtime::WorkloadInstance*> DanaQueryExecutor::Instance(
    const std::string& id) {
  auto it = instances_.find(id);
  if (it != instances_.end()) return it->second.get();
  const ml::Workload* w = ml::FindWorkload(id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + id + "'");
  }
  DANA_ASSIGN_OR_RETURN(auto instance, runtime::WorkloadInstance::Create(*w));
  auto* ptr = instance.get();
  instances_[id] = std::move(instance);
  return ptr;
}

Result<BatchCost> DanaQueryExecutor::MeasureEndpoint(
    const QueryBatch& batch, runtime::CacheState cache) {
  const auto key = std::make_tuple(batch.workload_id, batch.size(),
                                   cache == runtime::CacheState::kWarm);
  auto measured = measured_.find(key);
  if (measured == measured_.end()) {
    DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance,
                          Instance(batch.workload_id));
    DANA_ASSIGN_OR_RETURN(
        const compiler::CompiledUdf* udf,
        compile_cache_.GetOrCompile(
            batch.workload_id, [&] { return system_.Compile(*instance); }));
    // Measure the batched pass once on this slot's execution context (its
    // private pool, created lazily by the instance's pool group); identical
    // batches on other slots prepare their pools to the same cache state
    // and therefore take identical time.
    DANA_ASSIGN_OR_RETURN(
        runtime::SystemResult result,
        system_.RunCompiled(*udf, instance, cache, batch.size(), batch.slot));
    BatchCost m;
    m.compile = options_.compile_latency;
    m.service = result.total;
    m.shared = result.shared_time;
    m.per_query = result.per_query_time;
    measured = measured_.emplace(key, m).first;
  }
  return measured->second;
}

Result<BatchCost> DanaQueryExecutor::Dispatch(const QueryBatch& batch) {
  if (batch.query_ids.empty()) {
    return Status::InvalidArgument("empty batch for workload '" +
                                   batch.workload_id + "'");
  }
  if (!options_.model_residency) {
    // Legacy fixed-cache regime: every run is prepared to options_.cache
    // and slot history does not exist.
    DANA_ASSIGN_OR_RETURN(BatchCost cost, MeasureEndpoint(batch,
                                                          options_.cache));
    cost.warm_fraction =
        options_.cache == runtime::CacheState::kWarm ? 1.0 : 0.0;
    return cost;
  }

  // Residency regime: charge this slot's actual cache state. The two
  // measured endpoints bound the run — a fraction f of the table still
  // resident saves f of the cold run's extra (I/O-side) time, so the
  // charged cost interpolates linearly between them.
  const double warm =
      residency_.ResidentFraction(batch.slot, batch.workload_id);
  BatchCost cost;
  if (warm >= 1.0) {
    DANA_ASSIGN_OR_RETURN(cost,
                          MeasureEndpoint(batch, runtime::CacheState::kWarm));
  } else if (warm <= 0.0) {
    DANA_ASSIGN_OR_RETURN(cost,
                          MeasureEndpoint(batch, runtime::CacheState::kCold));
  } else {
    DANA_ASSIGN_OR_RETURN(BatchCost cold,
                          MeasureEndpoint(batch, runtime::CacheState::kCold));
    DANA_ASSIGN_OR_RETURN(BatchCost hot,
                          MeasureEndpoint(batch, runtime::CacheState::kWarm));
    const double miss = 1.0 - warm;
    cost.compile = hot.compile;
    cost.service = hot.service + (cold.service - hot.service) * miss;
    cost.shared = hot.shared + (cold.shared - hot.shared) * miss;
    cost.per_query = hot.per_query + (cold.per_query - hot.per_query) * miss;
  }
  cost.warm_fraction = warm;

  // The run itself reshapes the slot's cache: the scanned table ends as
  // resident as the pool allows, its co-located tables decay.
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance,
                        Instance(batch.workload_id));
  residency_.OnRun(batch.slot, batch.workload_id, instance->PoolSizeRatio());
  return cost;
}

double DanaQueryExecutor::WarmFraction(const std::string& workload_id,
                                       uint32_t slot) {
  if (!options_.model_residency) {
    return options_.cache == runtime::CacheState::kWarm ? 1.0 : 0.0;
  }
  return residency_.ResidentFraction(slot, workload_id);
}

Result<dana::SimTime> DanaQueryExecutor::Estimate(
    const std::string& workload_id) {
  const ml::Workload* w = ml::FindWorkload(workload_id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + workload_id + "'");
  }
  return runtime::EstimateDanaRuntime(*w, cost_model_,
                                      system_.options().fpga.axi_bytes_per_sec);
}

}  // namespace dana::sched
