#include "sched/executor.h"

#include "ml/workloads.h"
#include "runtime/cost_model.h"

namespace dana::sched {

namespace {

runtime::DanaSystem::Options MakeSystemOptions(uint32_t epoch_cap) {
  runtime::DanaSystem::Options o;
  o.fpga = runtime::DefaultFpga();
  o.functional_epoch_cap = epoch_cap;
  return o;
}

}  // namespace

DanaQueryExecutor::DanaQueryExecutor() : DanaQueryExecutor(Options{}) {}

DanaQueryExecutor::DanaQueryExecutor(Options options)
    : options_(options),
      system_(cost_model_, MakeSystemOptions(options.functional_epoch_cap)) {}

Result<runtime::WorkloadInstance*> DanaQueryExecutor::Instance(
    const std::string& id) {
  auto it = instances_.find(id);
  if (it != instances_.end()) return it->second.get();
  const ml::Workload* w = ml::FindWorkload(id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + id + "'");
  }
  DANA_ASSIGN_OR_RETURN(auto instance, runtime::WorkloadInstance::Create(*w));
  auto* ptr = instance.get();
  instances_[id] = std::move(instance);
  return ptr;
}

Result<BatchCost> DanaQueryExecutor::Dispatch(const QueryBatch& batch) {
  if (batch.query_ids.empty()) {
    return Status::InvalidArgument("empty batch for workload '" +
                                   batch.workload_id + "'");
  }
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance,
                        Instance(batch.workload_id));
  DANA_ASSIGN_OR_RETURN(
      const compiler::CompiledUdf* udf,
      compile_cache_.GetOrCompile(
          batch.workload_id, [&] { return system_.Compile(*instance); }));

  BatchCost cost;
  cost.compile = options_.compile_latency;
  const auto key = std::make_pair(batch.workload_id, batch.size());
  auto measured = measured_.find(key);
  if (measured == measured_.end()) {
    // Measure the batched pass once on this slot's execution context (its
    // private pool, created lazily by the instance's pool group); identical
    // batches on other slots prepare their pools to the same cache state
    // and therefore take identical time.
    DANA_ASSIGN_OR_RETURN(
        runtime::SystemResult result,
        system_.RunCompiled(*udf, instance, options_.cache, batch.size(),
                            batch.slot));
    BatchCost m;
    m.compile = options_.compile_latency;
    m.service = result.total;
    m.shared = result.shared_time;
    m.per_query = result.per_query_time;
    measured = measured_.emplace(key, m).first;
  }
  cost.service = measured->second.service;
  cost.shared = measured->second.shared;
  cost.per_query = measured->second.per_query;
  return cost;
}

Result<dana::SimTime> DanaQueryExecutor::Estimate(
    const std::string& workload_id) {
  const ml::Workload* w = ml::FindWorkload(workload_id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + workload_id + "'");
  }
  return runtime::EstimateDanaRuntime(*w, cost_model_,
                                      system_.options().fpga.axi_bytes_per_sec);
}

}  // namespace dana::sched
