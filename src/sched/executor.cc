#include "sched/executor.h"

#include <algorithm>

#include "ml/workloads.h"
#include "runtime/cost_model.h"

namespace dana::sched {

namespace {

runtime::DanaSystem::Options MakeSystemOptions(uint32_t epoch_cap) {
  runtime::DanaSystem::Options o;
  o.fpga = runtime::DefaultFpga();
  o.functional_epoch_cap = epoch_cap;
  return o;
}

/// The default execution handle wrapping an executor that only knows whole
/// runs: the entire batch is one indivisible slice, so there is no interior
/// epoch boundary to preempt at.
class SingleSliceExecution : public BatchExecution {
 public:
  SingleSliceExecution(QueryBatch batch, BatchCost cost)
      : BatchExecution(std::move(batch)), cost_(cost) {}

  uint32_t total_epochs() const override { return 1; }
  uint32_t epochs_run() const override { return done_ ? 1 : 0; }
  dana::SimTime compile_cost() const override { return cost_.compile; }
  double warm_fraction() const override { return cost_.warm_fraction; }
  bool residency_modeled() const override { return cost_.residency_modeled; }
  double os_warm_fraction() const override { return cost_.os_warm_fraction; }

  dana::Result<SliceCost> NextSlice(uint32_t max_epochs) override {
    (void)max_epochs;
    if (done_) {
      return Status::FailedPrecondition("execution already finished");
    }
    done_ = true;
    SliceCost s;
    s.service = cost_.service;
    s.shared = cost_.shared;
    s.per_query = cost_.per_query;
    s.epochs = 1;
    s.finished = true;
    return s;
  }

  dana::Result<dana::SimTime> PeekService(uint32_t epochs) const override {
    (void)epochs;
    return done_ ? dana::SimTime::Zero() : cost_.service;
  }

  dana::Status Checkpoint() override {
    return Status::Unimplemented(
        "single-slice executions have no interior epoch boundary");
  }

  dana::Status Resume(uint32_t slot) override {
    batch_.slot = slot;
    return Status::OK();
  }

 private:
  BatchCost cost_;
  bool done_ = false;
};

}  // namespace

Result<BatchCost> QueryExecutor::Dispatch(const QueryBatch& batch) {
  // Thin run-to-completion wrapper over the execution-handle ABI: open the
  // run and drain it in one slice.
  if (resolving_default_) {
    return Status::Unimplemented(
        "executor overrides neither Dispatch nor Begin");
  }
  resolving_default_ = true;
  auto begun = Begin(batch);
  resolving_default_ = false;
  if (!begun.ok()) return begun.status();
  std::unique_ptr<BatchExecution> exec = std::move(begun).ValueOrDie();
  DANA_ASSIGN_OR_RETURN(SliceCost slice, exec->NextSlice(0));
  BatchCost cost;
  cost.service = slice.service;
  cost.shared = slice.shared;
  cost.per_query = slice.per_query;
  cost.compile = exec->compile_cost();
  cost.warm_fraction = exec->warm_fraction();
  cost.residency_modeled = exec->residency_modeled();
  cost.os_warm_fraction = exec->os_warm_fraction();
  return cost;
}

Result<std::unique_ptr<BatchExecution>> QueryExecutor::Begin(
    const QueryBatch& batch) {
  if (resolving_default_) {
    return Status::Unimplemented(
        "executor overrides neither Dispatch nor Begin");
  }
  resolving_default_ = true;
  auto dispatched = Dispatch(batch);
  resolving_default_ = false;
  if (!dispatched.ok()) return dispatched.status();
  return std::unique_ptr<BatchExecution>(
      new SingleSliceExecution(batch, *dispatched));
}

// ---------------------------------------------------------------------------
// DanaBatchExecution
// ---------------------------------------------------------------------------

/// Epoch-sliced resumable execution over the measured epoch profiles. All
/// slice costs derive from one cumulative cost curve per segment
/// (Cum(e) = overheads + first + steady * (e - 1)), so slices telescope:
/// any split reproduces the unsegmented service up to float round-off, and
/// an uninterrupted Begin + NextSlice(0) equals the legacy Dispatch charge
/// exactly. A Resume onto a slot whose residency differs from what the run
/// left re-bases the remaining epochs as a fresh segment at that warmth —
/// the first resumed epoch re-pays the evicted share of the transient.
class DanaBatchExecution : public BatchExecution {
 public:
  DanaBatchExecution(DanaQueryExecutor* owner, QueryBatch batch,
                     DanaQueryExecutor::EpochProfile profile,
                     double warm_fraction, double os_warm_fraction,
                     bool modeled, double size_ratio, uint64_t norm_pages)
      : BatchExecution(std::move(batch)),
        owner_(owner),
        profile_(profile),
        warm_at_begin_(warm_fraction),
        os_warm_at_begin_(os_warm_fraction),
        last_left_(warm_fraction),
        last_os_left_(os_warm_fraction),
        modeled_(modeled),
        size_ratio_(size_ratio),
        norm_pages_(norm_pages) {}

  uint32_t total_epochs() const override { return profile_.epochs; }
  uint32_t epochs_run() const override { return done_; }
  dana::SimTime compile_cost() const override { return profile_.compile; }
  double warm_fraction() const override { return warm_at_begin_; }
  bool residency_modeled() const override { return modeled_; }
  double os_warm_fraction() const override { return os_warm_at_begin_; }

  dana::Result<SliceCost> NextSlice(uint32_t max_epochs) override {
    const uint32_t remaining = profile_.epochs - done_;
    if (remaining == 0) {
      return Status::FailedPrecondition("execution already finished");
    }
    const uint32_t n =
        max_epochs == 0 ? remaining : std::min(max_epochs, remaining);
    SliceCost s;
    s.service = CumWall(done_ + n) - CumWall(done_);
    s.shared = CumShared(done_ + n) - CumShared(done_);
    s.per_query = CumPerQuery(done_ + n) - CumPerQuery(done_);
    s.epochs = n;
    done_ += n;
    s.finished = done_ == profile_.epochs;
    // Each epoch sweeps the table once, so a k-epoch slice applies
    // min(k, 2) sweeps, not one: for a table that outsizes the pool the
    // second pass keeps pressing installs into co-located tables (clock
    // second chances spare some of their frames on the first pass only),
    // and the ledger predictor decays them the same way. Two passes reach
    // the repeat-pressure regime; later passes refine co-located decay
    // negligibly while costing O(pages) each, hence the cap. For a
    // pool-fitting table the second sweep is an all-hit no-op in both the
    // pool and the ledger, so single-epoch slices and fitting-table
    // schedules are unchanged. The physical pool takes the sweeps for real
    // (install + clock eviction); the logical ledger is updated in
    // parallel as the predictor it is cross-checked against.
    if (modeled_) {
      const uint32_t sweeps = std::min<uint32_t>(n, 2);
      const double os_ratio = owner_->OsLedgerRatio();
      {
        dana::MutexLock lock(owner_->state_mu_);
        for (uint32_t i = 0; i < sweeps; ++i) {
          owner_->residency_.OnRun(batch_.slot, batch_.workload_id,
                                   size_ratio_, os_ratio);
        }
      }
      if (owner_->options_.physical_pools) {
        storage::BufferPool* pool = owner_->slot_pools_.pool(batch_.slot);
        const uint32_t tid = pool->InternTable(batch_.workload_id);
        // Memoized repeat sweep: if nothing installed into (or cleared)
        // this pool since our previous slice swept it and the table is
        // still fully resident, the sweep would be all hits — every frame
        // already holds what it would hold after, with its reference bit
        // already set — so the O(pages) walk is skipped. Only the pool's
        // hit/miss counters and last_table() diverge from the unskipped
        // run; nothing the scheduler or pricing reads does. A table larger
        // than the pool is never fully resident and always re-sweeps (the
        // repeat walk moves the clock hand).
        const bool undisturbed =
            owner_->options_.memoize_slices && swept_pool_ == pool &&
            pool->version() == swept_version_ &&
            pool->resident_frames(tid) == norm_pages_;
        if (undisturbed) {
          last_left_ = 1.0;  // fully resident, by the guard above
          last_os_left_ = 0.0;  // the tiers are exclusive
          obs::Count(owner_->options_.metrics, "exec.slices.memoized");
        } else {
          for (uint32_t i = 0; i < sweeps; ++i) {
            pool->ScanTable(tid, norm_pages_);
          }
          swept_pool_ = pool;
          swept_version_ = pool->version();
          last_left_ =
              owner_->PhysicalWarmFraction(batch_.workload_id, batch_.slot);
          last_os_left_ = owner_->PhysicalOsWarmFraction(
              batch_.workload_id, batch_.slot, last_left_);
        }
      } else {
        last_left_ =
            storage::CacheResidencyModel::PostRunResidency(size_ratio_);
        if (os_ratio > 0.0) {
          dana::MutexLock lock(owner_->state_mu_);
          last_os_left_ = owner_->residency_.OsResidentFraction(
              batch_.slot, batch_.workload_id);
        }
      }
    }
    return s;
  }

  dana::Result<dana::SimTime> PeekService(uint32_t epochs) const override {
    const uint32_t remaining = profile_.epochs - done_;
    const uint32_t n =
        epochs == 0 ? remaining : std::min(epochs, remaining);
    return CumWall(done_ + n) - CumWall(done_);
  }

  dana::Status Checkpoint() override {
    // The model vector is the only state to capture, and the executor's
    // functional results are memoized per (workload, batch size) — the
    // checkpoint is implicit. Guard the contract anyway: a checkpoint is
    // only meaningful at an epoch boundary with work remaining.
    if (done_ == 0 || done_ >= profile_.epochs) {
      return Status::FailedPrecondition(
          "checkpoint requires a partially-run execution");
    }
    return Status::OK();
  }

  dana::Status Resume(uint32_t slot) override {
    if (!modeled_) {
      // Static-cache regime: every slot charges the same fixed state.
      batch_.slot = slot;
      return Status::OK();
    }
    // Residency of the resume slot — physical pools measure it, the
    // legacy ledger predicts it.
    double warm;
    double os_warm = 0.0;
    if (owner_->options_.physical_pools) {
      warm = owner_->PhysicalWarmFraction(batch_.workload_id, slot);
      os_warm =
          owner_->PhysicalOsWarmFraction(batch_.workload_id, slot, warm);
    } else {
      dana::MutexLock lock(owner_->state_mu_);
      warm = owner_->residency_.ResidentFraction(slot, batch_.workload_id);
      if (owner_->OsLedgerRatio() > 0.0) {
        os_warm =
            owner_->residency_.OsResidentFraction(slot, batch_.workload_id);
      }
    }
    // Undisturbed same-slot resume: the table is exactly as resident (in
    // both tiers) as the last slice left it (last_left_/last_os_left_
    // captured that, measured or modeled), so the original cost curve
    // continues bit for bit.
    const double left_behind = done_ > 0 ? last_left_ : warm_at_begin_;
    const double os_left = done_ > 0 ? last_os_left_ : os_warm_at_begin_;
    if (slot == batch_.slot && warm == left_behind && os_warm == os_left) {
      return Status::OK();
    }
    // Re-base: the remaining epochs run as a fresh segment at the new
    // slot's warmth — its first epoch re-reads the missing share of the
    // table, later epochs return to the steady state.
    batch_.slot = slot;
    DANA_ASSIGN_OR_RETURN(DanaQueryExecutor::EpochProfile rebased,
                          owner_->ProfileAt(batch_, warm, os_warm));
    rebased.epochs = profile_.epochs;  // the budget never changes
    profile_ = rebased;
    base_ = done_;
    return Status::OK();
  }

 private:
  /// Cumulative slot occupancy of the first `e` epochs under the current
  /// segment (epochs before `base_` were charged under earlier segments
  /// and contribute zero here). The one-time query overhead belongs to the
  /// segment that runs epoch 0.
  dana::SimTime CumWall(uint32_t e) const {
    if (e <= base_) return dana::SimTime::Zero();
    const double k = static_cast<double>(e - base_);
    dana::SimTime t = profile_.epoch_overhead * k + profile_.first_wall +
                      profile_.steady_wall * (k - 1);
    if (base_ == 0) t += profile_.query_overhead;
    return t;
  }
  dana::SimTime CumShared(uint32_t e) const {
    if (e <= base_) return dana::SimTime::Zero();
    const double k = static_cast<double>(e - base_);
    dana::SimTime t = profile_.epoch_overhead * k + profile_.first_shared +
                      profile_.steady_shared * (k - 1);
    if (base_ == 0) t += profile_.query_overhead;
    return t;
  }
  dana::SimTime CumPerQuery(uint32_t e) const {
    if (e <= base_) return dana::SimTime::Zero();
    const double k = static_cast<double>(e - base_);
    return profile_.first_pq + profile_.steady_pq * (k - 1);
  }

  DanaQueryExecutor* owner_;
  DanaQueryExecutor::EpochProfile profile_;
  double warm_at_begin_;
  double os_warm_at_begin_;
  /// Residency the last slice left on its slot (warm_at_begin_ until the
  /// first slice) — the "undisturbed" reference a Resume compares against.
  double last_left_;
  /// OS-tier share the last slice left behind, the tier-1 companion to
  /// last_left_ (always 0 without an OS tier).
  double last_os_left_;
  bool modeled_;
  double size_ratio_;
  uint64_t norm_pages_;
  uint32_t done_ = 0;
  uint32_t base_ = 0;  ///< absolute epoch index the current segment starts at
  /// Pool and version stamp of this execution's most recent real sweep;
  /// a later slice seeing the same pool at the same version knows no
  /// install or clear happened in between (the memoized-sweep guard).
  const storage::BufferPool* swept_pool_ = nullptr;
  uint64_t swept_version_ = 0;
};

// ---------------------------------------------------------------------------
// DanaQueryExecutor
// ---------------------------------------------------------------------------

namespace {
/// Page size of the shared residency pools. Pure bookkeeping units: the
/// pools hold data-less frames, so this only converts `pool_frames` into
/// the BufferPool byte-capacity constructor. Matches the workload tables'
/// 32 KB pages for consistency.
constexpr uint32_t kSharedPoolPageSize = 32 * 1024;

/// Normalizes option combinations before any member reads them: at least
/// one pool frame, and the OS tier exists only under an evicting policy —
/// clock is the pinned legacy hierarchy (admit-until-full OS set), so
/// `os_frames` is forced off rather than silently priced as a tier the
/// pools don't run.
DanaQueryExecutor::Options NormalizeExecOptions(
    DanaQueryExecutor::Options o) {
  o.pool_frames = std::max<uint64_t>(o.pool_frames, 1);
  if (o.eviction == storage::EvictionKind::kClock) o.os_frames = 0;
  return o;
}

/// OS-tier byte capacity for the shared slot pools. Clock keeps the
/// unlimited legacy admit-until-full set (seed behaviour bit for bit);
/// evicting policies get exactly the configured tier, 0 disabling it.
uint64_t SharedPoolOsBytes(const DanaQueryExecutor::Options& o) {
  if (o.eviction == storage::EvictionKind::kClock) return UINT64_MAX;
  return o.os_frames * kSharedPoolPageSize;
}
}  // namespace

DanaQueryExecutor::DanaQueryExecutor() : DanaQueryExecutor(Options{}) {}

DanaQueryExecutor::DanaQueryExecutor(Options options)
    : options_(NormalizeExecOptions(options)),
      system_(cost_model_, MakeSystemOptions(options.functional_epoch_cap)),
      slot_pools_(options_.pool_frames * kSharedPoolPageSize,
                  kSharedPoolPageSize, storage::DiskModel{},
                  SharedPoolOsBytes(options_), options_.eviction) {}

Result<runtime::WorkloadInstance*> DanaQueryExecutor::Instance(
    const std::string& id) {
  dana::MutexLock lock(state_mu_);
  return InstanceLocked(id);
}

Result<runtime::WorkloadInstance*> DanaQueryExecutor::InstanceLocked(
    const std::string& id) {
  auto it = instances_.find(id);
  if (it != instances_.end()) return it->second.get();
  DANA_ASSIGN_OR_RETURN(const ml::Workload* w, RegistryWorkloadLocked(id));
  DANA_ASSIGN_OR_RETURN(auto instance, runtime::WorkloadInstance::Create(*w));
  auto* ptr = instance.get();
  instances_[id] = std::move(instance);
  return ptr;
}

Result<const ml::Workload*> DanaQueryExecutor::RegistryWorkload(
    const std::string& id) {
  dana::MutexLock lock(state_mu_);
  return RegistryWorkloadLocked(id);
}

Result<const ml::Workload*> DanaQueryExecutor::RegistryWorkloadLocked(
    const std::string& id) {
  auto it = workload_cache_.find(id);
  if (it == workload_cache_.end()) {
    it = workload_cache_.emplace(id, ml::FindWorkload(id)).first;
  }
  if (it->second == nullptr) {
    return Status::NotFound("unknown workload '" + id + "'");
  }
  return it->second;
}

Result<const DanaQueryExecutor::EpochProfile*>
DanaQueryExecutor::MeasureEndpoint(const QueryBatch& batch,
                                   runtime::CacheState cache) {
  const auto key = std::make_tuple(batch.workload_id, batch.size(),
                                   static_cast<uint8_t>(cache));
  // Fill-once/wait: a cold key elects exactly one caller to run the
  // measurement while concurrent requesters block for the result, so N
  // slot workers hitting the same cold (workload, batch, endpoint) never
  // duplicate a simulator run.
  return measured_.GetOrFill(key, [&]() -> Result<EpochProfile> {
    // Serialize the actual simulator runs across *different* keys too:
    // WorkloadInstance execution contexts grow per-slot pools lazily and
    // DanaSystem::RunCompiled is not re-entrant. Once-per-key, memoized.
    dana::MutexLock lock(measure_mu_);
    DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance,
                          Instance(batch.workload_id));
    DANA_ASSIGN_OR_RETURN(
        const compiler::CompiledUdf* udf,
        compile_cache_.GetOrCompile(
            batch.workload_id, [&] { return system_.Compile(*instance); }));
    // Measure the batched pass once on this slot's execution context (its
    // private pool, created lazily by the instance's pool group); identical
    // batches on other slots prepare their pools to the same cache state
    // and therefore take identical time.
    DANA_ASSIGN_OR_RETURN(
        runtime::SystemResult result,
        system_.RunCompiled(*udf, instance, cache, batch.size(), batch.slot));
    obs::Count(options_.metrics, "exec.endpoint_measurements");
    EpochProfile p;
    p.compile = options_.compile_latency;
    p.first_wall = result.first_epoch.wall;
    p.steady_wall = result.steady_epoch.wall;
    p.first_shared = result.first_epoch.shared;
    p.steady_shared = result.steady_epoch.shared;
    p.first_pq = result.first_epoch.per_query;
    p.steady_pq = result.steady_epoch.per_query;
    p.query_overhead = result.query_overhead;
    p.epoch_overhead = result.epoch_overhead;
    p.epochs = std::max<uint32_t>(result.epochs, 1);
    return p;
  });
}

Result<DanaQueryExecutor::EpochProfile> DanaQueryExecutor::ProfileAt(
    const QueryBatch& batch, double warm_fraction, double os_fraction) {
  if (warm_fraction >= 1.0) {
    DANA_ASSIGN_OR_RETURN(const EpochProfile* hot,
                          MeasureEndpoint(batch, runtime::CacheState::kWarm));
    return *hot;
  }
  if (os_fraction <= 0.0) {
    // Two-endpoint pricing, the pre-tier arithmetic bit for bit.
    if (warm_fraction <= 0.0) {
      DANA_ASSIGN_OR_RETURN(
          const EpochProfile* cold,
          MeasureEndpoint(batch, runtime::CacheState::kCold));
      return *cold;
    }
    // The two measured endpoints bound the run — a fraction f of the table
    // still resident saves f of the cold run's extra (I/O-side) time, so
    // every epoch-cost component interpolates linearly between them.
    DANA_ASSIGN_OR_RETURN(const EpochProfile* cold,
                          MeasureEndpoint(batch, runtime::CacheState::kCold));
    DANA_ASSIGN_OR_RETURN(const EpochProfile* hot,
                          MeasureEndpoint(batch, runtime::CacheState::kWarm));
    const double miss = 1.0 - warm_fraction;
    EpochProfile p = *hot;
    p.first_wall =
        hot->first_wall + (cold->first_wall - hot->first_wall) * miss;
    p.steady_wall =
        hot->steady_wall + (cold->steady_wall - hot->steady_wall) * miss;
    p.first_shared =
        hot->first_shared + (cold->first_shared - hot->first_shared) * miss;
    p.steady_shared =
        hot->steady_shared + (cold->steady_shared - hot->steady_shared) * miss;
    p.first_pq = hot->first_pq + (cold->first_pq - hot->first_pq) * miss;
    p.steady_pq = hot->steady_pq + (cold->steady_pq - hot->steady_pq) * miss;
    return p;
  }
  // Three-endpoint pricing: the run splits into a pool-warm share `p`
  // (priced at the pool-warm endpoint), an OS-cached share `o` (priced at
  // the os-warm endpoint — pages re-read from the modeled kernel cache, no
  // device I/O), and the cold remainder. Each epoch-cost component is the
  // convex combination of the three measured endpoints.
  const double pw = std::clamp(warm_fraction, 0.0, 1.0);
  const double ow = std::min(std::max(os_fraction, 0.0), 1.0 - pw);
  const double cw = 1.0 - pw - ow;
  DANA_ASSIGN_OR_RETURN(const EpochProfile* hot,
                        MeasureEndpoint(batch, runtime::CacheState::kWarm));
  DANA_ASSIGN_OR_RETURN(const EpochProfile* osw,
                        MeasureEndpoint(batch, runtime::CacheState::kOsCached));
  DANA_ASSIGN_OR_RETURN(const EpochProfile* cold,
                        MeasureEndpoint(batch, runtime::CacheState::kCold));
  EpochProfile p = *hot;
  const auto mix = [pw, ow, cw](dana::SimTime h, dana::SimTime o,
                                dana::SimTime c) {
    return h * pw + o * ow + c * cw;
  };
  p.first_wall = mix(hot->first_wall, osw->first_wall, cold->first_wall);
  p.steady_wall = mix(hot->steady_wall, osw->steady_wall, cold->steady_wall);
  p.first_shared =
      mix(hot->first_shared, osw->first_shared, cold->first_shared);
  p.steady_shared =
      mix(hot->steady_shared, osw->steady_shared, cold->steady_shared);
  p.first_pq = mix(hot->first_pq, osw->first_pq, cold->first_pq);
  p.steady_pq = mix(hot->steady_pq, osw->steady_pq, cold->steady_pq);
  return p;
}

Result<std::unique_ptr<BatchExecution>> DanaQueryExecutor::Begin(
    const QueryBatch& batch) {
  if (batch.query_ids.empty()) {
    return Status::InvalidArgument("empty batch for workload '" +
                                   batch.workload_id + "'");
  }
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance,
                        Instance(batch.workload_id));
  if (!options_.model_residency) {
    // Legacy fixed-cache regime: every run is prepared to options_.cache
    // and slot history does not exist.
    DANA_ASSIGN_OR_RETURN(const EpochProfile* p,
                          MeasureEndpoint(batch, options_.cache));
    const double warm =
        options_.cache == runtime::CacheState::kWarm ? 1.0 : 0.0;
    obs::Count(options_.metrics, warm >= 1.0 ? "exec.charges.warm"
                                             : "exec.charges.cold");
    return std::unique_ptr<BatchExecution>(new DanaBatchExecution(
        this, batch, *p, warm, /*os_warm_fraction=*/0.0, /*modeled=*/false,
        instance->PoolSizeRatio(),
        instance->NormalizedPages(options_.pool_frames)));
  }
  // Residency regime: price this slot's actual cache state — measured
  // from the shared physical pool, or predicted by the ledger in legacy
  // mode. With an OS tier, the working set splits three ways: pool-warm,
  // os-warm (demoted pages still in the modeled kernel cache) and cold.
  double warm;
  double os_warm = 0.0;
  if (options_.physical_pools) {
    warm = PhysicalWarmFraction(batch.workload_id, batch.slot);
    os_warm = PhysicalOsWarmFraction(batch.workload_id, batch.slot, warm);
  } else {
    dana::MutexLock lock(state_mu_);
    warm = residency_.ResidentFraction(batch.slot, batch.workload_id);
    if (OsLedgerRatio() > 0.0) {
      os_warm = residency_.OsResidentFraction(batch.slot, batch.workload_id);
    }
  }
  obs::Count(options_.metrics,
             warm >= 1.0 ? "exec.charges.warm"
             : (warm <= 0.0 && os_warm <= 0.0)
                 ? "exec.charges.cold"
                 : "exec.charges.partial");
  DANA_ASSIGN_OR_RETURN(EpochProfile profile,
                        ProfileAt(batch, warm, os_warm));
  return std::unique_ptr<BatchExecution>(new DanaBatchExecution(
      this, batch, profile, warm, os_warm, /*modeled=*/true,
      instance->PoolSizeRatio(),
      instance->NormalizedPages(options_.pool_frames)));
}

double DanaQueryExecutor::PhysicalWarmFraction(const std::string& id,
                                               uint32_t slot) {
  auto instance = Instance(id);
  if (!instance.ok()) return 0.0;
  const uint64_t pages = (*instance)->NormalizedPages(options_.pool_frames);
  return slot_pools_.pool(slot)->ResidentShare(id, pages);
}

double DanaQueryExecutor::PhysicalOsWarmFraction(const std::string& id,
                                                 uint32_t slot,
                                                 double pool_warm) {
  if (options_.os_frames == 0) return 0.0;
  auto instance = Instance(id);
  if (!instance.ok()) return 0.0;
  const uint64_t pages = (*instance)->NormalizedPages(options_.pool_frames);
  const double share = slot_pools_.pool(slot)->TierResidentShare(
      storage::BufferPool::kOsTier, id, pages);
  // The tiers are exclusive by construction; the clamp only guards float
  // edge cases so the pricing shares always sum to at most 1.
  return std::min(share, 1.0 - pool_warm);
}

double DanaQueryExecutor::WarmFraction(const std::string& workload_id,
                                       uint32_t slot) {
  if (!options_.model_residency) {
    return options_.cache == runtime::CacheState::kWarm ? 1.0 : 0.0;
  }
  // Placement heuristic: an os-warm page is cheaper than cold but dearer
  // than pool-warm, so it counts at half weight. Without an OS tier this
  // is exactly the pool residency, as before.
  if (options_.physical_pools) {
    const double w = PhysicalWarmFraction(workload_id, slot);
    if (options_.os_frames == 0) return w;
    return std::min(
        1.0, w + 0.5 * PhysicalOsWarmFraction(workload_id, slot, w));
  }
  dana::MutexLock lock(state_mu_);
  const double w = residency_.ResidentFraction(slot, workload_id);
  if (OsLedgerRatio() <= 0.0) return w;
  return std::min(
      1.0, w + 0.5 * residency_.OsResidentFraction(slot, workload_id));
}

Result<dana::SimTime> DanaQueryExecutor::Estimate(
    const std::string& workload_id) {
  DANA_ASSIGN_OR_RETURN(const ml::Workload* w, RegistryWorkload(workload_id));
  return runtime::EstimateDanaRuntime(*w, cost_model_,
                                      system_.options().fpga.axi_bytes_per_sec);
}

Result<dana::SimTime> DanaQueryExecutor::EstimateAtWarmth(
    const std::string& workload_id, double warm_fraction) {
  // Purely a-priori, like Estimate(): the cold/warm interpolation comes
  // from the cost model (the table's missing share re-read from disk in
  // the first epoch), never from measured state — queue ordering must not
  // depend on which endpoints earlier dispatches happened to memoize.
  DANA_ASSIGN_OR_RETURN(const ml::Workload* w, RegistryWorkload(workload_id));
  return runtime::EstimateDanaRuntimeAtWarmth(
      *w, cost_model_, system_.options().fpga.axi_bytes_per_sec,
      warm_fraction);
}

}  // namespace dana::sched
