#include "sched/executor.h"

#include "ml/workloads.h"
#include "runtime/cost_model.h"

namespace dana::sched {

namespace {

runtime::DanaSystem::Options MakeSystemOptions(uint32_t epoch_cap) {
  runtime::DanaSystem::Options o;
  o.fpga = runtime::DefaultFpga();
  o.functional_epoch_cap = epoch_cap;
  return o;
}

}  // namespace

DanaQueryExecutor::DanaQueryExecutor() : DanaQueryExecutor(Options{}) {}

DanaQueryExecutor::DanaQueryExecutor(Options options)
    : options_(options),
      system_(cost_model_, MakeSystemOptions(options.functional_epoch_cap)) {}

Result<runtime::WorkloadInstance*> DanaQueryExecutor::Instance(
    const std::string& id) {
  auto it = instances_.find(id);
  if (it != instances_.end()) return it->second.get();
  const ml::Workload* w = ml::FindWorkload(id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + id + "'");
  }
  DANA_ASSIGN_OR_RETURN(auto instance, runtime::WorkloadInstance::Create(*w));
  auto* ptr = instance.get();
  instances_[id] = std::move(instance);
  return ptr;
}

Result<QueryCost> DanaQueryExecutor::Cost(const std::string& workload_id) {
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance,
                        Instance(workload_id));
  DANA_ASSIGN_OR_RETURN(
      const compiler::CompiledUdf* udf,
      compile_cache_.GetOrCompile(
          workload_id, [&] { return system_.Compile(*instance); }));

  QueryCost cost;
  cost.compile = options_.compile_latency;
  auto measured = measured_service_.find(workload_id);
  if (measured == measured_service_.end()) {
    DANA_ASSIGN_OR_RETURN(
        runtime::SystemResult result,
        system_.RunCompiled(*udf, instance, options_.cache));
    measured =
        measured_service_.emplace(workload_id, result.total).first;
  }
  cost.service = measured->second;
  return cost;
}

Result<dana::SimTime> DanaQueryExecutor::Estimate(
    const std::string& workload_id) {
  const ml::Workload* w = ml::FindWorkload(workload_id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + workload_id + "'");
  }
  return runtime::EstimateDanaRuntime(*w, cost_model_,
                                      system_.options().fpga.axi_bytes_per_sec);
}

}  // namespace dana::sched
