#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <utility>

#include "common/stats.h"
#include "sched/runtime_worker.h"

namespace dana::sched {

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFcfs:
      return "fcfs";
    case Policy::kSjf:
      return "sjf";
    case Policy::kRoundRobin:
      return "rr";
  }
  return "?";
}

Result<Policy> ParsePolicy(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "sjf") return Policy::kSjf;
  if (name == "rr" || name == "round-robin") return Policy::kRoundRobin;
  return Status::InvalidArgument("unknown policy '" + name +
                                 "' (want fcfs|sjf|rr)");
}

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kBatch:
      return "batch";
    case QueryClass::kInteractive:
      return "interactive";
  }
  return "?";
}

double ScheduleReport::ThroughputQps() const {
  if (queries.empty() || makespan.seconds() <= 0) return 0.0;
  return static_cast<double>(queries.size()) / makespan.seconds();
}

dana::SimTime ScheduleReport::MeanLatency() const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Latency().nanos());
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::MeanWait() const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Wait().nanos());
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::LatencyPercentile(double p) const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Latency().nanos());
  return dana::SimTime::Nanos(Percentile(std::move(ns), p));
}

double ScheduleReport::MeanBatchSize() const {
  if (batches == 0) return 1.0;
  return static_cast<double>(queries.size()) / static_cast<double>(batches);
}

double ScheduleReport::WarmHitRate() const {
  uint64_t modeled = 0, hits = 0;
  for (const QueryStat& q : queries) {
    if (!q.residency_modeled) continue;
    ++modeled;
    if (q.WarmHit()) ++hits;
  }
  if (modeled == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(hits) / static_cast<double>(modeled);
}

double ScheduleReport::MeanWarmFraction() const {
  uint64_t modeled = 0;
  double total = 0.0;
  for (const QueryStat& q : queries) {
    if (!q.residency_modeled) continue;
    ++modeled;
    total += q.warm_fraction;
  }
  if (modeled == 0) return std::numeric_limits<double>::quiet_NaN();
  return total / static_cast<double>(modeled);
}

double ScheduleReport::MeanOsWarmFraction() const {
  uint64_t modeled = 0;
  double total = 0.0;
  for (const QueryStat& q : queries) {
    if (!q.residency_modeled) continue;
    ++modeled;
    total += q.os_warm_fraction;
  }
  if (modeled == 0) return std::numeric_limits<double>::quiet_NaN();
  return total / static_cast<double>(modeled);
}

uint64_t ScheduleReport::ClassQueries(QueryClass cls) const {
  uint64_t n = 0;
  for (const QueryStat& q : queries) {
    if (q.query_class == cls) ++n;
  }
  return n;
}

dana::SimTime ScheduleReport::ClassMeanLatency(QueryClass cls) const {
  std::vector<double> ns;
  for (const QueryStat& q : queries) {
    if (q.query_class == cls) ns.push_back(q.Latency().nanos());
  }
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::ClassLatencyPercentile(QueryClass cls,
                                                     double p) const {
  std::vector<double> ns;
  for (const QueryStat& q : queries) {
    if (q.query_class == cls) ns.push_back(q.Latency().nanos());
  }
  return dana::SimTime::Nanos(Percentile(std::move(ns), p));
}

double ScheduleReport::ClassThroughputQps(QueryClass cls) const {
  if (makespan.seconds() <= 0) return 0.0;
  return static_cast<double>(ClassQueries(cls)) / makespan.seconds();
}

void PublishReportMetrics(const ScheduleReport& report,
                          obs::MetricRegistry* metrics) {
  if (metrics == nullptr) return;
  obs::Count(metrics, "sched.queries",
             static_cast<double>(report.queries.size()));
  obs::Count(metrics, "sched.batches", static_cast<double>(report.batches));
  obs::Count(metrics, "sched.compile.hits",
             static_cast<double>(report.compile_hits));
  obs::Count(metrics, "sched.compile.misses",
             static_cast<double>(report.compile_misses));
  obs::Count(metrics, "sched.preemptions",
             static_cast<double>(report.preemptions));

  obs::SetGauge(metrics, "sched.throughput_qps", report.ThroughputQps());
  obs::SetGauge(metrics, "sched.makespan_s", report.makespan.seconds());
  obs::SetGauge(metrics, "sched.mean_batch_size", report.MeanBatchSize());
  obs::SetGauge(metrics, "sched.warm_hit_rate", report.WarmHitRate());
  obs::SetGauge(metrics, "sched.mean_warm_fraction",
                report.MeanWarmFraction());
  obs::SetGauge(metrics, "sched.shared_service_s",
                report.shared_service.seconds());
  obs::SetGauge(metrics, "sched.private_service_s",
                report.private_service.seconds());
  obs::SetGauge(metrics, "sched.preempt_overhead_s",
                report.preemption_overhead.seconds());

  for (const QueryStat& q : report.queries) {
    obs::Observe(metrics, "sched.latency_s", q.Latency().seconds());
    obs::Observe(metrics, "sched.wait_s", q.Wait().seconds());
    obs::Observe(metrics, "sched.batch_size",
                 static_cast<double>(q.batch_size));
    if (q.residency_modeled) {
      obs::Observe(metrics, "sched.warm_fraction", q.warm_fraction);
    }
    obs::Observe(metrics,
                 std::string("sched.latency_s.") +
                     QueryClassName(q.query_class),
                 q.Latency().seconds());
  }
}

Scheduler::Scheduler(SchedulerOptions options, QueryExecutor* executor)
    : options_(options), executor_(executor) {
  if (options_.slots == 0) options_.slots = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.batch_window < dana::SimTime::Zero()) {
    options_.batch_window = dana::SimTime::Zero();
  }
}

namespace {

/// Pending queue with the policy-specific pick. Entries are indices into
/// the request vector, kept in admission order. The request vector (and
/// the parallel interned-id vector) may grow while the queue is live
/// (closed-loop mode); entries are indices, never pointers, so growth is
/// safe.
///
/// Two interchangeable implementations produce identical pick sequences:
///
/// - Indexed (SchedulerOptions::indexed_queues, the default): an intrusive
///   doubly-linked list over request indices keeps admission order (O(1)
///   push/unlink, O(1) FCFS head), per-algorithm FIFO deques serve
///   round-robin candidates and batch coalescing with integer id compares,
///   and pure SJF keeps a multiset ordered by (estimate, request index) —
///   O(log n) extraction. The multiset key is exact, not approximate: the
///   reference scan compares raw SimTime estimates with strict less-than
///   and takes the first minimum in admission order, and admission order
///   equals request-index order (pushes arrive in index order; Restore
///   re-inserts at the index position), so min-(estimate, index) is the
///   same element. Aged and affinity SJF stay linear scans in both modes:
///   their effective estimate mixes in per-candidate float subtraction
///   whose rounding an ordered key cannot reproduce bit-for-bit.
///
/// - Reference (indexed_queues = false): the historical vector with O(n)
///   scan-and-erase, kept as the equivalence oracle for the sched_perf
///   suite.
class PendingQueue {
 public:
  /// `warmth(workload)`, when set, is the best residency any currently-free
  /// slot offers that workload — the affinity signal. Null keeps the
  /// affinity-blind picks bit-for-bit.
  using WarmthFn = std::function<double(const std::string&)>;
  /// Residency-aware SJF estimate in seconds: the expected service of
  /// `workload` dispatched at `warmth` residency, interpolated the way a
  /// dispatch is charged (QueryExecutor::EstimateAtWarmth). Only consulted
  /// when a warmth function is supplied (affinity on).
  using EstimateAtFn = std::function<double(const std::string&, double)>;

  PendingQueue(const SchedulerOptions& options,
               const std::vector<QueryRequest>& requests,
               const std::vector<uint32_t>& wids,
               const std::vector<dana::SimTime>& estimates_by_id,
               std::vector<uint32_t> class_order,
               EstimateAtFn estimate_at = nullptr)
      : policy_(options.policy),
        aging_weight_(options.sjf_aging_weight),
        indexed_(options.indexed_queues),
        requests_(requests),
        wids_(wids),
        estimates_by_id_(estimates_by_id),
        class_order_(std::move(class_order)),
        estimate_at_(std::move(estimate_at)) {
    use_sjf_set_ = indexed_ && policy_ == Policy::kSjf &&
                   aging_weight_ == 0.0 && estimate_at_ == nullptr;
  }

  bool empty() const { return indexed_ ? count_ == 0 : pending_.empty(); }
  size_t size() const { return indexed_ ? count_ : pending_.size(); }

  void Push(size_t request_index) {
    if (!indexed_) {
      pending_.push_back(request_index);
      return;
    }
    EnsureCapacity(request_index);
    LinkBefore(kNone, request_index);  // pushes arrive in index order
    const uint32_t w = wids_[request_index];
    ClassQueueFor(w).push_back(request_index);
    if (use_sjf_set_) sjf_.emplace(estimates_by_id_[w], request_index);
    ++count_;
  }

  /// Re-inserts a request popped but never dispatched (a released batch
  /// hold) at its admission-order position.
  void Restore(size_t request_index) {
    if (!indexed_) {
      pending_.insert(
          std::lower_bound(pending_.begin(), pending_.end(), request_index),
          request_index);
      return;
    }
    EnsureCapacity(request_index);
    // Find the list successor: first queued index greater than the
    // restored one. Restored indices are recent pops, so the backward walk
    // from the tail is short.
    size_t succ = kNone;
    for (size_t cur = tail_; cur != kNone && cur > request_index;
         cur = prev_[cur]) {
      succ = cur;
    }
    LinkBefore(succ, request_index);
    const uint32_t w = wids_[request_index];
    auto& q = ClassQueueFor(w);
    q.insert(std::lower_bound(q.begin(), q.end(), request_index),
             request_index);
    if (use_sjf_set_) sjf_.emplace(estimates_by_id_[w], request_index);
    ++count_;
  }

  /// Removes and returns the next request index under the policy. `now` is
  /// the dispatch time, used by SJF aging to credit queue wait.
  size_t Pop(dana::SimTime now, const WarmthFn& warmth = nullptr) {
    if (indexed_) {
      const size_t pick = PickIndexed(now, warmth);
      Remove(pick);
      return pick;
    }
    size_t at = 0;
    switch (policy_) {
      case Policy::kFcfs:
        // Arrival order == queue order. Affinity does not reorder FCFS (or
        // RR): chasing warmth in the queue trades older arrivals' wait for
        // placement and loses on mean latency; those policies get their
        // affinity purely from the slot choice after the pop.
        break;
      case Policy::kSjf: {
        if (warmth && estimate_at_) {
          // Affinity SJF: order by the residency-aware estimate — the
          // executor's own cold/warm interpolation at the best free slot's
          // warmth, the same way the dispatch will be charged — instead of
          // a weight-tuned discount; aging credit still applies on top.
          auto effective = [&](size_t i) {
            const QueryRequest& r = requests_[pending_[i]];
            return estimate_at_(r.workload_id, warmth(r.workload_id)) -
                   aging_weight_ * (now - r.arrival).seconds();
          };
          double best = effective(0);
          for (size_t i = 1; i < pending_.size(); ++i) {
            const double cand = effective(i);
            if (cand < best) {
              best = cand;
              at = i;
            }
          }
        } else if (aging_weight_ == 0.0) {
          // Pure SJF: identical comparison to the unaged scheduler so a
          // zero weight reproduces its schedules bit-for-bit.
          for (size_t i = 1; i < pending_.size(); ++i) {
            const dana::SimTime best = estimates_by_id_[wids_[pending_[at]]];
            const dana::SimTime cand = estimates_by_id_[wids_[pending_[i]]];
            if (cand < best) at = i;
          }
        } else {
          // Aged SJF: every second of queue wait forgives `weight` seconds
          // of estimate, so a long job's effective estimate eventually
          // drops below the stream of short ones and it cannot starve.
          auto effective = [&](size_t i) {
            const QueryRequest& r = requests_[pending_[i]];
            return estimates_by_id_[wids_[pending_[i]]].seconds() -
                   aging_weight_ * (now - r.arrival).seconds();
          };
          double best = effective(0);
          for (size_t i = 1; i < pending_.size(); ++i) {
            const double cand = effective(i);
            if (cand < best) {
              best = cand;
              at = i;
            }
          }
        }
        break;
      }
      case Policy::kRoundRobin: {
        // Advance the cursor to the next class with queued work; take that
        // class's earliest arrival.
        for (size_t step = 0; step < class_order_.size(); ++step) {
          const uint32_t cls =
              class_order_[(rr_cursor_ + step) % class_order_.size()];
          for (size_t i = 0; i < pending_.size(); ++i) {
            if (wids_[pending_[i]] == cls) {
              rr_cursor_ = (rr_cursor_ + step + 1) % class_order_.size();
              at = i;
              goto found;
            }
          }
        }
      found:
        break;
      }
    }
    const size_t request_index = pending_[at];
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(at));
    return request_index;
  }

  /// Removes up to `limit` further queued requests of workload `cls` (in
  /// admission order) and appends their indices to `out` — the co-resident
  /// queries a batched dispatch coalesces with the head query.
  void TakeSameClass(uint32_t cls, size_t limit, std::vector<size_t>* out) {
    if (indexed_) {
      if (cls >= per_class_.size()) return;
      auto& q = per_class_[cls];
      size_t taken = 0;
      while (taken < limit && !q.empty()) {
        const size_t idx = q.front();
        out->push_back(idx);
        Remove(idx);  // pops the deque front via its fast path
        ++taken;
      }
      return;
    }
    size_t taken = 0;
    size_t i = 0;
    while (i < pending_.size() && taken < limit) {
      if (wids_[pending_[i]] == cls) {
        out->push_back(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
        ++taken;
      } else {
        ++i;
      }
    }
  }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  std::deque<size_t>& ClassQueueFor(uint32_t wid) {
    if (wid >= per_class_.size()) per_class_.resize(wid + 1);
    return per_class_[wid];
  }

  void EnsureCapacity(size_t request_index) {
    if (request_index >= next_.size()) {
      next_.resize(request_index + 1, kNone);
      prev_.resize(request_index + 1, kNone);
    }
  }

  /// Links `idx` before `succ` (kNone = at the tail) in the admission list.
  void LinkBefore(size_t succ, size_t idx) {
    const size_t pred = succ == kNone ? tail_ : prev_[succ];
    next_[idx] = succ;
    prev_[idx] = pred;
    if (pred == kNone) {
      head_ = idx;
    } else {
      next_[pred] = idx;
    }
    if (succ == kNone) {
      tail_ = idx;
    } else {
      prev_[succ] = idx;
    }
  }

  /// Removes `idx` from every indexed structure.
  void Remove(size_t idx) {
    const size_t p = prev_[idx], n = next_[idx];
    if (p == kNone) {
      head_ = n;
    } else {
      next_[p] = n;
    }
    if (n == kNone) {
      tail_ = p;
    } else {
      prev_[n] = p;
    }
    next_[idx] = prev_[idx] = kNone;
    const uint32_t w = wids_[idx];
    auto& q = per_class_[w];
    if (q.front() == idx) {
      q.pop_front();
    } else {
      q.erase(std::lower_bound(q.begin(), q.end(), idx));
    }
    if (use_sjf_set_) {
      sjf_.erase(sjf_.find(std::make_pair(estimates_by_id_[w], idx)));
    }
    --count_;
  }

  /// The indexed pick: same element as the reference scan for every mode.
  size_t PickIndexed(dana::SimTime now, const WarmthFn& warmth) const {
    size_t pick = head_;
    switch (policy_) {
      case Policy::kFcfs:
        break;
      case Policy::kSjf: {
        if (warmth && estimate_at_) {
          // Affinity SJF keeps the reference linear scan (in admission
          // order, identical arithmetic, first strict minimum wins): the
          // per-candidate warmth subtraction cannot be re-keyed exactly.
          double best = 0.0;
          bool first = true;
          for (size_t i = head_; i != kNone; i = next_[i]) {
            const QueryRequest& r = requests_[i];
            const double cand =
                estimate_at_(r.workload_id, warmth(r.workload_id)) -
                aging_weight_ * (now - r.arrival).seconds();
            if (first || cand < best) {
              best = cand;
              pick = i;
              first = false;
            }
          }
        } else if (aging_weight_ == 0.0) {
          if (use_sjf_set_) {
            // Pure SJF: min (estimate, index) is exactly the reference
            // first-minimum (see the class comment).
            pick = sjf_.begin()->second;
          } else {
            for (size_t i = head_; i != kNone; i = next_[i]) {
              if (estimates_by_id_[wids_[i]] <
                  estimates_by_id_[wids_[pick]]) {
                pick = i;
              }
            }
          }
        } else {
          // Aged SJF: reference linear scan (same rounding, same ties).
          double best = 0.0;
          bool first = true;
          for (size_t i = head_; i != kNone; i = next_[i]) {
            const double cand =
                estimates_by_id_[wids_[i]].seconds() -
                aging_weight_ * (now - requests_[i].arrival).seconds();
            if (first || cand < best) {
              best = cand;
              pick = i;
              first = false;
            }
          }
        }
        break;
      }
      case Policy::kRoundRobin: {
        for (size_t step = 0; step < class_order_.size(); ++step) {
          const uint32_t cls =
              class_order_[(rr_cursor_ + step) % class_order_.size()];
          if (cls < per_class_.size() && !per_class_[cls].empty()) {
            rr_cursor_ = (rr_cursor_ + step + 1) % class_order_.size();
            pick = per_class_[cls].front();
            break;
          }
        }
        break;
      }
    }
    return pick;
  }

  Policy policy_;
  double aging_weight_;
  bool indexed_;
  bool use_sjf_set_ = false;
  const std::vector<QueryRequest>& requests_;
  const std::vector<uint32_t>& wids_;
  const std::vector<dana::SimTime>& estimates_by_id_;
  std::vector<uint32_t> class_order_;
  mutable size_t rr_cursor_ = 0;
  EstimateAtFn estimate_at_;

  // Reference structure.
  std::vector<size_t> pending_;

  // Indexed structures.
  size_t head_ = kNone, tail_ = kNone;
  std::vector<size_t> next_, prev_;
  size_t count_ = 0;
  std::vector<std::deque<size_t>> per_class_;
  std::multiset<std::pair<dana::SimTime, size_t>> sjf_;
};

/// Simulated compile-cache charging shared by both scheduling engines,
/// id-indexed: `ready_[wid]` records when that workload's design becomes
/// available. The first dispatch of a workload is a miss and pays the full
/// compile latency; a dispatch while that compile is still in flight on
/// another slot waits out the residual; later dispatches pay nothing. A
/// batch compiles its design once — the head pays the miss, riders are
/// hits.
struct CompileCharge {
  dana::SimTime wait;
  bool head_miss = false;
};
class CompileReadyTable {
 public:
  CompileCharge Charge(uint32_t wid, dana::SimTime now,
                       dana::SimTime compile_cost) {
    if (wid >= seen_.size()) {
      seen_.resize(wid + 1, 0);
      ready_.resize(wid + 1);
    }
    CompileCharge c;
    if (!seen_[wid]) {
      seen_[wid] = 1;
      c.head_miss = true;
      c.wait = compile_cost;
      ready_[wid] = now + compile_cost;
    } else {
      c.wait = ready_[wid] > now ? ready_[wid] - now : dana::SimTime::Zero();
    }
    return c;
  }

 private:
  std::vector<uint8_t> seen_;
  std::vector<dana::SimTime> ready_;
};

/// One Dispatch call's outcome: which request indices rode the batch and
/// when the batch completes (= the slot's new free time).
struct DispatchOutcome {
  std::vector<size_t> members;
  dana::SimTime completion;
};

/// Shared dispatch machinery of the open and closed-loop run-to-completion
/// paths: pops the policy's head query (affinity-aware when enabled), picks
/// the slot — earliest-free, or the warmest free one under affinity —
/// coalesces up to max_batch-1 co-resident queries of the same algorithm,
/// charges compile + batched service, and records one QueryStat per member
/// (all complete together).
class DispatchEngine {
 public:
  DispatchEngine(const SchedulerOptions& options, QueryExecutor* executor,
                 const std::vector<QueryRequest>& requests,
                 const std::vector<uint32_t>& wids, ScheduleReport* report)
      : options_(options),
        executor_(executor),
        requests_(requests),
        wids_(wids),
        report_(report),
        slot_free_(options.slots, dana::SimTime::Zero()) {}

  /// Earliest-free slot; lowest index breaks ties, deterministically.
  /// `busy` (optional) masks slots with an uncommitted in-flight dispatch
  /// (threaded same-tick overlap); at a shared tick the masked pick equals
  /// the unmasked one, because every in-flight slot's committed free time
  /// will exceed the tick while some unmasked slot's is at or before it.
  uint32_t NextSlot(const std::vector<uint8_t>* busy = nullptr) const {
    uint32_t slot = kNoSlot;
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (busy != nullptr && (*busy)[s]) continue;
      if (slot == kNoSlot || slot_free_[s] < slot_free_[slot]) slot = s;
    }
    return slot;
  }

  /// True when a non-busy slot is free at `now` — a further same-tick
  /// decision can be issued without waiting for in-flight commits.
  bool HasFreeSlotAt(dana::SimTime now,
                     const std::vector<uint8_t>& busy) const {
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (!busy[s] && slot_free_[s] <= now) return true;
    }
    return false;
  }

  dana::SimTime slot_free(uint32_t slot) const { return slot_free_[slot]; }

  /// The policy half of a dispatch: queue pop, batch coalescing, and slot
  /// choice — everything decided before the executor prices the batch.
  /// Splitting it from Commit lets the threaded runtime run the pricing on
  /// the slot's worker while the decision loop continues.
  struct Decision {
    std::vector<size_t> members;
    uint32_t slot = 0;
    QueryBatch batch;
  };

  Decision Decide(PendingQueue& pending, dana::SimTime now,
                  const std::vector<uint8_t>* busy = nullptr) {
    // Affinity dispatch sees every slot already free at the dispatch time
    // (the earliest-free slot always qualifies: `now` is at or past its
    // free time); a candidate's warmth is the best any of them offers.
    std::vector<uint32_t> available;
    PendingQueue::WarmthFn warmth = nullptr;
    if (options_.affinity_weight > 0.0) {
      for (uint32_t s = 0; s < options_.slots; ++s) {
        if (busy != nullptr && (*busy)[s]) continue;
        if (slot_free_[s] <= now) available.push_back(s);
      }
      warmth = [&](const std::string& workload_id) {
        double best = 0.0;
        for (uint32_t s : available) {
          best = std::max(best, executor_->WarmFraction(workload_id, s));
        }
        return best;
      };
    }

    Decision d;
    d.members.push_back(pending.Pop(now, warmth));
    const QueryRequest& head = requests_[d.members[0]];
    const uint32_t head_wid = wids_[d.members[0]];

    // Slot choice: warmest free slot for the head's table under affinity
    // (ties by earliest free time then lowest index — the affinity-blind
    // order), earliest-free otherwise.
    uint32_t slot = NextSlot(busy);
    if (options_.affinity_weight > 0.0) {
      double best_warm = -1.0;
      for (uint32_t s : available) {
        const double w = executor_->WarmFraction(head.workload_id, s);
        if (w > best_warm ||
            (w == best_warm && slot_free_[s] < slot_free_[slot])) {
          best_warm = w;
          slot = s;
        }
      }
    }
    if (options_.max_batch > 1) {
      pending.TakeSameClass(head_wid, options_.max_batch - 1, &d.members);
    }

    d.slot = slot;
    d.batch.workload_id = head.workload_id;
    d.batch.slot = slot;
    for (size_t m : d.members) d.batch.query_ids.push_back(requests_[m].id);
    return d;
  }

  /// The accounting half: compile charging, per-member stats, slot free
  /// time, makespan, trace spans. Threaded mode calls this in decision
  /// (ticket) order, which keeps every sum and span bit-identical to the
  /// simulated loop.
  dana::Result<DispatchOutcome> Commit(Decision d, dana::SimTime now,
                                       const BatchCost& cost) {
    const QueryRequest& head = requests_[d.members[0]];
    const uint32_t head_wid = wids_[d.members[0]];
    const uint32_t slot = d.slot;
    std::vector<size_t>& members = d.members;

    const CompileCharge charge =
        compile_ready_.Charge(head_wid, now, cost.compile);
    const dana::SimTime compile_wait = charge.wait;
    const bool head_miss = charge.head_miss;

    const dana::SimTime completion = now + compile_wait + cost.service;
    for (size_t j = 0; j < members.size(); ++j) {
      const QueryRequest& req = requests_[members[j]];
      QueryStat stat;
      stat.id = req.id;
      stat.workload_id = req.workload_id;
      stat.query_class = req.query_class;
      stat.slot = slot;
      stat.arrival = req.arrival;
      stat.start = now;
      stat.compile = compile_wait;
      stat.compile_hit = !(head_miss && j == 0);
      stat.service = cost.service;
      stat.batch_size = static_cast<uint32_t>(members.size());
      stat.shared_service = cost.shared;
      stat.private_service = cost.per_query;
      stat.warm_fraction = cost.warm_fraction;
      stat.os_warm_fraction = cost.os_warm_fraction;
      stat.residency_modeled = cost.residency_modeled;
      stat.completion = completion;
      if (stat.compile_hit) {
        ++report_->compile_hits;
      } else {
        ++report_->compile_misses;
      }
      report_->queries.push_back(std::move(stat));
    }
    ++report_->batches;
    report_->shared_service += cost.shared;
    report_->private_service +=
        cost.per_query * static_cast<double>(members.size());
    slot_free_[slot] = completion;
    report_->makespan = dana::SimTime::Max(report_->makespan, completion);
    if (options_.tracer != nullptr) {
      if (compile_wait > dana::SimTime::Zero()) {
        options_.tracer->Span(slot, "compile " + head.workload_id, "compile",
                              now, now + compile_wait,
                              {{"hit", !head_miss}});
      }
      options_.tracer->Span(
          slot, "run " + head.workload_id, "dispatch", now + compile_wait,
          completion,
          {{"queries", static_cast<uint64_t>(members.size())},
           {"warm_fraction", cost.warm_fraction}});
    }
    return DispatchOutcome{std::move(members), completion};
  }

  /// The inline (simulated) dispatch: decide, price, commit in one step.
  dana::Result<DispatchOutcome> Dispatch(PendingQueue& pending,
                                         dana::SimTime now) {
    Decision d = Decide(pending, now);
    DANA_ASSIGN_OR_RETURN(BatchCost cost, executor_->Dispatch(d.batch));
    return Commit(std::move(d), now, cost);
  }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  const SchedulerOptions& options_;
  QueryExecutor* executor_;
  const std::vector<QueryRequest>& requests_;
  const std::vector<uint32_t>& wids_;
  ScheduleReport* report_;
  std::vector<dana::SimTime> slot_free_;
  CompileReadyTable compile_ready_;
};

/// Residency-aware SJF estimate with a fallback to the precomputed static
/// estimate when the executor cannot price the warmth. Non-null only when
/// affinity SJF is on; the returned closure borrows `ids` and
/// `estimates_by_id`, which must outlive it.
PendingQueue::EstimateAtFn MakeEstimateAtFn(
    const SchedulerOptions& options, QueryExecutor* executor,
    const dana::Interner& ids,
    const std::vector<dana::SimTime>& estimates_by_id) {
  if (options.policy != Policy::kSjf || options.affinity_weight <= 0.0) {
    return nullptr;
  }
  return [executor, &ids, &estimates_by_id](const std::string& id,
                                            double warmth) {
    auto est = executor->EstimateAtWarmth(id, warmth);
    if (est.ok()) return est->seconds();
    const uint32_t w = ids.Find(id);
    return w != dana::Interner::kInvalidId && w < estimates_by_id.size()
               ? estimates_by_id[w].seconds()
               : 0.0;
  };
}

/// Class rotation order for round-robin: first appearance in `wids`.
std::vector<uint32_t> FirstAppearanceOrder(const std::vector<uint32_t>& wids,
                                           uint32_t num_ids) {
  std::vector<uint32_t> order;
  std::vector<uint8_t> seen(num_ids, 0);
  for (uint32_t w : wids) {
    if (!seen[w]) {
      seen[w] = 1;
      order.push_back(w);
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Preemptive (epoch-sliced, event-driven) scheduling path
// ---------------------------------------------------------------------------

/// Event-driven engine for the preemptive features: priority classes,
/// epoch-boundary preemption of batch runs, and the batch-formation
/// window. Active executions advance through the executor's slice ABI
/// (QueryExecutor::Begin); all costs are peeked deterministically, so the
/// planned completion of a run is exact unless a preemption truncates it.
class PreemptiveEngine {
 public:
  PreemptiveEngine(const SchedulerOptions& options, QueryExecutor* executor,
                   const std::vector<QueryRequest>& requests,
                   const std::vector<uint32_t>& wids,
                   const std::vector<dana::SimTime>& estimates_by_id,
                   PendingQueue::EstimateAtFn estimate_at,
                   std::vector<uint32_t> class_order, ScheduleReport* report)
      : options_(options),
        executor_(executor),
        requests_(requests),
        wids_(wids),
        report_(report),
        interactive_(options, requests, wids, estimates_by_id, class_order,
                     estimate_at),
        batch_(options, requests, wids, estimates_by_id,
               std::move(class_order), std::move(estimate_at)),
        active_(options.slots),
        holds_(options.slots),
        free_since_(options.slots, dana::SimTime::Zero()) {
    if (options_.indexed_queues) {
      // Every slot starts free: seed the intrusive free list in ascending
      // slot order.
      free_next_.assign(options_.slots, kNoSlot);
      free_prev_.assign(options_.slots, kNoSlot);
      in_free_.assign(options_.slots, 1);
      for (uint32_t s = 0; s < options_.slots; ++s) {
        free_next_[s] = s + 1 < options_.slots ? s + 1 : kNoSlot;
        free_prev_[s] = s > 0 ? s - 1 : kNoSlot;
      }
      free_head_ = options_.slots > 0 ? 0 : kNoSlot;
    }
  }

  dana::Status Run() {
    dana::SimTime clock;
    while (true) {
      while (true) {
        DANA_ASSIGN_OR_RETURN(bool dispatched, TryDispatchOne(clock));
        if (!dispatched) break;
      }
      DANA_RETURN_NOT_OK(ArmPreemptions(clock));

      dana::SimTime next;
      if (!NextEventTime(&next)) break;
      clock = dana::SimTime::Max(clock, next);

      DANA_RETURN_NOT_OK(ProcessSlotEvents(clock));
      DANA_RETURN_NOT_OK(ProcessHoldExpiries(clock));
      DANA_RETURN_NOT_OK(AdmitArrivals(clock));
    }
    return Status::OK();
  }

  /// Switches the engine to closed-loop feeding: instead of a pre-built
  /// request stream, each session's next query materializes into
  /// `requests`/`wids` (the same vectors the engine was constructed over,
  /// handed back mutably here) when its predecessor's *completion event*
  /// plus the think time falls due. Submissions are admitted in
  /// (submit time, session index) order and ids number them in that order,
  /// matching the run-to-completion closed loop, so the two paths agree
  /// whenever no preemption fires. Every session submits its first query
  /// at time zero. `session_classes` may be empty (all batch).
  void EnableClosedLoop(std::vector<QueryRequest>* requests,
                        std::vector<uint32_t>* wids, const dana::Interner* ids,
                        const std::vector<std::vector<std::string>>* sessions,
                        const std::vector<QueryClass>* session_classes,
                        dana::SimTime think_time) {
    closed_.emplace();
    closed_->requests = requests;
    closed_->wids = wids;
    closed_->ids = ids;
    closed_->sessions = sessions;
    closed_->session_classes = session_classes;
    closed_->think_time = think_time;
    closed_->next.assign(sessions->size(), 0);
    for (size_t s = 0; s < sessions->size(); ++s) {
      if (!(*sessions)[s].empty()) closed_->due.emplace(dana::SimTime::Zero(), s);
    }
  }

 private:
  /// One preempted (or in-flight) run's cross-slice state.
  struct RunState {
    std::unique_ptr<BatchExecution> exec;
    std::vector<size_t> members;   ///< request indices
    std::vector<size_t> stat_idx;  ///< indices into report_->queries
    QueryClass cls = QueryClass::kBatch;
    dana::SimTime service_acc;     ///< summed slice occupancy so far
    dana::SimTime shared_acc;
    dana::SimTime per_query_acc;
    uint32_t preemptions = 0;
    dana::SimTime preempt_overhead_acc;
  };

  struct Active {
    RunState run;
    dana::SimTime curve_origin;  ///< dispatch + compile wait: epoch 1 starts
    dana::SimTime completion;    ///< planned completion if undisturbed
    bool preempt_armed = false;
    uint32_t preempt_epochs = 0;   ///< epochs to run until the boundary
    dana::SimTime preempt_free;    ///< boundary + context-switch cost
  };

  /// A freed slot held open for batch formation (batch_window > 0): the
  /// popped head and any same-algorithm arrivals gathered so far.
  struct Hold {
    bool active = false;
    std::vector<size_t> members;
    dana::SimTime expires;
  };

  bool SlotFree(uint32_t s) const {
    return !active_[s].has_value() && !holds_[s].active;
  }

  /// Re-derives slot `s`'s membership in the free-slot list from its
  /// actual state. Idempotent; called after every active_/holds_ mutation,
  /// so the list is correct by construction instead of by transition
  /// bookkeeping. No-op in reference mode (AvailableSlots scans).
  void SyncSlot(uint32_t s) {
    if (!options_.indexed_queues) return;
    const bool want = SlotFree(s);
    if (want == static_cast<bool>(in_free_[s])) return;
    if (want) {
      // Insert in ascending slot order: walk to the first free slot above
      // `s` (the list is at most `slots` long; typically the walk is
      // short because low slots free and occupy most often).
      uint32_t succ = free_head_;
      while (succ != kNoSlot && succ < s) succ = free_next_[succ];
      const uint32_t pred = succ == kNoSlot ? free_tail_ : free_prev_[succ];
      free_next_[s] = succ;
      free_prev_[s] = pred;
      if (pred == kNoSlot) {
        free_head_ = s;
      } else {
        free_next_[pred] = s;
      }
      if (succ == kNoSlot) {
        free_tail_ = s;
      } else {
        free_prev_[succ] = s;
      }
    } else {
      const uint32_t p = free_prev_[s], n = free_next_[s];
      if (p == kNoSlot) {
        free_head_ = n;
      } else {
        free_next_[p] = n;
      }
      if (n == kNoSlot) {
        free_tail_ = p;
      } else {
        free_prev_[n] = p;
      }
      free_next_[s] = free_prev_[s] = kNoSlot;
    }
    in_free_[s] = want;
  }

  std::vector<uint32_t> AvailableSlots() const {
    std::vector<uint32_t> out;
    if (options_.indexed_queues) {
      for (uint32_t s = free_head_; s != kNoSlot; s = free_next_[s]) {
        out.push_back(s);
      }
      return out;
    }
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (SlotFree(s)) out.push_back(s);
    }
    return out;
  }

  /// Mirrors the run-to-completion slot rule: among free slots, the one
  /// free the longest (lowest index on ties); under affinity, the warmest
  /// (ties by the blind rule).
  uint32_t ChooseSlot(const std::vector<uint32_t>& available,
                      const std::string& workload) const {
    uint32_t slot = available[0];
    for (uint32_t s : available) {
      if (free_since_[s] < free_since_[slot]) slot = s;
    }
    if (options_.affinity_weight > 0.0) {
      double best_warm = -1.0;
      for (uint32_t s : available) {
        const double w = executor_->WarmFraction(workload, s);
        if (w > best_warm ||
            (w == best_warm && free_since_[s] < free_since_[slot])) {
          best_warm = w;
          slot = s;
        }
      }
    }
    return slot;
  }

  PendingQueue::WarmthFn MakeWarmthFn(
      const std::vector<uint32_t>& available) const {
    if (options_.affinity_weight <= 0.0) return nullptr;
    return [this, &available](const std::string& workload_id) {
      double best = 0.0;
      for (uint32_t s : available) {
        best = std::max(best, executor_->WarmFraction(workload_id, s));
      }
      return best;
    };
  }

  /// Dispatches the highest-priority available work onto a free slot at
  /// `now`: interactive queries first, then preempted remainders, then
  /// fresh batch work (which may instead open a formation hold). Returns
  /// false when nothing could start.
  dana::Result<bool> TryDispatchOne(dana::SimTime now) {
    std::vector<uint32_t> available = AvailableSlots();
    if (available.empty() && !interactive_.empty()) {
      // Interactive work outranks batch formation: with every free slot
      // held, seize one — its members return to the batch queue (never
      // dispatched, nothing charged) and the slot serves the interactive
      // query. Holds on other slots keep their windows.
      for (uint32_t s = 0; s < options_.slots && available.empty(); ++s) {
        if (!holds_[s].active) continue;
        for (size_t m : holds_[s].members) batch_.Restore(m);
        holds_[s].members.clear();
        holds_[s].active = false;
        SyncSlot(s);
        available.push_back(s);
      }
    }
    if (available.empty()) return false;
    const PendingQueue::WarmthFn warmth = MakeWarmthFn(available);

    if (!interactive_.empty()) {
      std::vector<size_t> members;
      members.push_back(interactive_.Pop(now, warmth));
      const QueryRequest& head = requests_[members[0]];
      if (options_.max_batch > 1) {
        interactive_.TakeSameClass(wids_[members[0]], options_.max_batch - 1,
                                   &members);
      }
      const uint32_t slot = ChooseSlot(available, head.workload_id);
      return DispatchBatch(std::move(members), QueryClass::kInteractive, slot,
                           now);
    }

    if (!continuations_.empty()) {
      // Resume the preempted remainder with the earliest original arrival.
      size_t pick = 0;
      auto key = [&](size_t c) {
        const QueryRequest& r = requests_[continuations_[c].members[0]];
        return std::make_pair(r.arrival, r.id);
      };
      for (size_t c = 1; c < continuations_.size(); ++c) {
        if (key(c) < key(pick)) pick = c;
      }
      RunState run = std::move(continuations_[pick]);
      continuations_.erase(continuations_.begin() +
                           static_cast<ptrdiff_t>(pick));
      const uint32_t slot =
          ChooseSlot(available, run.exec->batch().workload_id);
      return ResumeDispatch(std::move(run), slot, now);
    }

    if (!batch_.empty()) {
      std::vector<size_t> members;
      members.push_back(batch_.Pop(now, warmth));
      const QueryRequest& head = requests_[members[0]];
      if (options_.max_batch > 1) {
        batch_.TakeSameClass(wids_[members[0]], options_.max_batch - 1,
                             &members);
      }
      const uint32_t slot = ChooseSlot(available, head.workload_id);
      if (options_.batch_window > dana::SimTime::Zero() &&
          options_.max_batch > 1 &&
          members.size() < options_.max_batch &&
          next_arrival_ < requests_.size()) {
        // Hold the slot open: future same-algorithm arrivals join until
        // the batch fills or the window expires.
        holds_[slot].active = true;
        holds_[slot].members = std::move(members);
        holds_[slot].expires = now + options_.batch_window;
        SyncSlot(slot);
        return true;
      }
      return DispatchBatch(std::move(members), QueryClass::kBatch, slot, now);
    }
    return false;
  }

  dana::Result<bool> DispatchBatch(std::vector<size_t> members, QueryClass cls,
                                   uint32_t slot, dana::SimTime now) {
    const QueryRequest& head = requests_[members[0]];
    const uint32_t head_wid = wids_[members[0]];
    QueryBatch batch;
    batch.workload_id = head.workload_id;
    batch.slot = slot;
    for (size_t m : members) batch.query_ids.push_back(requests_[m].id);
    DANA_ASSIGN_OR_RETURN(std::unique_ptr<BatchExecution> exec,
                          executor_->Begin(batch));

    const CompileCharge charge =
        compile_ready_.Charge(head_wid, now, exec->compile_cost());
    const dana::SimTime compile_wait = charge.wait;
    const bool head_miss = charge.head_miss;

    Active a;
    a.run.cls = cls;
    a.run.members = std::move(members);
    a.curve_origin = now + compile_wait;
    DANA_ASSIGN_OR_RETURN(dana::SimTime remaining, exec->PeekService(0));
    a.completion = a.curve_origin + remaining;
    for (size_t j = 0; j < a.run.members.size(); ++j) {
      const QueryRequest& req = requests_[a.run.members[j]];
      QueryStat stat;
      stat.id = req.id;
      stat.workload_id = req.workload_id;
      stat.query_class = req.query_class;
      stat.slot = slot;
      stat.arrival = req.arrival;
      stat.start = now;
      stat.compile = compile_wait;
      stat.compile_hit = !(head_miss && j == 0);
      stat.batch_size = static_cast<uint32_t>(a.run.members.size());
      stat.warm_fraction = exec->warm_fraction();
      stat.os_warm_fraction = exec->os_warm_fraction();
      stat.residency_modeled = exec->residency_modeled();
      if (stat.compile_hit) {
        ++report_->compile_hits;
      } else {
        ++report_->compile_misses;
      }
      a.run.stat_idx.push_back(report_->queries.size());
      report_->queries.push_back(std::move(stat));
    }
    ++report_->batches;
    if (options_.tracer != nullptr && compile_wait > dana::SimTime::Zero()) {
      options_.tracer->Span(slot, "compile " + head.workload_id, "compile",
                            now, a.curve_origin, {{"hit", !head_miss}});
    }
    if (options_.tracer != nullptr) {
      options_.tracer->Instant(
          slot, "dispatch " + head.workload_id, "dispatch", now,
          {{"queries", static_cast<uint64_t>(a.run.members.size())},
           {"class", std::string(QueryClassName(cls))}});
    }
    a.run.exec = std::move(exec);
    active_[slot] = std::move(a);
    SyncSlot(slot);
    return true;
  }

  dana::Result<bool> ResumeDispatch(RunState run, uint32_t slot,
                                    dana::SimTime now) {
    DANA_RETURN_NOT_OK(run.exec->Resume(slot));
    Active a;
    a.curve_origin = now;  // no compile on resume: the design is cached
    DANA_ASSIGN_OR_RETURN(dana::SimTime remaining, run.exec->PeekService(0));
    a.completion = now + remaining;
    a.run = std::move(run);
    for (size_t idx : a.run.stat_idx) report_->queries[idx].slot = slot;
    obs::Count(options_.metrics, "sched.resumes");
    if (options_.tracer != nullptr) {
      options_.tracer->Instant(
          slot, "resume " + a.run.exec->batch().workload_id, "resume", now,
          {{"epochs_run",
            static_cast<uint64_t>(a.run.exec->epochs_run())}});
    }
    active_[slot] = std::move(a);
    SyncSlot(slot);
    return true;
  }

  /// A candidate victim's first usable quantum boundary, found by FindArm.
  struct ArmPlan {
    uint32_t epochs = 0;      ///< epochs to run until the boundary
    dana::SimTime boundary;   ///< the boundary on the simulated clock
    dana::SimTime freed;      ///< boundary + context-switch cost
  };

  /// Arms one epoch-boundary preemption per waiting interactive query:
  /// the longest-remaining unarmed batch-class run with a usable boundary
  /// is checkpointed at its next quantum boundary at or after `now` —
  /// provided freeing it there (boundary + context switch) actually beats
  /// letting it finish. Whether a run can arm depends on its remaining
  /// *epochs*, not its completion time, so when the longest-remaining run
  /// has no boundary left the next-longest candidates still get their
  /// turn. Ties on remaining time break by (1) checkpoint-to-boundary
  /// distance — the victim whose usable boundary frees a slot soonest
  /// serves the waiting query fastest and yields the most remaining work
  /// per context switch, so an equal-length run one epoch short of its
  /// completion no longer gets checkpointed while a mid-quantum run with a
  /// near boundary sits untouched — then (2) expected cold-resume
  /// residency loss: the extra service a cold resume pays versus the
  /// victim's current warmth, priced by the executor's own interpolation
  /// (EstimateAtWarmth at 0 minus at the current warm fraction), so a
  /// barely-warm huge table outweighs a fully-warm tiny one — then
  /// (3) slot index, keeping the schedule deterministic.
  dana::Status ArmPreemptions(dana::SimTime now) {
    if (options_.preemption_quantum_epochs == 0) return Status::OK();
    size_t armed = 0;
    std::vector<uint32_t> candidates;
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (!active_[s].has_value()) continue;
      if (active_[s]->preempt_armed) {
        ++armed;
      } else if (active_[s]->run.cls == QueryClass::kBatch) {
        candidates.push_back(s);
      }
    }
    if (candidates.empty() || interactive_.size() <= armed) {
      return Status::OK();
    }
    // Rank every candidate before choosing: the tie-breaks need each run's
    // boundary plan, not just its completion time.
    struct Ranked {
      uint32_t slot;
      bool usable;
      ArmPlan plan;
      double residency_loss;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(candidates.size());
    for (uint32_t s : candidates) {
      Ranked r;
      r.slot = s;
      DANA_ASSIGN_OR_RETURN(auto plan, FindArm(*active_[s], now));
      r.usable = plan.has_value();
      if (r.usable) r.plan = *plan;
      // What a cold resume would throw away: the extra service the
      // executor prices at warmth 0 over the victim's current warmth (the
      // re-streamed I/O the resident share was saving). Counted only for
      // residency_modeled executions — unmodeled warmth is a static
      // constant, not a loss — with the bare warm fraction as the
      // fallback when the executor cannot price warmth.
      r.residency_loss = 0.0;
      if (active_[s]->run.exec->residency_modeled()) {
        const std::string& id = active_[s]->run.exec->batch().workload_id;
        const double warm = executor_->WarmFraction(id, s);
        auto cold_est = executor_->EstimateAtWarmth(id, 0.0);
        auto warm_est = executor_->EstimateAtWarmth(id, warm);
        r.residency_loss = cold_est.ok() && warm_est.ok()
                               ? cold_est->seconds() - warm_est->seconds()
                               : warm;
      }
      ranked.push_back(r);
    }
    std::stable_sort(
        ranked.begin(), ranked.end(), [&](const Ranked& a, const Ranked& b) {
          const dana::SimTime ca = active_[a.slot]->completion;
          const dana::SimTime cb = active_[b.slot]->completion;
          if (ca != cb) return ca > cb;  // longest remaining first
          if (a.usable != b.usable) return a.usable;  // armable first
          if (a.usable && a.plan.boundary != b.plan.boundary) {
            return a.plan.boundary < b.plan.boundary;  // nearest boundary
          }
          if (a.residency_loss != b.residency_loss) {
            return a.residency_loss < b.residency_loss;  // least to lose
          }
          return a.slot < b.slot;
        });
    for (const Ranked& r : ranked) {
      if (interactive_.size() <= armed) break;
      if (!r.usable) continue;
      Active& a = *active_[r.slot];
      a.preempt_armed = true;
      a.preempt_epochs = r.plan.epochs;
      a.preempt_free = r.plan.freed;
      ++armed;
    }
    return Status::OK();
  }

  /// Finds `a`'s first usable quantum boundary at or after `now`, or
  /// nullopt when none beats letting the run finish. Boundaries sit at
  /// *global* epoch indices — multiples of the quantum counted from the
  /// run's original dispatch (its absolute epochs_run position), not from
  /// the current re-dispatch — so a resumed run keeps its original
  /// boundary phase no matter where a checkpoint cut it.
  dana::Result<std::optional<ArmPlan>> FindArm(const Active& a,
                                               dana::SimTime now) const {
    const uint32_t q = options_.preemption_quantum_epochs;
    const uint32_t done = a.run.exec->epochs_run();
    const uint32_t total = a.run.exec->total_epochs();
    for (uint32_t global = (done / q + 1) * q; global < total; global += q) {
      const uint32_t j = global - done;
      DANA_ASSIGN_OR_RETURN(dana::SimTime through, a.run.exec->PeekService(j));
      const dana::SimTime boundary = a.curve_origin + through;
      if (boundary < now) continue;  // boundary already passed
      const dana::SimTime freed = boundary + options_.context_switch_cost;
      if (freed >= a.completion) {
        return std::optional<ArmPlan>();  // cheaper to let it finish
      }
      return std::optional<ArmPlan>(ArmPlan{j, boundary, freed});
    }
    return std::optional<ArmPlan>();
  }

  bool NextEventTime(dana::SimTime* next) const {
    bool any = false;
    auto consider = [&](dana::SimTime t) {
      if (!any || t < *next) *next = t;
      any = true;
    };
    if (next_arrival_ < requests_.size()) {
      consider(requests_[next_arrival_].arrival);
    }
    if (closed_.has_value() && !closed_->due.empty()) {
      consider(closed_->due.top().first);
    }
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (active_[s].has_value()) {
        consider(active_[s]->preempt_armed ? active_[s]->preempt_free
                                           : active_[s]->completion);
      }
      if (holds_[s].active) consider(holds_[s].expires);
    }
    return any;
  }

  dana::Status ProcessSlotEvents(dana::SimTime now) {
    // Completions first: a slot finishing on this tick serves waiting
    // interactive queries for free. Armed preemptions then fire only for
    // demand beyond the slots already freed, so two boundaries landing on
    // one tick cannot both pay a context switch for a single waiting
    // query.
    size_t freed = 0;
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (!active_[s].has_value()) continue;
      if (!active_[s]->preempt_armed && active_[s]->completion <= now) {
        DANA_RETURN_NOT_OK(Complete(s, now));
        ++freed;
      }
    }
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (!active_[s].has_value()) continue;
      Active& a = *active_[s];
      if (a.preempt_armed && a.preempt_free <= now) {
        if (interactive_.size() <= freed) {
          // The demand that armed this was (or will be) served by slots
          // already freed: cancel instead of paying the context switch
          // for nothing (a later arrival re-arms at its next boundary).
          a.preempt_armed = false;
          continue;
        }
        DANA_RETURN_NOT_OK(Preempt(s, now));
        ++freed;
      }
    }
    return Status::OK();
  }

  dana::Status Complete(uint32_t slot, dana::SimTime now) {
    Active a = std::move(*active_[slot]);
    active_[slot].reset();
    free_since_[slot] = now;
    SyncSlot(slot);
    DANA_ASSIGN_OR_RETURN(SliceCost slice, a.run.exec->NextSlice(0));
    a.run.service_acc += slice.service;
    a.run.shared_acc += slice.shared;
    a.run.per_query_acc += slice.per_query;
    for (size_t idx : a.run.stat_idx) {
      QueryStat& stat = report_->queries[idx];
      stat.slot = slot;
      stat.completion = a.completion;
      stat.service = a.run.service_acc;
      stat.shared_service = a.run.shared_acc;
      stat.private_service = a.run.per_query_acc;
      stat.preemptions = a.run.preemptions;
      stat.preempt_overhead = a.run.preempt_overhead_acc;
    }
    report_->shared_service += a.run.shared_acc;
    report_->private_service +=
        a.run.per_query_acc * static_cast<double>(a.run.members.size());
    report_->makespan = dana::SimTime::Max(report_->makespan, a.completion);
    if (closed_.has_value()) {
      // Think-time feedback: each member's session schedules its next
      // submission off this completion. This is exactly the dependency the
      // run-to-completion closed loop could not express under preemption —
      // the completion is only known now, at the event, after any
      // boundary checkpoints truncated or resumed the run.
      for (size_t m : a.run.members) {
        const size_t s = closed_->owner[m];
        if (closed_->next[s] < (*closed_->sessions)[s].size()) {
          closed_->due.emplace(a.completion + closed_->think_time, s);
        }
      }
    }
    obs::Count(options_.metrics, "sched.slices");
    if (options_.tracer != nullptr) {
      options_.tracer->Span(
          slot, "run " + a.run.exec->batch().workload_id, "slice",
          a.curve_origin, a.completion,
          {{"queries", static_cast<uint64_t>(a.run.members.size())},
           {"epochs_run", static_cast<uint64_t>(a.run.exec->epochs_run())},
           {"final", true}});
    }
    return Status::OK();
  }

  dana::Status Preempt(uint32_t slot, dana::SimTime now) {
    Active a = std::move(*active_[slot]);
    active_[slot].reset();
    free_since_[slot] = now;
    SyncSlot(slot);
    DANA_ASSIGN_OR_RETURN(SliceCost slice,
                          a.run.exec->NextSlice(a.preempt_epochs));
    DANA_RETURN_NOT_OK(a.run.exec->Checkpoint());
    a.run.service_acc += slice.service;
    a.run.shared_acc += slice.shared;
    a.run.per_query_acc += slice.per_query;
    ++a.run.preemptions;
    a.run.preempt_overhead_acc += options_.context_switch_cost;
    ++report_->preemptions;
    report_->preemption_overhead += options_.context_switch_cost;
    obs::Count(options_.metrics, "sched.slices");
    obs::Observe(options_.metrics, "sched.ctx_switch_s",
                 options_.context_switch_cost.seconds());
    if (options_.tracer != nullptr) {
      const dana::SimTime boundary =
          a.preempt_free - options_.context_switch_cost;
      const std::string& id = a.run.exec->batch().workload_id;
      options_.tracer->Span(
          slot, "run " + id, "slice", a.curve_origin, boundary,
          {{"queries", static_cast<uint64_t>(a.run.members.size())},
           {"epochs_run", static_cast<uint64_t>(a.run.exec->epochs_run())},
           {"final", false}});
      options_.tracer->Instant(slot, "checkpoint " + id, "preempt", boundary);
      options_.tracer->Span(slot, "ctx-switch", "preempt", boundary,
                            a.preempt_free);
    }
    continuations_.push_back(std::move(a.run));
    return Status::OK();
  }

  dana::Status ProcessHoldExpiries(dana::SimTime now) {
    for (uint32_t s = 0; s < options_.slots; ++s) {
      if (!holds_[s].active || holds_[s].expires > now) continue;
      std::vector<size_t> members = std::move(holds_[s].members);
      holds_[s].active = false;
      SyncSlot(s);
      DANA_RETURN_NOT_OK(
          DispatchBatch(std::move(members), QueryClass::kBatch, s, now)
              .status());
    }
    return Status::OK();
  }

  dana::Status AdmitArrivals(dana::SimTime now) {
    if (closed_.has_value()) {
      // Materialize every due submission into the request stream first, in
      // (submit time, session index) order — the heap's order. The clock
      // only ever advances to the earliest pending event (NextEventTime
      // includes the heap top), so appended arrivals keep the stream's
      // nondecreasing-arrival invariant that the admission walk below and
      // the batch-window hold rely on.
      while (!closed_->due.empty() && closed_->due.top().first <= now) {
        const auto [submit, s] = closed_->due.top();
        closed_->due.pop();
        QueryRequest req;
        req.id = closed_->next_id++;
        req.workload_id = (*closed_->sessions)[s][closed_->next[s]];
        req.arrival = submit;
        req.query_class = closed_->session_classes->empty()
                              ? QueryClass::kBatch
                              : (*closed_->session_classes)[s];
        closed_->wids->push_back(closed_->ids->Find(req.workload_id));
        closed_->requests->push_back(std::move(req));
        closed_->owner.push_back(s);
        ++closed_->next[s];
      }
    }
    while (next_arrival_ < requests_.size() &&
           requests_[next_arrival_].arrival <= now) {
      const size_t idx = next_arrival_++;
      const QueryRequest& req = requests_[idx];
      if (req.query_class == QueryClass::kInteractive) {
        // Queued here; the dispatch phase serves it from a free slot and
        // seizes a batch-formation hold only when every free slot is held
        // (TryDispatchOne), so holds survive while idle capacity exists.
        interactive_.Push(idx);
        continue;
      }
      // Batch arrival: join an open formation hold for its algorithm if
      // one has room (lowest slot first); dispatch the hold the moment it
      // fills.
      bool joined = false;
      for (uint32_t s = 0; s < options_.slots && !joined; ++s) {
        if (!holds_[s].active) continue;
        if (wids_[holds_[s].members[0]] != wids_[idx]) continue;
        holds_[s].members.push_back(idx);
        joined = true;
        if (holds_[s].members.size() >= options_.max_batch) {
          std::vector<size_t> members = std::move(holds_[s].members);
          holds_[s].active = false;
          SyncSlot(s);
          DANA_RETURN_NOT_OK(
              DispatchBatch(std::move(members), QueryClass::kBatch, s, now)
                  .status());
        }
      }
      if (!joined) batch_.Push(idx);
    }
    return Status::OK();
  }

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  const SchedulerOptions& options_;
  QueryExecutor* executor_;
  const std::vector<QueryRequest>& requests_;
  const std::vector<uint32_t>& wids_;
  ScheduleReport* report_;
  PendingQueue interactive_;
  PendingQueue batch_;
  std::vector<std::optional<Active>> active_;
  std::vector<Hold> holds_;
  std::vector<dana::SimTime> free_since_;
  std::vector<RunState> continuations_;
  CompileReadyTable compile_ready_;
  size_t next_arrival_ = 0;

  /// Closed-loop feeder state (EnableClosedLoop); nullopt on the open
  /// stream. `due` is a min-heap of (submit time, session): a session
  /// appears at most once, pushed when its previous query's completion
  /// event fires.
  struct ClosedLoop {
    std::vector<QueryRequest>* requests = nullptr;
    std::vector<uint32_t>* wids = nullptr;
    const dana::Interner* ids = nullptr;
    const std::vector<std::vector<std::string>>* sessions = nullptr;
    const std::vector<QueryClass>* session_classes = nullptr;
    dana::SimTime think_time;
    std::vector<size_t> next;   ///< per-session script cursor
    std::vector<size_t> owner;  ///< request index -> session index
    std::priority_queue<std::pair<dana::SimTime, size_t>,
                        std::vector<std::pair<dana::SimTime, size_t>>,
                        std::greater<std::pair<dana::SimTime, size_t>>>
        due;
    uint64_t next_id = 0;
  };
  std::optional<ClosedLoop> closed_;
  // Intrusive free-slot list (indexed mode): doubly linked over slot
  // indices, kept in ascending order so AvailableSlots() enumerates slots
  // in the same order the reference scan does.
  uint32_t free_head_ = kNoSlot, free_tail_ = kNoSlot;
  std::vector<uint32_t> free_next_, free_prev_;
  std::vector<uint8_t> in_free_;
};

}  // namespace

Result<ScheduleReport> Scheduler::Run(std::vector<QueryRequest> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const QueryRequest& a, const QueryRequest& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.id < b.id;
                   });

  // Intern every workload id once at admission: the engines key their
  // estimate tables, compile charging, and per-class queues by these dense
  // ids, so nothing on the per-event path hashes or compares strings.
  dana::Interner ids;
  std::vector<uint32_t> wids;
  wids.reserve(requests.size());
  for (const QueryRequest& r : requests) wids.push_back(ids.Intern(r.workload_id));

  // SJF orders by a-priori estimates; resolve them once per workload (in
  // first-appearance order, matching the historical resolution order) so
  // admission decisions are O(queue), not O(executor).
  std::vector<dana::SimTime> estimates_by_id;
  if (options_.policy == Policy::kSjf) {
    estimates_by_id.resize(ids.size());
    std::vector<uint8_t> resolved(ids.size(), 0);
    for (size_t i = 0; i < requests.size(); ++i) {
      const uint32_t w = wids[i];
      if (resolved[w]) continue;
      DANA_ASSIGN_OR_RETURN(estimates_by_id[w],
                            executor_->Estimate(requests[i].workload_id));
      resolved[w] = 1;
    }
  }

  if (options_.preemption_quantum_epochs != 0 ||
      options_.batch_window > dana::SimTime::Zero()) {
    return RunPreemptive(std::move(requests), ids, wids, estimates_by_id);
  }

  if (options_.runtime_mode == RuntimeMode::kThreaded) {
    return RunThreadedRtc(std::move(requests), ids, wids, estimates_by_id);
  }

  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(requests.size());

  PendingQueue pending(options_, requests, wids, estimates_by_id,
                       FirstAppearanceOrder(wids, ids.size()),
                       MakeEstimateAtFn(options_, executor_, ids,
                                        estimates_by_id));
  DispatchEngine engine(options_, executor_, requests, wids, &report);
  size_t next_arrival = 0;
  // Monotone dispatch clock: a query admitted during an idle advance must
  // not start before its arrival just because another slot's free time is
  // still in the past.
  dana::SimTime clock;

  while (next_arrival < requests.size() || !pending.empty()) {
    const uint32_t slot = engine.NextSlot();
    dana::SimTime now = dana::SimTime::Max(engine.slot_free(slot), clock);
    if (pending.empty()) {
      // Idle until the next request arrives.
      now = dana::SimTime::Max(now, requests[next_arrival].arrival);
    }
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now) {
      pending.Push(next_arrival++);
    }
    DANA_RETURN_NOT_OK(engine.Dispatch(pending, now).status());
    clock = now;
  }
  PublishReportMetrics(report, options_.metrics);
  return report;
}

Result<ScheduleReport> Scheduler::RunPreemptive(
    std::vector<QueryRequest> requests, const dana::Interner& ids,
    const std::vector<uint32_t>& wids,
    const std::vector<dana::SimTime>& estimates_by_id) {
  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(requests.size());

  // Threaded runtime: every execution-state call runs on the owning
  // slot's worker thread through the proxy, awaited in oracle order, so
  // the event-driven schedule is unchanged (see RuntimeMode::kThreaded).
  // The pool outlives the proxy and the engine; its destructor joins.
  std::unique_ptr<SlotWorkerPool> workers;
  std::unique_ptr<WorkerProxyExecutor> proxy;
  QueryExecutor* exec = executor_;
  if (options_.runtime_mode == RuntimeMode::kThreaded) {
    executor_->PrepareSlots(options_.slots);
    workers = std::make_unique<SlotWorkerPool>(options_.slots);
    proxy = std::make_unique<WorkerProxyExecutor>(executor_, workers.get());
    exec = proxy.get();
  }

  PreemptiveEngine engine(options_, exec, requests, wids,
                          estimates_by_id,
                          MakeEstimateAtFn(options_, exec, ids,
                                           estimates_by_id),
                          FirstAppearanceOrder(wids, ids.size()), &report);
  DANA_RETURN_NOT_OK(engine.Run());
  PublishReportMetrics(report, options_.metrics);
  return report;
}

Result<ScheduleReport> Scheduler::RunClosedLoop(
    const std::vector<std::vector<std::string>>& sessions,
    dana::SimTime think_time,
    const std::vector<QueryClass>& session_classes) {
  if (!session_classes.empty() && session_classes.size() != sessions.size()) {
    return Status::InvalidArgument(
        "session_classes must be empty or have one entry per session (got " +
        std::to_string(session_classes.size()) + " classes for " +
        std::to_string(sessions.size()) + " sessions)");
  }
  // Remaining limitation (ROADMAP "Closed-loop preemption", batch-window
  // half): a formation hold defers the completions closed-loop sessions
  // submit from, and the hold logic keys off the *open-stream* arrival
  // horizon (next_arrival_), which a think-time feeder cannot pre-compute.
  // Preemption itself composes now — the event-driven engine materializes
  // each submission at its predecessor's completion event — so only this
  // knob still gets an actionable rejection naming the option to drop.
  if (options_.batch_window > dana::SimTime::Zero()) {
    return Status::InvalidArgument(
        "batch_window is an open-stream feature: a held slot defers the "
        "completions closed-loop sessions submit from; set the window to "
        "zero (see ROADMAP closed-loop preemption follow-up)");
  }
  if (options_.preemption_quantum_epochs != 0) {
    return RunClosedLoopPreemptive(sessions, think_time, session_classes);
  }
  size_t total = 0;
  for (const auto& script : sessions) total += script.size();

  // Intern every script id up front (the whole catalog is known before the
  // first submission) in interleaved first-submission order — session 0's
  // first query, session 1's first, ... — which is also the RR class
  // rotation order.
  dana::Interner ids;
  std::vector<uint32_t> submit_order_wids;
  for (size_t j = 0;; ++j) {
    bool any = false;
    for (const auto& script : sessions) {
      if (j < script.size()) {
        submit_order_wids.push_back(ids.Intern(script[j]));
        any = true;
      }
    }
    if (!any) break;
  }

  std::vector<dana::SimTime> estimates_by_id;
  if (options_.policy == Policy::kSjf) {
    estimates_by_id.resize(ids.size());
    std::vector<uint8_t> resolved(ids.size(), 0);
    // Historical resolution order: script by script.
    for (const auto& script : sessions) {
      for (const std::string& id : script) {
        const uint32_t w = ids.Find(id);
        if (resolved[w]) continue;
        DANA_ASSIGN_OR_RETURN(estimates_by_id[w], executor_->Estimate(id));
        resolved[w] = 1;
      }
    }
  }

  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(total);

  // Per-session state. A session has at most one query in the system: the
  // next submission time is known as soon as the previous query dispatches
  // (its completion is computed then), so submissions never block on
  // unknown events.
  struct Session {
    size_t next = 0;                ///< next script position to submit
    dana::SimTime submit;           ///< when that query enters the queue
    bool outstanding = false;       ///< submitted but not yet dispatched
  };
  std::vector<Session> state(sessions.size());

  std::vector<QueryRequest> requests;
  requests.reserve(total);
  std::vector<uint32_t> wids;  ///< parallel to requests (grows with it)
  wids.reserve(total);
  std::vector<size_t> owner;  ///< request index -> session index
  owner.reserve(total);

  // Threaded runtime for the closed loop: proxy every dispatch onto its
  // slot's worker, awaited per call (submissions depend on completions, so
  // there is no same-tick overlap to exploit here).
  std::unique_ptr<SlotWorkerPool> workers;
  std::unique_ptr<WorkerProxyExecutor> proxy;
  QueryExecutor* exec = executor_;
  if (options_.runtime_mode == RuntimeMode::kThreaded) {
    executor_->PrepareSlots(options_.slots);
    workers = std::make_unique<SlotWorkerPool>(options_.slots);
    proxy = std::make_unique<WorkerProxyExecutor>(executor_, workers.get());
    exec = proxy.get();
  }

  PendingQueue pending(options_, requests, wids, estimates_by_id,
                       FirstAppearanceOrder(submit_order_wids, ids.size()),
                       MakeEstimateAtFn(options_, exec, ids,
                                        estimates_by_id));
  DispatchEngine engine(options_, exec, requests, wids, &report);
  uint64_t next_id = 0;
  // Monotone dispatch clock (see Run): keeps a second idle slot from
  // dispatching a session's submission before its submit time.
  dana::SimTime clock;

  auto earliest_submission = [&](dana::SimTime* when) {
    bool any = false;
    for (size_t s = 0; s < state.size(); ++s) {
      if (state[s].next >= sessions[s].size() || state[s].outstanding) {
        continue;
      }
      if (!any || state[s].submit < *when) *when = state[s].submit;
      any = true;
    }
    return any;
  };

  while (true) {
    const uint32_t slot = engine.NextSlot();
    dana::SimTime now = dana::SimTime::Max(engine.slot_free(slot), clock);
    if (pending.empty()) {
      dana::SimTime next_submit;
      if (!earliest_submission(&next_submit)) break;  // all sessions drained
      now = dana::SimTime::Max(now, next_submit);
    }
    // Admit every session whose next submission is due, in (submit time,
    // session index) order so the queue stays arrival-ordered.
    std::vector<size_t> ready;
    for (size_t s = 0; s < state.size(); ++s) {
      if (state[s].next < sessions[s].size() && !state[s].outstanding &&
          state[s].submit <= now) {
        ready.push_back(s);
      }
    }
    std::stable_sort(ready.begin(), ready.end(), [&](size_t a, size_t b) {
      return state[a].submit < state[b].submit;
    });
    for (size_t s : ready) {
      QueryRequest req;
      req.id = next_id++;
      req.workload_id = sessions[s][state[s].next];
      req.arrival = state[s].submit;
      req.query_class = session_classes.empty() ? QueryClass::kBatch
                                                : session_classes[s];
      wids.push_back(ids.Find(req.workload_id));
      requests.push_back(std::move(req));
      owner.push_back(s);
      pending.Push(requests.size() - 1);
      ++state[s].next;
      state[s].outstanding = true;
    }
    DANA_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                          engine.Dispatch(pending, now));
    clock = now;
    for (size_t m : outcome.members) {
      Session& s = state[owner[m]];
      s.outstanding = false;
      s.submit = outcome.completion + think_time;
    }
  }
  PublishReportMetrics(report, options_.metrics);
  return report;
}

Result<ScheduleReport> Scheduler::RunClosedLoopPreemptive(
    const std::vector<std::vector<std::string>>& sessions,
    dana::SimTime think_time,
    const std::vector<QueryClass>& session_classes) {
  size_t total = 0;
  for (const auto& script : sessions) total += script.size();

  // Same interning and estimate-resolution orders as the run-to-completion
  // closed loop (interleaved first-submission interning, script-by-script
  // estimates), so the two paths price and rotate classes identically and
  // agree bit for bit whenever no preemption actually fires.
  dana::Interner ids;
  std::vector<uint32_t> submit_order_wids;
  for (size_t j = 0;; ++j) {
    bool any = false;
    for (const auto& script : sessions) {
      if (j < script.size()) {
        submit_order_wids.push_back(ids.Intern(script[j]));
        any = true;
      }
    }
    if (!any) break;
  }

  std::vector<dana::SimTime> estimates_by_id;
  if (options_.policy == Policy::kSjf) {
    estimates_by_id.resize(ids.size());
    std::vector<uint8_t> resolved(ids.size(), 0);
    for (const auto& script : sessions) {
      for (const std::string& id : script) {
        const uint32_t w = ids.Find(id);
        if (resolved[w]) continue;
        DANA_ASSIGN_OR_RETURN(estimates_by_id[w], executor_->Estimate(id));
        resolved[w] = 1;
      }
    }
  }

  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(total);

  // The engine borrows these vectors by reference and the feeder appends
  // to them through EnableClosedLoop; entries are always addressed by
  // index, so growth is safe (same contract as PendingQueue's).
  std::vector<QueryRequest> requests;
  std::vector<uint32_t> wids;
  requests.reserve(total);
  wids.reserve(total);

  std::unique_ptr<SlotWorkerPool> workers;
  std::unique_ptr<WorkerProxyExecutor> proxy;
  QueryExecutor* exec = executor_;
  if (options_.runtime_mode == RuntimeMode::kThreaded) {
    executor_->PrepareSlots(options_.slots);
    workers = std::make_unique<SlotWorkerPool>(options_.slots);
    proxy = std::make_unique<WorkerProxyExecutor>(executor_, workers.get());
    exec = proxy.get();
  }

  PreemptiveEngine engine(options_, exec, requests, wids, estimates_by_id,
                          MakeEstimateAtFn(options_, exec, ids,
                                           estimates_by_id),
                          FirstAppearanceOrder(submit_order_wids, ids.size()),
                          &report);
  engine.EnableClosedLoop(&requests, &wids, &ids, &sessions, &session_classes,
                          think_time);
  DANA_RETURN_NOT_OK(engine.Run());
  PublishReportMetrics(report, options_.metrics);
  return report;
}

Result<ScheduleReport> Scheduler::RunThreadedRtc(
    std::vector<QueryRequest> requests, const dana::Interner& ids,
    const std::vector<uint32_t>& wids,
    const std::vector<dana::SimTime>& estimates_by_id) {
  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(requests.size());

  executor_->PrepareSlots(options_.slots);
  SlotWorkerPool workers(options_.slots);

  PendingQueue pending(options_, requests, wids, estimates_by_id,
                       FirstAppearanceOrder(wids, ids.size()),
                       MakeEstimateAtFn(options_, executor_, ids,
                                        estimates_by_id));
  DispatchEngine engine(options_, executor_, requests, wids, &report);

  // The overlap protocol. Decisions (queue pops, slot choice) stay on this
  // thread in oracle order; each decision's executor pricing ships to its
  // slot's worker as a ticket. Further decisions are issued only while
  // they land on the *current* tick with a free (non-busy) slot — at a
  // shared tick the oracle's decision inputs are independent of the
  // in-flight pricings: busy slots are excluded from slot choice and
  // warmth reads in both modes (their committed free times exceed the
  // tick, costs being strictly positive), and per-slot executor state is
  // partitioned by slot. Anything that would advance time instead commits
  // the head ticket — Charge, stats, slot free time, makespan, spans — in
  // ticket order, reproducing the simulated report bit for bit (including
  // float summation order).
  struct Ticket {
    DispatchEngine::Decision decision;
    dana::SimTime now;
    std::shared_ptr<WaitCell<dana::Result<BatchCost>>> cell;
  };
  std::deque<Ticket> inflight;
  std::vector<uint8_t> busy(options_.slots, 0);

  size_t next_arrival = 0;
  dana::SimTime clock;

  auto admit = [&](dana::SimTime now) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now) {
      pending.Push(next_arrival++);
    }
  };
  auto issue = [&](dana::SimTime now) {
    Ticket t;
    t.decision = engine.Decide(pending, now, &busy);
    t.now = now;
    t.cell = std::make_shared<WaitCell<dana::Result<BatchCost>>>();
    busy[t.decision.slot] = 1;
    QueryExecutor* exec = executor_;
    workers.Post(t.decision.slot,
                 [exec, batch = t.decision.batch, cell = t.cell] {
                   cell->Set(exec->Dispatch(batch));
                 });
    inflight.push_back(std::move(t));
    clock = now;
  };
  auto commit_head = [&]() -> dana::Status {
    Ticket t = std::move(inflight.front());
    inflight.pop_front();
    dana::Result<BatchCost> cost = t.cell->Take();
    busy[t.decision.slot] = 0;
    if (!cost.ok()) return cost.status();
    return engine.Commit(std::move(t.decision), t.now, *cost).status();
  };

  while (true) {
    const bool work_left =
        next_arrival < requests.size() || !pending.empty();
    if (!work_left && inflight.empty()) break;
    bool issued = false;
    if (work_left) {
      if (inflight.empty()) {
        // Everything committed: this iteration is exactly the simulated
        // loop's, including idle advances to the next arrival.
        const uint32_t slot = engine.NextSlot();
        dana::SimTime now = dana::SimTime::Max(engine.slot_free(slot), clock);
        if (pending.empty()) {
          now = dana::SimTime::Max(now, requests[next_arrival].arrival);
        }
        admit(now);
        issue(now);
        issued = true;
      } else if (engine.HasFreeSlotAt(clock, busy)) {
        admit(clock);
        if (!pending.empty()) {
          issue(clock);
          issued = true;
        }
      }
    }
    if (!issued) {
      DANA_RETURN_NOT_OK(commit_head());
    }
  }
  PublishReportMetrics(report, options_.metrics);
  return report;
}

}  // namespace dana::sched
