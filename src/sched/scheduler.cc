#include "sched/scheduler.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/stats.h"

namespace dana::sched {

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFcfs:
      return "fcfs";
    case Policy::kSjf:
      return "sjf";
    case Policy::kRoundRobin:
      return "rr";
  }
  return "?";
}

Result<Policy> ParsePolicy(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "sjf") return Policy::kSjf;
  if (name == "rr" || name == "round-robin") return Policy::kRoundRobin;
  return Status::InvalidArgument("unknown policy '" + name +
                                 "' (want fcfs|sjf|rr)");
}

double ScheduleReport::ThroughputQps() const {
  if (queries.empty() || makespan.seconds() <= 0) return 0.0;
  return static_cast<double>(queries.size()) / makespan.seconds();
}

dana::SimTime ScheduleReport::MeanLatency() const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Latency().nanos());
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::MeanWait() const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Wait().nanos());
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::LatencyPercentile(double p) const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Latency().nanos());
  return dana::SimTime::Nanos(Percentile(std::move(ns), p));
}

Scheduler::Scheduler(SchedulerOptions options, QueryExecutor* executor)
    : options_(options), executor_(executor) {
  if (options_.slots == 0) options_.slots = 1;
}

namespace {

/// Pending queue with the policy-specific pick. Entries are indices into
/// the sorted request vector, kept in arrival order.
class PendingQueue {
 public:
  PendingQueue(Policy policy, const std::vector<QueryRequest>& requests,
               const std::map<std::string, dana::SimTime>& estimates)
      : policy_(policy), requests_(requests), estimates_(estimates) {
    if (policy_ == Policy::kRoundRobin) {
      // Class rotation order: first appearance in the request stream.
      std::set<std::string> seen;
      for (const QueryRequest& r : requests_) {
        if (seen.insert(r.workload_id).second) {
          class_order_.push_back(r.workload_id);
        }
      }
    }
  }

  bool empty() const { return pending_.empty(); }

  void Push(size_t request_index) { pending_.push_back(request_index); }

  /// Removes and returns the next request index under the policy.
  size_t Pop() {
    size_t at = 0;
    switch (policy_) {
      case Policy::kFcfs:
        break;  // arrival order == queue order
      case Policy::kSjf: {
        for (size_t i = 1; i < pending_.size(); ++i) {
          const dana::SimTime best =
              estimates_.at(requests_[pending_[at]].workload_id);
          const dana::SimTime cand =
              estimates_.at(requests_[pending_[i]].workload_id);
          if (cand < best) at = i;
        }
        break;
      }
      case Policy::kRoundRobin: {
        // Advance the cursor to the next class with queued work; take that
        // class's earliest arrival.
        for (size_t step = 0; step < class_order_.size(); ++step) {
          const std::string& cls =
              class_order_[(rr_cursor_ + step) % class_order_.size()];
          for (size_t i = 0; i < pending_.size(); ++i) {
            if (requests_[pending_[i]].workload_id == cls) {
              rr_cursor_ = (rr_cursor_ + step + 1) % class_order_.size();
              at = i;
              goto found;
            }
          }
        }
      found:
        break;
      }
    }
    const size_t request_index = pending_[at];
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(at));
    return request_index;
  }

 private:
  Policy policy_;
  const std::vector<QueryRequest>& requests_;
  const std::map<std::string, dana::SimTime>& estimates_;
  std::vector<size_t> pending_;
  std::vector<std::string> class_order_;
  size_t rr_cursor_ = 0;
};

}  // namespace

Result<ScheduleReport> Scheduler::Run(std::vector<QueryRequest> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const QueryRequest& a, const QueryRequest& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.id < b.id;
                   });

  // SJF orders by a-priori estimates; resolve them once per workload so
  // admission decisions are O(queue), not O(executor).
  std::map<std::string, dana::SimTime> estimates;
  if (options_.policy == Policy::kSjf) {
    for (const QueryRequest& r : requests) {
      if (estimates.count(r.workload_id)) continue;
      DANA_ASSIGN_OR_RETURN(dana::SimTime est,
                            executor_->Estimate(r.workload_id));
      estimates[r.workload_id] = est;
    }
  }

  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(requests.size());

  std::vector<dana::SimTime> slot_free(options_.slots, dana::SimTime::Zero());
  PendingQueue pending(options_.policy, requests, estimates);
  // Simulated compile-cache state: when each workload's design becomes
  // available. A dispatch before that point waits for the in-flight
  // compile instead of using a design that does not exist yet.
  std::map<std::string, dana::SimTime> compile_ready;
  size_t next_arrival = 0;

  while (next_arrival < requests.size() || !pending.empty()) {
    // The next dispatch happens on the earliest-free slot (lowest index
    // breaks ties, deterministically).
    uint32_t slot = 0;
    for (uint32_t s = 1; s < options_.slots; ++s) {
      if (slot_free[s] < slot_free[slot]) slot = s;
    }
    dana::SimTime now = slot_free[slot];
    if (pending.empty()) {
      // Idle until the next request arrives.
      now = dana::SimTime::Max(now, requests[next_arrival].arrival);
    }
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now) {
      pending.Push(next_arrival++);
    }

    const QueryRequest& req = requests[pending.Pop()];
    DANA_ASSIGN_OR_RETURN(QueryCost cost, executor_->Cost(req.workload_id));

    QueryStat stat;
    stat.id = req.id;
    stat.workload_id = req.workload_id;
    stat.slot = slot;
    stat.arrival = req.arrival;
    stat.start = now;
    auto ready = compile_ready.find(req.workload_id);
    stat.compile_hit = ready != compile_ready.end();
    if (stat.compile_hit) {
      // Cached — but possibly still compiling on another slot; wait out
      // the remainder rather than running with a nonexistent design.
      stat.compile = ready->second > stat.start
                         ? ready->second - stat.start
                         : dana::SimTime::Zero();
    } else {
      stat.compile = cost.compile;
      compile_ready[req.workload_id] = stat.start + cost.compile;
    }
    stat.service = cost.service;
    stat.completion = stat.start + stat.compile + stat.service;
    if (stat.compile_hit) {
      ++report.compile_hits;
    } else {
      ++report.compile_misses;
    }
    slot_free[slot] = stat.completion;
    report.makespan = dana::SimTime::Max(report.makespan, stat.completion);
    report.queries.push_back(std::move(stat));
  }
  return report;
}

}  // namespace dana::sched
