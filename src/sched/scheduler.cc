#include "sched/scheduler.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/stats.h"

namespace dana::sched {

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kFcfs:
      return "fcfs";
    case Policy::kSjf:
      return "sjf";
    case Policy::kRoundRobin:
      return "rr";
  }
  return "?";
}

Result<Policy> ParsePolicy(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "sjf") return Policy::kSjf;
  if (name == "rr" || name == "round-robin") return Policy::kRoundRobin;
  return Status::InvalidArgument("unknown policy '" + name +
                                 "' (want fcfs|sjf|rr)");
}

double ScheduleReport::ThroughputQps() const {
  if (queries.empty() || makespan.seconds() <= 0) return 0.0;
  return static_cast<double>(queries.size()) / makespan.seconds();
}

dana::SimTime ScheduleReport::MeanLatency() const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Latency().nanos());
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::MeanWait() const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Wait().nanos());
  return dana::SimTime::Nanos(Mean(ns));
}

dana::SimTime ScheduleReport::LatencyPercentile(double p) const {
  std::vector<double> ns;
  ns.reserve(queries.size());
  for (const QueryStat& q : queries) ns.push_back(q.Latency().nanos());
  return dana::SimTime::Nanos(Percentile(std::move(ns), p));
}

double ScheduleReport::MeanBatchSize() const {
  if (batches == 0) return 1.0;
  return static_cast<double>(queries.size()) / static_cast<double>(batches);
}

double ScheduleReport::WarmHitRate() const {
  if (queries.empty()) return 0.0;
  uint64_t hits = 0;
  for (const QueryStat& q : queries) {
    if (q.WarmHit()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(queries.size());
}

double ScheduleReport::MeanWarmFraction() const {
  if (queries.empty()) return 0.0;
  double total = 0.0;
  for (const QueryStat& q : queries) total += q.warm_fraction;
  return total / static_cast<double>(queries.size());
}

Scheduler::Scheduler(SchedulerOptions options, QueryExecutor* executor)
    : options_(options), executor_(executor) {
  if (options_.slots == 0) options_.slots = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

namespace {

/// Pending queue with the policy-specific pick. Entries are indices into
/// the request vector, kept in admission order. The request vector may grow
/// while the queue is live (closed-loop mode); entries are indices, never
/// pointers, so growth is safe.
class PendingQueue {
 public:
  /// `warmth(workload)`, when set, is the best residency any currently-free
  /// slot offers that workload — the affinity signal. Null keeps the
  /// affinity-blind picks bit-for-bit.
  using WarmthFn = std::function<double(const std::string&)>;

  PendingQueue(Policy policy, double sjf_aging_weight, double affinity_weight,
               const std::vector<QueryRequest>& requests,
               const std::map<std::string, dana::SimTime>& estimates,
               std::vector<std::string> class_order)
      : policy_(policy),
        aging_weight_(sjf_aging_weight),
        affinity_weight_(affinity_weight),
        requests_(requests),
        estimates_(estimates),
        class_order_(std::move(class_order)) {}

  bool empty() const { return pending_.empty(); }

  void Push(size_t request_index) { pending_.push_back(request_index); }

  /// Removes and returns the next request index under the policy. `now` is
  /// the dispatch time, used by SJF aging to credit queue wait.
  size_t Pop(dana::SimTime now, const WarmthFn& warmth = nullptr) {
    size_t at = 0;
    switch (policy_) {
      case Policy::kFcfs:
        // Arrival order == queue order. Affinity does not reorder FCFS (or
        // RR): chasing warmth in the queue trades older arrivals' wait for
        // placement and loses on mean latency; those policies get their
        // affinity purely from the slot choice after the pop.
        break;
      case Policy::kSjf: {
        if (warmth) {
          // Affinity SJF: a warm pool is trusted to save
          // `affinity_weight * warmth` of the service, so the effective
          // estimate shrinks by that share (floored at free); aging credit
          // still applies on top.
          auto effective = [&](size_t i) {
            const QueryRequest& r = requests_[pending_[i]];
            const double discount = std::max(
                0.0, 1.0 - affinity_weight_ * warmth(r.workload_id));
            return estimates_.at(r.workload_id).seconds() * discount -
                   aging_weight_ * (now - r.arrival).seconds();
          };
          double best = effective(0);
          for (size_t i = 1; i < pending_.size(); ++i) {
            const double cand = effective(i);
            if (cand < best) {
              best = cand;
              at = i;
            }
          }
        } else if (aging_weight_ == 0.0) {
          // Pure SJF: identical comparison to the unaged scheduler so a
          // zero weight reproduces its schedules bit-for-bit.
          for (size_t i = 1; i < pending_.size(); ++i) {
            const dana::SimTime best =
                estimates_.at(requests_[pending_[at]].workload_id);
            const dana::SimTime cand =
                estimates_.at(requests_[pending_[i]].workload_id);
            if (cand < best) at = i;
          }
        } else {
          // Aged SJF: every second of queue wait forgives `weight` seconds
          // of estimate, so a long job's effective estimate eventually
          // drops below the stream of short ones and it cannot starve.
          auto effective = [&](size_t i) {
            const QueryRequest& r = requests_[pending_[i]];
            return estimates_.at(r.workload_id).seconds() -
                   aging_weight_ * (now - r.arrival).seconds();
          };
          double best = effective(0);
          for (size_t i = 1; i < pending_.size(); ++i) {
            const double cand = effective(i);
            if (cand < best) {
              best = cand;
              at = i;
            }
          }
        }
        break;
      }
      case Policy::kRoundRobin: {
        // Advance the cursor to the next class with queued work; take that
        // class's earliest arrival.
        for (size_t step = 0; step < class_order_.size(); ++step) {
          const std::string& cls =
              class_order_[(rr_cursor_ + step) % class_order_.size()];
          for (size_t i = 0; i < pending_.size(); ++i) {
            if (requests_[pending_[i]].workload_id == cls) {
              rr_cursor_ = (rr_cursor_ + step + 1) % class_order_.size();
              at = i;
              goto found;
            }
          }
        }
      found:
        break;
      }
    }
    const size_t request_index = pending_[at];
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(at));
    return request_index;
  }

  /// Removes up to `limit` further queued requests of workload `cls` (in
  /// admission order) and appends their indices to `out` — the co-resident
  /// queries a batched dispatch coalesces with the head query.
  void TakeSameClass(const std::string& cls, size_t limit,
                     std::vector<size_t>* out) {
    size_t taken = 0;
    size_t i = 0;
    while (i < pending_.size() && taken < limit) {
      if (requests_[pending_[i]].workload_id == cls) {
        out->push_back(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
        ++taken;
      } else {
        ++i;
      }
    }
  }

 private:
  Policy policy_;
  double aging_weight_;
  double affinity_weight_;
  const std::vector<QueryRequest>& requests_;
  const std::map<std::string, dana::SimTime>& estimates_;
  std::vector<size_t> pending_;
  std::vector<std::string> class_order_;
  size_t rr_cursor_ = 0;
};

/// One Dispatch call's outcome: which request indices rode the batch and
/// when the batch completes (= the slot's new free time).
struct DispatchOutcome {
  std::vector<size_t> members;
  dana::SimTime completion;
};

/// Shared dispatch machinery of the open and closed-loop runs: pops the
/// policy's head query (affinity-aware when enabled), picks the slot —
/// earliest-free, or the warmest free one under affinity — coalesces up to
/// max_batch-1 co-resident queries of the same algorithm, charges compile +
/// batched service, and records one QueryStat per member (all complete
/// together).
class DispatchEngine {
 public:
  DispatchEngine(const SchedulerOptions& options, QueryExecutor* executor,
                 const std::vector<QueryRequest>& requests,
                 ScheduleReport* report)
      : options_(options),
        executor_(executor),
        requests_(requests),
        report_(report),
        slot_free_(options.slots, dana::SimTime::Zero()) {}

  /// Earliest-free slot; lowest index breaks ties, deterministically.
  uint32_t NextSlot() const {
    uint32_t slot = 0;
    for (uint32_t s = 1; s < options_.slots; ++s) {
      if (slot_free_[s] < slot_free_[slot]) slot = s;
    }
    return slot;
  }

  dana::SimTime slot_free(uint32_t slot) const { return slot_free_[slot]; }

  dana::Result<DispatchOutcome> Dispatch(PendingQueue& pending,
                                         dana::SimTime now) {
    // Affinity dispatch sees every slot already free at the dispatch time
    // (the earliest-free slot always qualifies: `now` is at or past its
    // free time); a candidate's warmth is the best any of them offers.
    std::vector<uint32_t> available;
    PendingQueue::WarmthFn warmth = nullptr;
    if (options_.affinity_weight > 0.0) {
      for (uint32_t s = 0; s < options_.slots; ++s) {
        if (slot_free_[s] <= now) available.push_back(s);
      }
      warmth = [&](const std::string& workload_id) {
        double best = 0.0;
        for (uint32_t s : available) {
          best = std::max(best, executor_->WarmFraction(workload_id, s));
        }
        return best;
      };
    }

    std::vector<size_t> members;
    members.push_back(pending.Pop(now, warmth));
    const QueryRequest& head = requests_[members[0]];

    // Slot choice: warmest free slot for the head's table under affinity
    // (ties by earliest free time then lowest index — the affinity-blind
    // order), earliest-free otherwise.
    uint32_t slot = NextSlot();
    if (options_.affinity_weight > 0.0) {
      double best_warm = -1.0;
      for (uint32_t s : available) {
        const double w = executor_->WarmFraction(head.workload_id, s);
        if (w > best_warm ||
            (w == best_warm && slot_free_[s] < slot_free_[slot])) {
          best_warm = w;
          slot = s;
        }
      }
    }
    if (options_.max_batch > 1) {
      pending.TakeSameClass(head.workload_id, options_.max_batch - 1,
                            &members);
    }

    QueryBatch batch;
    batch.workload_id = head.workload_id;
    batch.slot = slot;
    for (size_t m : members) batch.query_ids.push_back(requests_[m].id);
    DANA_ASSIGN_OR_RETURN(BatchCost cost, executor_->Dispatch(batch));

    // Simulated compile-cache state: when each workload's design becomes
    // available. A dispatch before that point waits for the in-flight
    // compile instead of using a design that does not exist yet. A batch
    // compiles its design once: the head pays the miss, riders are hits.
    dana::SimTime compile_wait;
    bool head_miss = false;
    auto ready = compile_ready_.find(head.workload_id);
    if (ready == compile_ready_.end()) {
      head_miss = true;
      compile_wait = cost.compile;
      compile_ready_[head.workload_id] = now + cost.compile;
    } else {
      compile_wait = ready->second > now ? ready->second - now
                                         : dana::SimTime::Zero();
    }

    const dana::SimTime completion = now + compile_wait + cost.service;
    for (size_t j = 0; j < members.size(); ++j) {
      const QueryRequest& req = requests_[members[j]];
      QueryStat stat;
      stat.id = req.id;
      stat.workload_id = req.workload_id;
      stat.slot = slot;
      stat.arrival = req.arrival;
      stat.start = now;
      stat.compile = compile_wait;
      stat.compile_hit = !(head_miss && j == 0);
      stat.service = cost.service;
      stat.batch_size = static_cast<uint32_t>(members.size());
      stat.shared_service = cost.shared;
      stat.private_service = cost.per_query;
      stat.warm_fraction = cost.warm_fraction;
      stat.completion = completion;
      if (stat.compile_hit) {
        ++report_->compile_hits;
      } else {
        ++report_->compile_misses;
      }
      report_->queries.push_back(std::move(stat));
    }
    ++report_->batches;
    report_->shared_service += cost.shared;
    report_->private_service +=
        cost.per_query * static_cast<double>(members.size());
    slot_free_[slot] = completion;
    report_->makespan = dana::SimTime::Max(report_->makespan, completion);
    return DispatchOutcome{std::move(members), completion};
  }

 private:
  const SchedulerOptions& options_;
  QueryExecutor* executor_;
  const std::vector<QueryRequest>& requests_;
  ScheduleReport* report_;
  std::vector<dana::SimTime> slot_free_;
  std::map<std::string, dana::SimTime> compile_ready_;
};

/// Class rotation order for round-robin: first appearance in `ids`.
std::vector<std::string> FirstAppearanceOrder(
    const std::vector<std::string>& ids) {
  std::vector<std::string> order;
  std::set<std::string> seen;
  for (const std::string& id : ids) {
    if (seen.insert(id).second) order.push_back(id);
  }
  return order;
}

}  // namespace

Result<ScheduleReport> Scheduler::Run(std::vector<QueryRequest> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const QueryRequest& a, const QueryRequest& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.id < b.id;
                   });

  // SJF orders by a-priori estimates; resolve them once per workload so
  // admission decisions are O(queue), not O(executor).
  std::map<std::string, dana::SimTime> estimates;
  if (options_.policy == Policy::kSjf) {
    for (const QueryRequest& r : requests) {
      if (estimates.count(r.workload_id)) continue;
      DANA_ASSIGN_OR_RETURN(dana::SimTime est,
                            executor_->Estimate(r.workload_id));
      estimates[r.workload_id] = est;
    }
  }

  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(requests.size());

  std::vector<std::string> stream_ids;
  stream_ids.reserve(requests.size());
  for (const QueryRequest& r : requests) stream_ids.push_back(r.workload_id);
  PendingQueue pending(options_.policy, options_.sjf_aging_weight,
                       options_.affinity_weight, requests, estimates,
                       FirstAppearanceOrder(stream_ids));
  DispatchEngine engine(options_, executor_, requests, &report);
  size_t next_arrival = 0;
  // Monotone dispatch clock: a query admitted during an idle advance must
  // not start before its arrival just because another slot's free time is
  // still in the past.
  dana::SimTime clock;

  while (next_arrival < requests.size() || !pending.empty()) {
    const uint32_t slot = engine.NextSlot();
    dana::SimTime now = dana::SimTime::Max(engine.slot_free(slot), clock);
    if (pending.empty()) {
      // Idle until the next request arrives.
      now = dana::SimTime::Max(now, requests[next_arrival].arrival);
    }
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now) {
      pending.Push(next_arrival++);
    }
    DANA_RETURN_NOT_OK(engine.Dispatch(pending, now).status());
    clock = now;
  }
  return report;
}

Result<ScheduleReport> Scheduler::RunClosedLoop(
    const std::vector<std::vector<std::string>>& sessions,
    dana::SimTime think_time) {
  size_t total = 0;
  std::vector<std::string> submit_order_ids;
  for (const auto& script : sessions) total += script.size();
  // Class rotation order for RR: interleaved first-submission order
  // (session 0's first query, session 1's first, ...).
  for (size_t j = 0;; ++j) {
    bool any = false;
    for (const auto& script : sessions) {
      if (j < script.size()) {
        submit_order_ids.push_back(script[j]);
        any = true;
      }
    }
    if (!any) break;
  }

  std::map<std::string, dana::SimTime> estimates;
  if (options_.policy == Policy::kSjf) {
    for (const auto& script : sessions) {
      for (const std::string& id : script) {
        if (estimates.count(id)) continue;
        DANA_ASSIGN_OR_RETURN(dana::SimTime est, executor_->Estimate(id));
        estimates[id] = est;
      }
    }
  }

  ScheduleReport report;
  report.policy = options_.policy;
  report.slots = options_.slots;
  report.queries.reserve(total);

  // Per-session state. A session has at most one query in the system: the
  // next submission time is known as soon as the previous query dispatches
  // (its completion is computed then), so submissions never block on
  // unknown events.
  struct Session {
    size_t next = 0;                ///< next script position to submit
    dana::SimTime submit;           ///< when that query enters the queue
    bool outstanding = false;       ///< submitted but not yet dispatched
  };
  std::vector<Session> state(sessions.size());

  std::vector<QueryRequest> requests;
  requests.reserve(total);
  std::vector<size_t> owner;  ///< request index -> session index
  owner.reserve(total);

  PendingQueue pending(options_.policy, options_.sjf_aging_weight,
                       options_.affinity_weight, requests, estimates,
                       FirstAppearanceOrder(submit_order_ids));
  DispatchEngine engine(options_, executor_, requests, &report);
  uint64_t next_id = 0;
  // Monotone dispatch clock (see Run): keeps a second idle slot from
  // dispatching a session's submission before its submit time.
  dana::SimTime clock;

  auto earliest_submission = [&](dana::SimTime* when) {
    bool any = false;
    for (size_t s = 0; s < state.size(); ++s) {
      if (state[s].next >= sessions[s].size() || state[s].outstanding) {
        continue;
      }
      if (!any || state[s].submit < *when) *when = state[s].submit;
      any = true;
    }
    return any;
  };

  while (true) {
    const uint32_t slot = engine.NextSlot();
    dana::SimTime now = dana::SimTime::Max(engine.slot_free(slot), clock);
    if (pending.empty()) {
      dana::SimTime next_submit;
      if (!earliest_submission(&next_submit)) break;  // all sessions drained
      now = dana::SimTime::Max(now, next_submit);
    }
    // Admit every session whose next submission is due, in (submit time,
    // session index) order so the queue stays arrival-ordered.
    std::vector<size_t> ready;
    for (size_t s = 0; s < state.size(); ++s) {
      if (state[s].next < sessions[s].size() && !state[s].outstanding &&
          state[s].submit <= now) {
        ready.push_back(s);
      }
    }
    std::stable_sort(ready.begin(), ready.end(), [&](size_t a, size_t b) {
      return state[a].submit < state[b].submit;
    });
    for (size_t s : ready) {
      QueryRequest req;
      req.id = next_id++;
      req.workload_id = sessions[s][state[s].next];
      req.arrival = state[s].submit;
      requests.push_back(std::move(req));
      owner.push_back(s);
      pending.Push(requests.size() - 1);
      ++state[s].next;
      state[s].outstanding = true;
    }
    DANA_ASSIGN_OR_RETURN(DispatchOutcome outcome,
                          engine.Dispatch(pending, now));
    clock = now;
    for (size_t m : outcome.members) {
      Session& s = state[owner[m]];
      s.outstanding = false;
      s.submit = outcome.completion + think_time;
    }
  }
  return report;
}

}  // namespace dana::sched
