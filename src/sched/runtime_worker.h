#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "sched/executor.h"

namespace dana::sched {

/// Fixed set of per-slot worker threads for the scheduler's threaded
/// runtime (`SchedulerOptions::runtime_mode = kThreaded`): slot i's worker
/// owns slot i's execution context and pulls work items off its own
/// mutex/condvar admission queue in FIFO order. The *policy* (which batch
/// goes to which slot, in what order) stays with the scheduling loop —
/// workers execute what they are handed, which is exactly the partition
/// that keeps per-slot pool state safe without locks.
class SlotWorkerPool {
 public:
  explicit SlotWorkerPool(uint32_t slots);
  /// Drains every queue (pending items still run) and joins the threads.
  ~SlotWorkerPool();

  SlotWorkerPool(const SlotWorkerPool&) = delete;
  SlotWorkerPool& operator=(const SlotWorkerPool&) = delete;

  /// Enqueues `fn` on slot `slot`'s admission queue. The worker runs items
  /// in admission order. Out-of-range slots are clamped into the pool so a
  /// misconfigured caller degrades to serialization, never UB.
  void Post(uint32_t slot, std::function<void()> fn);

  uint32_t slots() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  struct Worker {
    dana::Mutex mu;
    dana::CondVar cv;
    std::deque<std::function<void()>> queue GUARDED_BY(mu);
    bool stop GUARDED_BY(mu) = false;
    std::thread thread;
  };

  void RunWorker(Worker* w);

  std::vector<std::unique_ptr<Worker>> workers_;
};

/// Single-use result cell a poster blocks on until the worker delivers:
/// the wait handle half of handing work to a slot worker. The Set/Wait
/// pair establishes the happens-before edge that makes the worker's writes
/// visible to the waiter.
template <typename T>
class WaitCell {
 public:
  void Set(T value) {
    {
      dana::MutexLock lock(mu_);
      value_.emplace(std::move(value));
    }
    cv_.NotifyAll();
  }

  /// Blocks until Set, then returns the value (moved out; call once).
  T Take() {
    dana::MutexLock lock(mu_);
    while (!value_.has_value()) cv_.Wait(mu_);
    T out = std::move(*value_);
    value_.reset();
    return out;
  }

 private:
  dana::Mutex mu_;
  dana::CondVar cv_;
  std::optional<T> value_ GUARDED_BY(mu_);
};

/// Runs `fn` on `slot`'s worker thread and blocks for its value.
template <typename T>
T RunOnSlot(SlotWorkerPool* workers, uint32_t slot, std::function<T()> fn) {
  auto cell = std::make_shared<WaitCell<T>>();
  workers->Post(slot, [cell, fn = std::move(fn)] { cell->Set(fn()); });
  return cell->Take();
}

/// Executor adapter that routes every execution-state-mutating call onto
/// the owning slot's worker thread and blocks for the result, leaving
/// decision-time reads (estimates, warm fractions) on the calling thread.
/// This is how the preemptive engine and the closed-loop driver run in
/// threaded mode: the event loop keeps making decisions in oracle order
/// while each slot's pricing, slices, and resume re-pricing execute on
/// that slot's thread. Because every forwarded call is awaited before the
/// loop proceeds, the schedule is identical to the simulated oracle's by
/// construction — the parity contract `runtime_mode` promises.
class WorkerProxyExecutor : public QueryExecutor {
 public:
  WorkerProxyExecutor(QueryExecutor* inner, SlotWorkerPool* workers)
      : inner_(inner), workers_(workers) {}

  dana::Result<BatchCost> Dispatch(const QueryBatch& batch) override {
    return RunOnSlot<dana::Result<BatchCost>>(
        workers_, batch.slot, [this, &batch] { return inner_->Dispatch(batch); });
  }

  dana::Result<std::unique_ptr<BatchExecution>> Begin(
      const QueryBatch& batch) override;

  dana::Result<dana::SimTime> Estimate(const std::string& workload_id) override {
    return inner_->Estimate(workload_id);
  }
  dana::Result<dana::SimTime> EstimateAtWarmth(const std::string& workload_id,
                                               double warm_fraction) override {
    return inner_->EstimateAtWarmth(workload_id, warm_fraction);
  }
  double WarmFraction(const std::string& workload_id, uint32_t slot) override {
    return inner_->WarmFraction(workload_id, slot);
  }
  void PrepareSlots(uint32_t slots) override { inner_->PrepareSlots(slots); }

 private:
  QueryExecutor* inner_;
  SlotWorkerPool* workers_;
};

}  // namespace dana::sched
