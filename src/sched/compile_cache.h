#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/fill_once.h"
#include "common/result.h"
#include "compiler/compiler.h"
#include "obs/metrics.h"

namespace dana::sched {

/// Keyed cache of compiled UDF designs shared by every query the scheduler
/// dispatches: the first query of an algorithm/table shape pays
/// `compiler::Compile`, repeats reuse the stored design — the multi-query
/// analogue of the catalog storing the compiled UDF after its first query
/// (paper Figure 2).
///
/// The cache owns the designs; returned pointers stay valid for the cache's
/// lifetime.
///
/// Thread-safe with fill-once/wait semantics: when N slot workers request
/// the same cold key concurrently, exactly one runs the builder while the
/// others block on the entry's wait handle and then share the result —
/// the design is never compiled twice. The builder call that fills counts
/// one miss (failed builds included, matching the single-threaded
/// accounting); every call served from a ready entry or a successful wait
/// counts one hit. A failed build is not cached: its waiters receive the
/// error and the next requester retries.
class CompileCache {
 public:
  using Builder = std::function<dana::Result<compiler::CompiledUdf>()>;

  /// The cached design for `key`, invoking `builder` on the first request.
  /// Concurrent requesters of a cold key block until the single in-flight
  /// build settles.
  dana::Result<const compiler::CompiledUdf*> GetOrCompile(
      const std::string& key, const Builder& builder);

  /// Lookup without building; nullptr when absent or still compiling.
  /// Does not count as a hit.
  const compiler::CompiledUdf* Find(const std::string& key) const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const { return cache_.size(); }

  /// Publishes the cache's state as gauges `<prefix>.hits` / `.misses` /
  /// `.size` into `metrics`; a null registry is a no-op.
  void PublishTo(obs::MetricRegistry* metrics,
                 const std::string& prefix = "compile_cache") const {
    if (metrics == nullptr) return;
    obs::SetGauge(metrics, prefix + ".hits", static_cast<double>(hits()));
    obs::SetGauge(metrics, prefix + ".misses", static_cast<double>(misses()));
    obs::SetGauge(metrics, prefix + ".size", static_cast<double>(size()));
  }

 private:
  dana::FillOnceMap<std::string, compiler::CompiledUdf> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace dana::sched
