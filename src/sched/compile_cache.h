#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "compiler/compiler.h"
#include "obs/metrics.h"

namespace dana::sched {

/// Keyed cache of compiled UDF designs shared by every query the scheduler
/// dispatches: the first query of an algorithm/table shape pays
/// `compiler::Compile`, repeats reuse the stored design — the multi-query
/// analogue of the catalog storing the compiled UDF after its first query
/// (paper Figure 2).
///
/// The cache owns the designs; returned pointers stay valid for the cache's
/// lifetime. Not thread-safe (the scheduler dispatches from one simulated
/// clock).
class CompileCache {
 public:
  using Builder = std::function<dana::Result<compiler::CompiledUdf>()>;

  /// The cached design for `key`, invoking `builder` on the first request.
  /// A failed build is not cached (the next request retries).
  dana::Result<const compiler::CompiledUdf*> GetOrCompile(
      const std::string& key, const Builder& builder);

  /// Lookup without building; nullptr when absent. Does not count as a hit.
  const compiler::CompiledUdf* Find(const std::string& key) const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }

  /// Publishes the cache's state as gauges `<prefix>.hits` / `.misses` /
  /// `.size` into `metrics`; a null registry is a no-op.
  void PublishTo(obs::MetricRegistry* metrics,
                 const std::string& prefix = "compile_cache") const {
    if (metrics == nullptr) return;
    obs::SetGauge(metrics, prefix + ".hits", static_cast<double>(hits_));
    obs::SetGauge(metrics, prefix + ".misses", static_cast<double>(misses_));
    obs::SetGauge(metrics, prefix + ".size",
                  static_cast<double>(cache_.size()));
  }

 private:
  std::map<std::string, std::unique_ptr<compiler::CompiledUdf>> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace dana::sched
