#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sched/scheduler.h"

namespace dana::sched {

/// Popularity distribution over the workload catalog.
enum class Popularity : uint8_t {
  kZipfian,  ///< rank-skewed: catalog position 0 is the hottest algorithm
  kUniform,
};

const char* PopularityName(Popularity p);
dana::Result<Popularity> ParsePopularity(const std::string& name);

/// Unnormalized popularity weight of 0-based catalog rank `rank`:
/// 1/(rank+1)^exponent for Zipfian, 1 for uniform. The single definition of
/// the popularity model, shared by the driver's sampler and the
/// arrival-rate calibration below.
double PopularityWeight(Popularity popularity, size_t rank, double exponent);

/// Popularity-weighted mean of the executor-reported service times over
/// `catalog` (rank = catalog position), in seconds. Used to calibrate an
/// arrival rate against slot capacity; runs (and thereby warms) the
/// executor for every catalog entry.
dana::Result<double> WeightedMeanServiceSeconds(
    QueryExecutor& executor, const std::vector<std::string>& catalog,
    Popularity popularity, double exponent);

struct DriverOptions {
  uint64_t seed = 0xDA7A5EEDull;
  uint32_t num_queries = 100;
  /// Mean arrival rate of the Poisson process, in queries per simulated
  /// second (inter-arrival gaps are exponential with this rate).
  double arrival_rate_qps = 1.0;
  Popularity popularity = Popularity::kZipfian;
  /// Zipf exponent s: popularity of rank r is proportional to 1/(r+1)^s.
  /// 0.99 is the YCSB default; larger skews harder.
  double zipf_exponent = 0.99;
  /// Closed-loop mode (GenerateSessions): number of concurrent analyst
  /// sessions the queries are dealt across.
  uint32_t sessions = 4;
  /// Priority classes: requests for the first this-many catalog ranks are
  /// tagged QueryClass::kInteractive, the rest QueryClass::kBatch. The
  /// catalog's order defines the ranks — position 0 is the Zipf-hottest,
  /// so a caller who wants "the short, popular algorithms" interactive
  /// should rank the catalog by estimated service (as bench_sched does).
  /// 0 (the default) tags everything batch — the classless PR 3 stream.
  uint32_t interactive_ranks = 0;
};

/// Generates reproducible multi-query request streams over a catalog of
/// workload ids: Zipfian or uniform popularity picks the algorithm, a
/// Poisson process on the simulated clock spaces the arrivals (open mode),
/// or the picks are dealt across analyst sessions for the closed-loop
/// think-time mode. Streams and scripts are pure functions of
/// (catalog, options) — same seed, same stream, bit-for-bit on every
/// platform (common/random.h Rng).
class WorkloadDriver {
 public:
  /// `catalog` is the popularity ranking: position 0 is the hottest.
  WorkloadDriver(std::vector<std::string> catalog, DriverOptions options);

  /// The full request stream, in arrival order, ids 0..num_queries-1.
  /// InvalidArgument when the catalog is empty or the rate is non-positive.
  dana::Result<std::vector<QueryRequest>> Generate() const;

  /// Closed-loop scripts for Scheduler::RunClosedLoop: samples the same
  /// popularity distribution (same seed, same picks as the open stream's
  /// algorithm choices) and deals the `num_queries` picks round-robin
  /// across `options().sessions` sessions. Arrival times are not sampled —
  /// in closed-loop mode they emerge from completions plus think time.
  dana::Result<std::vector<std::vector<std::string>>> GenerateSessions() const;

  const std::vector<std::string>& catalog() const { return catalog_; }
  const DriverOptions& options() const { return options_; }

 private:
  std::vector<std::string> catalog_;
  DriverOptions options_;
};

}  // namespace dana::sched
