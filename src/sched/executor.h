#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "runtime/systems.h"
#include "sched/compile_cache.h"
#include "storage/residency.h"

namespace dana::sched {

/// A batch of same-algorithm queries the scheduler co-dispatches onto one
/// accelerator slot: one page-streaming pass feeds every query's execution
/// engines. Size 1 is the ordinary per-query dispatch.
struct QueryBatch {
  std::string workload_id;
  /// Request ids of the co-dispatched queries, in dispatch order.
  std::vector<uint64_t> query_ids;
  /// Slot the batch runs on; selects the slot's execution context
  /// (its private buffer pool).
  uint32_t slot = 0;

  uint32_t size() const { return static_cast<uint32_t>(query_ids.size()); }

  /// Convenience single-query batch.
  static QueryBatch Single(std::string workload, uint64_t id = 0,
                           uint32_t slot = 0) {
    QueryBatch b;
    b.workload_id = std::move(workload);
    b.query_ids = {id};
    b.slot = slot;
    return b;
  }
};

/// Costs of running one batch on one accelerator slot.
struct BatchCost {
  /// Slot occupancy of the whole batched run (query overheads included).
  dana::SimTime service;
  /// Residency of the workload's table on the dispatch slot when the run
  /// started, in [0, 1]: 0 is a genuinely cold pool (first use of the slot
  /// for this table, or fully evicted since), 1 a fully warm repeat.
  /// Executors without a residency model report their static cache state.
  double warm_fraction = 0.0;
  /// Attribution of `service`: `shared` is the one page-streaming sweep
  /// every co-batched query amortizes; `per_query` is the incremental
  /// engine-merge time each co-trained model adds. For a batch of 1 the
  /// two sum to approximately `service`.
  dana::SimTime shared;
  dana::SimTime per_query;
  /// Additional one-time compile latency a compile-cache miss pays; the
  /// scheduler charges it on the first dispatch of each algorithm and
  /// skips it on every repeat.
  dana::SimTime compile;
};

/// What the scheduler needs from an execution backend: real (simulated)
/// batched service costs at dispatch time and cheap estimates for
/// shortest-job-first admission ordering. Estimates must not run the query.
class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;

  /// The true cost of running `batch` once (invoked at dispatch). All
  /// queries in the batch share one pass; implementations must be
  /// deterministic in (workload_id, batch size).
  virtual dana::Result<BatchCost> Dispatch(const QueryBatch& batch) = 0;

  /// A-priori service estimate of a single query for queue ordering (SJF).
  /// May be coarse but must be deterministic and cheap.
  virtual dana::Result<dana::SimTime> Estimate(
      const std::string& workload_id) = 0;

  /// Residency of `workload_id`'s table on `slot`'s buffer pool, in [0, 1],
  /// *without* running anything. The scheduler's affinity dispatch consults
  /// this when choosing among free slots and queued candidates. The default
  /// models no residency: every slot always looks cold.
  virtual double WarmFraction(const std::string& workload_id, uint32_t slot) {
    (void)workload_id;
    (void)slot;
    return 0.0;
  }
};

/// Executor backed by the DAnA cycle-level simulator over the Table 3
/// workload suite.
///
/// Service times are measured by actually compiling and training through
/// `runtime::DanaSystem` (so the scheduler multiplexes real simulated
/// accelerator runs, not analytical guesses), then memoized per
/// (workload, batch size, cache endpoint): every batch of K queries of one
/// algorithm at one cache state does identical work, so repeats reuse the
/// measured time instead of re-simulating. Compiled designs live in a
/// CompileCache so `compiler::Compile` runs once per algorithm no matter
/// how many queries reference it. Each slot trains against its own buffer
/// pool from the instance's pool group (per-slot execution contexts).
///
/// Cache realism: by default the executor keeps a per-slot
/// storage::CacheResidencyModel. A slot's first run of a workload is
/// charged the genuinely cold service (nothing resident), a repeat on the
/// same slot the warm one, and a partially-evicted slot (other tables ran
/// in between) a linear interpolation between the two measured endpoints —
/// I/O shrinks in proportion to the pages still resident. Every dispatch
/// updates the model: the scanned table ends resident, co-located tables
/// decay. Placement therefore matters, and WarmFraction() exposes the
/// model so the scheduler's affinity dispatch can exploit it.
class DanaQueryExecutor : public QueryExecutor {
 public:
  struct Options {
    /// Simulated wall-clock cost of a compile-cache miss: DSL translation,
    /// hardware generation, static scheduling, and configuring the FPGA's
    /// configuration FSM with the new design. Calibrated to "hundreds of
    /// milliseconds" — large enough that cache hits visibly matter, small
    /// against multi-second training runs.
    dana::SimTime compile_latency = dana::SimTime::Millis(400);
    /// false reproduces the PR 2 executor bit-for-bit: every run is
    /// silently re-prepared to `cache` and placement is costless. true
    /// (the default) charges each slot its tracked residency instead.
    bool model_residency = true;
    /// Buffer-pool state every query trains under when `model_residency`
    /// is false (the legacy fixed-cache regime).
    runtime::CacheState cache = runtime::CacheState::kWarm;
    /// Functional epochs actually simulated before linear extrapolation
    /// (see DanaSystem::Options); 2 captures cold I/O + steady state.
    uint32_t functional_epoch_cap = 2;
  };

  DanaQueryExecutor();
  explicit DanaQueryExecutor(Options options);

  dana::Result<BatchCost> Dispatch(const QueryBatch& batch) override;
  dana::Result<dana::SimTime> Estimate(const std::string& workload_id) override;
  double WarmFraction(const std::string& workload_id, uint32_t slot) override;

  const CompileCache& compile_cache() const { return compile_cache_; }
  const storage::CacheResidencyModel& residency() const { return residency_; }
  /// Forgets all slot residency (fresh cold slots) while keeping measured
  /// service endpoints and compiled designs. Sweeps call this between
  /// configurations so every run starts from the same cold machine.
  void ResetResidency() { residency_.Reset(); }

 private:
  dana::Result<runtime::WorkloadInstance*> Instance(const std::string& id);
  /// Measured (or memoized) batched service at a cache endpoint.
  dana::Result<BatchCost> MeasureEndpoint(const QueryBatch& batch,
                                          runtime::CacheState cache);

  Options options_;
  runtime::CpuCostModel cost_model_;
  runtime::DanaSystem system_;
  CompileCache compile_cache_;
  storage::CacheResidencyModel residency_;
  std::map<std::string, std::unique_ptr<runtime::WorkloadInstance>> instances_;
  /// Measured batched service, keyed by (workload, batch size, warm?).
  std::map<std::tuple<std::string, uint32_t, bool>, BatchCost> measured_;
};

}  // namespace dana::sched
