#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/sim_time.h"
#include "runtime/systems.h"
#include "sched/compile_cache.h"

namespace dana::sched {

/// Costs of running one analytics query on one accelerator slot.
struct QueryCost {
  /// Slot occupancy of the training run itself (query overheads included).
  dana::SimTime service;
  /// Additional one-time compile latency a compile-cache miss pays; the
  /// scheduler charges it on the first dispatch of each algorithm and
  /// skips it on every repeat.
  dana::SimTime compile;
};

/// What the scheduler needs from an execution backend: real (simulated)
/// service costs at dispatch time and cheap estimates for shortest-job-first
/// admission ordering. Estimates must not run the query.
class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;

  /// The true cost of running `workload_id` once (invoked at dispatch).
  virtual dana::Result<QueryCost> Cost(const std::string& workload_id) = 0;

  /// A-priori service estimate for queue ordering (SJF). May be coarse but
  /// must be deterministic and cheap.
  virtual dana::Result<dana::SimTime> Estimate(
      const std::string& workload_id) = 0;
};

/// Executor backed by the DAnA cycle-level simulator over the Table 3
/// workload suite.
///
/// Service times are measured by actually compiling and training through
/// `runtime::DanaSystem` (so the scheduler multiplexes real simulated
/// accelerator runs, not analytical guesses), then memoized per workload:
/// in a warm steady state every query of one algorithm does identical work,
/// so repeats reuse the measured time instead of re-simulating. Compiled
/// designs live in a CompileCache so `compiler::Compile` runs once per
/// algorithm no matter how many queries reference it.
class DanaQueryExecutor : public QueryExecutor {
 public:
  struct Options {
    /// Simulated wall-clock cost of a compile-cache miss: DSL translation,
    /// hardware generation, static scheduling, and configuring the FPGA's
    /// configuration FSM with the new design. Calibrated to "hundreds of
    /// milliseconds" — large enough that cache hits visibly matter, small
    /// against multi-second training runs.
    dana::SimTime compile_latency = dana::SimTime::Millis(400);
    /// Buffer-pool state each query trains under.
    runtime::CacheState cache = runtime::CacheState::kWarm;
    /// Functional epochs actually simulated before linear extrapolation
    /// (see DanaSystem::Options); 2 captures cold I/O + steady state.
    uint32_t functional_epoch_cap = 2;
  };

  DanaQueryExecutor();
  explicit DanaQueryExecutor(Options options);

  dana::Result<QueryCost> Cost(const std::string& workload_id) override;
  dana::Result<dana::SimTime> Estimate(const std::string& workload_id) override;

  const CompileCache& compile_cache() const { return compile_cache_; }

 private:
  dana::Result<runtime::WorkloadInstance*> Instance(const std::string& id);

  Options options_;
  runtime::CpuCostModel cost_model_;
  runtime::DanaSystem system_;
  CompileCache compile_cache_;
  std::map<std::string, std::unique_ptr<runtime::WorkloadInstance>> instances_;
  std::map<std::string, dana::SimTime> measured_service_;
};

}  // namespace dana::sched
