#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fill_once.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "runtime/systems.h"
#include "sched/compile_cache.h"
#include "storage/buffer_pool.h"
#include "storage/residency.h"

namespace dana::ml {
struct Workload;
}  // namespace dana::ml

namespace dana::sched {

/// A batch of same-algorithm queries the scheduler co-dispatches onto one
/// accelerator slot: one page-streaming pass feeds every query's execution
/// engines. Size 1 is the ordinary per-query dispatch.
struct QueryBatch {
  std::string workload_id;
  /// Request ids of the co-dispatched queries, in dispatch order.
  std::vector<uint64_t> query_ids;
  /// Slot the batch runs on; selects the slot's execution context
  /// (its private buffer pool).
  uint32_t slot = 0;

  uint32_t size() const { return static_cast<uint32_t>(query_ids.size()); }

  /// Convenience single-query batch.
  static QueryBatch Single(std::string workload, uint64_t id = 0,
                           uint32_t slot = 0) {
    QueryBatch b;
    b.workload_id = std::move(workload);
    b.query_ids = {id};
    b.slot = slot;
    return b;
  }
};

/// Costs of running one batch on one accelerator slot.
struct BatchCost {
  /// Slot occupancy of the whole batched run (query overheads included).
  dana::SimTime service;
  /// Residency of the workload's table on the dispatch slot when the run
  /// started, in [0, 1]: 0 is a genuinely cold pool (first use of the slot
  /// for this table, or fully evicted since), 1 a fully warm repeat.
  /// Executors without a residency model report their static cache state.
  double warm_fraction = 0.0;
  /// Fraction of the workload's table held by the dispatch slot's modeled
  /// OS page-cache tier when the run started, exclusive of
  /// `warm_fraction`'s pool share. Always 0 unless the executor runs with
  /// an OS tier (Options::os_frames > 0 under lru/promotional eviction).
  double os_warm_fraction = 0.0;
  /// True when `warm_fraction` comes from a tracked residency model; false
  /// for executors that report a static cache state (their constant value
  /// says nothing about placement and must not skew warm-hit rates).
  bool residency_modeled = false;
  /// Attribution of `service`: `shared` is the one page-streaming sweep
  /// every co-batched query amortizes; `per_query` is the incremental
  /// engine-merge time each co-trained model adds. For a batch of 1 the
  /// two sum to approximately `service`.
  dana::SimTime shared;
  dana::SimTime per_query;
  /// Additional one-time compile latency a compile-cache miss pays; the
  /// scheduler charges it on the first dispatch of each algorithm and
  /// skips it on every repeat.
  dana::SimTime compile;
};

/// Cost of one contiguous run of epochs (a slice) of a batch execution.
/// Attribution follows BatchCost: `service` is the slot occupancy of just
/// this slice; summed over any split of a run, slices reproduce the
/// unsegmented BatchCost::service bit for bit (the costs telescope).
struct SliceCost {
  dana::SimTime service;
  dana::SimTime shared;
  dana::SimTime per_query;
  uint32_t epochs = 0;   ///< epochs this slice consumed
  bool finished = false; ///< no epochs remain after this slice
};

/// A resumable in-flight batch run: the execution-handle half of the
/// scheduler/executor ABI. `Begin` creates one; the scheduler then either
/// drains it in one `NextSlice(0)` call (run to completion — what the
/// `Dispatch` wrapper does) or advances it quantum by quantum, checkpoints
/// it at an epoch boundary, and resumes the remainder later, possibly on a
/// different slot. All costs are deterministic in (workload, batch size,
/// slot residency), so peeking never perturbs the schedule.
class BatchExecution {
 public:
  explicit BatchExecution(QueryBatch batch) : batch_(std::move(batch)) {}
  virtual ~BatchExecution() = default;

  const QueryBatch& batch() const { return batch_; }
  uint32_t slot() const { return batch_.slot; }

  /// Total epochs this run executes; executions without epoch structure
  /// (the default single-slice wrapper) report 1 and are not preemptible.
  virtual uint32_t total_epochs() const = 0;
  virtual uint32_t epochs_run() const = 0;
  bool finished() const { return epochs_run() >= total_epochs(); }

  /// One-time compile latency on a compile-cache miss (BatchCost::compile).
  virtual dana::SimTime compile_cost() const = 0;
  /// Residency of the table on the dispatch slot when the run began
  /// (BatchCost::warm_fraction), and whether a model tracked it.
  virtual double warm_fraction() const = 0;
  virtual bool residency_modeled() const = 0;
  /// OS-tier share of the table when the run began
  /// (BatchCost::os_warm_fraction); 0 for executors without a tiered
  /// hierarchy.
  virtual double os_warm_fraction() const { return 0.0; }

  /// Advances up to `max_epochs` further epochs (0 = all remaining) and
  /// returns this slice's cost. Residency-modeling executors sweep their
  /// pool and ledger once per epoch run, capped at two passes per slice
  /// (cache state is near-stationary after the second pass).
  virtual dana::Result<SliceCost> NextSlice(uint32_t max_epochs) = 0;

  /// Slot occupancy of the next `epochs` epochs (0 = all remaining)
  /// without advancing — the scheduler uses this to plan completions and
  /// locate epoch boundaries in simulated time.
  virtual dana::Result<dana::SimTime> PeekService(uint32_t epochs) const = 0;

  /// Marks the current epoch boundary as a checkpoint: the model state is
  /// captured so the remainder can be re-dispatched later. The scheduler
  /// charges its configurable context-switch cost on top.
  virtual dana::Status Checkpoint() = 0;

  /// Re-binds the execution to `slot` before its next slice (resume after
  /// preemption). Implementations re-price the remaining epochs from the
  /// new slot's residency: resuming where the table is still resident is
  /// warm, a cold slot pays the first-epoch transient again. Resuming the
  /// same slot with residency undisturbed continues the original cost
  /// curve bit for bit.
  virtual dana::Status Resume(uint32_t slot) = 0;

 protected:
  QueryBatch batch_;
};

/// What the scheduler needs from an execution backend: real (simulated)
/// batched service costs at dispatch time and cheap estimates for
/// shortest-job-first admission ordering. Estimates must not run the query.
///
/// The ABI is the execution-handle model: `Begin` opens a resumable
/// `BatchExecution` which the scheduler advances in epoch slices.
/// `Dispatch` is the thin run-to-completion wrapper over it, kept so
/// callers that never preempt (and the golden scheduler suite) stay valid.
/// A concrete executor must override at least one of the two — each
/// default is implemented in terms of the other: executors with epoch
/// structure override `Begin` (and inherit run-to-completion `Dispatch`);
/// simple cost models override `Dispatch` (and `Begin` wraps the whole run
/// in one indivisible slice).
class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;

  /// The true cost of running `batch` once (invoked at dispatch). All
  /// queries in the batch share one pass; implementations must be
  /// deterministic in (workload_id, batch size). Default: Begin + one
  /// full slice.
  virtual dana::Result<BatchCost> Dispatch(const QueryBatch& batch);

  /// Opens a resumable execution handle for `batch`. Default: wraps
  /// `Dispatch`'s cost in a single indivisible slice (not preemptible).
  virtual dana::Result<std::unique_ptr<BatchExecution>> Begin(
      const QueryBatch& batch);

  /// A-priori service estimate of a single query for queue ordering (SJF).
  /// May be coarse but must be deterministic and cheap.
  virtual dana::Result<dana::SimTime> Estimate(
      const std::string& workload_id) = 0;

  /// Residency-aware estimate: the expected service of a single query
  /// dispatched while `warm_fraction` of its table is resident,
  /// interpolated the same way Dispatch charges it. The scheduler's
  /// affinity SJF orders the queue by this instead of a weight-tuned
  /// discount. Default ignores warmth (static executors).
  virtual dana::Result<dana::SimTime> EstimateAtWarmth(
      const std::string& workload_id, double warm_fraction) {
    (void)warm_fraction;
    return Estimate(workload_id);
  }

  /// Residency of `workload_id`'s table on `slot`'s buffer pool, in [0, 1],
  /// *without* running anything. The scheduler's affinity dispatch consults
  /// this when choosing among free slots and queued candidates. The default
  /// models no residency: every slot always looks cold.
  virtual double WarmFraction(const std::string& workload_id, uint32_t slot) {
    (void)workload_id;
    (void)slot;
    return 0.0;
  }

  /// Pre-sizes any per-slot state for `slots` concurrent slots. The
  /// threaded runtime calls this once before spawning its slot workers so
  /// lazily-grown per-slot containers (e.g. a pool group's vector) never
  /// reallocate under concurrent access. Default: no per-slot state.
  virtual void PrepareSlots(uint32_t slots) { (void)slots; }

 private:
  /// Detects a subclass overriding neither Dispatch nor Begin: the two
  /// defaults are implemented in terms of each other, and this flag turns
  /// the would-be infinite recursion into an Unimplemented status.
  bool resolving_default_ = false;
};

/// Executor backed by the DAnA cycle-level simulator over the Table 3
/// workload suite.
///
/// Service times are measured by actually compiling and training through
/// `runtime::DanaSystem` (so the scheduler multiplexes real simulated
/// accelerator runs, not analytical guesses), then memoized per
/// (workload, batch size, cache endpoint) as an *epoch profile*: the first
/// epoch carries the cold-I/O transient, every later epoch repeats the
/// steady state, and fixed query/epoch overheads sit on top. Full-run and
/// sliced costs both derive from one cumulative cost curve over that
/// profile, so any split of a run into epoch slices telescopes to exactly
/// the unsegmented service. Compiled designs live in a CompileCache so
/// `compiler::Compile` runs once per algorithm no matter how many queries
/// reference it. Each slot trains against its own buffer pool from the
/// instance's pool group (per-slot execution contexts).
///
/// Cache realism: by default the executor keeps one *physical* shared
/// storage::BufferPool per slot (sized in frames, shared across that
/// slot's tables in scale-normalized units — WorkloadInstance::
/// NormalizedPages) and prices every run from what is actually resident:
/// a slot's first run of a workload is charged the genuinely cold service
/// (nothing resident), a repeat on the same slot the warm one, and a
/// partially-evicted slot (other tables' sweeps installed over its frames)
/// a linear interpolation between the two measured endpoints — I/O shrinks
/// in proportion to the frames still resident. Every slice of every
/// execution sweeps the slot's shared pool (ScanTable), so the pool's
/// resident_frames()/last_table()/eviction order are the ground truth:
/// DAnA's Striders read RDBMS pages straight out of the buffer pool, so
/// placement cost comes from measured occupancy, not a model of it. The
/// logical storage::CacheResidencyModel ledger is still maintained in
/// parallel as a cross-checked *predictor* (PredictedWarmFraction); where
/// clock-sweep eviction order makes the two disagree, the physical answer
/// is charged. `Options::physical_pools = false` restores the PR 3/PR 4
/// ledger-priced executor bit for bit. A preempted run's table stays
/// resident until an intervening sweep evicts it — resuming on the same
/// slot is warm, resuming elsewhere is cold — and WarmFraction() exposes
/// the pool so affinity dispatch can route resumed work back to its warm
/// slot.
///
/// Concurrency: safe for the threaded runtime's slot workers. Shared
/// cross-slot state is partitioned into fill-once caches (the compile
/// cache and the measured endpoint profiles — concurrent cold requests
/// share one fill) and a state mutex (workload instances, registry memo,
/// the logical residency ledger). Per-slot pool state is intentionally
/// unguarded: slot i's pool is only ever touched by the execution running
/// on slot i (or by the scheduler while the slot is idle), the same
/// partition the scheduler's dispatch discipline guarantees. Callers
/// running real threads must PrepareSlots() first so the pool group never
/// grows mid-run.
class DanaQueryExecutor : public QueryExecutor {
 public:
  struct Options {
    /// Simulated wall-clock cost of a compile-cache miss: DSL translation,
    /// hardware generation, static scheduling, and configuring the FPGA's
    /// configuration FSM with the new design. Calibrated to "hundreds of
    /// milliseconds" — large enough that cache hits visibly matter, small
    /// against multi-second training runs.
    dana::SimTime compile_latency = dana::SimTime::Millis(400);
    /// false reproduces the PR 2 executor bit-for-bit: every run is
    /// silently re-prepared to `cache` and placement is costless. true
    /// (the default) charges each slot its tracked residency instead.
    bool model_residency = true;
    /// Residency ground truth (only meaningful with `model_residency`).
    /// true (the default): each slot owns one shared physical BufferPool;
    /// warm fractions are measured per-table frame counts. false: the
    /// legacy mode — warm fractions come from the logical
    /// CacheResidencyModel ledger, reproducing the PR 3/PR 4 executor
    /// bit for bit.
    bool physical_pools = true;
    /// Frames in each slot's shared residency pool. Scale-normalized
    /// units: a workload's sweep touches PoolSizeRatio() * pool_frames
    /// logical pages, so this is pure resolution — warm fractions quantize
    /// to 1/pages — not a byte budget. 4096 keeps quantization below
    /// 0.1% for every Table 3 ratio while a sweep stays cheap.
    uint64_t pool_frames = 4096;
    /// Replacement policy of each slot's shared pool (and of its OS tier
    /// when one is configured). kClock is the pinned legacy hierarchy —
    /// bit-for-bit the seed pools; the endpoint-measurement instance pools
    /// always stay clock regardless (endpoints are canonical cache-state
    /// costs, not policy-dependent).
    storage::EvictionKind eviction = storage::EvictionKind::kClock;
    /// Frames of the modeled OS page-cache tier below each slot's shared
    /// pool, in the same scale-normalized units as pool_frames. 0 (the
    /// default) = no tier, the two-endpoint pricing bit for bit. With a
    /// tier (requires lru/promotional eviction — clock keeps the legacy
    /// Fetch-path set, which the shared pools' data-free sweeps never
    /// consult), pool victims demote into it, tier hits promote back, and
    /// dispatches are priced across three measured endpoints
    /// (pool-warm / os-warm / cold).
    uint64_t os_frames = 0;
    /// Buffer-pool state every query trains under when `model_residency`
    /// is false (the legacy fixed-cache regime).
    runtime::CacheState cache = runtime::CacheState::kWarm;
    /// Functional epochs actually simulated before linear extrapolation
    /// (see DanaSystem::Options); 2 captures cold I/O + steady state.
    uint32_t functional_epoch_cap = 2;
    /// Skip the physical pool sweep of a slice whose slot is provably
    /// undisturbed since this execution's previous slice (same slot, pool
    /// version unchanged, table fully resident): the repeat sweep would be
    /// all hits and leave every frame exactly as it stands, so only the
    /// pool's hit/miss counters and last_table() would move. Priced costs,
    /// schedules, and eviction state are bit-for-bit identical either way;
    /// false re-runs every sweep (the reference behaviour, kept for
    /// equivalence testing).
    bool memoize_slices = true;
    /// Telemetry sink (not owned; null = off). Begin() counts each
    /// dispatch's pricing regime (exec.charges.cold/warm/partial) and
    /// MeasureEndpoint counts actual simulator runs
    /// (exec.endpoint_measurements); PublishGauges() snapshots the compile
    /// cache and slot pools into the same registry on demand.
    obs::MetricRegistry* metrics = nullptr;
  };

  /// Per-epoch cost profile of one (workload, batch size) at one cache
  /// endpoint, measured once through the cycle-level simulator. A run of
  /// e >= 1 epochs costs
  ///   query_overhead + epoch_overhead * e + first_wall
  ///     + steady_wall * (e - 1)
  /// and the shared/per-query attributions decompose the same way.
  struct EpochProfile {
    dana::SimTime first_wall, steady_wall;
    dana::SimTime first_shared, steady_shared;
    dana::SimTime first_pq, steady_pq;
    dana::SimTime query_overhead, epoch_overhead;
    uint32_t epochs = 1;  ///< the run's epoch budget E
    dana::SimTime compile;
  };

  DanaQueryExecutor();
  explicit DanaQueryExecutor(Options options);

  dana::Result<std::unique_ptr<BatchExecution>> Begin(
      const QueryBatch& batch) override;
  dana::Result<dana::SimTime> Estimate(const std::string& workload_id) override;
  dana::Result<dana::SimTime> EstimateAtWarmth(const std::string& workload_id,
                                               double warm_fraction) override;
  double WarmFraction(const std::string& workload_id, uint32_t slot) override;
  void PrepareSlots(uint32_t slots) override { slot_pools_.Resize(slots); }

  const CompileCache& compile_cache() const { return compile_cache_; }
  /// The logical ledger — with physical pools on this is the cross-checked
  /// *predictor*, not what dispatches are charged (see
  /// PredictedWarmFraction); with them off it is the pricing source.
  const storage::CacheResidencyModel& residency() const { return residency_; }
  /// What the logical ledger predicts `workload_id`'s residency on `slot`
  /// to be. With physical pools on, WarmFraction() (the charged value) can
  /// disagree — proportional decay vs the clock sweep's hand-order
  /// evictions — and the divergence suite pins that the physical answer
  /// wins.
  double PredictedWarmFraction(const std::string& workload_id, uint32_t slot)
      const {
    dana::MutexLock lock(state_mu_);
    return residency_.ResidentFraction(slot, workload_id);
  }
  /// Slot `slot`'s shared physical residency pool (created on demand).
  /// Ground truth for placement when `Options::physical_pools` is on:
  /// per-table resident frames, last_table(), and eviction order are
  /// readable directly.
  storage::BufferPool* slot_pool(uint32_t slot) {
    return slot_pools_.pool(slot);
  }
  /// Forgets all slot residency (fresh cold slots) — both the physical
  /// pools and the logical ledger — while keeping measured service
  /// endpoints and compiled designs. Sweeps call this between
  /// configurations so every run starts from the same cold machine.
  void ResetResidency() {
    {
      dana::MutexLock lock(state_mu_);
      residency_.Reset();
    }
    slot_pools_.ClearAll();
  }
  /// Snapshots the executor's caches into `metrics` as gauges: the compile
  /// cache under `compile_cache.` and the per-slot shared pools under
  /// `pool.` (rollup + per-slot breakdown). Call after a run — gauges are
  /// set-on-publish, so the snapshot reflects the registry at call time.
  /// Null registry (or defaulted to the Options sink) is a no-op.
  void PublishGauges(obs::MetricRegistry* metrics = nullptr) const {
    obs::MetricRegistry* sink =
        metrics != nullptr ? metrics : options_.metrics;
    if (sink == nullptr) return;
    compile_cache_.PublishTo(sink);
    slot_pools_.PublishTo(sink);
  }

 private:
  friend class DanaBatchExecution;

  dana::Result<runtime::WorkloadInstance*> Instance(const std::string& id)
      EXCLUDES(state_mu_);
  dana::Result<runtime::WorkloadInstance*> InstanceLocked(
      const std::string& id) REQUIRES(state_mu_);
  /// `id`'s registry entry, memoized (ml::FindWorkload is a linear scan);
  /// NotFound for unknown workloads.
  dana::Result<const ml::Workload*> RegistryWorkload(const std::string& id)
      EXCLUDES(state_mu_);
  dana::Result<const ml::Workload*> RegistryWorkloadLocked(
      const std::string& id) REQUIRES(state_mu_);
  /// Measured residency of `id` on `slot`'s shared pool: the table's
  /// resident frames over its normalized footprint. 0 when the workload is
  /// unknown (the later Begin/Estimate reports the error properly).
  double PhysicalWarmFraction(const std::string& id, uint32_t slot);
  /// Measured OS-tier share of `id` on `slot` (tier 1 resident frames over
  /// the normalized footprint), clamped so pool + OS shares never exceed 1.
  /// 0 without a configured OS tier.
  double PhysicalOsWarmFraction(const std::string& id, uint32_t slot,
                                double pool_warm);
  /// OS-tier capacity over pool capacity — the `os_ratio` the ledger
  /// predictor is taught (0 = no tier).
  double OsLedgerRatio() const {
    return options_.os_frames == 0
               ? 0.0
               : static_cast<double>(options_.os_frames) /
                     static_cast<double>(options_.pool_frames);
  }
  /// Measured (or memoized) epoch profile at a cache endpoint.
  dana::Result<const EpochProfile*> MeasureEndpoint(const QueryBatch& batch,
                                                    runtime::CacheState cache);
  /// Profile charged at `warm_fraction` pool residency plus
  /// `os_fraction` OS-tier residency: one measured endpoint when fully
  /// warm/cold, otherwise the linear mix of the pool-warm, os-warm, and
  /// cold endpoints (the os-warm endpoint is only measured when
  /// os_fraction > 0 — two-endpoint pricing is reproduced bit for bit
  /// otherwise).
  dana::Result<EpochProfile> ProfileAt(const QueryBatch& batch,
                                       double warm_fraction,
                                       double os_fraction = 0.0);

  Options options_;
  runtime::CpuCostModel cost_model_;
  runtime::DanaSystem system_;
  CompileCache compile_cache_;
  /// Logical per-slot ledger: the predictor the physical pools are
  /// cross-checked against (and the pricing source in legacy mode).
  /// The unlocked residency() accessor only binds a reference for post-run
  /// single-threaded readers; every dereference happens under state_mu_.
  storage::CacheResidencyModel residency_ GUARDED_BY(state_mu_);
  /// One shared physical pool per slot, sized in `Options::pool_frames`
  /// scale-normalized frames: every workload's sweep passes through its
  /// slot's pool, so cross-table eviction is measured, not modeled.
  storage::BufferPoolGroup slot_pools_;
  std::map<std::string, std::unique_ptr<runtime::WorkloadInstance>> instances_
      GUARDED_BY(state_mu_);
  /// Measured epoch profiles, keyed by (workload, batch size, cache
  /// endpoint). The cold table-load path: measuring an endpoint actually
  /// runs the cycle-level simulator, so concurrent slot workers asking for
  /// the same cold key share one fill (fill-once/wait) and never duplicate
  /// a run.
  dana::FillOnceMap<std::tuple<std::string, uint32_t, uint8_t>, EpochProfile>
      measured_;
  /// Registry lookups memoized per name: ml::FindWorkload is a linear scan
  /// with string compares, and Estimate/EstimateAtWarmth run once per
  /// queued candidate per dispatch under affinity SJF. Values are pointers
  /// into the static registry, valid for the process lifetime.
  std::unordered_map<std::string, const ml::Workload*> workload_cache_
      GUARDED_BY(state_mu_);
  /// Guards the executor's cross-slot mutable state: instances_,
  /// workload_cache_, and the logical residency_ ledger. Per-slot pool
  /// state needs no lock — slot i's pool is touched only by slot i's
  /// worker (BufferPoolGroup's contract).
  mutable dana::Mutex state_mu_;
  /// Serializes actual simulator measurement runs (MeasureEndpoint fills):
  /// WorkloadInstance execution contexts grow per-slot pools on demand and
  /// DanaSystem::RunCompiled is not re-entrant. Fills are once-per-key and
  /// memoized, so the serialization never sits on a steady-state path.
  /// Ordered before state_mu_ (the filler takes state_mu_ through
  /// Instance); no path nests them the other way.
  dana::Mutex measure_mu_ ACQUIRED_BEFORE(state_mu_);
};

}  // namespace dana::sched
