#include "sched/workload_driver.h"

#include <cmath>

#include "common/random.h"

namespace dana::sched {

const char* PopularityName(Popularity p) {
  switch (p) {
    case Popularity::kZipfian:
      return "zipf";
    case Popularity::kUniform:
      return "uniform";
  }
  return "?";
}

Result<Popularity> ParsePopularity(const std::string& name) {
  if (name == "zipf" || name == "zipfian") return Popularity::kZipfian;
  if (name == "uniform") return Popularity::kUniform;
  return Status::InvalidArgument("unknown distribution '" + name +
                                 "' (want zipf|uniform)");
}

double PopularityWeight(Popularity popularity, size_t rank, double exponent) {
  return popularity == Popularity::kZipfian
             ? 1.0 / std::pow(static_cast<double>(rank + 1), exponent)
             : 1.0;
}

Result<double> WeightedMeanServiceSeconds(QueryExecutor& executor,
                                          const std::vector<std::string>& catalog,
                                          Popularity popularity,
                                          double exponent) {
  if (catalog.empty()) {
    return Status::InvalidArgument("workload catalog is empty");
  }
  double weighted = 0, total = 0;
  for (size_t rank = 0; rank < catalog.size(); ++rank) {
    DANA_ASSIGN_OR_RETURN(BatchCost cost,
                          executor.Dispatch(QueryBatch::Single(catalog[rank])));
    const double w = PopularityWeight(popularity, rank, exponent);
    weighted += w * cost.service.seconds();
    total += w;
  }
  return weighted / total;
}

WorkloadDriver::WorkloadDriver(std::vector<std::string> catalog,
                               DriverOptions options)
    : catalog_(std::move(catalog)), options_(options) {}

namespace {

/// Popularity CDF over catalog ranks (uniform == exponent 0 Zipf).
std::vector<double> BuildCdf(Popularity popularity, size_t ranks,
                             double exponent) {
  std::vector<double> cdf(ranks);
  double total = 0;
  for (size_t r = 0; r < ranks; ++r) {
    total += PopularityWeight(popularity, r, exponent);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t PickRank(const std::vector<double>& cdf, double pick) {
  size_t rank = 0;
  while (rank + 1 < cdf.size() && pick > cdf[rank]) ++rank;
  return rank;
}

}  // namespace

Result<std::vector<QueryRequest>> WorkloadDriver::Generate() const {
  if (catalog_.empty()) {
    return Status::InvalidArgument("workload catalog is empty");
  }
  if (options_.arrival_rate_qps <= 0) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (options_.popularity == Popularity::kZipfian &&
      options_.zipf_exponent < 0) {
    return Status::InvalidArgument("zipf exponent must be non-negative");
  }

  const std::vector<double> cdf = BuildCdf(
      options_.popularity, catalog_.size(), options_.zipf_exponent);

  Rng rng(options_.seed);
  std::vector<QueryRequest> requests;
  requests.reserve(options_.num_queries);
  dana::SimTime clock;
  for (uint32_t i = 0; i < options_.num_queries; ++i) {
    // Exponential inter-arrival gap of the Poisson process.
    double u = rng.Uniform();
    if (u >= 1.0 - 1e-12) u = 1.0 - 1e-12;
    clock += dana::SimTime::Seconds(-std::log1p(-u) /
                                    options_.arrival_rate_qps);

    const double pick = rng.Uniform();
    const size_t rank = PickRank(cdf, pick);

    QueryRequest req;
    req.id = i;
    req.workload_id = catalog_[rank];
    req.arrival = clock;
    req.query_class = rank < options_.interactive_ranks
                          ? QueryClass::kInteractive
                          : QueryClass::kBatch;
    requests.push_back(std::move(req));
  }
  return requests;
}

Result<std::vector<std::vector<std::string>>> WorkloadDriver::GenerateSessions()
    const {
  if (catalog_.empty()) {
    return Status::InvalidArgument("workload catalog is empty");
  }
  if (options_.sessions == 0) {
    return Status::InvalidArgument("closed loop needs at least one session");
  }
  if (options_.popularity == Popularity::kZipfian &&
      options_.zipf_exponent < 0) {
    return Status::InvalidArgument("zipf exponent must be non-negative");
  }

  const std::vector<double> cdf = BuildCdf(
      options_.popularity, catalog_.size(), options_.zipf_exponent);

  // Same RNG discipline as Generate(): one arrival draw (discarded — in
  // closed loop the schedule makes the arrivals) and one popularity pick
  // per query, so the algorithm sequence matches the open stream's.
  Rng rng(options_.seed);
  std::vector<std::vector<std::string>> sessions(options_.sessions);
  for (uint32_t i = 0; i < options_.num_queries; ++i) {
    (void)rng.Uniform();
    const size_t rank = PickRank(cdf, rng.Uniform());
    sessions[i % options_.sessions].push_back(catalog_[rank]);
  }
  return sessions;
}

}  // namespace dana::sched
