#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sched/executor.h"

namespace dana::sched {

/// Queue-ordering policy for the accelerator slots.
enum class Policy : uint8_t {
  kFcfs,        ///< first come, first served (arrival order)
  kSjf,         ///< shortest job first (cost-model estimates, non-preemptive)
  kRoundRobin,  ///< round-robin across algorithms (per-workload fairness)
};

/// Short name for reporting ("fcfs", "sjf", "rr").
const char* PolicyName(Policy policy);

/// Parses "fcfs" / "sjf" / "rr"; InvalidArgument otherwise.
dana::Result<Policy> ParsePolicy(const std::string& name);

/// One analytics query request: "train <workload>'s UDF on its table",
/// arriving at a point of the simulated clock.
struct QueryRequest {
  uint64_t id = 0;
  std::string workload_id;
  dana::SimTime arrival;
};

/// Per-query outcome of a scheduled run.
struct QueryStat {
  uint64_t id = 0;
  std::string workload_id;
  uint32_t slot = 0;
  dana::SimTime arrival;
  dana::SimTime start;       ///< dispatch time (compile, if any, runs first)
  dana::SimTime completion;
  /// Compile time charged: the full latency on a cache miss, the residual
  /// wait when the design is still compiling on another slot, zero once it
  /// is cached.
  dana::SimTime compile;
  /// Slot occupancy of the batched run this query rode in (the whole
  /// batch's service, not a per-query share).
  dana::SimTime service;
  bool compile_hit = false;
  /// Queries co-dispatched in this query's batch (1 = unbatched).
  uint32_t batch_size = 1;
  /// Attribution of the batch's service: the one-pass streaming time the
  /// batch amortized vs the engine time this query added.
  dana::SimTime shared_service;
  dana::SimTime private_service;
  /// Residency of the workload's table on the dispatch slot when this
  /// query's batch started (BatchCost::warm_fraction): 0 = genuinely cold
  /// pool, 1 = fully warm repeat.
  double warm_fraction = 0.0;

  dana::SimTime Wait() const { return start - arrival; }
  dana::SimTime Latency() const { return completion - arrival; }
  /// A warm hit is a run that found at least half its table resident —
  /// placement paid off for this query.
  bool WarmHit() const { return warm_fraction >= 0.5; }
};

/// Aggregate outcome of one scheduled request stream.
struct ScheduleReport {
  Policy policy = Policy::kFcfs;
  uint32_t slots = 1;
  std::vector<QueryStat> queries;  ///< in dispatch order
  dana::SimTime makespan;          ///< last completion on the simulated clock
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;
  /// Batched-dispatch accounting: number of accelerator passes issued, the
  /// streaming time charged once per pass, and the summed per-query engine
  /// time across all batch members.
  uint64_t batches = 0;
  dana::SimTime shared_service;
  dana::SimTime private_service;

  /// Completed queries per simulated second.
  double ThroughputQps() const;
  dana::SimTime MeanLatency() const;
  dana::SimTime MeanWait() const;
  /// p in [0, 100]; linear interpolation (common/stats.h Percentile).
  dana::SimTime LatencyPercentile(double p) const;
  /// Queries per accelerator pass (1.0 when batching is off).
  double MeanBatchSize() const;
  /// Fraction of queries whose run found >= half its table resident on the
  /// dispatch slot (QueryStat::WarmHit); 0 under executors with no
  /// residency model reporting cold.
  double WarmHitRate() const;
  /// Mean per-query warm fraction at dispatch.
  double MeanWarmFraction() const;
};

struct SchedulerOptions {
  uint32_t slots = 1;
  Policy policy = Policy::kFcfs;
  /// Cross-query batching: when a slot frees, up to this many co-resident
  /// queries of the head query's algorithm are dispatched as one batched
  /// accelerator pass. 1 disables batching and reproduces the per-query
  /// schedule bit-for-bit. Applies under every policy.
  uint32_t max_batch = 1;
  /// SJF aging bonus, in estimated-seconds forgiven per second of queue
  /// wait: a queued query's effective estimate is
  /// `estimate - weight * wait`, so long jobs cannot starve behind an
  /// endless stream of short ones. 0 (the default) keeps pure SJF.
  double sjf_aging_weight = 0.0;
  /// Slot-affinity dispatch. 0 (the default) reproduces the affinity-blind
  /// scheduler bit-for-bit: earliest-free slot, warmth ignored. > 0 turns
  /// placement on: the dispatched query runs on the free slot whose pool is
  /// warmest for its table (QueryExecutor::WarmFraction) instead of the
  /// earliest-free one. FCFS and RR keep their queue order (reordering for
  /// warmth trades older arrivals' wait for placement); SJF folds the
  /// affinity score into its cost estimate, discounting a candidate to
  /// `estimate * max(0, 1 - affinity_weight * warmth)` — the weight is the
  /// share of the service a fully warm pool is trusted to save, and values
  /// >= 1 make any warm candidate beat every cold one.
  double affinity_weight = 0.0;
};

/// Non-preemptive discrete-event scheduler multiplexing N simulated
/// accelerator slots over an admission queue of query requests.
///
/// The simulation advances a single virtual clock: a request is admitted at
/// its arrival time, waits in the queue until a slot frees, then occupies
/// the slot for (compile +) service as reported by the executor. With
/// `max_batch > 1` the dispatch pulls further queued queries of the same
/// algorithm into one batched pass (one page-streaming sweep, shared by
/// every batch member; all members complete together). The compile-cache
/// model is per run: the first dispatch of each workload is a miss and pays
/// the compile latency; repeats hit and skip it, except that a repeat
/// dispatched while the first compile is still in flight on another slot
/// waits for it to finish. Determinism: ties break by arrival then request
/// id, so the same request stream always produces the same schedule.
class Scheduler {
 public:
  Scheduler(SchedulerOptions options, QueryExecutor* executor);

  /// Runs the whole request stream to completion and reports per-query and
  /// aggregate statistics. Requests need not be pre-sorted by arrival.
  dana::Result<ScheduleReport> Run(std::vector<QueryRequest> requests);

  /// Closed-loop (think-time) mode: each session issues the next query of
  /// its script only after its previous query completed plus `think_time`,
  /// modeling interactive analysts instead of an open Poisson stream.
  /// `sessions[s]` is session s's ordered workload-id script; every session
  /// submits its first query at time zero. Request ids number submissions
  /// in order (ties broken by session index).
  dana::Result<ScheduleReport> RunClosedLoop(
      const std::vector<std::vector<std::string>>& sessions,
      dana::SimTime think_time);

 private:
  SchedulerOptions options_;
  QueryExecutor* executor_;
};

}  // namespace dana::sched
