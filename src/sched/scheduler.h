#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/intern.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/executor.h"

namespace dana::sched {

/// Queue-ordering policy for the accelerator slots.
enum class Policy : uint8_t {
  kFcfs,        ///< first come, first served (arrival order)
  kSjf,         ///< shortest job first (cost-model estimates, non-preemptive)
  kRoundRobin,  ///< round-robin across algorithms (per-workload fairness)
};

/// Short name for reporting ("fcfs", "sjf", "rr").
const char* PolicyName(Policy policy);

/// Parses "fcfs" / "sjf" / "rr"; InvalidArgument otherwise.
dana::Result<Policy> ParsePolicy(const std::string& name);

/// Priority class of a query. Interactive queries are latency-sensitive:
/// the preemptive scheduler dispatches them ahead of all batch work and,
/// when epoch-sliced preemption is armed, lets them preempt a running
/// batch training at its next epoch boundary. Batch queries are the long
/// training runs that absorb those preemptions. With preemption and the
/// batching window both off the class is recorded for SLO reporting but
/// does not change the schedule.
enum class QueryClass : uint8_t { kBatch, kInteractive };

/// Short name for reporting ("batch", "interactive").
const char* QueryClassName(QueryClass cls);

/// One analytics query request: "train <workload>'s UDF on its table",
/// arriving at a point of the simulated clock.
struct QueryRequest {
  uint64_t id = 0;
  std::string workload_id;
  dana::SimTime arrival;
  QueryClass query_class = QueryClass::kBatch;
};

/// Per-query outcome of a scheduled run.
struct QueryStat {
  uint64_t id = 0;
  std::string workload_id;
  QueryClass query_class = QueryClass::kBatch;
  /// Slot the run occupied (of its final slice, if it was preempted and
  /// resumed elsewhere).
  uint32_t slot = 0;
  dana::SimTime arrival;
  dana::SimTime start;       ///< first dispatch time (compile, if any, first)
  dana::SimTime completion;
  /// Compile time charged: the full latency on a cache miss, the residual
  /// wait when the design is still compiling on another slot, zero once it
  /// is cached.
  dana::SimTime compile;
  /// Slot occupancy of the batched run this query rode in (the whole
  /// batch's service across all of its slices, not a per-query share;
  /// excludes compile and context-switch costs).
  dana::SimTime service;
  bool compile_hit = false;
  /// Queries co-dispatched in this query's batch (1 = unbatched).
  uint32_t batch_size = 1;
  /// Attribution of the batch's service: the one-pass streaming time the
  /// batch amortized vs the engine time this query added.
  dana::SimTime shared_service;
  dana::SimTime private_service;
  /// Residency of the workload's table on the dispatch slot when this
  /// query's batch started (BatchCost::warm_fraction): 0 = genuinely cold
  /// pool, 1 = fully warm repeat.
  double warm_fraction = 0.0;
  /// OS-tier share of the table at the same instant
  /// (BatchCost::os_warm_fraction), exclusive of `warm_fraction`. Always 0
  /// unless the executor runs a tiered hierarchy.
  double os_warm_fraction = 0.0;
  /// True when `warm_fraction` came from a tracked residency model (see
  /// BatchCost::residency_modeled); static-cache executors report false
  /// and are excluded from warm-hit rates.
  bool residency_modeled = false;
  /// Times this query's run was preempted at an epoch boundary, and the
  /// summed context-switch cost those preemptions charged.
  uint32_t preemptions = 0;
  dana::SimTime preempt_overhead;

  dana::SimTime Wait() const { return start - arrival; }
  dana::SimTime Latency() const { return completion - arrival; }
  /// A warm hit is a run that found at least half its table resident —
  /// placement paid off for this query. Only meaningful when
  /// `residency_modeled`; report aggregates exclude unmodeled queries.
  bool WarmHit() const { return warm_fraction >= 0.5; }
};

/// Aggregate outcome of one scheduled request stream.
struct ScheduleReport {
  Policy policy = Policy::kFcfs;
  uint32_t slots = 1;
  std::vector<QueryStat> queries;  ///< in (first-)dispatch order
  dana::SimTime makespan;          ///< last completion on the simulated clock
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;
  /// Batched-dispatch accounting: number of accelerator passes issued, the
  /// streaming time charged once per pass, and the summed per-query engine
  /// time across all batch members.
  uint64_t batches = 0;
  dana::SimTime shared_service;
  dana::SimTime private_service;
  /// Preemption accounting: epoch-boundary preemptions performed and the
  /// summed context-switch (checkpoint + resume) cost they charged.
  uint64_t preemptions = 0;
  dana::SimTime preemption_overhead;

  /// Completed queries per simulated second.
  double ThroughputQps() const;
  dana::SimTime MeanLatency() const;
  dana::SimTime MeanWait() const;
  /// p in [0, 100]; linear interpolation (common/stats.h Percentile).
  dana::SimTime LatencyPercentile(double p) const;
  /// Queries per accelerator pass (1.0 when batching is off).
  double MeanBatchSize() const;
  /// Fraction of residency-modeled queries whose run found >= half its
  /// table resident on the dispatch slot (QueryStat::WarmHit). Queries
  /// from executors without a residency model report a static
  /// warm_fraction that says nothing about placement; they are excluded,
  /// and the rate is NaN when no query was modeled.
  double WarmHitRate() const;
  /// Mean warm fraction at dispatch over residency-modeled queries; NaN
  /// when no query was modeled.
  double MeanWarmFraction() const;
  /// Mean OS-tier fraction at dispatch over residency-modeled queries
  /// (QueryStat::os_warm_fraction); NaN when no query was modeled, 0 for
  /// untiered executors.
  double MeanOsWarmFraction() const;

  /// @name Per-class SLO accounting
  ///@{
  uint64_t ClassQueries(QueryClass cls) const;
  dana::SimTime ClassMeanLatency(QueryClass cls) const;
  dana::SimTime ClassLatencyPercentile(QueryClass cls, double p) const;
  /// Completed queries of `cls` per simulated second of the makespan.
  double ClassThroughputQps(QueryClass cls) const;
  ///@}
};

/// How dispatched work physically executes.
enum class RuntimeMode : uint8_t {
  /// Single-threaded discrete-event simulation (the default): one virtual
  /// clock, executor calls inline. This is the oracle the threaded mode is
  /// verified against.
  kSimulated,
  /// Each slot is a real worker thread pulling work items off its own
  /// mutex/condvar admission queue (SlotWorkerPool). Scheduling decisions
  /// still serialize in oracle order on the coordinating thread — time is
  /// virtual either way — but pricing, slices, and compiles execute on the
  /// slots' threads: same-tick dispatches to distinct slots overlap on the
  /// run-to-completion path, and cold compile/measurement stampedes
  /// collapse through the fill-once caches. Per-query stats, dispatch
  /// order, service charges, and warm-hit rates are identical to the
  /// simulated oracle by construction (the sched_runtime parity suite
  /// asserts it); only real wall-clock time differs, which no report field
  /// measures. Assumes executors charge strictly positive batch costs
  /// (true of DanaQueryExecutor) — a zero-cost dispatch could re-free its
  /// slot at the same tick, which the overlap path conservatively forbids.
  kThreaded,
};

struct SchedulerOptions {
  uint32_t slots = 1;
  Policy policy = Policy::kFcfs;
  /// Cross-query batching: when a slot frees, up to this many co-resident
  /// queries of the head query's algorithm are dispatched as one batched
  /// accelerator pass. 1 disables batching and reproduces the per-query
  /// schedule bit-for-bit. Applies under every policy.
  uint32_t max_batch = 1;
  /// SJF aging bonus, in estimated-seconds forgiven per second of queue
  /// wait: a queued query's effective estimate is
  /// `estimate - weight * wait`, so long jobs cannot starve behind an
  /// endless stream of short ones. 0 (the default) keeps pure SJF.
  double sjf_aging_weight = 0.0;
  /// Slot-affinity dispatch. 0 (the default) reproduces the affinity-blind
  /// scheduler bit-for-bit: earliest-free slot, warmth ignored. > 0 turns
  /// placement on: the dispatched query runs on the free slot whose pool is
  /// warmest for its table (QueryExecutor::WarmFraction) instead of the
  /// earliest-free one. FCFS and RR keep their queue order (reordering for
  /// warmth trades older arrivals' wait for placement); SJF orders the
  /// queue by the executor's residency-aware estimate
  /// (QueryExecutor::EstimateAtWarmth at the best free slot's warmth) —
  /// the same cold/warm interpolation a dispatch is charged — so the
  /// discount is self-consistent instead of weight-tuned.
  double affinity_weight = 0.0;
  /// Epoch-sliced preemption. 0 (the default) keeps run-to-completion
  /// dispatch: the schedule is the affinity scheduler's bit for bit. > 0
  /// arms preemption: when an interactive query waits on a fully occupied
  /// machine, the longest-remaining batch-class run is checkpointed at its
  /// next epoch boundary — the next multiple of this many epochs of the
  /// run's *global* epoch count, so a resumed run keeps its original
  /// boundary phase instead of restarting the count from re-dispatch —
  /// and its remainder is re-enqueued with the checkpointed model,
  /// resuming — warm or cold, as residency dictates — when a slot frees.
  /// Equal-remaining victims tie-break by checkpoint-to-boundary distance
  /// (nearest usable boundary first), then least expected cold-resume
  /// residency loss, then slot index.
  uint32_t preemption_quantum_epochs = 0;
  /// Cost charged per preemption (model checkpoint write-back plus the
  /// resumed run's re-dispatch setup): the preempted slot stays occupied
  /// this much longer after the epoch boundary.
  dana::SimTime context_switch_cost = dana::SimTime::Zero();
  /// Batch-formation window: a freed slot holds its next batch-class
  /// dispatch up to this long while further same-algorithm arrivals join
  /// the batch, trading the head query's wait for batch amortization.
  /// Interactive arrivals seize held slots immediately. Zero (the
  /// default) dispatches the moment a slot frees, reproducing the
  /// windowless schedule bit-for-bit.
  dana::SimTime batch_window = dana::SimTime::Zero();
  /// Telemetry sinks (not owned; both null by default = observability off
  /// at near-zero cost — every publish site is a pointer null-check).
  /// `metrics` receives the sched.* counter/gauge/histogram catalog (see
  /// README "Observability"); everything is derived from the simulated
  /// clock and the request stream, so two identical runs publish
  /// bit-identical snapshots. `tracer` records per-slot
  /// dispatch/slice/checkpoint/resume spans for chrome://tracing.
  obs::MetricRegistry* metrics = nullptr;
  obs::SlotTracer* tracer = nullptr;
  /// Queue-structure implementation toggle. true (the default) uses the
  /// indexed hot-path structures: an intrusive admission-order list with
  /// per-algorithm FIFO indices (O(1) FCFS pops, O(k) batch coalescing,
  /// integer round-robin rotation), an ordered candidate set for pure SJF
  /// (O(log n) extraction), and an incrementally maintained free-slot list
  /// in the preemptive engine. false falls back to the reference O(n)
  /// scan-and-erase structures the suite history pinned. Both produce
  /// bit-for-bit identical schedules — every tie-break is preserved
  /// exactly, and the sched_perf suite asserts equivalence on all three
  /// policies, run-to-completion and preemptive — so the flag exists only
  /// to keep the reference path runnable for that comparison.
  bool indexed_queues = true;
  /// Execution substrate (see RuntimeMode). kSimulated is the oracle;
  /// kThreaded runs one worker thread per slot with identical schedules.
  RuntimeMode runtime_mode = RuntimeMode::kSimulated;
};

/// Publishes `report`'s aggregate statistics into `metrics` as the
/// sched.* catalog: counters (sched.queries, sched.batches,
/// sched.compile.hits/misses, sched.preemptions), gauges
/// (sched.throughput_qps, sched.makespan_s, sched.warm_hit_rate, ...),
/// and histograms (sched.latency_s, sched.wait_s, sched.batch_size,
/// sched.warm_fraction, per-class sched.latency_s.<class>). A null
/// registry is a no-op. Scheduler::Run calls this automatically when
/// SchedulerOptions::metrics is set; it is exposed so reports built
/// elsewhere (replays, tests) can publish the same way.
void PublishReportMetrics(const ScheduleReport& report,
                          obs::MetricRegistry* metrics);

/// Discrete-event scheduler multiplexing N simulated accelerator slots
/// over an admission queue of query requests.
///
/// The simulation advances a single virtual clock: a request is admitted at
/// its arrival time, waits in the queue until a slot frees, then occupies
/// the slot for (compile +) service as reported by the executor. With
/// `max_batch > 1` the dispatch pulls further queued queries of the same
/// algorithm into one batched pass (one page-streaming sweep, shared by
/// every batch member; all members complete together). The compile-cache
/// model is per run: the first dispatch of each workload is a miss and pays
/// the compile latency; repeats hit and skip it, except that a repeat
/// dispatched while the first compile is still in flight on another slot
/// waits for it to finish.
///
/// With `preemption_quantum_epochs` or `batch_window` nonzero the run uses
/// the preemptive event-driven path: executions advance through the
/// executor's epoch-slice ABI (QueryExecutor::Begin), interactive queries
/// dispatch ahead of batch work and preempt it at epoch boundaries, and
/// freed slots may briefly hold for batch formation. With both knobs zero
/// the run-to-completion path is taken and the schedule is bit-for-bit the
/// PR 3 scheduler's (pinned by the sched_golden suite). Determinism: ties
/// break by arrival then request id (and by slot index), so the same
/// request stream always produces the same schedule.
class Scheduler {
 public:
  Scheduler(SchedulerOptions options, QueryExecutor* executor);

  /// Runs the whole request stream to completion and reports per-query and
  /// aggregate statistics. Requests need not be pre-sorted by arrival.
  dana::Result<ScheduleReport> Run(std::vector<QueryRequest> requests);

  /// Closed-loop (think-time) mode: each session issues the next query of
  /// its script only after its previous query completed plus `think_time`,
  /// modeling interactive analysts instead of an open Poisson stream.
  /// `sessions[s]` is session s's ordered workload-id script; every session
  /// submits its first query at time zero. Request ids number submissions
  /// in order (ties broken by session index).
  ///
  /// `session_classes` (optional) assigns each session a query class;
  /// empty defaults every session to kBatch. Sized, it must have one entry
  /// per session.
  ///
  /// Preemption composes: with `preemption_quantum_epochs` nonzero the
  /// sessions run through the event-driven preemptive engine, which
  /// materializes each think-time submission at its predecessor's
  /// *completion event* — so submissions whose times depend on in-flight
  /// (possibly preempted) completions are admitted correctly, and
  /// interactive-class sessions preempt batch-class runs exactly as in the
  /// open-stream path. With the knob zero the run-to-completion closed
  /// loop is taken, bit for bit the PR 4 schedule.
  ///
  /// Limitation: the batch-formation window remains an open-stream
  /// feature — a formation hold defers completions that closed-loop
  /// submission times are derived from — so nonzero `batch_window` returns
  /// InvalidArgument (never aborts) naming the knob.
  dana::Result<ScheduleReport> RunClosedLoop(
      const std::vector<std::vector<std::string>>& sessions,
      dana::SimTime think_time,
      const std::vector<QueryClass>& session_classes = {});

 private:
  /// `ids` interns every workload in the stream (dense ids assigned at
  /// admission), `wids[i]` is requests[i]'s interned id, and
  /// `estimates_by_id` holds the SJF a-priori estimates indexed by id
  /// (empty unless the policy is SJF).
  dana::Result<ScheduleReport> RunPreemptive(
      std::vector<QueryRequest> requests, const dana::Interner& ids,
      const std::vector<uint32_t>& wids,
      const std::vector<dana::SimTime>& estimates_by_id);

  /// Closed-loop sessions through the event-driven preemptive engine:
  /// think-time submissions materialize at completion events.
  dana::Result<ScheduleReport> RunClosedLoopPreemptive(
      const std::vector<std::vector<std::string>>& sessions,
      dana::SimTime think_time,
      const std::vector<QueryClass>& session_classes);

  /// Open-stream run-to-completion loop in threaded mode: slot workers
  /// price same-tick dispatches concurrently, commits land in decision
  /// (ticket) order so the report is bit-identical to the simulated loop.
  dana::Result<ScheduleReport> RunThreadedRtc(
      std::vector<QueryRequest> requests, const dana::Interner& ids,
      const std::vector<uint32_t>& wids,
      const std::vector<dana::SimTime>& estimates_by_id);

  SchedulerOptions options_;
  QueryExecutor* executor_;
};

}  // namespace dana::sched
