#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sched/executor.h"

namespace dana::sched {

/// Queue-ordering policy for the accelerator slots.
enum class Policy : uint8_t {
  kFcfs,        ///< first come, first served (arrival order)
  kSjf,         ///< shortest job first (cost-model estimates, non-preemptive)
  kRoundRobin,  ///< round-robin across algorithms (per-workload fairness)
};

/// Short name for reporting ("fcfs", "sjf", "rr").
const char* PolicyName(Policy policy);

/// Parses "fcfs" / "sjf" / "rr"; InvalidArgument otherwise.
dana::Result<Policy> ParsePolicy(const std::string& name);

/// One analytics query request: "train <workload>'s UDF on its table",
/// arriving at a point of the simulated clock.
struct QueryRequest {
  uint64_t id = 0;
  std::string workload_id;
  dana::SimTime arrival;
};

/// Per-query outcome of a scheduled run.
struct QueryStat {
  uint64_t id = 0;
  std::string workload_id;
  uint32_t slot = 0;
  dana::SimTime arrival;
  dana::SimTime start;       ///< dispatch time (compile, if any, runs first)
  dana::SimTime completion;
  /// Compile time charged: the full latency on a cache miss, the residual
  /// wait when the design is still compiling on another slot, zero once it
  /// is cached.
  dana::SimTime compile;
  dana::SimTime service;
  bool compile_hit = false;

  dana::SimTime Wait() const { return start - arrival; }
  dana::SimTime Latency() const { return completion - arrival; }
};

/// Aggregate outcome of one scheduled request stream.
struct ScheduleReport {
  Policy policy = Policy::kFcfs;
  uint32_t slots = 1;
  std::vector<QueryStat> queries;  ///< in dispatch order
  dana::SimTime makespan;          ///< last completion on the simulated clock
  uint64_t compile_hits = 0;
  uint64_t compile_misses = 0;

  /// Completed queries per simulated second.
  double ThroughputQps() const;
  dana::SimTime MeanLatency() const;
  dana::SimTime MeanWait() const;
  /// p in [0, 100]; linear interpolation (common/stats.h Percentile).
  dana::SimTime LatencyPercentile(double p) const;
};

struct SchedulerOptions {
  uint32_t slots = 1;
  Policy policy = Policy::kFcfs;
};

/// Non-preemptive discrete-event scheduler multiplexing N simulated
/// accelerator slots over an admission queue of query requests.
///
/// The simulation advances a single virtual clock: a request is admitted at
/// its arrival time, waits in the queue until a slot frees, then occupies
/// the slot for (compile +) service as reported by the executor. The
/// compile-cache model is per run: the first dispatch of each workload is a
/// miss and pays the compile latency; repeats hit and skip it, except that
/// a repeat dispatched while the first compile is still in flight on
/// another slot waits for it to finish. Determinism: ties break by arrival
/// then request id, so the same request stream always produces the same
/// schedule.
class Scheduler {
 public:
  Scheduler(SchedulerOptions options, QueryExecutor* executor);

  /// Runs the whole request stream to completion and reports per-query and
  /// aggregate statistics. Requests need not be pre-sorted by arrival.
  dana::Result<ScheduleReport> Run(std::vector<QueryRequest> requests);

 private:
  SchedulerOptions options_;
  QueryExecutor* executor_;
};

}  // namespace dana::sched
