#include "sched/runtime_worker.h"

namespace dana::sched {

SlotWorkerPool::SlotWorkerPool(uint32_t slots) {
  if (slots == 0) slots = 1;
  workers_.reserve(slots);
  for (uint32_t i = 0; i < slots; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn after the vector is fully built: threads only ever touch their
  // own Worker struct through the stable unique_ptr.
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { RunWorker(worker); });
  }
}

SlotWorkerPool::~SlotWorkerPool() {
  for (auto& w : workers_) {
    {
      dana::MutexLock lock(w->mu);
      w->stop = true;
    }
    w->cv.NotifyAll();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void SlotWorkerPool::Post(uint32_t slot, std::function<void()> fn) {
  Worker* w = workers_[slot % workers_.size()].get();
  {
    dana::MutexLock lock(w->mu);
    w->queue.push_back(std::move(fn));
  }
  w->cv.NotifyAll();
}

void SlotWorkerPool::RunWorker(Worker* w) {
  for (;;) {
    std::function<void()> item;
    {
      dana::MutexLock lock(w->mu);
      // Explicit predicate loop so the guarded reads stay inside this
      // REQUIRES-checked scope (a wait-predicate lambda would not be).
      while (!w->stop && w->queue.empty()) w->cv.Wait(w->mu);
      if (w->queue.empty()) return;  // stop requested and queue drained
      item = std::move(w->queue.front());
      w->queue.pop_front();
    }
    item();
  }
}

namespace {

/// Execution handle that forwards state-mutating calls to the owning
/// slot's worker. Resume(slot) runs on the *new* slot's worker — the
/// re-pricing reads that slot's pool — and subsequent slices follow the
/// execution there. Const peeks stay on the calling thread: every prior
/// mutation was awaited through a WaitCell, so its writes are visible.
class WorkerProxyExecution : public BatchExecution {
 public:
  WorkerProxyExecution(std::unique_ptr<BatchExecution> inner,
                       SlotWorkerPool* workers)
      : BatchExecution(inner->batch()),
        inner_(std::move(inner)),
        workers_(workers) {}

  uint32_t total_epochs() const override { return inner_->total_epochs(); }
  uint32_t epochs_run() const override { return inner_->epochs_run(); }
  dana::SimTime compile_cost() const override { return inner_->compile_cost(); }
  double warm_fraction() const override { return inner_->warm_fraction(); }
  bool residency_modeled() const override {
    return inner_->residency_modeled();
  }

  dana::Result<SliceCost> NextSlice(uint32_t max_epochs) override {
    return RunOnSlot<dana::Result<SliceCost>>(
        workers_, inner_->slot(),
        [this, max_epochs] { return inner_->NextSlice(max_epochs); });
  }

  dana::Result<dana::SimTime> PeekService(uint32_t epochs) const override {
    return inner_->PeekService(epochs);
  }

  dana::Status Checkpoint() override {
    return RunOnSlot<dana::Status>(workers_, inner_->slot(),
                                   [this] { return inner_->Checkpoint(); });
  }

  dana::Status Resume(uint32_t slot) override {
    dana::Status st = RunOnSlot<dana::Status>(
        workers_, slot, [this, slot] { return inner_->Resume(slot); });
    if (st.ok()) batch_.slot = slot;
    return st;
  }

 private:
  std::unique_ptr<BatchExecution> inner_;
  SlotWorkerPool* workers_;
};

}  // namespace

dana::Result<std::unique_ptr<BatchExecution>> WorkerProxyExecutor::Begin(
    const QueryBatch& batch) {
  auto begun = RunOnSlot<dana::Result<std::unique_ptr<BatchExecution>>>(
      workers_, batch.slot, [this, &batch] { return inner_->Begin(batch); });
  if (!begun.ok()) return begun.status();
  return std::unique_ptr<BatchExecution>(new WorkerProxyExecution(
      std::move(begun).ValueOrDie(), workers_));
}

}  // namespace dana::sched
