#include "ml/reference.h"

#include <cmath>
#include <string>

namespace dana::ml {

ReferenceTrainer::ReferenceTrainer(AlgoKind kind, AlgoParams params)
    : kind_(kind), params_(params) {}

uint64_t ReferenceTrainer::ModelSize() const {
  return kind_ == AlgoKind::kLowRankMF
             ? static_cast<uint64_t>(params_.dims) * params_.rank
             : params_.dims;
}

Status ReferenceTrainer::BatchUpdate(
    const std::vector<std::vector<double>>& batch,
    std::vector<double>* model) const {
  const uint32_t d = params_.dims;
  const uint32_t k = params_.rank;
  if (model->size() != ModelSize()) {
    return Status::InvalidArgument("model size mismatch");
  }
  std::vector<double> grad(model->size(), 0.0);

  for (const auto& row : batch) {
    switch (kind_) {
      case AlgoKind::kLinearRegression:
      case AlgoKind::kLogisticRegression: {
        if (row.size() < d + 1) {
          return Status::InvalidArgument("row too short");
        }
        double s = 0;
        for (uint32_t i = 0; i < d; ++i) s += (*model)[i] * row[i];
        const double pred = kind_ == AlgoKind::kLogisticRegression
                                ? 1.0 / (1.0 + std::exp(-s))
                                : s;
        const double er = pred - row[d];
        for (uint32_t i = 0; i < d; ++i) grad[i] += er * row[i];
        break;
      }
      case AlgoKind::kSvm: {
        if (row.size() < d + 1) {
          return Status::InvalidArgument("row too short");
        }
        const double y = row[d];
        double s = 0;
        for (uint32_t i = 0; i < d; ++i) s += (*model)[i] * row[i];
        const double violating = (y * s < 1.0) ? 1.0 : 0.0;
        for (uint32_t i = 0; i < d; ++i) {
          grad[i] += params_.lambda * (*model)[i] - violating * y * row[i];
        }
        break;
      }
      case AlgoKind::kLowRankMF: {
        if (row.size() < d) {
          return Status::InvalidArgument("rating row too short");
        }
        // lu = (r R) / d ; pred = R lu ; grad += (pred - r) outer lu.
        std::vector<double> lu(k, 0.0);
        for (uint32_t i = 0; i < d; ++i) {
          for (uint32_t j = 0; j < k; ++j) {
            lu[j] += row[i] * (*model)[i * k + j];
          }
        }
        for (auto& v : lu) v /= d;
        for (uint32_t i = 0; i < d; ++i) {
          double pred = 0;
          for (uint32_t j = 0; j < k; ++j) pred += (*model)[i * k + j] * lu[j];
          const double er = pred - row[i];
          for (uint32_t j = 0; j < k; ++j) grad[i * k + j] += er * lu[j];
        }
        break;
      }
    }
  }

  // Sum-then-average over the merge coefficient, matching the DSL UDFs:
  // the divisor is the declared batch size even for a ragged final batch.
  const double scale = params_.learning_rate / params_.merge_coef;
  for (size_t i = 0; i < model->size(); ++i) {
    (*model)[i] -= scale * grad[i];
  }
  return Status::OK();
}

Result<std::vector<double>> ReferenceTrainer::Train(const Dataset& data,
                                                    uint32_t epochs) const {
  if (data.feature_dims != params_.dims) {
    return Status::InvalidArgument(
        "dataset width " + std::to_string(data.feature_dims) +
        " != algo dims " + std::to_string(params_.dims));
  }
  const std::vector<float> init = InitialModel(kind_, params_);
  std::vector<double> model(init.begin(), init.end());
  const uint32_t n_epochs = epochs ? epochs : params_.epochs;
  const size_t batch = params_.merge_coef;
  std::vector<std::vector<double>> window;
  window.reserve(batch);
  for (uint32_t e = 0; e < n_epochs; ++e) {
    for (size_t i = 0; i < data.rows.size(); ++i) {
      window.push_back(data.rows[i]);
      if (window.size() == batch || i + 1 == data.rows.size()) {
        DANA_RETURN_NOT_OK(BatchUpdate(window, &model));
        window.clear();
      }
    }
  }
  return model;
}

double ReferenceTrainer::Loss(const Dataset& data,
                              const std::vector<double>& model) const {
  const uint32_t d = params_.dims;
  const uint32_t k = params_.rank;
  double total = 0;
  for (const auto& row : data.rows) {
    switch (kind_) {
      case AlgoKind::kLinearRegression: {
        double s = 0;
        for (uint32_t i = 0; i < d; ++i) s += model[i] * row[i];
        const double er = s - row[d];
        total += er * er;
        break;
      }
      case AlgoKind::kLogisticRegression: {
        double s = 0;
        for (uint32_t i = 0; i < d; ++i) s += model[i] * row[i];
        const double p = 1.0 / (1.0 + std::exp(-s));
        const double y = row[d];
        const double eps = 1e-12;
        total -= y * std::log(p + eps) + (1 - y) * std::log(1 - p + eps);
        break;
      }
      case AlgoKind::kSvm: {
        double s = 0, reg = 0;
        for (uint32_t i = 0; i < d; ++i) {
          s += model[i] * row[i];
          reg += model[i] * model[i];
        }
        total += std::max(0.0, 1.0 - row[d] * s) +
                 0.5 * params_.lambda * reg;
        break;
      }
      case AlgoKind::kLowRankMF: {
        std::vector<double> lu(k, 0.0);
        for (uint32_t i = 0; i < d; ++i) {
          for (uint32_t j = 0; j < k; ++j) lu[j] += row[i] * model[i * k + j];
        }
        for (auto& v : lu) v /= d;
        for (uint32_t i = 0; i < d; ++i) {
          double pred = 0;
          for (uint32_t j = 0; j < k; ++j) pred += model[i * k + j] * lu[j];
          const double er = pred - row[i];
          total += er * er;
        }
        break;
      }
    }
  }
  return data.rows.empty() ? 0.0 : total / data.rows.size();
}

}  // namespace dana::ml
