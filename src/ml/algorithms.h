#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "dsl/algo.h"

namespace dana::ml {

/// ML algorithm families evaluated in the paper (Table 3).
enum class AlgoKind : uint8_t {
  kLinearRegression,
  kLogisticRegression,
  kSvm,
  kLowRankMF,
};

/// Name for reporting ("Linear Regression", ...).
std::string AlgoKindName(AlgoKind kind);

/// Hyper-parameters of a UDF instance.
struct AlgoParams {
  /// Feature-vector width (for LRMF: the item count, i.e. rating-row width).
  uint32_t dims = 0;
  /// LRMF factor rank.
  uint32_t rank = 10;
  /// Learning rate (meta).
  double learning_rate = 0.1;
  /// SVM regularization strength.
  double lambda = 0.01;
  /// Merge coefficient: parallel update-rule instances whose results are
  /// combined per batch.
  uint32_t merge_coef = 16;
  /// Epoch budget.
  uint32_t epochs = 1;
  /// Optional convergence threshold on the merged-gradient norm
  /// (<= 0 disables setConvergence).
  double convergence_norm = 0.0;
};

/// Builds the DSL UDF for one algorithm family (paper §4.3 style):
///
/// - Linear regression: squared loss, batched gradient descent —
///   grad = (w.x - y) x, merged with "+", averaged, applied to the model.
/// - Logistic regression: grad = (sigmoid(w.x) - y) x.
/// - SVM: hinge loss with L2 regularization —
///   grad = lambda w - [y w.x < 1] y x.
/// - Low-rank matrix factorization: projection-form update on the item
///   factor matrix R of rank `rank`: for a rating row r,
///   lu = sigma(r * R, 0) projects the row onto the factors,
///   err = sigma(R * lu, 1) - r is the reconstruction error, and
///   R <- R - lr (err x lu). (The coordinate-indexed MF update is not
///   expressible in the index-free DSL; this projection form preserves the
///   compute shape: d*rank work per tuple with massive intra-rule
///   parallelism, matching the paper's LRMF observations.)
dana::Result<std::unique_ptr<dsl::Algo>> BuildAlgo(AlgoKind kind,
                                                   const AlgoParams& params);

/// Approximate floating-point operations of one update-rule instance
/// (used by the CPU cost model).
uint64_t UpdateRuleFlops(AlgoKind kind, const AlgoParams& params);

/// Fraction of the update rule that is transcendental (sigmoid/exp); these
/// vectorize poorly on CPUs.
double TranscendentalFraction(AlgoKind kind);

/// Deterministic initial model for one algorithm instance, shared by every
/// system in the reproduction so trained models are comparable. The
/// supervised families start at zero (as MADlib does); LRMF starts at small
/// pseudo-random factors because the all-zero factor matrix is a saddle
/// point of the reconstruction objective (zero gradient forever).
std::vector<float> InitialModel(AlgoKind kind, const AlgoParams& params,
                                uint64_t seed = 0xDA7A);

}  // namespace dana::ml
