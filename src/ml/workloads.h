#pragma once

#include <string>
#include <vector>

#include "ml/algorithms.h"
#include "ml/datasets.h"

namespace dana::ml {

/// Which group of Table 3 a workload belongs to.
enum class WorkloadGroup : uint8_t {
  kPublic,     ///< publicly available datasets (UCI / Netflix)
  kSynthetic,  ///< S/N — synthetic nominal
  kExtensive,  ///< S/E — synthetic extensive
};

/// Paper-reported numbers for one workload, used by the benchmark harness
/// to print paper-vs-measured rows (Figures 8-11, 16 and Table 5).
struct PaperNumbers {
  uint64_t tuples = 0;       ///< Table 3 "# of Tuples"
  uint64_t pages_32k = 0;    ///< Table 3 "# 32KB Pages"
  double size_mb = 0;        ///< Table 3 "Size (MB)"
  double pg_runtime_s = 0;   ///< Table 5 MADlib+PostgreSQL
  double gp_runtime_s = 0;   ///< Table 5 MADlib+Greenplum
  double dana_runtime_s = 0; ///< Table 5 DAnA+PostgreSQL
  double gp_speedup_warm = 1;    ///< Fig 8-10 Greenplum bar (warm)
  double gp_speedup_cold = 1;    ///< Fig 8-10 Greenplum bar (cold)
  double dana_speedup_warm = 1;  ///< Fig 8-10 DAnA bar (warm)
  double dana_speedup_cold = 1;  ///< Fig 8-10 DAnA bar (cold)
  double dana_wo_strider = 0;    ///< Fig 11 "DAnA without Strider" (0 = n/a)
  double tabla_compute_ratio = 0;///< Fig 16 DAnA/TABLA compute (0 = n/a)
};

/// One evaluation workload: the algorithm instance, the (scaled) dataset
/// geometry, and the paper's reference results.
struct Workload {
  std::string id;            ///< short key ("rs_lr")
  std::string display_name;  ///< paper name ("Remote Sensing LR")
  WorkloadGroup group = WorkloadGroup::kPublic;
  AlgoKind kind = AlgoKind::kLinearRegression;
  AlgoParams params;         ///< dims/rank/lr/merge_coef/epochs
  /// Scaled tuple count actually generated (simulation budget); the
  /// timing harness extrapolates with `scale` to paper size.
  uint64_t tuples = 0;
  /// Feature width of the paper's dataset when it differs from the
  /// generated one (LRMF workloads scale the rating-row width too).
  uint32_t paper_dims = 0;
  /// Virtual size multiplier: paper elements / generated elements. Every
  /// per-tuple cost in the simulator is linear in the tuple width, so
  /// element-based scaling extrapolates both tuple count and width.
  double scale = 1.0;
  /// Passes the MADlib baselines perform (IRLS/Newton and one-pass normal
  /// equations converge in few passes; SVM's IGD defaults to many).
  uint32_t assumed_epochs = 1;
  /// Epochs DAnA's mini-batch gradient descent runs until comparable
  /// convergence (streaming SGD needs more passes than Newton methods);
  /// calibrated against the paper's DAnA runtimes (EXPERIMENTS.md).
  uint32_t dana_epochs = 1;
  /// Greenplum 8-segment parallel efficiency observed in the paper
  /// (encapsulates MADlib/Greenplum implementation behaviour we model
  /// rather than derive; see EXPERIMENTS.md).
  double gp_speedup_8seg = 2.0;
  PaperNumbers paper;

  /// Dataset generator spec for this workload.
  DatasetSpec dataset_spec() const;
  /// Tuple payload bytes in float4 storage (features + label).
  uint32_t TuplePayloadBytes() const;
};

/// The 14 workloads of Table 3, in paper order.
const std::vector<Workload>& AllWorkloads();

/// Lookup by id; nullptr when unknown.
const Workload* FindWorkload(const std::string& id);

/// The six publicly-available-dataset workloads (Figure 8).
std::vector<Workload> PublicWorkloads();
/// The four S/N workloads (Figure 9).
std::vector<Workload> SyntheticNominalWorkloads();
/// The four S/E workloads (Figure 10).
std::vector<Workload> SyntheticExtensiveWorkloads();

}  // namespace dana::ml
