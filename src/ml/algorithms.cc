#include "ml/algorithms.h"

#include <cmath>

#include "common/random.h"
#include "dsl/expr.h"

namespace dana::ml {

using dsl::Algo;
using dsl::Expr;
using dsl::OpKind;

std::string AlgoKindName(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kLinearRegression:
      return "Linear Regression";
    case AlgoKind::kLogisticRegression:
      return "Logistic Regression";
    case AlgoKind::kSvm:
      return "SVM";
    case AlgoKind::kLowRankMF:
      return "Low Rank Matrix Factorization";
  }
  return "?";
}

namespace {

void Finish(Algo* algo, const AlgoParams& params, const Expr& grad_merged) {
  algo->SetEpochs(params.epochs);
  if (params.convergence_norm > 0) {
    auto conv_factor = algo->Meta("conv_factor", params.convergence_norm);
    auto n = dsl::Norm(grad_merged, 0);
    algo->SetConvergence(n < conv_factor);
  }
}

Result<std::unique_ptr<Algo>> BuildLinear(const AlgoParams& params,
                                          bool logistic) {
  auto algo = std::make_unique<Algo>(logistic ? "logisticR" : "linearR");
  auto mo = algo->Model("mo", {params.dims});
  auto in = algo->Input("in", {params.dims});
  auto out = algo->Output("out");
  auto lr = algo->Meta("lr", params.learning_rate);
  auto inv_coef = algo->Meta("inv_coef", 1.0 / params.merge_coef);

  // Update rule (one training tuple).
  auto s = dsl::Sigma(mo * in, 0);
  auto pred = logistic ? dsl::Sigmoid(s) : s;
  auto er = pred - out;
  auto grad = er * in;

  // Merge function: sum gradients across parallel threads, then average —
  // batched gradient descent (§4.3 first merge variant).
  auto g = algo->Merge(grad, params.merge_coef, OpKind::kAdd);
  auto g_avg = g * inv_coef;
  auto mo_up = mo - lr * g_avg;
  DANA_RETURN_NOT_OK(algo->SetModel(mo, mo_up));
  Finish(algo.get(), params, g);
  return algo;
}

Result<std::unique_ptr<Algo>> BuildSvm(const AlgoParams& params) {
  auto algo = std::make_unique<Algo>("svm");
  auto mo = algo->Model("mo", {params.dims});
  auto in = algo->Input("in", {params.dims});
  auto out = algo->Output("out");  // labels in {-1, +1}
  auto lr = algo->Meta("lr", params.learning_rate);
  auto lambda = algo->Meta("lambda", params.lambda);
  auto inv_coef = algo->Meta("inv_coef", 1.0 / params.merge_coef);

  // Hinge-loss subgradient: lambda*w - [y (w.x) < 1] y x.
  auto s = dsl::Sigma(mo * in, 0);
  auto margin = out * s;
  auto violating = margin < 1.0;  // 1.0 when the tuple is inside the margin
  auto grad = lambda * mo - violating * (out * in);

  auto g = algo->Merge(grad, params.merge_coef, OpKind::kAdd);
  auto mo_up = mo - lr * (g * inv_coef);
  DANA_RETURN_NOT_OK(algo->SetModel(mo, mo_up));
  Finish(algo.get(), params, g);
  return algo;
}

Result<std::unique_ptr<Algo>> BuildLrmf(const AlgoParams& params) {
  auto algo = std::make_unique<Algo>("lrmf");
  auto R = algo->Model("R", {params.dims, params.rank});
  auto r = algo->Input("r", {params.dims});  // one user's rating row
  auto lr = algo->Meta("lr", params.learning_rate);
  auto inv_coef = algo->Meta("inv_coef", 1.0 / params.merge_coef);
  // Normalizing the projection by the row width keeps gradient magnitudes
  // width-independent, so one learning rate works across catalogue sizes.
  auto inv_d = algo->Meta("inv_d", 1.0 / params.dims);

  // Project the rating row onto the item factors (user factor on the fly),
  // reconstruct, and descend on the reconstruction error.
  auto lu = dsl::Sigma(r * R, 0) * inv_d;  // [rank]
  auto pred = dsl::Sigma(R * lu, 1);       // [dims]
  auto er = pred - r;                      // [dims]
  auto grad = er * lu;                     // outer product -> [dims][rank]

  auto g = algo->Merge(grad, params.merge_coef, OpKind::kAdd);
  auto R_up = R - lr * (g * inv_coef);
  DANA_RETURN_NOT_OK(algo->SetModel(R, R_up));
  Finish(algo.get(), params, g);
  return algo;
}

}  // namespace

Result<std::unique_ptr<Algo>> BuildAlgo(AlgoKind kind,
                                        const AlgoParams& params) {
  if (params.dims == 0) {
    return Status::InvalidArgument("algo needs dims >= 1");
  }
  if (params.merge_coef == 0) {
    return Status::InvalidArgument("merge coefficient must be >= 1");
  }
  switch (kind) {
    case AlgoKind::kLinearRegression:
      return BuildLinear(params, /*logistic=*/false);
    case AlgoKind::kLogisticRegression:
      return BuildLinear(params, /*logistic=*/true);
    case AlgoKind::kSvm:
      return BuildSvm(params);
    case AlgoKind::kLowRankMF:
      return BuildLrmf(params);
  }
  return Status::InvalidArgument("unknown algorithm kind");
}

uint64_t UpdateRuleFlops(AlgoKind kind, const AlgoParams& params) {
  const uint64_t d = params.dims;
  const uint64_t k = params.rank;
  switch (kind) {
    case AlgoKind::kLinearRegression:
      // dot (2d) + residual + grad (d) + update (2d)
      return 5 * d + 2;
    case AlgoKind::kLogisticRegression:
      return 5 * d + 6;  // + sigmoid (costed via TranscendentalFraction)
    case AlgoKind::kSvm:
      return 7 * d + 4;  // dot + margin test + reg + update
    case AlgoKind::kLowRankMF:
      // projection (2dk) + reconstruct (2dk) + outer (dk) + update (2dk)
      return 7 * d * k + 2 * d;
  }
  return 0;
}

std::vector<float> InitialModel(AlgoKind kind, const AlgoParams& params,
                                uint64_t seed) {
  const uint64_t size =
      kind == AlgoKind::kLowRankMF
          ? static_cast<uint64_t>(params.dims) * params.rank
          : params.dims;
  std::vector<float> model(size, 0.0f);
  if (kind == AlgoKind::kLowRankMF) {
    Rng rng(seed);
    const double scale = 0.3 / std::sqrt(static_cast<double>(params.rank));
    for (auto& v : model) v = static_cast<float>(rng.Gaussian() * scale);
  }
  return model;
}

double TranscendentalFraction(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kLogisticRegression:
      return 0.05;  // one exp per tuple, but ~20x the cost of a flop
    default:
      return 0.0;
  }
}

}  // namespace dana::ml
