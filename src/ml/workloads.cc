#include "ml/workloads.h"

#include "hdfg/graph.h"

namespace dana::ml {

DatasetSpec Workload::dataset_spec() const {
  DatasetSpec spec;
  spec.kind = kind;
  spec.dims = params.dims;
  spec.rank = params.rank;
  spec.tuples = tuples;
  spec.seed = 0x5EED0000ull + std::hash<std::string>()(id);
  return spec;
}

uint32_t Workload::TuplePayloadBytes() const {
  const bool has_label = kind != AlgoKind::kLowRankMF;
  return 4 * (params.dims + (has_label ? 1 : 0));
}

namespace {

Workload Make(std::string id, std::string name, WorkloadGroup group,
              AlgoKind kind, uint32_t dims, uint32_t rank, double lr,
              uint32_t merge_coef, uint64_t scaled_tuples,
              uint32_t madlib_epochs, uint32_t dana_epochs, double gp8,
              PaperNumbers paper, uint32_t paper_dims = 0) {
  Workload w;
  w.id = std::move(id);
  w.display_name = std::move(name);
  w.group = group;
  w.kind = kind;
  w.params.dims = dims;
  w.params.rank = rank;
  w.params.learning_rate = lr;
  w.params.merge_coef = merge_coef;
  w.params.epochs = dana_epochs;
  w.tuples = scaled_tuples;
  w.paper_dims = paper_dims ? paper_dims : dims;
  // Element-based virtual scale: tuple count ratio times width ratio.
  w.scale = (static_cast<double>(paper.tuples) * w.paper_dims) /
            (static_cast<double>(scaled_tuples) * dims);
  w.assumed_epochs = madlib_epochs;
  w.dana_epochs = dana_epochs;
  w.gp_speedup_8seg = gp8;
  w.paper = paper;
  return w;
}

std::vector<Workload> BuildAll() {
  std::vector<Workload> all;
  using G = WorkloadGroup;
  using A = AlgoKind;

  // ----- Publicly available datasets (Table 3, unshaded rows) -------------
  all.push_back(Make(
      "rs_lr", "Remote Sensing LR", G::kPublic, A::kLogisticRegression,
      /*dims=*/54, /*rank=*/10, /*lr=*/1.0, /*merge=*/64,
      /*scaled_tuples=*/24000, /*madlib_epochs=*/1, /*dana_epochs=*/2,
      /*gp8=*/3.4,
      {.tuples = 581102, .pages_32k = 4924, .size_mb = 154,
       .pg_runtime_s = 3.6, .gp_runtime_s = 1.1, .dana_runtime_s = 0.1,
       .gp_speedup_warm = 3.4, .gp_speedup_cold = 3.2,
       .dana_speedup_warm = 28.2, .dana_speedup_cold = 4.89,
       .dana_wo_strider = 4.0, .tabla_compute_ratio = 10.35}));
  all.push_back(Make(
      "wlan", "WLAN", G::kPublic, A::kLogisticRegression,
      520, 10, 1.0, 64, 2500, 1, 20, 1.0,
      {.tuples = 19937, .pages_32k = 1330, .size_mb = 42,
       .pg_runtime_s = 14.0, .gp_runtime_s = 14.0, .dana_runtime_s = 0.61,
       .gp_speedup_warm = 1.0, .gp_speedup_cold = 1.0,
       .dana_speedup_warm = 18.42, .dana_speedup_cold = 14.58,
       .dana_wo_strider = 12.21, .tabla_compute_ratio = 0.79}));
  all.push_back(Make(
      "rs_svm", "Remote Sensing SVM", G::kPublic, A::kSvm,
      54, 10, 0.2, 64, 24000, 1, 1, 2.7,
      {.tuples = 581102, .pages_32k = 4924, .size_mb = 154,
       .pg_runtime_s = 1.7, .gp_runtime_s = 0.6, .dana_runtime_s = 0.09,
       .gp_speedup_warm = 2.7, .gp_speedup_cold = 2.4,
       .dana_speedup_warm = 15.1, .dana_speedup_cold = 8.61,
       .dana_wo_strider = 1.93, .tabla_compute_ratio = 12.33}));
  all.push_back(Make(
      "netflix", "Netflix", G::kPublic, A::kLowRankMF,
      /*dims=items*/ 396, /*rank=*/10, 0.5, 4, /*users*/ 604, 10, 7, 0.9,
      {.tuples = 6040, .pages_32k = 3068, .size_mb = 96,
       .pg_runtime_s = 62.3, .gp_runtime_s = 69.2, .dana_runtime_s = 7.89,
       .gp_speedup_warm = 0.9, .gp_speedup_cold = 0.9,
       .dana_speedup_warm = 6.32, .dana_speedup_cold = 6.01,
       .dana_wo_strider = 0.58, .tabla_compute_ratio = 8.13},
      /*paper_dims=*/3952));
  all.push_back(Make(
      "patient", "Patient", G::kPublic, A::kLinearRegression,
      384, 10, 0.3, 64, 2700, 1, 18, 3.0,
      {.tuples = 53500, .pages_32k = 1941, .size_mb = 61,
       .pg_runtime_s = 2.8, .gp_runtime_s = 0.9, .dana_runtime_s = 1.18,
       .gp_speedup_warm = 3.0, .gp_speedup_cold = 2.4,
       .dana_speedup_warm = 3.65, .dana_speedup_cold = 2.23,
       .dana_wo_strider = 0.76, .tabla_compute_ratio = 4.05}));
  all.push_back(Make(
      "blog", "Blog Feedback", G::kPublic, A::kLinearRegression,
      280, 10, 0.3, 64, 2600, 1, 18, 3.1,
      {.tuples = 52397, .pages_32k = 2675, .size_mb = 84,
       .pg_runtime_s = 1.6, .gp_runtime_s = 0.5, .dana_runtime_s = 0.34,
       .gp_speedup_warm = 3.1, .gp_speedup_cold = 2.6,
       .dana_speedup_warm = 1.86, .dana_speedup_cold = 1.48,
       .dana_wo_strider = 1.14, .tabla_compute_ratio = 5.43}));

  // ----- Synthetic nominal (S/N) -------------------------------------------
  all.push_back(Make(
      "sn_logistic", "S/N Logistic", G::kSynthetic, A::kLogisticRegression,
      2000, 10, 1.0, 64, 3880, 1, 100, 1.1,
      {.tuples = 387944, .pages_32k = 96986, .size_mb = 3031,
       .pg_runtime_s = 3292, .gp_runtime_s = 2993, .dana_runtime_s = 131,
       .gp_speedup_warm = 1.1, .gp_speedup_cold = 1.1,
       .dana_speedup_warm = 20.16, .dana_speedup_cold = 10.05,
       .dana_wo_strider = 19.0, .tabla_compute_ratio = 1.01}));
  all.push_back(Make(
      "sn_svm", "S/N SVM", G::kSynthetic, A::kSvm,
      1740, 10, 0.2, 64, 6780, 100, 120, 4.4,
      {.tuples = 678392, .pages_32k = 169598, .size_mb = 5300,
       .pg_runtime_s = 3386, .gp_runtime_s = 770, .dana_runtime_s = 244,
       .gp_speedup_warm = 4.4, .gp_speedup_cold = 5.5,
       .dana_speedup_warm = 8.7, .dana_speedup_cold = 6.47,
       .dana_wo_strider = 2.25, .tabla_compute_ratio = 1.13}));
  all.push_back(Make(
      "sn_lrmf", "S/N LRMF", G::kSynthetic, A::kLowRankMF,
      497, 10, 0.5, 4, 1988, 1, 1, 7.99,
      {.tuples = 19880, .pages_32k = 50784, .size_mb = 1587,
       .pg_runtime_s = 23, .gp_runtime_s = 3, .dana_runtime_s = 2,
       .gp_speedup_warm = 7.99, .gp_speedup_cold = 7.78,
       .dana_speedup_warm = 4.17, .dana_speedup_cold = 4.36,
       .dana_wo_strider = 0.85, .tabla_compute_ratio = 4.96},
      /*paper_dims=*/19880));
  all.push_back(Make(
      "sn_linear", "S/N Linear", G::kSynthetic, A::kLinearRegression,
      8000, 10, 0.3, 64, 1300, 1, 32, 1.2,
      {.tuples = 130503, .pages_32k = 130503, .size_mb = 4078,
       .pg_runtime_s = 1747, .gp_runtime_s = 1456, .dana_runtime_s = 335,
       .gp_speedup_warm = 1.2, .gp_speedup_cold = 1.2,
       .dana_speedup_warm = 41.81, .dana_speedup_cold = 28.74,
       .dana_wo_strider = 6.28, .tabla_compute_ratio = 5.90}));

  // ----- Synthetic extensive (S/E) -----------------------------------------
  all.push_back(Make(
      "se_logistic", "S/E Logistic", G::kExtensive, A::kLogisticRegression,
      6033, 10, 1.0, 64, 2088, 3, 16, 7.85,
      {.tuples = 1044024, .pages_32k = 809339, .size_mb = 25292,
       .pg_runtime_s = 240300, .gp_runtime_s = 30600, .dana_runtime_s = 684,
       .gp_speedup_warm = 7.85, .gp_speedup_cold = 7.83,
       .dana_speedup_warm = 278.24, .dana_speedup_cold = 243.78,
       .dana_wo_strider = 2.91, .tabla_compute_ratio = 0}));
  all.push_back(Make(
      "se_svm", "S/E SVM", G::kExtensive, A::kSvm,
      7129, 10, 0.2, 64, 2713, 1, 1, 1.11,
      {.tuples = 1356784, .pages_32k = 1242871, .size_mb = 38840,
       .pg_runtime_s = 360, .gp_runtime_s = 324, .dana_runtime_s = 72,
       .gp_speedup_warm = 1.11, .gp_speedup_cold = 0.77,
       .dana_speedup_warm = 4.71, .dana_speedup_cold = 4.35,
       .dana_wo_strider = 1.76, .tabla_compute_ratio = 0}));
  all.push_back(Make(
      "se_lrmf", "S/E LRMF", G::kExtensive, A::kLowRankMF,
      450, 10, 0.5, 4, 2800, 10, 40, 2.08,
      {.tuples = 45064, .pages_32k = 162146, .size_mb = 5067,
       .pg_runtime_s = 3276, .gp_runtime_s = 1584, .dana_runtime_s = 2340,
       .gp_speedup_warm = 2.08, .gp_speedup_cold = 1.13,
       .dana_speedup_warm = 1.12, .dana_speedup_cold = 1.12,
       .dana_wo_strider = 0.29, .tabla_compute_ratio = 0},
      /*paper_dims=*/28002));
  all.push_back(Make(
      "se_linear", "S/E Linear", G::kExtensive, A::kLinearRegression,
      8000, 10, 0.3, 64, 2000, 1, 30, 1.23,
      {.tuples = 1000000, .pages_32k = 1027961, .size_mb = 32124,
       .pg_runtime_s = 23796, .gp_runtime_s = 19332, .dana_runtime_s = 1008,
       .gp_speedup_warm = 1.23, .gp_speedup_cold = 1.23,
       .dana_speedup_warm = 19.01, .dana_speedup_cold = 17.02,
       .dana_wo_strider = 6.63, .tabla_compute_ratio = 0}));
  return all;
}

}  // namespace

const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload>* all = new std::vector<Workload>(
      BuildAll());
  return *all;
}

const Workload* FindWorkload(const std::string& id) {
  for (const auto& w : AllWorkloads()) {
    if (w.id == id) return &w;
  }
  return nullptr;
}

namespace {
std::vector<Workload> ByGroup(WorkloadGroup g) {
  std::vector<Workload> out;
  for (const auto& w : AllWorkloads()) {
    if (w.group == g) out.push_back(w);
  }
  return out;
}
}  // namespace

std::vector<Workload> PublicWorkloads() {
  return ByGroup(WorkloadGroup::kPublic);
}
std::vector<Workload> SyntheticNominalWorkloads() {
  return ByGroup(WorkloadGroup::kSynthetic);
}
std::vector<Workload> SyntheticExtensiveWorkloads() {
  return ByGroup(WorkloadGroup::kExtensive);
}

}  // namespace dana::ml
