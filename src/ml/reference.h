#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/algorithms.h"

namespace dana::ml {

/// Row-major training set: one row per tuple (features, then label for the
/// supervised algorithms; LRMF rows are rating vectors with no label).
struct Dataset {
  std::vector<std::vector<double>> rows;
  uint32_t feature_dims = 0;
  bool has_label = true;
};

/// Hand-written double-precision reference implementations of the four
/// algorithms, independent of the DSL/compiler stack. They implement
/// mini-batch gradient descent with the same batch semantics as the
/// generated accelerators (sum gradients over `merge_coef` tuples, average,
/// apply), so end-to-end tests can require the accelerator-trained model to
/// match these within fp32 tolerance. The MADlib-style CPU baselines also
/// execute through this code path.
class ReferenceTrainer {
 public:
  ReferenceTrainer(AlgoKind kind, AlgoParams params);

  /// Runs `epochs` (or params.epochs when 0) over `data`; returns the
  /// flattened final model ([d] for the regressions, [d*rank] row-major
  /// for LRMF).
  dana::Result<std::vector<double>> Train(const Dataset& data,
                                          uint32_t epochs = 0) const;

  /// One batch update applied to `model` in place (exposed for testing
  /// batch-for-batch equivalence).
  dana::Status BatchUpdate(const std::vector<std::vector<double>>& batch,
                           std::vector<double>* model) const;

  /// Loss of `model` on `data`: MSE (linear), log-loss (logistic),
  /// regularized hinge (SVM), reconstruction MSE (LRMF).
  double Loss(const Dataset& data, const std::vector<double>& model) const;

  /// Flattened model size.
  uint64_t ModelSize() const;

 private:
  AlgoKind kind_;
  AlgoParams params_;
};

}  // namespace dana::ml
