#include "ml/datasets.h"

#include <cmath>

#include "storage/schema.h"

namespace dana::ml {

Dataset GenerateDataset(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  Dataset data;
  data.feature_dims = spec.dims;
  data.has_label = spec.kind != AlgoKind::kLowRankMF;
  data.rows.reserve(spec.tuples);

  const double x_scale = 1.0 / std::sqrt(static_cast<double>(spec.dims));

  if (spec.kind == AlgoKind::kLowRankMF) {
    // Ratings from planted rank-`rank` factors: row_u = L_u * R^T + noise.
    const uint32_t k = spec.rank;
    std::vector<double> R(static_cast<size_t>(spec.dims) * k);
    for (auto& v : R) v = rng.Gaussian() / std::sqrt(static_cast<double>(k));
    for (uint64_t u = 0; u < spec.tuples; ++u) {
      std::vector<double> lu(k);
      for (auto& v : lu) v = rng.Gaussian();
      std::vector<double> row(spec.dims);
      for (uint32_t i = 0; i < spec.dims; ++i) {
        double s = 0;
        for (uint32_t j = 0; j < k; ++j) s += lu[j] * R[i * k + j];
        row[i] = s + spec.label_noise * rng.Gaussian();
      }
      data.rows.push_back(std::move(row));
    }
    return data;
  }

  // Supervised families: planted weight vector.
  std::vector<double> w(spec.dims);
  for (auto& v : w) v = rng.Gaussian();
  for (uint64_t t = 0; t < spec.tuples; ++t) {
    std::vector<double> row(spec.dims + 1);
    double s = 0;
    for (uint32_t i = 0; i < spec.dims; ++i) {
      row[i] = rng.Gaussian() * x_scale;
      s += row[i] * w[i];
    }
    switch (spec.kind) {
      case AlgoKind::kLinearRegression:
        row[spec.dims] = s + spec.label_noise * rng.Gaussian();
        break;
      case AlgoKind::kLogisticRegression: {
        const double p = 1.0 / (1.0 + std::exp(-s));
        row[spec.dims] = rng.Bernoulli(p) ? 1.0 : 0.0;
        break;
      }
      case AlgoKind::kSvm:
        row[spec.dims] =
            (s + spec.label_noise * rng.Gaussian()) >= 0 ? 1.0 : -1.0;
        break;
      case AlgoKind::kLowRankMF:
        break;  // handled above
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

Result<std::unique_ptr<storage::Table>> BuildTable(
    const std::string& name, const Dataset& data,
    const storage::PageLayout& layout) {
  const storage::Schema schema = storage::Schema::Dense(
      data.feature_dims, storage::ColumnType::kFloat4, data.has_label);
  auto table = std::make_unique<storage::Table>(name, schema, layout);
  for (const auto& row : data.rows) {
    DANA_RETURN_NOT_OK(table->AppendRow(row));
  }
  return table;
}

}  // namespace dana::ml
