#pragma once

#include <memory>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "ml/reference.h"
#include "storage/page_layout.h"
#include "storage/table.h"

namespace dana::ml {

/// Synthetic dataset generator.
///
/// The paper's public datasets (UCI, Netflix) are not redistributable with
/// this repo, so every workload is generated synthetically with the same
/// shape: feature width, tuple count, and a planted ground-truth model so
/// that training progress is measurable. Features are N(0, 1/sqrt(d)) so
/// dot products stay O(1) regardless of width.
struct DatasetSpec {
  AlgoKind kind = AlgoKind::kLinearRegression;
  uint32_t dims = 16;
  uint32_t rank = 10;  // LRMF factor rank
  uint64_t tuples = 1000;
  double label_noise = 0.05;
  uint64_t seed = 1;
};

/// Generates the in-memory dataset (rows of doubles).
Dataset GenerateDataset(const DatasetSpec& spec);

/// Encodes `data` into a heap table named `name` (float4 columns:
/// features then label; LRMF rows have no label column).
dana::Result<std::unique_ptr<storage::Table>> BuildTable(
    const std::string& name, const Dataset& data,
    const storage::PageLayout& layout);

}  // namespace dana::ml
