#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace dana::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path as given to the scanner
  uint32_t line = 0;    ///< 1-based line of the offending token
  std::string rule;     ///< rule id (see Rules())
  std::string message;  ///< human-readable diagnostic
};

/// A lint rule's identity, for --list-rules and the JSON summary.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule dana_lint enforces, in fixed order. The ids are what the
/// inline suppression names: `// dana-lint: allow(<id>)` on the offending
/// line (or the line directly above it) waives that rule there.
const std::vector<RuleInfo>& Rules();

/// Names of variables/members declared with an unordered container type
/// (`std::unordered_map` / `std::unordered_set`) in `text`. LintTree feeds
/// the union across all scanned files back into each file's scan so a
/// member declared in a header is recognized when a .cc iterates it.
std::vector<std::string> UnorderedNames(std::string_view text);

/// Lints one source text. `path` appears in findings and selects the
/// per-file exemptions (e.g. common/random.h may reference the raw random
/// primitives it replaces; src/obs/ owns float metric accumulation).
/// `extra_unordered` supplements the file's own unordered-container
/// declarations with names collected from the rest of the tree.
std::vector<Finding> LintSource(
    const std::string& path, std::string_view text,
    const std::vector<std::string>& extra_unordered = {});

/// A whole-tree scan: every .h/.cc/.cpp under each root, two passes
/// (collect unordered-container names, then lint), findings sorted by
/// (file, line, rule) for deterministic output.
struct TreeReport {
  std::vector<Finding> findings;
  size_t files_scanned = 0;
};
TreeReport LintTree(const std::vector<std::string>& roots);

/// Machine-readable summary: schema_version, files_scanned, per-rule
/// counts, and the findings list — byte-identical across identical runs
/// (obs::Json's deterministic formatting, name-ordered counts).
obs::Json ReportJson(const TreeReport& report);

}  // namespace dana::lint
