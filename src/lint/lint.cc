#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace dana::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer-lite tokenizer
//
// dana_lint deliberately does not parse C++: it strips comments, string and
// character literals, and preprocessor directives, then works on the
// remaining identifier / number / punctuation stream with a little brace and
// parenthesis bookkeeping. That is enough to enforce the determinism
// contracts below with file/line diagnostics, and it keeps the tool a single
// dependency-free binary that lints the whole tree in milliseconds.
// ---------------------------------------------------------------------------

enum class TokKind : uint8_t { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;  // punctuation tokens are single characters
  uint32_t line;
};

struct ScanResult {
  std::vector<Token> tokens;
  // line -> rule ids waived there via `// dana-lint: allow(rule[, rule...])`.
  std::map<uint32_t, std::set<std::string>> suppressions;
};

void ParseSuppression(std::string_view comment, uint32_t line,
                      ScanResult* out) {
  size_t tag = comment.find("dana-lint:");
  if (tag == std::string_view::npos) return;
  size_t open = comment.find("allow(", tag);
  if (open == std::string_view::npos) return;
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open + 6, close - open - 6);
  std::string rule;
  auto flush = [&] {
    if (!rule.empty()) out->suppressions[line].insert(rule);
    rule.clear();
  };
  for (char c : list) {
    if (c == ',') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule.push_back(c);
    }
  }
  flush();
}

ScanResult Tokenize(std::string_view text) {
  ScanResult out;
  uint32_t line = 1;
  size_t i = 0;
  const size_t n = text.size();
  auto peek = [&](size_t off) -> char {
    return i + off < n ? text[i + off] : '\0';
  };
  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: capture content for suppression directives.
    if (c == '/' && peek(1) == '/') {
      size_t start = i + 2;
      while (i < n && text[i] != '\n') ++i;
      ParseSuppression(text.substr(start, i - start), line, &out);
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t start = i + 2;
      uint32_t start_line = line;
      i += 2;
      while (i < n && !(text[i] == '*' && peek(1) == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      ParseSuppression(text.substr(start, i - start), start_line, &out);
      if (i < n) i += 2;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    // (Only meaningful at start of line, but a stray # elsewhere is not
    // valid C++ anyway.)
    if (c == '#') {
      while (i < n) {
        if (text[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // String literal (incl. raw strings).
    if (c == '"' || (c == 'R' && peek(1) == '"')) {
      if (c == 'R') {
        // R"delim( ... )delim"
        i += 2;
        std::string delim;
        while (i < n && text[i] != '(') delim.push_back(text[i++]);
        std::string close = ")" + delim + "\"";
        size_t end = text.find(close, i);
        if (end == std::string_view::npos) end = n;
        for (size_t k = i; k < end && k < n; ++k) {
          if (text[k] == '\n') ++line;
        }
        i = std::min(n, end + close.size());
      } else {
        ++i;
        while (i < n && text[i] != '"') {
          if (text[i] == '\\') ++i;
          if (i < n && text[i] == '\n') ++line;
          ++i;
        }
        if (i < n) ++i;
      }
      continue;
    }
    // Character literal. Distinguish from digit separators (1'000'000):
    // a ' directly after an identifier/number character is a separator
    // handled by the number lexer, so here ' always opens a char literal.
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      out.tokens.push_back(
          {TokKind::kIdent, std::string(text.substr(start, i - start)), line});
      continue;
    }
    // Number (pp-number: digits, letters, dots, exponent signs, ').
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      while (i < n) {
        char d = text[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '\'') {
          ++i;
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i < n &&
              (text[i] == '+' || text[i] == '-') &&
              text.substr(start, 2) != "0x" && text.substr(start, 2) != "0X") {
            ++i;
          }
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokKind::kNumber, std::string(text.substr(start, i - start)), line});
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool IsFloatLiteral(const std::string& num) {
  if (num.size() > 1 && num[0] == '0' && (num[1] == 'x' || num[1] == 'X')) {
    return false;
  }
  return num.find('.') != std::string::npos ||
         num.find('e') != std::string::npos ||
         num.find('E') != std::string::npos;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

const std::set<std::string>& UnorderedTypeNames() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

// Index just past a balanced `<...>` starting at tokens[i] == "<"; i itself
// if tokens[i] is not "<".
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">" && --depth == 0) return i + 1;
  }
  return i;
}

// Index just past a balanced bracket group opening at tokens[i].
size_t SkipBalanced(const std::vector<Token>& toks, size_t i, char open,
                    char close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text[0] == open) ++depth;
    if (toks[i].text[0] == close && --depth == 0) return i + 1;
  }
  return i;
}

bool IsPunct(const std::vector<Token>& toks, size_t i, char c) {
  return i < toks.size() && toks[i].kind == TokKind::kPunct &&
         toks[i].text[0] == c;
}

bool IsIdent(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent;
}

// Keywords that look like `name (...)` but never open a function definition.
bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",       "for",     "while",         "switch",   "return",
      "sizeof",   "catch",   "new",           "delete",   "throw",
      "alignof",  "alignas", "decltype",      "noexcept", "constexpr",
      "static_assert",       "static_cast",   "dynamic_cast",
      "const_cast",          "reinterpret_cast"};
  return kKw.count(s) > 0;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

// Function names whose bodies must iterate deterministically: everything
// that renders a snapshot, report, or serialized artifact. Matching is by
// name only — the whole point is that these outputs are diffed byte-for-byte
// by the CI determinism gates, so iteration order inside them is part of the
// observable contract.
bool IsSnapshotFunction(const std::string& name) {
  if (name == "ToJson" || name == "ToTable") return true;
  for (const char* prefix :
       {"Snapshot", "Serialize", "Dump", "Publish", "Write", "Report"}) {
    if (StartsWith(name, prefix)) return true;
  }
  for (const char* suffix : {"Snapshot", "ToJson", "Report"}) {
    if (EndsWith(name, suffix) && name != suffix) return true;
  }
  return false;
}

const std::set<std::string>& BannedRandomIdents() {
  static const std::set<std::string> kIds = {
      "rand",          "srand",          "drand48",
      "lrand48",       "mrand48",        "random_shuffle",
      "random_device", "default_random_engine"};
  return kIds;
}

const std::set<std::string>& BannedClockIdents() {
  static const std::set<std::string> kIds = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "gmtime",       "mktime",
      "strftime"};
  return kIds;
}

// Identifier suffixes/names that smell like a wall-time or fractional value
// being accumulated into a counter.
bool IsFloatSmellingIdent(const std::string& s) {
  for (const char* suffix : {"_s", "_sec", "_secs", "_seconds", "_ms",
                             "_millis", "_us", "_frac", "_fraction", "_ratio"}) {
    if (EndsWith(s, suffix)) return true;
  }
  return s == "seconds" || s == "millis" || s == "elapsed";
}

struct FunctionFrame {
  std::string name;
  int body_depth;  // brace depth inside the function body
  bool snapshot;   // name matches IsSnapshotFunction
};

class FileLinter {
 public:
  FileLinter(std::string path, const ScanResult& scan,
             std::set<std::string> unordered_names)
      : path_(std::move(path)),
        toks_(scan.tokens),
        suppressions_(scan.suppressions),
        unordered_(std::move(unordered_names)) {
    exempt_random_ = EndsWith(path_, "common/random.h");
    exempt_clock_ = path_.find("bench") != std::string::npos;
    exempt_float_metric_ = path_.find("obs/") != std::string::npos;
  }

  std::vector<Finding> Run() {
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text[0] == '{') ++depth_;
        if (t.text[0] == '}') {
          while (!stack_.empty() && stack_.back().body_depth == depth_) {
            stack_.pop_back();
          }
          --depth_;
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "for") {
        CheckRangeFor(i);
        continue;
      }
      MaybeEnterFunction(i);
      CheckRandom(i);
      CheckClock(i);
      CheckFloatMetric(i);
      CheckUnorderedBegin(i);
    }
    return std::move(findings_);
  }

 private:
  bool InSnapshotFunction() const {
    for (const auto& f : stack_) {
      if (f.snapshot) return true;
    }
    return false;
  }

  void Report(const std::string& rule, uint32_t line, std::string message) {
    for (uint32_t l : {line, line > 0 ? line - 1 : line}) {
      auto it = suppressions_.find(l);
      if (it != suppressions_.end() &&
          (it->second.count(rule) || it->second.count("all"))) {
        return;
      }
    }
    findings_.push_back({path_, line, rule, std::move(message)});
  }

  // Detects `name(...) [qualifiers] {` / `name(...) : init-list {` and
  // pushes a function frame so rules know which body they are in.
  void MaybeEnterFunction(size_t i) {
    const std::string& name = toks_[i].text;
    if (IsControlKeyword(name)) return;
    if (!IsPunct(toks_, i + 1, '(')) return;
    size_t after = SkipBalanced(toks_, i + 1, '(', ')');
    // Skip trailing qualifiers: const, noexcept(...), override, final,
    // -> trailing return types (identifiers, ::, <...>, *, &).
    size_t j = after;
    while (j < toks_.size()) {
      if (IsIdent(toks_, j)) {
        const std::string& q = toks_[j].text;
        if (q == "const" || q == "noexcept" || q == "override" ||
            q == "final" || q == "mutable" || q == "try") {
          ++j;
          if (q == "noexcept" && IsPunct(toks_, j, '(')) {
            j = SkipBalanced(toks_, j, '(', ')');
          }
          continue;
        }
        break;
      }
      if (IsPunct(toks_, j, '-') && IsPunct(toks_, j + 1, '>')) {
        // Trailing return type: consume type tokens up to `{` or `;`.
        j += 2;
        while (j < toks_.size() && !IsPunct(toks_, j, '{') &&
               !IsPunct(toks_, j, ';') && !IsPunct(toks_, j, '=')) {
          if (IsPunct(toks_, j, '<')) {
            j = SkipTemplateArgs(toks_, j);
          } else {
            ++j;
          }
        }
        continue;
      }
      break;
    }
    if (IsPunct(toks_, j, ':') && !IsPunct(toks_, j + 1, ':')) {
      // Constructor initializer list: member (expr) or member {expr},
      // comma-separated, then the body brace.
      ++j;
      while (j < toks_.size()) {
        while (IsIdent(toks_, j) ||
               (IsPunct(toks_, j, ':') && IsPunct(toks_, j + 1, ':'))) {
          j = IsIdent(toks_, j) ? j + 1 : j + 2;
          j = SkipTemplateArgs(toks_, j);
        }
        if (IsPunct(toks_, j, '(')) {
          j = SkipBalanced(toks_, j, '(', ')');
        } else if (IsPunct(toks_, j, '{')) {
          j = SkipBalanced(toks_, j, '{', '}');
        } else {
          return;  // not an initializer list after all
        }
        if (IsPunct(toks_, j, ',')) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (!IsPunct(toks_, j, '{')) return;
    stack_.push_back({name, depth_ + 1, IsSnapshotFunction(name)});
  }

  // Rule: unordered-snapshot — range-for over an unordered container inside
  // a snapshot/report/serialization function.
  void CheckRangeFor(size_t i) {
    if (!IsPunct(toks_, i + 1, '(')) return;
    size_t end = SkipBalanced(toks_, i + 1, '(', ')');
    // Find the range-for ':' at paren depth 1 (skipping :: pairs).
    size_t colon = 0;
    int depth = 0;
    for (size_t j = i + 1; j < end; ++j) {
      if (toks_[j].kind != TokKind::kPunct) continue;
      char c = toks_[j].text[0];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ':' && depth == 1) {
        if (IsPunct(toks_, j + 1, ':') || (j > 0 && IsPunct(toks_, j - 1, ':'))) {
          continue;  // scope resolution
        }
        colon = j;
        break;
      }
    }
    if (colon == 0 || !InSnapshotFunction()) return;
    // Range expression: tokens (colon, end-1). Flag when it is a plain
    // member/variable chain ending in a known unordered container (calls
    // are assumed to impose their own order, e.g. SortedKeys(map_)).
    bool has_call = false;
    std::string last_ident;
    for (size_t j = colon + 1; j + 1 < end; ++j) {
      if (IsPunct(toks_, j, '(')) has_call = true;
      if (toks_[j].kind == TokKind::kIdent) last_ident = toks_[j].text;
    }
    if (!has_call && unordered_.count(last_ident)) {
      Report("unordered-snapshot", toks_[i].line,
             "range-for over unordered container '" + last_ident +
                 "' in snapshot path '" + CurrentSnapshotName() +
                 "'; iterate a sorted view instead");
    }
  }

  // Rule: unordered-snapshot — explicit iterator walk (x.begin()) over an
  // unordered container inside a snapshot function.
  void CheckUnorderedBegin(size_t i) {
    if (!InSnapshotFunction()) return;
    if (!unordered_.count(toks_[i].text)) return;
    size_t j = i + 1;
    if (IsPunct(toks_, j, '.')) {
      ++j;
    } else if (IsPunct(toks_, j, '-') && IsPunct(toks_, j + 1, '>')) {
      j += 2;
    } else {
      return;
    }
    if (IsIdent(toks_, j) &&
        (toks_[j].text == "begin" || toks_[j].text == "cbegin") &&
        IsPunct(toks_, j + 1, '(')) {
      Report("unordered-snapshot", toks_[i].line,
             "iterator walk over unordered container '" + toks_[i].text +
                 "' in snapshot path '" + CurrentSnapshotName() + "'");
    }
  }

  std::string CurrentSnapshotName() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->snapshot) return it->name;
    }
    return "?";
  }

  // Rule: unseeded-random — raw PRNG/entropy primitives outside the seeded
  // dana::Rng home (common/random.h).
  void CheckRandom(size_t i) {
    if (exempt_random_) return;
    if (!BannedRandomIdents().count(toks_[i].text)) return;
    Report("unseeded-random", toks_[i].line,
           "'" + toks_[i].text +
               "' is nondeterministic; use the seeded dana::Rng from "
               "common/random.h");
  }

  // Rule: wall-clock — wall/monotonic clock reads outside bench timers.
  // Simulated time (SimTime) is the only clock the deterministic core may
  // observe.
  void CheckClock(size_t i) {
    if (exempt_clock_) return;
    const std::string& id = toks_[i].text;
    bool banned = BannedClockIdents().count(id) > 0;
    if (!banned && id == "time" && IsPunct(toks_, i + 1, '(')) {
      // `time(...)` as a free/qualified call, not a declaration or member.
      bool member = i > 0 && (IsPunct(toks_, i - 1, '.') ||
                              (IsPunct(toks_, i - 1, '>') &&
                               IsPunct(toks_, i - 2, '-')));
      bool decl = i > 0 && IsIdent(toks_, i - 1);
      banned = !member && !decl;
    }
    if (!banned) return;
    Report("wall-clock", toks_[i].line,
           "'" + id +
               "' reads wall-clock time; deterministic code must use "
               "simulated time (SimTime) or a bench-scoped timer");
  }

  // Rule: float-metric — floating-point accumulation into counters outside
  // obs/. Counters feed the byte-diffed snapshots; float accumulation makes
  // totals depend on arrival order. Histograms (Observe) and gauges are the
  // sanctioned homes for float-valued measurements.
  void CheckFloatMetric(size_t i) {
    if (exempt_float_metric_) return;
    const std::string& id = toks_[i].text;
    if (id != "Count" && id != "Increment") return;
    if (!IsPunct(toks_, i + 1, '(')) return;
    size_t end = SkipBalanced(toks_, i + 1, '(', ')');
    // Split top-level arguments.
    std::vector<std::pair<size_t, size_t>> args;  // [begin, end) token ranges
    int depth = 0;
    size_t arg_begin = i + 2;
    for (size_t j = i + 1; j < end; ++j) {
      if (toks_[j].kind != TokKind::kPunct) continue;
      char c = toks_[j].text[0];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if ((c == ',' && depth == 1) || (c == ')' && depth == 0)) {
        // Keep empty ranges: string literals are stripped by the tokenizer,
        // so `Count("name", slot, x)`'s first argument has no tokens but
        // still occupies position 0.
        args.emplace_back(arg_begin, j);
        arg_begin = j + 1;
      }
    }
    size_t value_arg = id == "Count" ? 2 : 0;
    if (value_arg >= args.size()) return;  // defaulted `by = 1.0` is fine
    bool has_cast = false;
    bool smells_float = false;
    for (size_t j = args[value_arg].first; j < args[value_arg].second; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kNumber && IsFloatLiteral(t.text)) {
        smells_float = true;
      }
      if (t.kind == TokKind::kIdent) {
        if (t.text == "static_cast") has_cast = true;
        if (IsFloatSmellingIdent(t.text)) smells_float = true;
        if (t.text == "double" || t.text == "float") {
          // `static_cast<double>(integral)` is the sanctioned widening
          // idiom; a bare double operand is not.
          if (!has_cast) smells_float = true;
        }
      }
    }
    if (smells_float) {
      Report("float-metric", toks_[i].line,
             "floating-point accumulation into counter via '" + id +
                 "' outside obs/; use Observe() on a histogram or an "
                 "integral counter");
    }
  }

  std::string path_;
  const std::vector<Token>& toks_;
  const std::map<uint32_t, std::set<std::string>>& suppressions_;
  std::set<std::string> unordered_;
  bool exempt_random_ = false;
  bool exempt_clock_ = false;
  bool exempt_float_metric_ = false;

  int depth_ = 0;
  std::vector<FunctionFrame> stack_;
  std::vector<Finding> findings_;
};

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-snapshot",
       "no iteration over std::unordered_{map,set} in snapshot/report/"
       "serialization paths (byte-diffed outputs must not depend on hash "
       "order)"},
      {"unseeded-random",
       "no rand()/std::random_device/etc outside common/random.h; all "
       "randomness flows through the seeded dana::Rng"},
      {"wall-clock",
       "no system_clock/steady_clock/time() outside bench timers; the "
       "deterministic core observes only simulated time"},
      {"float-metric",
       "no float/double accumulation into counters outside obs/ "
       "(histograms own float-valued measurements)"},
  };
  return kRules;
}

std::vector<std::string> UnorderedNames(std::string_view text) {
  ScanResult scan = Tokenize(text);
  const auto& toks = scan.tokens;
  std::set<std::string> alias_types;
  std::vector<std::string> names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    bool is_unordered_type = UnorderedTypeNames().count(toks[i].text) > 0 ||
                             alias_types.count(toks[i].text) > 0;
    if (!is_unordered_type) continue;
    // `using Alias = std::unordered_map<...>;` registers the alias so later
    // `Alias member_;` declarations are recognized too. Walk back over the
    // `std::` qualifier to find the `using Alias =` introducer.
    size_t k = i;
    while (k > 0 && (IsPunct(toks, k - 1, ':') ||
                     (IsIdent(toks, k - 1) && toks[k - 1].text == "std"))) {
      --k;
    }
    if (k >= 3 && IsPunct(toks, k - 1, '=') && IsIdent(toks, k - 2) &&
        IsIdent(toks, k - 3) && toks[k - 3].text == "using") {
      alias_types.insert(toks[k - 2].text);
    }
    size_t j = SkipTemplateArgs(toks, i + 1);
    while (IsPunct(toks, j, '*') || IsPunct(toks, j, '&') ||
           (IsIdent(toks, j) && toks[j].text == "const")) {
      ++j;
    }
    if (IsIdent(toks, j) && !IsControlKeyword(toks[j].text)) {
      names.push_back(toks[j].text);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> LintSource(const std::string& path, std::string_view text,
                                const std::vector<std::string>& extra_unordered) {
  ScanResult scan = Tokenize(text);
  std::set<std::string> unordered(extra_unordered.begin(),
                                  extra_unordered.end());
  for (const std::string& name : UnorderedNames(text)) unordered.insert(name);
  FileLinter linter(path, scan, std::move(unordered));
  return linter.Run();
}

TreeReport LintTree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        paths.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // Pass 1: every unordered-container name declared anywhere in the tree,
  // so a member declared in a header is recognized in the .cc that walks it.
  std::vector<std::string> all_names;
  std::map<std::string, std::string> contents;
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents[p] = buf.str();
    for (std::string& name : UnorderedNames(contents[p])) {
      all_names.push_back(std::move(name));
    }
  }
  std::sort(all_names.begin(), all_names.end());
  all_names.erase(std::unique(all_names.begin(), all_names.end()),
                  all_names.end());

  // Pass 2: lint each file against the global name set.
  TreeReport report;
  report.files_scanned = paths.size();
  for (const std::string& p : paths) {
    std::vector<Finding> f = LintSource(p, contents[p], all_names);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(f.begin()),
                           std::make_move_iterator(f.end()));
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report;
}

obs::Json ReportJson(const TreeReport& report) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema_version", 1);
  doc.Set("tool", "dana_lint");
  doc.Set("files_scanned", static_cast<uint64_t>(report.files_scanned));
  doc.Set("total_findings", static_cast<uint64_t>(report.findings.size()));
  obs::Json counts = obs::Json::Object();
  for (const RuleInfo& rule : Rules()) {
    uint64_t n = 0;
    for (const Finding& f : report.findings) {
      if (f.rule == rule.id) ++n;
    }
    counts.Set(rule.id, n);
  }
  doc.Set("rule_counts", std::move(counts));
  obs::Json findings = obs::Json::Array();
  for (const Finding& f : report.findings) {
    obs::Json item = obs::Json::Object();
    item.Set("file", f.file);
    item.Set("line", static_cast<uint64_t>(f.line));
    item.Set("rule", f.rule);
    item.Set("message", f.message);
    findings.Append(std::move(item));
  }
  doc.Set("findings", std::move(findings));
  return doc;
}

}  // namespace dana::lint
