#include "hdfg/interpreter.h"

#include <cmath>
#include <string>

#include "hdfg/broadcast.h"

namespace dana::hdfg {

namespace {

double ApplyScalarOp(dsl::OpKind op, double x, double y) {
  switch (op) {
    case dsl::OpKind::kAdd:
      return x + y;
    case dsl::OpKind::kSub:
      return x - y;
    case dsl::OpKind::kMul:
      return x * y;
    case dsl::OpKind::kDiv:
      return x / y;
    case dsl::OpKind::kLt:
      return x < y ? 1.0 : 0.0;
    case dsl::OpKind::kGt:
      return x > y ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

}  // namespace

Status EvalBinary(dsl::OpKind op, const Tensor& a, const Tensor& b,
                  const std::vector<uint32_t>& out_dims, Tensor* out) {
  out->dims = out_dims;
  out->data.resize(NumElements(out_dims));
  const BroadcastIndexer idx(a.dims, b.dims);
  for (uint64_t i = 0; i < out->data.size(); ++i) {
    const double x = a.data[idx.Index(true, i)];
    const double y = b.data[idx.Index(false, i)];
    out->data[i] = ApplyScalarOp(op, x, y);
  }
  return Status::OK();
}

Interpreter::Interpreter(const Graph& graph)
    : graph_(graph), vals_(graph.nodes.size()) {
  zero_ = Tensor::Scalar(0.0);
}

void Interpreter::SetModelValue(const dsl::Var* var, Tensor value) {
  model_values_[var] = std::move(value);
}

const Tensor& Interpreter::ModelValue(const dsl::Var* var) const {
  auto it = model_values_.find(var);
  if (it == model_values_.end()) return zero_;
  return it->second;
}

Status Interpreter::EvalNode(NodeId id, const TupleBinding* binding) {
  const Node& n = graph_.nodes[id];
  Tensor& out = vals_[id];
  switch (n.op) {
    case dsl::OpKind::kVarRef: {
      const dsl::Var* var = n.var.get();
      switch (var->kind) {
        case dsl::VarKind::kModel: {
          auto it = model_values_.find(var);
          if (it == model_values_.end()) {
            out = Tensor(var->dims);  // zero-initialized model
            model_values_[var] = out;
          } else {
            out = it->second;
          }
          break;
        }
        case dsl::VarKind::kMeta:
          out = Tensor::Scalar(var->meta_value);
          break;
        case dsl::VarKind::kInput:
        case dsl::VarKind::kOutput: {
          if (binding == nullptr) break;  // keep previous value
          auto it = binding->find(var);
          if (it == binding->end()) {
            return Status::InvalidArgument("tuple binding missing variable '" +
                                           var->name + "'");
          }
          out = it->second;
          break;
        }
        case dsl::VarKind::kInter:
          return Status::Internal("inter variable appears as a leaf");
      }
      break;
    }
    case dsl::OpKind::kConst:
      out = Tensor::Scalar(n.constant);
      break;
    case dsl::OpKind::kSigmoid:
    case dsl::OpKind::kGaussian:
    case dsl::OpKind::kSqrt: {
      const Tensor& in = vals_[n.inputs[0]];
      out.dims = in.dims;
      out.data.resize(in.data.size());
      for (uint64_t i = 0; i < in.data.size(); ++i) {
        const double x = in.data[i];
        if (n.op == dsl::OpKind::kSigmoid) {
          out.data[i] = 1.0 / (1.0 + std::exp(-x));
        } else if (n.op == dsl::OpKind::kGaussian) {
          out.data[i] = std::exp(-x * x);
        } else {
          out.data[i] = std::sqrt(x);
        }
      }
      break;
    }
    case dsl::OpKind::kSigma:
    case dsl::OpKind::kPi:
    case dsl::OpKind::kNorm: {
      const Tensor& in = vals_[n.inputs[0]];
      out.dims = n.dims;
      out.data.assign(NumElements(n.dims),
                      n.op == dsl::OpKind::kPi ? 1.0 : 0.0);
      // Decompose each input index into (lead, axis, trail) coordinates.
      const auto& in_dims = in.dims;
      uint64_t trail = 1;
      for (size_t i = n.axis + 1; i < in_dims.size(); ++i) trail *= in_dims[i];
      const uint64_t axis_n = in_dims[n.axis];
      const uint64_t lead = in.data.size() / (trail * axis_n);
      for (uint64_t l = 0; l < lead; ++l) {
        for (uint64_t a = 0; a < axis_n; ++a) {
          for (uint64_t t = 0; t < trail; ++t) {
            const double v = in.data[(l * axis_n + a) * trail + t];
            double& acc = out.data[l * trail + t];
            if (n.op == dsl::OpKind::kPi) {
              acc *= v;
            } else if (n.op == dsl::OpKind::kNorm) {
              acc += v * v;
            } else {
              acc += v;
            }
          }
        }
      }
      if (n.op == dsl::OpKind::kNorm) {
        for (double& v : out.data) v = std::sqrt(v);
      }
      break;
    }
    case dsl::OpKind::kMerge:
      // Combined by EvalBatch; nothing to do per evaluation.
      break;
    default: {
      const Tensor& a = vals_[n.inputs[0]];
      const Tensor& b = vals_[n.inputs[1]];
      DANA_RETURN_NOT_OK(EvalBinary(n.op, a, b, n.dims, &out));
      break;
    }
  }
  return Status::OK();
}

Status Interpreter::EvalBatch(std::span<const TupleBinding> batch) {
  if (batch.empty()) {
    return Status::InvalidArgument("EvalBatch: empty batch");
  }

  // Identify merge nodes and prepare accumulators.
  std::vector<NodeId> merge_nodes;
  for (NodeId i = 0; i < graph_.nodes.size(); ++i) {
    if (graph_.nodes[i].op == dsl::OpKind::kMerge) merge_nodes.push_back(i);
  }
  std::vector<Tensor> merge_acc(merge_nodes.size());

  // Per-tuple phase.
  for (size_t t = 0; t < batch.size(); ++t) {
    for (NodeId i = 0; i < graph_.nodes.size(); ++i) {
      const Region r = graph_.nodes[i].region;
      if (r == Region::kLeaf || r == Region::kPerTuple) {
        DANA_RETURN_NOT_OK(EvalNode(i, &batch[t]));
      }
    }
    for (size_t m = 0; m < merge_nodes.size(); ++m) {
      const Node& mn = graph_.nodes[merge_nodes[m]];
      const Tensor& v = vals_[mn.inputs[0]];
      if (t == 0) {
        merge_acc[m] = v;
      } else {
        Tensor combined;
        DANA_RETURN_NOT_OK(
            EvalBinary(mn.merge_op, merge_acc[m], v, v.dims, &combined));
        merge_acc[m] = std::move(combined);
      }
    }
  }

  // Per-batch phase: install merged values, then evaluate downstream nodes.
  for (size_t m = 0; m < merge_nodes.size(); ++m) {
    vals_[merge_nodes[m]] = std::move(merge_acc[m]);
  }
  for (NodeId i = 0; i < graph_.nodes.size(); ++i) {
    const Node& n = graph_.nodes[i];
    if (n.region == Region::kPerBatch && n.op != dsl::OpKind::kMerge) {
      DANA_RETURN_NOT_OK(EvalNode(i, nullptr));
    }
  }

  // Apply model updates.
  for (size_t u = 0; u < graph_.update_roots.size(); ++u) {
    model_values_[graph_.model_vars[u].get()] =
        vals_[graph_.update_roots[u]];
  }
  return Status::OK();
}

Result<bool> Interpreter::EvalConvergence() {
  if (graph_.convergence_root == kInvalidNode) return false;
  for (NodeId i = 0; i < graph_.nodes.size(); ++i) {
    if (graph_.nodes[i].region == Region::kPerEpoch) {
      DANA_RETURN_NOT_OK(EvalNode(i, nullptr));
    }
  }
  return vals_[graph_.convergence_root].scalar() != 0.0;
}

}  // namespace dana::hdfg
