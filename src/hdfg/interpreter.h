#pragma once

#include <map>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "hdfg/graph.h"

namespace dana::hdfg {

/// Dense row-major tensor of doubles; the interpreter's value type.
struct Tensor {
  std::vector<uint32_t> dims;
  std::vector<double> data;

  Tensor() = default;
  /// Zero-filled tensor of the given shape.
  explicit Tensor(std::vector<uint32_t> d)
      : dims(std::move(d)), data(NumElements(dims), 0.0) {}
  /// Scalar tensor.
  static Tensor Scalar(double v) {
    Tensor t;
    t.data = {v};
    return t;
  }
  double scalar() const { return data.empty() ? 0.0 : data[0]; }
  uint64_t size() const { return data.size(); }
};

/// Applies one elementwise binary op with DAnA broadcasting (the rules of
/// InferBinaryDims) to produce a tensor of shape `out_dims`.
dana::Status EvalBinary(dsl::OpKind op, const Tensor& a, const Tensor& b,
                        const std::vector<uint32_t>& out_dims, Tensor* out);

/// Per-tuple variable bindings: values for input/output variables.
using TupleBinding = std::map<const dsl::Var*, Tensor>;

/// Functional (non-timed) evaluator of an hDFG.
///
/// This is the reference semantics of a translated UDF. The MADlib-style
/// CPU baselines execute through it, and the cycle-level accelerator
/// simulator is validated against it (same graph, same data => same model).
class Interpreter {
 public:
  explicit Interpreter(const Graph& graph);

  /// Sets the current value of a model variable (initialization).
  void SetModelValue(const dsl::Var* var, Tensor value);

  /// Current value of a model variable; zeros if never set.
  const Tensor& ModelValue(const dsl::Var* var) const;

  /// Processes one batch of tuples through the update rule:
  /// evaluates the per-tuple region once per tuple, combines merge nodes
  /// across the batch, evaluates the per-batch region once, and applies
  /// the model updates. With no merge in the graph, pass batches of one
  /// tuple for plain SGD semantics.
  dana::Status EvalBatch(std::span<const TupleBinding> batch);

  /// Evaluates the per-epoch convergence region using the values left by
  /// the last EvalBatch; returns true when training should stop. Always
  /// false when the graph has no convergence condition.
  dana::Result<bool> EvalConvergence();

  /// Value of an arbitrary node after the last EvalBatch (for tests).
  const Tensor& NodeValue(NodeId id) const { return vals_[id]; }

 private:
  dana::Status EvalNode(NodeId id, const TupleBinding* binding);

  const Graph& graph_;
  std::vector<Tensor> vals_;
  std::map<const dsl::Var*, Tensor> model_values_;
  Tensor zero_;
};

}  // namespace dana::hdfg
