#include "hdfg/translator.h"

#include <map>
#include <string>

namespace dana::hdfg {

namespace {

bool IsSuffix(const std::vector<uint32_t>& small,
              const std::vector<uint32_t>& big) {
  if (small.size() > big.size()) return false;
  const size_t off = big.size() - small.size();
  for (size_t i = 0; i < small.size(); ++i) {
    if (small[i] != big[off + i]) return false;
  }
  return true;
}

bool IsPrefix(const std::vector<uint32_t>& small,
              const std::vector<uint32_t>& big) {
  if (small.size() > big.size()) return false;
  for (size_t i = 0; i < small.size(); ++i) {
    if (small[i] != big[i]) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<uint32_t>> InferBinaryDims(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  // Rule 1: equal shapes.
  if (a == b) return a;
  // Rule 2: scalar broadcast.
  if (a.empty()) return b;
  if (b.empty()) return a;
  // Rules 3/4: one operand replicated across the other.
  const std::vector<uint32_t>& small = a.size() <= b.size() ? a : b;
  const std::vector<uint32_t>& big = a.size() <= b.size() ? b : a;
  if (small.size() < big.size()) {
    if (IsSuffix(small, big)) return big;
    if (IsPrefix(small, big)) return big;
  }
  // Rule 5: trailing-dimension cross join.
  if (a.size() >= 2 && b.size() >= 2 && a.back() == b.back()) {
    std::vector<uint32_t> out(a.begin(), a.end() - 1);
    out.insert(out.end(), b.begin(), b.end() - 1);
    out.push_back(a.back());
    return out;
  }
  // Rule 6: vector outer product.
  if (a.size() == 1 && b.size() == 1) {
    return std::vector<uint32_t>{a[0], b[0]};
  }
  return Status::InvalidArgument("shapes " + DimsToString(a) + " and " +
                                 DimsToString(b) + " are not broadcastable");
}

Result<std::vector<uint32_t>> InferGroupDims(const std::vector<uint32_t>& in,
                                             uint32_t axis) {
  if (in.empty()) {
    return Status::InvalidArgument("group operation on a scalar");
  }
  if (axis >= in.size()) {
    return Status::InvalidArgument(
        "group axis " + std::to_string(axis) + " out of range for shape " +
        DimsToString(in));
  }
  std::vector<uint32_t> out;
  out.reserve(in.size() - 1);
  for (size_t i = 0; i < in.size(); ++i) {
    if (i != axis) out.push_back(in[i]);
  }
  return out;
}

namespace {

/// Builder holding the in-progress graph plus the expr -> node memo table.
class GraphBuilder {
 public:
  Result<NodeId> Lower(const dsl::Expr& e) {
    auto it = memo_.find(e.get());
    if (it != memo_.end()) return it->second;

    Node node;
    node.op = e->op();
    switch (e->op()) {
      case dsl::OpKind::kVarRef: {
        node.var = e->var();
        node.dims = e->var()->dims;
        node.region = Region::kLeaf;
        break;
      }
      case dsl::OpKind::kConst: {
        node.constant = e->constant();
        node.region = Region::kLeaf;
        break;
      }
      case dsl::OpKind::kMerge: {
        DANA_ASSIGN_OR_RETURN(NodeId in, Lower(e->inputs()[0]));
        node.inputs = {in};
        node.dims = graph_.nodes[in].dims;
        node.merge_coef = e->merge_coef();
        node.merge_op = e->merge_op();
        node.region = Region::kPerBatch;
        has_merge_ = true;
        if (e->merge_coef() == 0) {
          return Status::InvalidArgument("merge coefficient must be >= 1");
        }
        if (e->merge_op() != dsl::OpKind::kAdd &&
            e->merge_op() != dsl::OpKind::kMul) {
          return Status::Unimplemented(
              "merge combiner must be '+' or '*', got " +
              dsl::OpKindName(e->merge_op()));
        }
        break;
      }
      default: {
        for (const auto& in_expr : e->inputs()) {
          DANA_ASSIGN_OR_RETURN(NodeId in, Lower(in_expr));
          node.inputs.push_back(in);
        }
        if (dsl::IsBinaryOp(e->op())) {
          DANA_ASSIGN_OR_RETURN(
              node.dims, InferBinaryDims(graph_.nodes[node.inputs[0]].dims,
                                         graph_.nodes[node.inputs[1]].dims));
        } else if (dsl::IsNonLinearOp(e->op())) {
          node.dims = graph_.nodes[node.inputs[0]].dims;
        } else if (dsl::IsGroupOp(e->op())) {
          node.axis = e->axis();
          DANA_ASSIGN_OR_RETURN(
              node.dims,
              InferGroupDims(graph_.nodes[node.inputs[0]].dims, e->axis()));
        } else {
          return Status::Internal("unhandled op " + dsl::OpKindName(e->op()));
        }
        // Region: per-batch as soon as any input crossed a merge boundary.
        node.region = Region::kPerTuple;
        for (NodeId in : node.inputs) {
          const Region r = graph_.nodes[in].region;
          if (r == Region::kPerBatch) node.region = Region::kPerBatch;
        }
        break;
      }
    }

    const NodeId id = static_cast<NodeId>(graph_.nodes.size());
    graph_.nodes.push_back(std::move(node));
    memo_[e.get()] = id;
    return id;
  }

  Graph&& Take() { return std::move(graph_); }
  Graph& graph() { return graph_; }
  bool has_merge() const { return has_merge_; }

 private:
  Graph graph_;
  std::map<const dsl::ExprNode*, NodeId> memo_;
  bool has_merge_ = false;
};

/// Recursively re-tags `id` and its ancestors as per-epoch. Leaves stay
/// leaves; per-batch/per-tuple nodes reachable only from the convergence
/// root become per-epoch.
void MarkConvergenceRegion(Graph* g, NodeId id,
                           const std::vector<uint32_t>& use_count_outside) {
  Node& n = g->nodes[id];
  if (n.region == Region::kLeaf || n.region == Region::kPerEpoch) return;
  if (use_count_outside[id] > 0) return;  // shared with the update rule
  n.region = Region::kPerEpoch;
  for (NodeId in : n.inputs) {
    MarkConvergenceRegion(g, in, use_count_outside);
  }
}

}  // namespace

Result<Graph> Translator::Translate(const dsl::Algo& algo) {
  DANA_RETURN_NOT_OK(algo.Validate());

  GraphBuilder builder;
  Graph& g = builder.graph();

  for (const auto& mu : algo.model_updates()) {
    DANA_ASSIGN_OR_RETURN(NodeId root, builder.Lower(mu.update));
    // The updated value must have the model's declared shape.
    if (g.nodes[root].dims != mu.model->dims) {
      return Status::InvalidArgument(
          "setModel(" + mu.model->name + "): update has shape " +
          DimsToString(g.nodes[root].dims) + " but the model is " +
          DimsToString(mu.model->dims));
    }
    g.model_vars.push_back(mu.model);
    g.update_roots.push_back(root);
  }

  if (algo.convergence().condition) {
    DANA_ASSIGN_OR_RETURN(NodeId conv,
                          builder.Lower(algo.convergence().condition));
    if (!g.nodes[conv].dims.empty()) {
      return Status::InvalidArgument(
          "setConvergence: condition must be scalar, got " +
          DimsToString(g.nodes[conv].dims));
    }
    g.convergence_root = conv;
  }
  g.max_epochs = algo.convergence().max_epochs;
  g.merge_coef = algo.MergeCoefficient();

  // Count uses of each node from the update-rule roots so convergence-only
  // nodes can be re-tagged per-epoch.
  std::vector<uint32_t> uses(g.nodes.size(), 0);
  {
    std::vector<NodeId> stack(g.update_roots.begin(), g.update_roots.end());
    std::vector<bool> seen(g.nodes.size(), false);
    while (!stack.empty()) {
      NodeId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = true;
      ++uses[id];
      for (NodeId in : g.nodes[id].inputs) {
        ++uses[in];
        if (!seen[in]) stack.push_back(in);
      }
    }
  }
  if (g.convergence_root != kInvalidNode) {
    MarkConvergenceRegion(&g, g.convergence_root, uses);
  }

  // A model update that consumes per-tuple values without any merge is a
  // pure SGD rule; with a merge, updates must be per-batch so each batch
  // applies one combined update.
  if (builder.has_merge()) {
    for (NodeId root : g.update_roots) {
      if (g.nodes[root].region == Region::kPerTuple) {
        return Status::InvalidArgument(
            "update rule mixes merged and unmerged tuple-dependent values; "
            "route the update through the merge function");
      }
    }
  }

  return builder.Take();
}

}  // namespace dana::hdfg
