#pragma once

#include <cstdint>
#include <vector>

#include "hdfg/graph.h"

namespace dana::hdfg {

/// Maps an output linear index to an operand's linear index under DAnA's
/// broadcast rules (see InferBinaryDims in translator.h). Shared by the
/// functional interpreter and the backend's scalar lowering so both agree
/// on element routing bit-for-bit.
class BroadcastIndexer {
 public:
  BroadcastIndexer(const std::vector<uint32_t>& a_dims,
                   const std::vector<uint32_t>& b_dims);

  /// Linear index into operand A (pick_a) or B for output element out_idx.
  uint64_t Index(bool pick_a, uint64_t out_idx) const;

 private:
  enum class Mode { kSame, kScalar, kSuffix, kPrefix, kCross, kOuter };
  Mode mode_ = Mode::kSame;
  bool scalar_is_a_ = false;
  bool small_is_a_ = false;
  uint64_t small_n_ = 1;
  uint64_t rep_ = 1;
  uint64_t t_ = 1;
  uint64_t b_lead_ = 1;
  uint64_t k_ = 1;
};

}  // namespace dana::hdfg
