#pragma once

#include "common/result.h"
#include "dsl/algo.h"
#include "hdfg/graph.h"

namespace dana::hdfg {

/// Broadcast/dimension-inference result for a binary operation.
///
/// Implements §4.4's rules, generalized to the shapes the paper's examples
/// use:
///  1. equal shapes            -> elementwise, same shape
///  2. one side scalar         -> replicate the scalar
///  3. suffix match            -> smaller operand replicated along the
///                                larger's leading dims ([k] op [d][k] -> [d][k])
///  4. prefix match            -> smaller operand replicated along the
///                                larger's trailing dims ([d] op [d][k] -> [d][k])
///  5. trailing-dim cross join -> [a..][t] op [b..][t] -> [a..][b..][t]
///                                (the paper's sigma(mo*in, 2) example with
///                                mo=[5][10], in=[2][10] -> [5][2][10])
///  6. vector outer product    -> [d] op [k] -> [d][k]
dana::Result<std::vector<uint32_t>> InferBinaryDims(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b);

/// Dimensions of a group op reducing `in` along `axis`.
dana::Result<std::vector<uint32_t>> InferGroupDims(
    const std::vector<uint32_t>& in, uint32_t axis);

/// DAnA's translator (paper §4.4): converts a completed DSL Algo into the
/// hierarchical DataFlow Graph consumed by the backend.
///
/// The translator
///  - deduplicates shared sub-expressions (the DSL builds DAGs),
///  - infers the dimensions of every node and edge,
///  - marks execution regions: nodes feeding a merge node are per-tuple
///    (parallel across threads), nodes consuming merged values are
///    per-batch, and the convergence condition is per-epoch,
///  - validates the result (axis bounds, broadcastability, region rules).
class Translator {
 public:
  /// Translates `algo` into an hDFG, or an error describing the first
  /// ill-formed construct encountered.
  static dana::Result<Graph> Translate(const dsl::Algo& algo);
};

}  // namespace dana::hdfg
