#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsl/expr.h"

namespace dana::hdfg {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Execution region of an hDFG node (when/how often it runs).
enum class Region : uint8_t {
  kLeaf,      ///< variable or constant; no computation
  kPerTuple,  ///< inside the update rule: once per training tuple, per thread
  kPerBatch,  ///< after the merge boundary: once per batch of tuples
  kPerEpoch,  ///< convergence check: once per epoch
};

/// Name for diagnostics.
std::string RegionName(Region r);

/// One node of the hierarchical DataFlow Graph.
///
/// A node is a multi-dimensional operation (paper §4.4); it decomposes into
/// `SubNodeCount()` atomic scalar operations that the backend schedules onto
/// analytic units individually.
struct Node {
  dsl::OpKind op = dsl::OpKind::kConst;
  std::vector<NodeId> inputs;
  /// Inferred dimensions of this node's output (empty == scalar).
  std::vector<uint32_t> dims;
  /// Execution region.
  Region region = Region::kPerTuple;
  /// Source variable for kVarRef leaves.
  std::shared_ptr<dsl::Var> var;
  /// Literal for kConst leaves.
  double constant = 0.0;
  /// Reduction axis for group ops (0-indexed; note the paper's examples
  /// count axes from 1 in places).
  uint32_t axis = 0;
  /// Merge fan-in and combiner for kMerge nodes.
  uint32_t merge_coef = 1;
  dsl::OpKind merge_op = dsl::OpKind::kAdd;
};

/// Number of scalar elements in a shape (1 for scalars).
uint64_t NumElements(const std::vector<uint32_t>& dims);

/// Renders a shape as "[5][2]" ("scalar" when empty).
std::string DimsToString(const std::vector<uint32_t>& dims);

/// The translated program: a topologically ordered node list plus the roots
/// the runtime needs (model updates and the optional convergence condition).
struct Graph {
  std::vector<Node> nodes;

  /// Model-update bindings: after a batch, model `model_vars[i]` takes the
  /// value of node `update_roots[i]`.
  std::vector<std::shared_ptr<dsl::Var>> model_vars;
  std::vector<NodeId> update_roots;

  /// Convergence condition root (kInvalidNode when training runs a fixed
  /// epoch count), and the epoch budget.
  NodeId convergence_root = kInvalidNode;
  uint32_t max_epochs = 1;

  /// Largest merge coefficient in the graph (1 == no merge declared).
  uint32_t merge_coef = 1;

  const Node& node(NodeId id) const { return nodes[id]; }

  /// Atomic scalar-operation count of one node (its sub-nodes, §4.4):
  /// elementwise ops count one per output element; group ops count one
  /// combine per reduced input element (plus the final sqrt for norm).
  uint64_t SubNodeCount(NodeId id) const;

  /// Total sub-nodes in a region; the backend's work estimate.
  uint64_t TotalSubNodes(Region region) const;

  /// Human-readable dump for debugging and golden tests.
  std::string ToString() const;
};

}  // namespace dana::hdfg
