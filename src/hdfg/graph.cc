#include "hdfg/graph.h"

#include <sstream>

namespace dana::hdfg {

std::string RegionName(Region r) {
  switch (r) {
    case Region::kLeaf:
      return "leaf";
    case Region::kPerTuple:
      return "per-tuple";
    case Region::kPerBatch:
      return "per-batch";
    case Region::kPerEpoch:
      return "per-epoch";
  }
  return "?";
}

uint64_t NumElements(const std::vector<uint32_t>& dims) {
  uint64_t n = 1;
  for (uint32_t d : dims) n *= d;
  return n;
}

std::string DimsToString(const std::vector<uint32_t>& dims) {
  if (dims.empty()) return "scalar";
  std::string s;
  for (uint32_t d : dims) {
    s += "[";
    s += std::to_string(d);
    s += "]";
  }
  return s;
}

uint64_t Graph::SubNodeCount(NodeId id) const {
  const Node& n = nodes[id];
  switch (n.op) {
    case dsl::OpKind::kVarRef:
    case dsl::OpKind::kConst:
      return 0;
    case dsl::OpKind::kSigma:
    case dsl::OpKind::kPi: {
      // Tree-reduce every input element into the output shape: one combine
      // per input element beyond each output element.
      const uint64_t in = NumElements(nodes[n.inputs[0]].dims);
      const uint64_t out = NumElements(n.dims);
      return in > out ? in - out : 0;
    }
    case dsl::OpKind::kNorm: {
      // Square every input element, tree-add, then sqrt per output element.
      const uint64_t in = NumElements(nodes[n.inputs[0]].dims);
      const uint64_t out = NumElements(n.dims);
      return in + (in > out ? in - out : 0) + out;
    }
    case dsl::OpKind::kMerge: {
      // (coef - 1) combines per element, executed on the tree bus.
      return NumElements(n.dims) * (n.merge_coef > 0 ? n.merge_coef - 1 : 0);
    }
    default:
      return NumElements(n.dims);
  }
}

uint64_t Graph::TotalSubNodes(Region region) const {
  uint64_t total = 0;
  for (NodeId i = 0; i < nodes.size(); ++i) {
    if (nodes[i].region == region) total += SubNodeCount(i);
  }
  return total;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  for (NodeId i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    os << "%" << i << " = " << dsl::OpKindName(n.op);
    if (n.op == dsl::OpKind::kVarRef) {
      os << "(" << dsl::VarKindName(n.var->kind) << " " << n.var->name << ")";
    } else if (n.op == dsl::OpKind::kConst) {
      os << "(" << n.constant << ")";
    } else {
      os << "(";
      for (size_t k = 0; k < n.inputs.size(); ++k) {
        os << (k ? ", " : "") << "%" << n.inputs[k];
      }
      if (dsl::IsGroupOp(n.op)) os << ", axis=" << n.axis;
      if (n.op == dsl::OpKind::kMerge) {
        os << ", coef=" << n.merge_coef << ", op="
           << dsl::OpKindName(n.merge_op);
      }
      os << ")";
    }
    os << " : " << DimsToString(n.dims) << " " << RegionName(n.region)
       << "\n";
  }
  for (size_t i = 0; i < model_vars.size(); ++i) {
    os << "update " << model_vars[i]->name << " <- %" << update_roots[i]
       << "\n";
  }
  if (convergence_root != kInvalidNode) {
    os << "converge when %" << convergence_root << "\n";
  }
  os << "epochs " << max_epochs << ", merge_coef " << merge_coef << "\n";
  return os.str();
}

}  // namespace dana::hdfg
