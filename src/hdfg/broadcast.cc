#include "hdfg/broadcast.h"

namespace dana::hdfg {

namespace {

bool IsSuffix(const std::vector<uint32_t>& small,
              const std::vector<uint32_t>& big) {
  if (small.size() > big.size()) return false;
  const size_t off = big.size() - small.size();
  for (size_t i = 0; i < small.size(); ++i) {
    if (small[i] != big[off + i]) return false;
  }
  return true;
}

bool IsPrefix(const std::vector<uint32_t>& small,
              const std::vector<uint32_t>& big) {
  if (small.size() > big.size()) return false;
  for (size_t i = 0; i < small.size(); ++i) {
    if (small[i] != big[i]) return false;
  }
  return true;
}

}  // namespace

BroadcastIndexer::BroadcastIndexer(const std::vector<uint32_t>& a_dims,
                                   const std::vector<uint32_t>& b_dims) {
  const uint64_t a_n = NumElements(a_dims);
  const uint64_t b_n = NumElements(b_dims);
  if (a_dims == b_dims) {
    mode_ = Mode::kSame;
  } else if (a_dims.empty() || b_dims.empty()) {
    mode_ = Mode::kScalar;
    scalar_is_a_ = a_dims.empty();
  } else if (a_dims.size() != b_dims.size() &&
             IsSuffix(a_dims.size() < b_dims.size() ? a_dims : b_dims,
                      a_dims.size() < b_dims.size() ? b_dims : a_dims)) {
    mode_ = Mode::kSuffix;
    small_is_a_ = a_dims.size() < b_dims.size();
    small_n_ = small_is_a_ ? a_n : b_n;
  } else if (a_dims.size() != b_dims.size() &&
             IsPrefix(a_dims.size() < b_dims.size() ? a_dims : b_dims,
                      a_dims.size() < b_dims.size() ? b_dims : a_dims)) {
    mode_ = Mode::kPrefix;
    small_is_a_ = a_dims.size() < b_dims.size();
    small_n_ = small_is_a_ ? a_n : b_n;
    const uint64_t big_n = small_is_a_ ? b_n : a_n;
    rep_ = big_n / small_n_;
  } else if (a_dims.size() >= 2 && b_dims.size() >= 2 &&
             a_dims.back() == b_dims.back()) {
    mode_ = Mode::kCross;
    t_ = a_dims.back();
    b_lead_ = b_n / t_;
  } else {
    mode_ = Mode::kOuter;
    k_ = b_dims.empty() ? 1 : b_dims[0];
  }
}

uint64_t BroadcastIndexer::Index(bool pick_a, uint64_t out_idx) const {
  switch (mode_) {
    case Mode::kSame:
      return out_idx;
    case Mode::kScalar:
      return (pick_a == scalar_is_a_) ? 0 : out_idx;
    case Mode::kSuffix:
      return (pick_a == small_is_a_) ? out_idx % small_n_ : out_idx;
    case Mode::kPrefix:
      return (pick_a == small_is_a_) ? out_idx / rep_ : out_idx;
    case Mode::kCross: {
      const uint64_t it = out_idx % t_;
      const uint64_t ib = (out_idx / t_) % b_lead_;
      const uint64_t ia = out_idx / (t_ * b_lead_);
      return pick_a ? ia * t_ + it : ib * t_ + it;
    }
    case Mode::kOuter:
      return pick_a ? out_idx / k_ : out_idx % k_;
  }
  return 0;
}

}  // namespace dana::hdfg
