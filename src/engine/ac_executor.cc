#include "engine/ac_executor.h"

#include <algorithm>
#include <map>
#include <string>

#include "engine/evaluator.h"

namespace dana::engine {

namespace {

/// Rebuilds the (ac, start_cycle) -> op list grouping the code generator
/// used, in issue order per cluster.
std::vector<std::map<uint32_t, std::vector<uint32_t>>> GroupByCluster(
    const compiler::Schedule& schedule, size_t num_acs) {
  std::vector<std::map<uint32_t, std::vector<uint32_t>>> by_ac(num_acs);
  for (uint32_t i = 0; i < schedule.placements.size(); ++i) {
    const compiler::OpPlacement& p = schedule.placements[i];
    if (p.ac < num_acs) by_ac[p.ac][p.start_cycle].push_back(i);
  }
  return by_ac;
}

}  // namespace

Status AcProgramExecutor::VerifyLane(uint32_t op_id,
                                     const engine::AcInstruction& instr,
                                     uint32_t ac) const {
  const compiler::OpPlacement& p = schedule_.placements[op_id];
  const AuMicroOp& lane = instr.lanes[p.au];

  if (!(instr.active_mask & (1u << p.au))) {
    return Status::Corruption("lane " + std::to_string(p.au) +
                              " inactive but op scheduled there");
  }
  if (lane.op != instr.op) {
    return Status::Corruption("lane opcode differs from cluster opcode");
  }

  // Source-kind consistency with the schedule.
  const compiler::ValueRef* refs[2] = {&ops_[op_id].a, &ops_[op_id].b};
  const SrcRef* srcs[2] = {&lane.src1, &lane.src2};
  for (int k = 0; k < 2; ++k) {
    const compiler::ValueRef& ref = *refs[k];
    const SrcRef& src = *srcs[k];
    switch (ref.kind) {
      case compiler::ValueRef::Kind::kNone:
        if (src.kind != SrcKind::kNone) {
          return Status::Corruption("absent operand has a source");
        }
        break;
      case compiler::ValueRef::Kind::kConst:
      case compiler::ValueRef::Kind::kMeta:
        if (src.kind != SrcKind::kImmediate) {
          return Status::Corruption("constant operand not an immediate");
        }
        break;
      case compiler::ValueRef::Kind::kSub: {
        if (ref.region != region_) {
          // Cross-region values spill into the leaf scratch region.
          if (src.kind != SrcKind::kScratch) {
            return Status::Corruption("cross-region operand not a "
                                      "scratchpad read");
          }
          break;
        }
        const compiler::OpPlacement& prod = schedule_.placements[ref.index];
        SrcKind expect;
        if (prod.ac == p.ac && prod.au == p.au) {
          expect = SrcKind::kScratch;
        } else if (prod.ac == p.ac && prod.au + 1 == p.au) {
          expect = SrcKind::kLeft;
        } else if (prod.ac == p.ac && p.au + 1 == prod.au) {
          expect = SrcKind::kRight;
        } else {
          expect = SrcKind::kBus;
        }
        if (src.kind != expect) {
          return Status::Corruption(
              "sub-operand source kind mismatch: op " +
              std::to_string(op_id) + " expected " +
              std::to_string(static_cast<int>(expect)) + " got " +
              std::to_string(static_cast<int>(src.kind)));
        }
        break;
      }
      default:
        // Model/input/output live in the leaf scratch region.
        if (src.kind != SrcKind::kScratch) {
          return Status::Corruption("leaf operand not a scratchpad read");
        }
        break;
    }
  }
  (void)ac;
  return Status::OK();
}

Status AcProgramExecutor::Verify() const {
  if (schedule_.placements.size() != ops_.size()) {
    return Status::InvalidArgument("schedule/op-list size mismatch");
  }
  const auto by_ac = GroupByCluster(schedule_, programs_.size());

  for (uint32_t ac = 0; ac < programs_.size(); ++ac) {
    const auto& groups = by_ac[ac];
    const auto& stream = programs_[ac].instructions;
    if (groups.size() != stream.size()) {
      return Status::Corruption(
          "cluster " + std::to_string(ac) + " has " +
          std::to_string(stream.size()) + " instructions, schedule implies " +
          std::to_string(groups.size()));
    }
    size_t idx = 0;
    for (const auto& [cycle, members] : groups) {
      const engine::AcInstruction& instr = stream[idx++];
      uint8_t expect_mask = 0;
      for (uint32_t op_id : members) {
        expect_mask |= static_cast<uint8_t>(
            1u << schedule_.placements[op_id].au);
        DANA_RETURN_NOT_OK(VerifyLane(op_id, instr, ac));
      }
      if (expect_mask != instr.active_mask) {
        return Status::Corruption("active mask mismatch at cluster " +
                                  std::to_string(ac) + " cycle " +
                                  std::to_string(cycle));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<float>> AcProgramExecutor::Run(
    const LeafResolver& leaf) const {
  DANA_RETURN_NOT_OK(Verify());

  // Execute in global issue order (cycle-major) so dependencies resolve.
  std::vector<uint32_t> order(ops_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (schedule_.placements[a].start_cycle !=
        schedule_.placements[b].start_cycle) {
      return schedule_.placements[a].start_cycle <
             schedule_.placements[b].start_cycle;
    }
    return a < b;
  });

  std::vector<float> values(ops_.size(), 0.0f);
  auto resolve = [&](const compiler::ValueRef& ref) -> float {
    if (ref.kind == compiler::ValueRef::Kind::kSub &&
        ref.region == region_) {
      return values[ref.index];
    }
    if (ref.kind == compiler::ValueRef::Kind::kNone) return 0.0f;
    return leaf(ref);
  };
  for (uint32_t op_id : order) {
    values[op_id] = ApplyAluOp(ops_[op_id].op, resolve(ops_[op_id].a),
                               resolve(ops_[op_id].b));
  }
  return values;
}

}  // namespace dana::engine
