#include "engine/evaluator.h"

#include <cmath>
#include <string>

#include "hdfg/graph.h"

namespace dana::engine {

float ApplyAluOp(AluOp op, float a, float b) {
  switch (op) {
    case AluOp::kNop:
    case AluOp::kMov:
      return a;
    case AluOp::kAdd:
      return a + b;
    case AluOp::kSub:
      return a - b;
    case AluOp::kMul:
      return a * b;
    case AluOp::kDiv:
      return a / b;
    case AluOp::kLt:
      return a < b ? 1.0f : 0.0f;
    case AluOp::kGt:
      return a > b ? 1.0f : 0.0f;
    case AluOp::kSigmoid:
      return 1.0f / (1.0f + std::exp(-a));
    case AluOp::kGaussian:
      return std::exp(-a * a);
    case AluOp::kSqrt:
      return std::sqrt(a);
  }
  return 0.0f;
}

ScalarEvaluator::ScalarEvaluator(const compiler::ScalarProgram& prog)
    : prog_(prog) {
  model_.resize(prog.model_vars.size());
  for (size_t i = 0; i < prog.model_vars.size(); ++i) {
    model_[i].assign(hdfg::NumElements(prog.model_vars[i]->dims), 0.0f);
  }
  tuple_slots_.resize(prog.tuple_ops.size());
  batch_slots_.resize(prog.batch_ops.size());
  epoch_slots_.resize(prog.epoch_ops.size());
  merge_vals_.resize(prog.merge_slots.size());
}

Status ScalarEvaluator::SetModel(uint32_t model_var,
                                 std::span<const float> values) {
  if (model_var >= model_.size()) {
    return Status::OutOfRange("model var " + std::to_string(model_var) +
                              " out of range");
  }
  if (values.size() != model_[model_var].size()) {
    return Status::InvalidArgument("model value size mismatch");
  }
  model_[model_var].assign(values.begin(), values.end());
  return Status::OK();
}

float ScalarEvaluator::Resolve(const compiler::ValueRef& ref,
                               const TupleData* tuple) const {
  using K = compiler::ValueRef::Kind;
  switch (ref.kind) {
    case K::kNone:
      return 0.0f;
    case K::kSub:
      switch (ref.region) {
        case compiler::ValueRegion::kTuple:
          return tuple_slots_[ref.index];
        case compiler::ValueRegion::kBatch:
          return batch_slots_[ref.index];
        case compiler::ValueRegion::kEpoch:
          return epoch_slots_[ref.index];
      }
      return 0.0f;
    case K::kModel:
      return model_[ref.var_id][ref.index];
    case K::kInput:
      return tuple ? tuple->inputs[ref.var_id][ref.index] : 0.0f;
    case K::kOutput:
      return tuple ? tuple->outputs[ref.var_id][ref.index] : 0.0f;
    case K::kMeta:
      return static_cast<float>(prog_.meta_vars[ref.var_id]->meta_value);
    case K::kConst:
      return static_cast<float>(ref.constant);
    case K::kMergeOut:
      return merge_vals_[ref.index];
  }
  return 0.0f;
}

Status ScalarEvaluator::RunOps(const std::vector<compiler::ScalarOp>& ops,
                               std::vector<float>* slots,
                               const TupleData* tuple) {
  for (size_t i = 0; i < ops.size(); ++i) {
    const float a = Resolve(ops[i].a, tuple);
    const float b = Resolve(ops[i].b, tuple);
    (*slots)[i] = ApplyAluOp(ops[i].op, a, b);
  }
  ops_executed_ += ops.size();
  return Status::OK();
}

Status ScalarEvaluator::EvalBatch(std::span<const TupleData> batch) {
  if (batch.empty()) {
    return Status::InvalidArgument("EvalBatch: empty batch");
  }
  for (const TupleData& t : batch) {
    if (t.inputs.size() != prog_.input_vars.size() ||
        t.outputs.size() != prog_.output_vars.size()) {
      return Status::InvalidArgument("tuple variable count mismatch");
    }
  }

  last_tuple_ = batch.back();  // kept for per-batch/per-epoch references
  for (size_t t = 0; t < batch.size(); ++t) {
    DANA_RETURN_NOT_OK(RunOps(prog_.tuple_ops, &tuple_slots_, &batch[t]));
    for (size_t m = 0; m < prog_.merge_slots.size(); ++m) {
      const float v = Resolve(prog_.merge_slots[m].src, &batch[t]);
      if (t == 0) {
        merge_vals_[m] = v;
      } else {
        merge_vals_[m] =
            ApplyAluOp(prog_.merge_slots[m].combine, merge_vals_[m], v);
      }
    }
  }

  DANA_RETURN_NOT_OK(RunOps(prog_.batch_ops, &batch_slots_, &last_tuple_));

  // Stage then apply model writes (updates may read the old model).
  std::vector<std::vector<float>> staged(prog_.model_writes.size());
  for (size_t w = 0; w < prog_.model_writes.size(); ++w) {
    const auto& write = prog_.model_writes[w];
    staged[w].resize(write.elems.size());
    for (size_t e = 0; e < write.elems.size(); ++e) {
      staged[w][e] = Resolve(write.elems[e], &last_tuple_);
    }
  }
  for (size_t w = 0; w < prog_.model_writes.size(); ++w) {
    model_[prog_.model_writes[w].model_var] = std::move(staged[w]);
  }
  return Status::OK();
}

Result<bool> ScalarEvaluator::EvalConvergence() {
  if (!prog_.has_convergence) return false;
  DANA_RETURN_NOT_OK(RunOps(prog_.epoch_ops, &epoch_slots_, &last_tuple_));
  return Resolve(prog_.convergence, &last_tuple_) != 0.0f;
}

}  // namespace dana::engine
