#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "compiler/scalar_program.h"
#include "compiler/scheduler.h"
#include "engine/isa.h"

namespace dana::engine {

/// Verifying executor for emitted AC instruction streams.
///
/// EmitAcPrograms lowers a scheduled region into per-cluster selective-SIMD
/// instruction streams; this executor replays those streams cycle-group by
/// cycle-group and cross-checks every field against the schedule it was
/// generated from:
///
///  - instructions are ordered by issue cycle within each cluster,
///  - the active-lane mask matches the scheduled placements,
///  - every lane's opcode equals the cluster opcode (selective SIMD),
///  - every operand's source kind is consistent with where the schedule
///    placed its producer (own scratchpad / neighbor register / bus FIFO),
///
/// and then executes each lane in fp32, routing operand values through the
/// schedule. The resulting value per scalar op must equal what the
/// ScalarEvaluator computes for the same region, proving the generated
/// binary is a faithful encoding of the schedule.
class AcProgramExecutor {
 public:
  /// Resolves a non-sub operand (model/input/meta/const) to its value.
  using LeafResolver = std::function<float(const compiler::ValueRef&)>;

  AcProgramExecutor(const std::vector<compiler::ScalarOp>& ops,
                    const compiler::Schedule& schedule,
                    const std::vector<engine::AcProgram>& programs,
                    compiler::ValueRegion region =
                        compiler::ValueRegion::kTuple)
      : ops_(ops), schedule_(schedule), programs_(programs),
        region_(region) {}

  /// Verifies and executes; returns one value per scalar op, or the first
  /// structural inconsistency found.
  dana::Result<std::vector<float>> Run(const LeafResolver& leaf) const;

  /// Structural verification only (no execution).
  dana::Status Verify() const;

 private:
  dana::Status VerifyLane(uint32_t op_id, const engine::AcInstruction& instr,
                          uint32_t ac) const;

  const std::vector<compiler::ScalarOp>& ops_;
  const compiler::Schedule& schedule_;
  const std::vector<engine::AcProgram>& programs_;
  compiler::ValueRegion region_;
};

}  // namespace dana::engine
