#include "engine/isa.h"

#include <sstream>

#include "common/status.h"

namespace dana::engine {

std::string AluOpName(AluOp op) {
  switch (op) {
    case AluOp::kNop:
      return "nop";
    case AluOp::kAdd:
      return "add";
    case AluOp::kSub:
      return "sub";
    case AluOp::kMul:
      return "mul";
    case AluOp::kDiv:
      return "div";
    case AluOp::kLt:
      return "lt";
    case AluOp::kGt:
      return "gt";
    case AluOp::kSigmoid:
      return "sigmoid";
    case AluOp::kGaussian:
      return "gaussian";
    case AluOp::kSqrt:
      return "sqrt";
    case AluOp::kMov:
      return "mov";
  }
  return "?";
}

uint32_t AluOpLatency(AluOp op) {
  switch (op) {
    case AluOp::kNop:
    case AluOp::kMov:
    case AluOp::kAdd:
    case AluOp::kSub:
    case AluOp::kLt:
    case AluOp::kGt:
      return 1;
    case AluOp::kMul:
      return 2;  // DSP48 pipelined multiply
    case AluOp::kDiv:
      return 8;  // iterative divider
    case AluOp::kSigmoid:
    case AluOp::kGaussian:
      return 4;  // piecewise-linear LUT evaluation
    case AluOp::kSqrt:
      return 6;  // iterative square root
  }
  return 1;
}

uint64_t AuMicroOp::Encode() const {
  uint64_t w = 0;
  w |= static_cast<uint64_t>(op) & 0x3F;
  w |= (static_cast<uint64_t>(src1.kind) & 0x7) << 6;
  w |= (static_cast<uint64_t>(src1.addr) & 0xFFF) << 9;
  w |= (static_cast<uint64_t>(src2.kind) & 0x7) << 21;
  w |= (static_cast<uint64_t>(src2.addr) & 0xFFF) << 24;
  w |= (static_cast<uint64_t>(dst) & 0x7) << 36;
  w |= (static_cast<uint64_t>(dst_addr) & 0x1FF) << 39;
  return w;
}

Result<AuMicroOp> AuMicroOp::Decode(uint64_t w) {
  if (w >> 48) {
    return Status::Corruption("AU micro-op word has bits above bit 47");
  }
  const uint64_t opcode = w & 0x3F;
  if (opcode > static_cast<uint64_t>(AluOp::kMov)) {
    return Status::Corruption("invalid AU opcode " + std::to_string(opcode));
  }
  AuMicroOp op;
  op.op = static_cast<AluOp>(opcode);
  op.src1.kind = static_cast<SrcKind>((w >> 6) & 0x7);
  op.src1.addr = static_cast<uint16_t>((w >> 9) & 0xFFF);
  op.src2.kind = static_cast<SrcKind>((w >> 21) & 0x7);
  op.src2.addr = static_cast<uint16_t>((w >> 24) & 0xFFF);
  op.dst = static_cast<DstKind>((w >> 36) & 0x7);
  op.dst_addr = static_cast<uint16_t>((w >> 39) & 0x1FF);
  return op;
}

namespace {
std::string SrcToString(const SrcRef& s) {
  switch (s.kind) {
    case SrcKind::kNone:
      return "-";
    case SrcKind::kScratch:
      return "m[" + std::to_string(s.addr) + "]";
    case SrcKind::kLeft:
      return "left";
    case SrcKind::kRight:
      return "right";
    case SrcKind::kBus:
      return "bus";
    case SrcKind::kImmediate:
      return "imm[" + std::to_string(s.addr) + "]";
  }
  return "?";
}
}  // namespace

std::string AuMicroOp::ToString() const {
  std::ostringstream os;
  os << AluOpName(op) << " " << SrcToString(src1) << ", " << SrcToString(src2)
     << " -> ";
  switch (dst) {
    case DstKind::kNone:
      os << "-";
      break;
    case DstKind::kScratch:
      os << "m[" << dst_addr << "]";
      break;
    case DstKind::kNeighbors:
      os << "neighbors";
      break;
    case DstKind::kBus:
      os << "bus";
      break;
    case DstKind::kInterAc:
      os << "inter-ac";
      break;
  }
  return os.str();
}

std::string AcInstruction::ToString() const {
  std::ostringstream os;
  os << AluOpName(op) << " mask=";
  for (int i = kAusPerAc - 1; i >= 0; --i) {
    os << ((active_mask >> i) & 1);
  }
  for (uint32_t i = 0; i < kAusPerAc; ++i) {
    if ((active_mask >> i) & 1) {
      os << "\n    au" << i << ": " << lanes[i].ToString();
    }
  }
  return os.str();
}

}  // namespace dana::engine
