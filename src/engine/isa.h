#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dana::engine {

/// ALU operations of an Analytic Unit (paper §5.2). The ALU is customized
/// per accelerator: only the ops the hDFG needs are synthesized.
enum class AluOp : uint8_t {
  kNop = 0,
  kAdd = 1,
  kSub = 2,
  kMul = 3,
  kDiv = 4,
  kLt = 5,
  kGt = 6,
  kSigmoid = 7,
  kGaussian = 8,
  kSqrt = 9,
  kMov = 10,  ///< data movement (neighbor/bus transfer without compute)
};

/// Mnemonic ("add", "sigmoid", ...).
std::string AluOpName(AluOp op);

/// Pipeline latency of an op in cycles on the 150 MHz VU9P design.
/// Multipliers map to DSP slices (2-stage); divide and the non-linear ops
/// are iterative/LUT-based multi-cycle units.
uint32_t AluOpLatency(AluOp op);

/// Where an AU operand comes from (paper Figure 7b): its own scratchpad,
/// a neighbor's output register, the cluster bus FIFO, or an immediate.
enum class SrcKind : uint8_t {
  kNone = 0,
  kScratch = 1,    ///< AU-local data memory, field = address
  kLeft = 2,       ///< left neighbor's last result
  kRight = 3,      ///< right neighbor's last result
  kBus = 4,        ///< intra-AC bus FIFO head
  kImmediate = 5,  ///< small constant from the immediate table, field = index
};

/// Where an AU result goes: scratchpad, the neighbor links, the AC bus,
/// or the inter-AC / tree bus toward other clusters and the merge network.
enum class DstKind : uint8_t {
  kNone = 0,
  kScratch = 1,
  kNeighbors = 2,
  kBus = 3,
  kInterAc = 4,
};

/// One operand reference.
struct SrcRef {
  SrcKind kind = SrcKind::kNone;
  uint16_t addr = 0;
};

/// One AU micro-instruction: the per-AU half of the selective-SIMD scheme —
/// the AC broadcasts the opcode, each AU keeps "finer details about the
/// source type, source operands, and destination" locally (§5.2).
struct AuMicroOp {
  AluOp op = AluOp::kNop;
  SrcRef src1, src2;
  DstKind dst = DstKind::kNone;
  uint16_t dst_addr = 0;

  /// Packs into 48 bits: op(6) | s1k(3) s1a(12) | s2k(3) s2a(12) |
  /// dk(3) da(9). Stored 8 bytes per op in the catalog blob.
  uint64_t Encode() const;
  static dana::Result<AuMicroOp> Decode(uint64_t word);
  std::string ToString() const;
};

/// Number of AUs per analytic cluster; fixed at 8 for timing closure
/// (paper §5.2).
inline constexpr uint32_t kAusPerAc = 8;

/// One AC instruction: the cluster-level opcode plus the active-AU mask
/// (selective SIMD) and the per-AU micro-ops for active lanes.
struct AcInstruction {
  AluOp op = AluOp::kNop;
  uint8_t active_mask = 0;  ///< bit i == AU i executes; 0 == cluster NOP
  std::array<AuMicroOp, kAusPerAc> lanes = {};

  std::string ToString() const;
};

/// The instruction stream of one AC for one schedule region.
struct AcProgram {
  std::vector<AcInstruction> instructions;
};

}  // namespace dana::engine
