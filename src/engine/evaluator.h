#pragma once

#include <span>
#include <vector>

#include "common/result.h"
#include "compiler/scalar_program.h"

namespace dana::engine {

/// One training tuple as the execution engine sees it: flattened fp32
/// element vectors, one per input/output variable of the ScalarProgram.
struct TupleData {
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> outputs;
};

/// Functional model of the execution engine: executes the lowered scalar
/// program in IEEE fp32, the arithmetic the synthesized AUs perform.
///
/// This is the semantics half of the engine simulator (the timing half is
/// the static Schedule); tests validate it against hdfg::Interpreter's
/// float64 reference, and the accelerator uses it to actually train models.
class ScalarEvaluator {
 public:
  explicit ScalarEvaluator(const compiler::ScalarProgram& prog);

  /// Overrides a model variable's current value (initialization).
  dana::Status SetModel(uint32_t model_var, std::span<const float> values);

  /// Current value of a model variable (flattened, row-major).
  const std::vector<float>& Model(uint32_t model_var) const {
    return model_[model_var];
  }

  /// Runs one batch: per-tuple ops for each tuple, merge combination,
  /// per-batch ops, and model write-back. Plain-SGD programs (merge_coef
  /// 1) pass single-tuple batches.
  dana::Status EvalBatch(std::span<const TupleData> batch);

  /// Evaluates the per-epoch convergence ops; true == stop. Always false
  /// without a convergence condition.
  dana::Result<bool> EvalConvergence();

  /// Scalar-op executions so far (dynamic instruction count).
  uint64_t ops_executed() const { return ops_executed_; }

 private:
  float Resolve(const compiler::ValueRef& ref, const TupleData* tuple) const;
  dana::Status RunOps(const std::vector<compiler::ScalarOp>& ops,
                      std::vector<float>* slots, const TupleData* tuple);

  const compiler::ScalarProgram& prog_;
  std::vector<std::vector<float>> model_;
  std::vector<float> tuple_slots_;
  std::vector<float> batch_slots_;
  std::vector<float> epoch_slots_;
  std::vector<float> merge_vals_;
  /// Copy of the batch's last tuple, for per-batch/per-epoch ops that
  /// reference unmerged tuple values (documented last-tuple semantics).
  TupleData last_tuple_;
  uint64_t ops_executed_ = 0;
};

/// Applies one ALU op in fp32 (shared with tests).
float ApplyAluOp(AluOp op, float a, float b);

}  // namespace dana::engine
