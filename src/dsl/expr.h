#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dana::dsl {

/// Operation kinds of the DSL (paper Table 1).
///
/// Primary ops are elementwise (with broadcasting), non-linear ops are
/// unary elementwise, group ops reduce along an axis, and kMerge marks the
/// thread-combination boundary (§4.3).
enum class OpKind : uint8_t {
  // Leaves.
  kVarRef,
  kConst,
  // Primary binary operations.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kGt,
  // Non-linear unary operations.
  kSigmoid,
  kGaussian,
  kSqrt,
  // Group operations (reduce along `axis`).
  kSigma,
  kPi,
  kNorm,
  // Thread-merge boundary.
  kMerge,
};

/// True for kAdd..kGt.
bool IsBinaryOp(OpKind op);
/// True for kSigmoid..kSqrt.
bool IsNonLinearOp(OpKind op);
/// True for kSigma..kNorm.
bool IsGroupOp(OpKind op);
/// Name for diagnostics ("sigma", "+", ...).
std::string OpKindName(OpKind op);

/// Role of a declared DSL variable (paper Table 1 data declarations).
enum class VarKind : uint8_t {
  kInput,   ///< one training-tuple feature vector
  kOutput,  ///< one training-tuple label
  kModel,   ///< the learned model; persists across tuples
  kMeta,    ///< constant hyper-parameter, shipped to the FPGA up front
  kInter,   ///< untyped intermediate, inferred by the translator
};

/// Name for diagnostics ("model", ...).
std::string VarKindName(VarKind kind);

class ExprNode;
/// Expressions are immutable shared DAG nodes.
using Expr = std::shared_ptr<const ExprNode>;

/// Declared variable: kind, name, and declared dimensions (empty == scalar).
struct Var {
  VarKind kind = VarKind::kInter;
  std::string name;
  std::vector<uint32_t> dims;
  /// Constant value for kMeta variables.
  double meta_value = 0.0;
  /// Declaration order within its kind; used for memory layout.
  uint32_t ordinal = 0;
};

/// One node of a DSL expression DAG.
///
/// ExprNodes are created through the Algo factory methods and the free
/// operator overloads below; they are never mutated after construction.
class ExprNode : public std::enable_shared_from_this<ExprNode> {
 public:
  OpKind op() const { return op_; }
  const std::vector<Expr>& inputs() const { return inputs_; }

  /// Variable for kVarRef nodes.
  const std::shared_ptr<Var>& var() const { return var_; }
  /// Literal value for kConst nodes.
  double constant() const { return constant_; }
  /// Reduction axis for group ops.
  uint32_t axis() const { return axis_; }
  /// Merge fan-in (batch size) for kMerge nodes.
  uint32_t merge_coef() const { return merge_coef_; }
  /// Combining operation for kMerge nodes (kAdd etc).
  OpKind merge_op() const { return merge_op_; }

  /// @name Factories
  ///@{
  static Expr MakeVarRef(std::shared_ptr<Var> var);
  static Expr MakeConst(double value);
  static Expr MakeBinary(OpKind op, Expr lhs, Expr rhs);
  static Expr MakeNonLinear(OpKind op, Expr in);
  static Expr MakeGroup(OpKind op, Expr in, uint32_t axis);
  static Expr MakeMerge(Expr in, uint32_t coef, OpKind combine);
  ///@}

 private:
  ExprNode() = default;

  OpKind op_ = OpKind::kConst;
  std::vector<Expr> inputs_;
  std::shared_ptr<Var> var_;
  double constant_ = 0.0;
  uint32_t axis_ = 0;
  uint32_t merge_coef_ = 1;
  OpKind merge_op_ = OpKind::kAdd;
};

/// @name Expression-building operators
/// These mirror the Python DSL's arithmetic surface. Mixed Expr/double
/// overloads wrap the double in a kConst node.
///@{
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr operator<(Expr a, Expr b);
Expr operator>(Expr a, Expr b);
Expr operator+(Expr a, double b);
Expr operator-(Expr a, double b);
Expr operator*(Expr a, double b);
Expr operator/(Expr a, double b);
Expr operator+(double a, Expr b);
Expr operator-(double a, Expr b);
Expr operator*(double a, Expr b);
Expr operator/(double a, Expr b);
Expr operator<(Expr a, double b);
Expr operator>(Expr a, double b);
Expr operator<(double a, Expr b);
Expr operator>(double a, Expr b);
///@}

/// Non-linear elementwise functions (paper Table 1).
Expr Sigmoid(Expr x);
Expr Gaussian(Expr x);
Expr Sqrt(Expr x);

/// Group operations: reduce `x` along `axis` (paper Table 1). Sigma sums,
/// Pi multiplies, Norm is the Euclidean norm along the axis.
Expr Sigma(Expr x, uint32_t axis = 0);
Expr Pi(Expr x, uint32_t axis = 0);
Expr Norm(Expr x, uint32_t axis = 0);

}  // namespace dana::dsl
