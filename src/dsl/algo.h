#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dsl/expr.h"

namespace dana::dsl {

/// Convergence specification: either a fixed epoch budget or a boolean
/// DSL expression evaluated once per epoch (paper §4.2 built-ins).
struct Convergence {
  /// Maximum epochs (setEpochs). Always bounds the run.
  uint32_t max_epochs = 1;
  /// Optional boolean condition (setConvergence); training stops early when
  /// it evaluates non-zero at the end of an epoch. Null when unset.
  Expr condition;
};

/// One model-update binding: after processing a tuple (and merging), the
/// model variable takes the value of `update`.
struct ModelUpdate {
  std::shared_ptr<Var> model;
  Expr update;
};

/// An instance of a learning algorithm: the `dana.algo` component.
///
/// Algo is the DSL entry point: it owns variable declarations, the update
/// rule (expressed through ModelUpdate bindings), the merge function, and
/// the convergence criterion. A completed Algo is handed to the translator
/// (hdfg/translator.h) which turns it into a hierarchical dataflow graph.
///
/// Usage mirrors the paper's linear-regression example (§4.3):
///
///   Algo algo("linearR");
///   auto mo  = algo.Model("mo", {10});
///   auto in  = algo.Input("in", {10});
///   auto out = algo.Output("out");
///   auto lr  = algo.Meta("lr", 0.3);
///   auto s     = Sigma(mo * in, 0);
///   auto er    = s - out;
///   auto grad  = algo.Merge(er * in, 8, OpKind::kAdd);
///   algo.SetModel(mo, mo - lr * grad);
///   algo.SetEpochs(100);
class Algo {
 public:
  explicit Algo(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// @name Data declarations (dana.model / dana.input / dana.output /
  /// dana.meta). Each returns a VarRef expression usable in arithmetic.
  ///@{
  Expr Model(const std::string& name, std::vector<uint32_t> dims);
  Expr Input(const std::string& name, std::vector<uint32_t> dims);
  /// Scalar output (label); multi-dimensional outputs pass dims.
  Expr Output(const std::string& name, std::vector<uint32_t> dims = {});
  Expr Meta(const std::string& name, double value);
  ///@}

  /// Wraps `x` in a merge node: `coef` parallel threads each compute `x`
  /// for their own tuple and the results are combined with `combine`
  /// (paper's merge(x, int, "op")).
  Expr Merge(Expr x, uint32_t coef, OpKind combine = OpKind::kAdd);

  /// Binds the updated value of a model variable (paper's setModel). The
  /// first argument must be an expression returned by Model().
  dana::Status SetModel(const Expr& model_ref, Expr update);

  /// Sets the epoch budget (paper's setEpochs).
  void SetEpochs(uint32_t epochs) { convergence_.max_epochs = epochs; }

  /// Sets an early-termination condition (paper's setConvergence).
  void SetConvergence(Expr condition) {
    convergence_.condition = std::move(condition);
  }

  /// @name Introspection for the translator
  ///@{
  const std::vector<std::shared_ptr<Var>>& vars() const { return vars_; }
  const std::vector<ModelUpdate>& model_updates() const {
    return model_updates_;
  }
  const Convergence& convergence() const { return convergence_; }
  /// Largest merge coefficient used anywhere in the update rule (1 when no
  /// merge was declared): the max thread count for the hardware generator.
  uint32_t MergeCoefficient() const { return merge_coef_; }
  ///@}

  /// Structural validation: at least one model update, every model bound at
  /// most once, declared dims non-zero.
  dana::Status Validate() const;

 private:
  Expr Declare(VarKind kind, const std::string& name,
               std::vector<uint32_t> dims, double meta_value);

  std::string name_;
  std::vector<std::shared_ptr<Var>> vars_;
  std::vector<ModelUpdate> model_updates_;
  Convergence convergence_;
  uint32_t merge_coef_ = 1;
  std::map<VarKind, uint32_t> ordinals_;
};

}  // namespace dana::dsl
