#include "dsl/algo.h"

#include <algorithm>
#include <set>

namespace dana::dsl {

Expr Algo::Declare(VarKind kind, const std::string& name,
                   std::vector<uint32_t> dims, double meta_value) {
  auto var = std::make_shared<Var>();
  var->kind = kind;
  var->name = name;
  var->dims = std::move(dims);
  var->meta_value = meta_value;
  var->ordinal = ordinals_[kind]++;
  vars_.push_back(var);
  return ExprNode::MakeVarRef(var);
}

Expr Algo::Model(const std::string& name, std::vector<uint32_t> dims) {
  return Declare(VarKind::kModel, name, std::move(dims), 0.0);
}

Expr Algo::Input(const std::string& name, std::vector<uint32_t> dims) {
  return Declare(VarKind::kInput, name, std::move(dims), 0.0);
}

Expr Algo::Output(const std::string& name, std::vector<uint32_t> dims) {
  return Declare(VarKind::kOutput, name, std::move(dims), 0.0);
}

Expr Algo::Meta(const std::string& name, double value) {
  return Declare(VarKind::kMeta, name, {}, value);
}

Expr Algo::Merge(Expr x, uint32_t coef, OpKind combine) {
  merge_coef_ = std::max(merge_coef_, coef);
  return ExprNode::MakeMerge(std::move(x), coef, combine);
}

Status Algo::SetModel(const Expr& model_ref, Expr update) {
  if (!model_ref || model_ref->op() != OpKind::kVarRef ||
      model_ref->var()->kind != VarKind::kModel) {
    return Status::InvalidArgument(
        "setModel: first argument must be a dana.model variable");
  }
  for (const auto& mu : model_updates_) {
    if (mu.model == model_ref->var()) {
      return Status::AlreadyExists("setModel: model '" + mu.model->name +
                                   "' already bound");
    }
  }
  model_updates_.push_back({model_ref->var(), std::move(update)});
  return Status::OK();
}

Status Algo::Validate() const {
  if (model_updates_.empty()) {
    return Status::FailedPrecondition("algo '" + name_ +
                                      "': no setModel binding");
  }
  for (const auto& v : vars_) {
    for (uint32_t d : v->dims) {
      if (d == 0) {
        return Status::InvalidArgument("variable '" + v->name +
                                       "' has a zero dimension");
      }
    }
    if (v->dims.size() > 3) {
      return Status::Unimplemented("variable '" + v->name +
                                   "': rank > 3 not supported");
    }
  }
  if (convergence_.max_epochs == 0) {
    return Status::InvalidArgument("epoch budget must be >= 1");
  }
  return Status::OK();
}

}  // namespace dana::dsl
