#include "dsl/expr.h"

namespace dana::dsl {

bool IsBinaryOp(OpKind op) {
  switch (op) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kLt:
    case OpKind::kGt:
      return true;
    default:
      return false;
  }
}

bool IsNonLinearOp(OpKind op) {
  switch (op) {
    case OpKind::kSigmoid:
    case OpKind::kGaussian:
    case OpKind::kSqrt:
      return true;
    default:
      return false;
  }
}

bool IsGroupOp(OpKind op) {
  switch (op) {
    case OpKind::kSigma:
    case OpKind::kPi:
    case OpKind::kNorm:
      return true;
    default:
      return false;
  }
}

std::string OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kVarRef:
      return "var";
    case OpKind::kConst:
      return "const";
    case OpKind::kAdd:
      return "+";
    case OpKind::kSub:
      return "-";
    case OpKind::kMul:
      return "*";
    case OpKind::kDiv:
      return "/";
    case OpKind::kLt:
      return "<";
    case OpKind::kGt:
      return ">";
    case OpKind::kSigmoid:
      return "sigmoid";
    case OpKind::kGaussian:
      return "gaussian";
    case OpKind::kSqrt:
      return "sqrt";
    case OpKind::kSigma:
      return "sigma";
    case OpKind::kPi:
      return "pi";
    case OpKind::kNorm:
      return "norm";
    case OpKind::kMerge:
      return "merge";
  }
  return "?";
}

std::string VarKindName(VarKind kind) {
  switch (kind) {
    case VarKind::kInput:
      return "input";
    case VarKind::kOutput:
      return "output";
    case VarKind::kModel:
      return "model";
    case VarKind::kMeta:
      return "meta";
    case VarKind::kInter:
      return "inter";
  }
  return "?";
}

Expr ExprNode::MakeVarRef(std::shared_ptr<Var> var) {
  struct Access : ExprNode {};
  auto n = std::make_shared<Access>();
  n->op_ = OpKind::kVarRef;
  n->var_ = std::move(var);
  return n;
}

Expr ExprNode::MakeConst(double value) {
  struct Access : ExprNode {};
  auto n = std::make_shared<Access>();
  n->op_ = OpKind::kConst;
  n->constant_ = value;
  return n;
}

Expr ExprNode::MakeBinary(OpKind op, Expr lhs, Expr rhs) {
  struct Access : ExprNode {};
  auto n = std::make_shared<Access>();
  n->op_ = op;
  n->inputs_ = {std::move(lhs), std::move(rhs)};
  return n;
}

Expr ExprNode::MakeNonLinear(OpKind op, Expr in) {
  struct Access : ExprNode {};
  auto n = std::make_shared<Access>();
  n->op_ = op;
  n->inputs_ = {std::move(in)};
  return n;
}

Expr ExprNode::MakeGroup(OpKind op, Expr in, uint32_t axis) {
  struct Access : ExprNode {};
  auto n = std::make_shared<Access>();
  n->op_ = op;
  n->inputs_ = {std::move(in)};
  n->axis_ = axis;
  return n;
}

Expr ExprNode::MakeMerge(Expr in, uint32_t coef, OpKind combine) {
  struct Access : ExprNode {};
  auto n = std::make_shared<Access>();
  n->op_ = OpKind::kMerge;
  n->inputs_ = {std::move(in)};
  n->merge_coef_ = coef;
  n->merge_op_ = combine;
  return n;
}

Expr operator+(Expr a, Expr b) {
  return ExprNode::MakeBinary(OpKind::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return ExprNode::MakeBinary(OpKind::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return ExprNode::MakeBinary(OpKind::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return ExprNode::MakeBinary(OpKind::kDiv, std::move(a), std::move(b));
}
Expr operator<(Expr a, Expr b) {
  return ExprNode::MakeBinary(OpKind::kLt, std::move(a), std::move(b));
}
Expr operator>(Expr a, Expr b) {
  return ExprNode::MakeBinary(OpKind::kGt, std::move(a), std::move(b));
}

Expr operator+(Expr a, double b) { return std::move(a) + ExprNode::MakeConst(b); }
Expr operator-(Expr a, double b) { return std::move(a) - ExprNode::MakeConst(b); }
Expr operator*(Expr a, double b) { return std::move(a) * ExprNode::MakeConst(b); }
Expr operator/(Expr a, double b) { return std::move(a) / ExprNode::MakeConst(b); }
Expr operator+(double a, Expr b) { return ExprNode::MakeConst(a) + std::move(b); }
Expr operator-(double a, Expr b) { return ExprNode::MakeConst(a) - std::move(b); }
Expr operator*(double a, Expr b) { return ExprNode::MakeConst(a) * std::move(b); }
Expr operator/(double a, Expr b) { return ExprNode::MakeConst(a) / std::move(b); }
Expr operator<(Expr a, double b) { return std::move(a) < ExprNode::MakeConst(b); }
Expr operator>(Expr a, double b) { return std::move(a) > ExprNode::MakeConst(b); }
Expr operator<(double a, Expr b) { return ExprNode::MakeConst(a) < std::move(b); }
Expr operator>(double a, Expr b) { return ExprNode::MakeConst(a) > std::move(b); }

Expr Sigmoid(Expr x) {
  return ExprNode::MakeNonLinear(OpKind::kSigmoid, std::move(x));
}
Expr Gaussian(Expr x) {
  return ExprNode::MakeNonLinear(OpKind::kGaussian, std::move(x));
}
Expr Sqrt(Expr x) {
  return ExprNode::MakeNonLinear(OpKind::kSqrt, std::move(x));
}

Expr Sigma(Expr x, uint32_t axis) {
  return ExprNode::MakeGroup(OpKind::kSigma, std::move(x), axis);
}
Expr Pi(Expr x, uint32_t axis) {
  return ExprNode::MakeGroup(OpKind::kPi, std::move(x), axis);
}
Expr Norm(Expr x, uint32_t axis) {
  return ExprNode::MakeGroup(OpKind::kNorm, std::move(x), axis);
}

}  // namespace dana::dsl
