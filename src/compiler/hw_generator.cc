#include "compiler/hw_generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "strider/codegen.h"

namespace dana::compiler {

std::string DesignPoint::ToString() const {
  std::ostringstream os;
  os << "threads=" << num_threads << " acs/thread=" << acs_per_thread
     << " aus=" << total_aus << " page_buffers=" << num_page_buffers
     << " tuple_makespan=" << tuple_schedule.makespan
     << " batch_makespan=" << batch_schedule.makespan
     << " est_cycles/epoch=" << est_cycles_per_epoch;
  return os.str();
}

uint64_t MergeCycles(uint32_t threads, uint64_t merge_elems,
                     uint64_t model_elems, uint32_t lanes) {
  if (lanes == 0) lanes = 1;
  uint64_t cycles = 0;
  // The computation-enabled tree bus (§5.2) combines partials in flight:
  // all threads stream their merge payload simultaneously, junction ALUs
  // add pairwise, and the root drains one element per lane per cycle —
  // so merging costs the payload length plus the tree's pipeline depth,
  // independent of the thread count.
  if (merge_elems > 0) {
    cycles += (merge_elems + lanes - 1) / lanes;
    uint32_t depth = 0;
    for (uint32_t t = 1; t < threads; t <<= 1) ++depth;
    cycles += depth;
  }
  // Updated model broadcast back to the threads' scratchpads (the shared
  // bus is snooped, so one pass serves every thread).
  cycles += (model_elems + lanes - 1) / lanes;
  return cycles;
}

uint64_t EstimateEpochCycles(const ScalarProgram& prog,
                             const DesignPoint& design, const FpgaSpec& fpga,
                             const storage::PageLayout& layout,
                             const WorkloadShape& shape,
                             double bandwidth_scale) {
  const uint64_t tuples = shape.num_tuples;
  if (tuples == 0) return 0;
  const uint32_t threads = design.num_threads;

  // Batch structure: one batch == merge_coef tuples (1 when no merge);
  // each thread runs ceil(batch/threads) update-rule instances serially.
  const uint64_t batch = std::max<uint32_t>(prog.merge_coef, 1);
  const uint64_t num_batches = (tuples + batch - 1) / batch;
  const uint64_t rule_runs_per_batch = (batch + threads - 1) / threads;

  const uint64_t per_batch_cycles =
      rule_runs_per_batch *
          std::max<uint64_t>(design.tuple_schedule.EffectiveMakespan(
                                 design.inter_ac_bus_lanes, threads),
                             1) +
      MergeCycles(threads, prog.merge_slots.size(), prog.ModelElements(),
                  design.tree_bus_lanes) +
      design.batch_schedule.makespan;
  const uint64_t engine_cycles = num_batches * per_batch_cycles;

  // Access engine: AXI transfer of every page plus the Strider walk,
  // parallel across page buffers.
  const double axi_bpc = fpga.AxiBytesPerCycle() * bandwidth_scale;
  const uint64_t axi_cycles = static_cast<uint64_t>(
      std::ceil(static_cast<double>(shape.num_pages) * layout.page_size /
                std::max(axi_bpc, 1e-9)));
  const uint64_t strider_cycles_per_page = strider::EstimatePageWalkCycles(
      layout, shape.tuples_per_page, shape.tuple_payload_bytes);
  const uint64_t strider_cycles =
      shape.num_pages * strider_cycles_per_page /
      std::max<uint32_t>(design.num_page_buffers, 1);

  // The access and execution engines interleave (§5.1): with at least two
  // page buffers the walk of page i+1 overlaps compute on page i, so the
  // epoch runs at the rate of the slowest stage; a single buffer
  // serializes the stages.
  const uint64_t epoch_ops = design.epoch_schedule.makespan;
  if (design.num_page_buffers >= 2) {
    return std::max({axi_cycles, strider_cycles, engine_cycles}) +
           strider_cycles_per_page +  // pipeline fill
           epoch_ops;
  }
  return axi_cycles + strider_cycles + engine_cycles + epoch_ops;
}

Result<DesignPoint> HardwareGenerator::Generate(
    const ScalarProgram& prog, const storage::PageLayout& layout,
    const WorkloadShape& shape) const {
  // --- Compute fabric sizing (§6.1) ---------------------------------------
  const uint64_t luts_per_au =
      fpga_.luts_per_au +
      (options_.mimd_only ? fpga_.mimd_extra_luts_per_au : 0);
  uint64_t aus = std::min<uint64_t>(fpga_.dsp_slices / fpga_.dsps_per_au,
                                    fpga_.luts / luts_per_au);
  aus = std::min<uint64_t>(aus, fpga_.max_compute_units);
  if (options_.mimd_only) {
    // No shared cluster controller: each AU is its own single-lane cluster.
    aus = std::min<uint64_t>(aus, fpga_.max_compute_units / 2);
  }
  const uint32_t total_acs = std::max<uint32_t>(
      1, static_cast<uint32_t>(aus / engine::kAusPerAc));

  // --- BRAM split between access and execution engines --------------------
  // Per-thread data: model image + one tuple + intermediate results.
  const uint64_t per_thread_data_bytes =
      4 * (prog.ModelElements() + prog.TupleElements() +
           prog.tuple_ops.size() + prog.batch_ops.size());

  // --- Design space exploration over thread counts ------------------------
  const uint32_t max_threads =
      options_.force_threads
          ? options_.force_threads
          : std::min<uint32_t>(std::max<uint32_t>(prog.merge_coef, 1),
                               total_acs);

  Scheduler batch_scheduler(SchedulerConfig{
      .num_acs = std::max<uint32_t>(1, total_acs / 4),
      .selective_simd = !options_.mimd_only});
  DANA_ASSIGN_OR_RETURN(Schedule batch_schedule,
                        batch_scheduler.Run(prog.batch_ops));
  DANA_ASSIGN_OR_RETURN(Schedule epoch_schedule,
                        batch_scheduler.Run(prog.epoch_ops));

  std::vector<DesignPoint> candidates;
  for (uint32_t t = options_.force_threads ? options_.force_threads : 1;
       t <= max_threads; t *= 2) {
    DesignPoint d;
    d.num_threads = t;
    d.acs_per_thread = std::max<uint32_t>(1, total_acs / t);
    // Resource accounting: threads cannot oversubscribe the fabric.
    if (static_cast<uint64_t>(d.acs_per_thread) * t > total_acs) {
      d.acs_per_thread = std::max<uint32_t>(1, total_acs / t);
    }
    d.total_aus =
        static_cast<uint64_t>(d.acs_per_thread) * engine::kAusPerAc * t;
    if (d.total_aus > aus) break;  // fabric exhausted
    d.dsps_used = d.total_aus * fpga_.dsps_per_au;
    d.luts_used = d.total_aus * luts_per_au;

    Scheduler tuple_scheduler(SchedulerConfig{
        .num_acs = d.acs_per_thread, .selective_simd = !options_.mimd_only});
    DANA_ASSIGN_OR_RETURN(d.tuple_schedule,
                          tuple_scheduler.Run(prog.tuple_ops));
    d.batch_schedule = batch_schedule;
    d.epoch_schedule = epoch_schedule;

    // BRAM: per-thread data, then page buffers with the remainder.
    const uint64_t compute_bram = per_thread_data_bytes * t;
    if (compute_bram > fpga_.bram_bytes) break;  // model does not fit
    const uint64_t pb_bram = std::min<uint64_t>(
        fpga_.bram_bytes - compute_bram,
        static_cast<uint64_t>(fpga_.bram_bytes *
                              options_.page_buffer_bram_fraction));
    d.num_page_buffers = static_cast<uint32_t>(
        std::clamp<uint64_t>(pb_bram / layout.page_size, 1, 32));
    d.bram_used = compute_bram + static_cast<uint64_t>(d.num_page_buffers) *
                                     layout.page_size;

    d.est_cycles_per_epoch =
        EstimateEpochCycles(prog, d, fpga_, layout, shape);
    candidates.push_back(std::move(d));
    if (options_.force_threads) break;
  }
  if (candidates.empty()) {
    return Status::ResourceExhausted(
        "no design point fits the FPGA (model too large for BRAM?)");
  }

  // Smallest design within 5% of the best estimate (§6.1).
  uint64_t best = UINT64_MAX;
  for (const auto& c : candidates) {
    best = std::min(best, c.est_cycles_per_epoch);
  }
  for (const auto& c : candidates) {
    if (static_cast<double>(c.est_cycles_per_epoch) <=
        1.05 * static_cast<double>(best)) {
      return c;
    }
  }
  return candidates.back();
}

}  // namespace dana::compiler
