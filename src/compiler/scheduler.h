#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "compiler/scalar_program.h"
#include "engine/isa.h"

namespace dana::compiler {

/// Scheduling parameters: the single-thread compute fabric the scheduler
/// targets plus communication costs (paper §5.2, §6.2).
struct SchedulerConfig {
  /// Analytic clusters available to one thread.
  uint32_t num_acs = 4;
  /// AUs per cluster (fixed to 8 in the paper for frequency).
  uint32_t aus_per_ac = engine::kAusPerAc;
  /// Extra cycles when an operand crosses AUs within one AC (neighbor
  /// link / intra-AC bus).
  uint32_t intra_ac_hop = 1;
  /// Extra cycles when an operand crosses clusters (inter-AC bus).
  uint32_t inter_ac_hop = 2;
  /// Selective SIMD: all AUs of a cluster active in a cycle execute the
  /// cluster's single opcode (§5.2). Disable to ablate (full MIMD, as if
  /// each AU had its own controller).
  bool selective_simd = true;
};

/// Placement of one scalar op.
struct OpPlacement {
  uint32_t ac = 0;
  uint32_t au = 0;
  uint32_t start_cycle = 0;
  uint32_t finish_cycle = 0;  // start + latency
};

/// A static schedule of one region's scalar ops.
struct Schedule {
  std::vector<OpPlacement> placements;  // parallel to the op list
  uint64_t makespan = 0;                // cycles from 0 to last finish
  uint64_t op_count = 0;
  /// Operand deliveries that cross clusters. These all ride the single
  /// shared line-topology inter-AC bus (§5.2), so they bound throughput.
  uint64_t cross_ac_transfers = 0;

  /// Execution time of one schedule instance when `concurrent_threads`
  /// copies run simultaneously: the dependency-driven makespan, or the
  /// single shared inter-AC bus draining every thread's cross-cluster
  /// transfers at `bus_lanes` words per cycle, whichever is slower. This
  /// is what makes extra threads unprofitable for communication-heavy
  /// update rules (the paper's flat LRMF curve in Figure 12).
  uint64_t EffectiveMakespan(uint32_t bus_lanes,
                             uint32_t concurrent_threads = 1) const {
    if (bus_lanes == 0) bus_lanes = 1;
    if (concurrent_threads == 0) concurrent_threads = 1;
    return std::max(makespan,
                    concurrent_threads * cross_ac_transfers / bus_lanes);
  }

  /// Achieved parallelism: op-cycles / makespan.
  double Utilization(uint32_t total_aus) const {
    if (makespan == 0 || total_aus == 0) return 0.0;
    return static_cast<double>(op_count) /
           (static_cast<double>(makespan) * total_aus);
  }
};

/// List scheduler (paper §6.2): walks ready ops by critical-path priority
/// and greedily places each on the cluster/AU that lets it start earliest,
/// honouring dependency, communication, AU-occupancy, and selective-SIMD
/// constraints. Elementwise nodes spread across AUs; reductions stay near
/// their producers to minimize communication.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  /// Schedules one region's ops (dependencies are kSub refs into the same
  /// region; cross-region values are memory reads, free at cycle 0).
  dana::Result<Schedule> Run(const std::vector<ScalarOp>& ops) const;

  const SchedulerConfig& config() const { return config_; }

 private:
  SchedulerConfig config_;
};

}  // namespace dana::compiler
