#include "compiler/serialization.h"

#include <cstring>

namespace dana::compiler {

namespace {

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  template <typename T, typename F>
  void Vec(const std::vector<T>& v, F writeElem) {
    U32(static_cast<uint32_t>(v.size()));
    for (const T& e : v) writeElem(e);
  }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& in) : in_(in) {}

  Result<uint8_t> U8() {
    DANA_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(in_[pos_++]);
  }
  Result<uint16_t> U16() { return Fixed<uint16_t>(); }
  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }
  Result<double> F64() { return Fixed<double>(); }
  Result<std::string> Str() {
    DANA_ASSIGN_OR_RETURN(uint32_t n, U32());
    DANA_RETURN_NOT_OK(Need(n));
    std::string s = in_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  Result<uint32_t> Count(uint32_t sane_max = 1u << 26) {
    DANA_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > sane_max) {
      return Status::Corruption("implausible element count " +
                                std::to_string(n));
    }
    return n;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  template <typename T>
  Result<T> Fixed() {
    DANA_RETURN_NOT_OK(Need(sizeof(T)));
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  Status Need(size_t n) {
    if (pos_ + n > in_.size()) {
      return Status::Corruption("catalog blob truncated at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }
  const std::string& in_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------------

void PutValueRef(Writer* w, const ValueRef& r) {
  w->U8(static_cast<uint8_t>(r.kind));
  w->U8(static_cast<uint8_t>(r.region));
  w->U32(r.index);
  w->U32(r.var_id);
  w->F64(r.constant);
}

Result<ValueRef> GetValueRef(Reader* r) {
  ValueRef v;
  DANA_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind > static_cast<uint8_t>(ValueRef::Kind::kMergeOut)) {
    return Status::Corruption("bad ValueRef kind");
  }
  v.kind = static_cast<ValueRef::Kind>(kind);
  DANA_ASSIGN_OR_RETURN(uint8_t region, r->U8());
  if (region > 2) return Status::Corruption("bad ValueRef region");
  v.region = static_cast<ValueRegion>(region);
  DANA_ASSIGN_OR_RETURN(v.index, r->U32());
  DANA_ASSIGN_OR_RETURN(v.var_id, r->U32());
  DANA_ASSIGN_OR_RETURN(v.constant, r->F64());
  return v;
}

void PutOps(Writer* w, const std::vector<ScalarOp>& ops) {
  w->Vec(ops, [&](const ScalarOp& op) {
    w->U8(static_cast<uint8_t>(op.op));
    PutValueRef(w, op.a);
    PutValueRef(w, op.b);
  });
}

Status GetOps(Reader* r, std::vector<ScalarOp>* ops) {
  DANA_ASSIGN_OR_RETURN(uint32_t n, r->Count());
  ops->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    DANA_ASSIGN_OR_RETURN(uint8_t op, r->U8());
    if (op > static_cast<uint8_t>(engine::AluOp::kMov)) {
      return Status::Corruption("bad ALU opcode in catalog blob");
    }
    (*ops)[i].op = static_cast<engine::AluOp>(op);
    DANA_ASSIGN_OR_RETURN((*ops)[i].a, GetValueRef(r));
    DANA_ASSIGN_OR_RETURN((*ops)[i].b, GetValueRef(r));
  }
  return Status::OK();
}

void PutVars(Writer* w,
             const std::vector<std::shared_ptr<const dsl::Var>>& vars) {
  w->U32(static_cast<uint32_t>(vars.size()));
  for (const auto& v : vars) {
    w->U8(static_cast<uint8_t>(v->kind));
    w->Str(v->name);
    w->U32(static_cast<uint32_t>(v->dims.size()));
    for (uint32_t d : v->dims) w->U32(d);
    w->F64(v->meta_value);
    w->U32(v->ordinal);
  }
}

Status GetVars(Reader* r,
               std::vector<std::shared_ptr<const dsl::Var>>* vars) {
  DANA_ASSIGN_OR_RETURN(uint32_t n, r->Count(1u << 16));
  vars->clear();
  for (uint32_t i = 0; i < n; ++i) {
    auto var = std::make_shared<dsl::Var>();
    DANA_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
    if (kind > static_cast<uint8_t>(dsl::VarKind::kInter)) {
      return Status::Corruption("bad var kind");
    }
    var->kind = static_cast<dsl::VarKind>(kind);
    DANA_ASSIGN_OR_RETURN(var->name, r->Str());
    DANA_ASSIGN_OR_RETURN(uint32_t rank, r->Count(8));
    var->dims.resize(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      DANA_ASSIGN_OR_RETURN(var->dims[d], r->U32());
    }
    DANA_ASSIGN_OR_RETURN(var->meta_value, r->F64());
    DANA_ASSIGN_OR_RETURN(var->ordinal, r->U32());
    vars->push_back(std::move(var));
  }
  return Status::OK();
}

void PutSchedule(Writer* w, const Schedule& s) {
  w->U64(s.makespan);
  w->U64(s.op_count);
  w->U64(s.cross_ac_transfers);
  w->Vec(s.placements, [&](const OpPlacement& p) {
    w->U32(p.ac);
    w->U32(p.au);
    w->U32(p.start_cycle);
    w->U32(p.finish_cycle);
  });
}

Status GetSchedule(Reader* r, Schedule* s) {
  DANA_ASSIGN_OR_RETURN(s->makespan, r->U64());
  DANA_ASSIGN_OR_RETURN(s->op_count, r->U64());
  DANA_ASSIGN_OR_RETURN(s->cross_ac_transfers, r->U64());
  DANA_ASSIGN_OR_RETURN(uint32_t n, r->Count());
  s->placements.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    OpPlacement& p = s->placements[i];
    DANA_ASSIGN_OR_RETURN(p.ac, r->U32());
    DANA_ASSIGN_OR_RETURN(p.au, r->U32());
    DANA_ASSIGN_OR_RETURN(p.start_cycle, r->U32());
    DANA_ASSIGN_OR_RETURN(p.finish_cycle, r->U32());
  }
  return Status::OK();
}

}  // namespace

std::string SerializeUdf(const CompiledUdf& udf) {
  Writer w;
  w.Str("DANA");
  w.U32(kCatalogFormatVersion);
  w.Str(udf.udf_name);

  // --- Scalar program -----------------------------------------------------
  const ScalarProgram& p = udf.program;
  PutVars(&w, p.model_vars);
  PutVars(&w, p.input_vars);
  PutVars(&w, p.output_vars);
  PutVars(&w, p.meta_vars);
  PutOps(&w, p.tuple_ops);
  PutOps(&w, p.batch_ops);
  PutOps(&w, p.epoch_ops);
  w.Vec(p.merge_slots, [&](const MergeSlot& m) {
    w.U8(static_cast<uint8_t>(m.combine));
    PutValueRef(&w, m.src);
  });
  w.Vec(p.model_writes, [&](const ModelWrite& mw) {
    w.U32(mw.model_var);
    w.Vec(mw.elems, [&](const ValueRef& e) { PutValueRef(&w, e); });
  });
  PutValueRef(&w, p.convergence);
  w.U8(p.has_convergence ? 1 : 0);
  w.U32(p.merge_coef);
  w.U32(p.max_epochs);

  // --- Design point ---------------------------------------------------------
  const DesignPoint& d = udf.design;
  w.U32(d.num_threads);
  w.U32(d.acs_per_thread);
  w.U32(d.num_page_buffers);
  w.U32(d.tree_bus_lanes);
  w.U32(d.inter_ac_bus_lanes);
  PutSchedule(&w, d.tuple_schedule);
  PutSchedule(&w, d.batch_schedule);
  PutSchedule(&w, d.epoch_schedule);
  w.U64(d.total_aus);
  w.U64(d.dsps_used);
  w.U64(d.luts_used);
  w.U64(d.bram_used);
  w.U64(d.est_cycles_per_epoch);

  // --- Strider program -------------------------------------------------------
  w.Vec(udf.strider_program.code, [&](const strider::Instruction& ins) {
    w.U32(ins.Encode());
  });
  for (uint32_t c : udf.strider_program.config) w.U32(c);

  // --- Execution-engine streams ----------------------------------------------
  w.U32(static_cast<uint32_t>(udf.ac_programs.size()));
  for (const auto& acp : udf.ac_programs) {
    w.Vec(acp.instructions, [&](const engine::AcInstruction& instr) {
      w.U8(static_cast<uint8_t>(instr.op));
      w.U8(instr.active_mask);
      for (uint32_t l = 0; l < engine::kAusPerAc; ++l) {
        if (instr.active_mask & (1u << l)) w.U64(instr.lanes[l].Encode());
      }
    });
  }

  // --- Page layout + shape + FPGA --------------------------------------------
  const storage::PageLayout& l = udf.page_layout;
  w.U32(l.page_size);
  w.U32(l.header_size);
  w.U32(l.item_id_size);
  w.U32(l.tuple_header_size);
  w.U32(l.special_size);
  w.U32(l.lower_offset);
  w.U32(l.upper_offset);
  w.U32(l.special_offset);
  w.U64(udf.shape.num_tuples);
  w.U32(udf.shape.tuples_per_page);
  w.U64(udf.shape.num_pages);
  w.U32(udf.shape.tuple_payload_bytes);
  w.Str(udf.fpga.name);
  w.U64(udf.fpga.dsp_slices);
  w.U64(udf.fpga.bram_bytes);
  w.F64(udf.fpga.freq_hz);
  w.F64(udf.fpga.axi_bytes_per_sec);
  return w.Take();
}

Result<CompiledUdf> DeserializeUdf(const std::string& blob) {
  Reader r(blob);
  DANA_ASSIGN_OR_RETURN(std::string magic, r.Str());
  if (magic != "DANA") {
    return Status::Corruption("not a DAnA catalog blob (bad magic)");
  }
  DANA_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kCatalogFormatVersion) {
    return Status::InvalidArgument("unsupported catalog format version " +
                                   std::to_string(version));
  }

  CompiledUdf udf;
  DANA_ASSIGN_OR_RETURN(udf.udf_name, r.Str());

  ScalarProgram& p = udf.program;
  DANA_RETURN_NOT_OK(GetVars(&r, &p.model_vars));
  DANA_RETURN_NOT_OK(GetVars(&r, &p.input_vars));
  DANA_RETURN_NOT_OK(GetVars(&r, &p.output_vars));
  DANA_RETURN_NOT_OK(GetVars(&r, &p.meta_vars));
  DANA_RETURN_NOT_OK(GetOps(&r, &p.tuple_ops));
  DANA_RETURN_NOT_OK(GetOps(&r, &p.batch_ops));
  DANA_RETURN_NOT_OK(GetOps(&r, &p.epoch_ops));
  {
    DANA_ASSIGN_OR_RETURN(uint32_t n, r.Count());
    p.merge_slots.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      DANA_ASSIGN_OR_RETURN(uint8_t op, r.U8());
      p.merge_slots[i].combine = static_cast<engine::AluOp>(op);
      DANA_ASSIGN_OR_RETURN(p.merge_slots[i].src, GetValueRef(&r));
    }
  }
  {
    DANA_ASSIGN_OR_RETURN(uint32_t n, r.Count(1u << 16));
    p.model_writes.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      DANA_ASSIGN_OR_RETURN(p.model_writes[i].model_var, r.U32());
      DANA_ASSIGN_OR_RETURN(uint32_t ne, r.Count());
      p.model_writes[i].elems.resize(ne);
      for (uint32_t e = 0; e < ne; ++e) {
        DANA_ASSIGN_OR_RETURN(p.model_writes[i].elems[e], GetValueRef(&r));
      }
    }
  }
  DANA_ASSIGN_OR_RETURN(p.convergence, GetValueRef(&r));
  DANA_ASSIGN_OR_RETURN(uint8_t has_conv, r.U8());
  p.has_convergence = has_conv != 0;
  DANA_ASSIGN_OR_RETURN(p.merge_coef, r.U32());
  DANA_ASSIGN_OR_RETURN(p.max_epochs, r.U32());

  DesignPoint& d = udf.design;
  DANA_ASSIGN_OR_RETURN(d.num_threads, r.U32());
  DANA_ASSIGN_OR_RETURN(d.acs_per_thread, r.U32());
  DANA_ASSIGN_OR_RETURN(d.num_page_buffers, r.U32());
  DANA_ASSIGN_OR_RETURN(d.tree_bus_lanes, r.U32());
  DANA_ASSIGN_OR_RETURN(d.inter_ac_bus_lanes, r.U32());
  DANA_RETURN_NOT_OK(GetSchedule(&r, &d.tuple_schedule));
  DANA_RETURN_NOT_OK(GetSchedule(&r, &d.batch_schedule));
  DANA_RETURN_NOT_OK(GetSchedule(&r, &d.epoch_schedule));
  DANA_ASSIGN_OR_RETURN(d.total_aus, r.U64());
  DANA_ASSIGN_OR_RETURN(d.dsps_used, r.U64());
  DANA_ASSIGN_OR_RETURN(d.luts_used, r.U64());
  DANA_ASSIGN_OR_RETURN(d.bram_used, r.U64());
  DANA_ASSIGN_OR_RETURN(d.est_cycles_per_epoch, r.U64());

  {
    DANA_ASSIGN_OR_RETURN(uint32_t n, r.Count());
    udf.strider_program.code.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      DANA_ASSIGN_OR_RETURN(uint32_t word, r.U32());
      DANA_ASSIGN_OR_RETURN(udf.strider_program.code[i],
                            strider::Instruction::Decode(word));
    }
    for (auto& c : udf.strider_program.config) {
      DANA_ASSIGN_OR_RETURN(c, r.U32());
    }
  }

  {
    DANA_ASSIGN_OR_RETURN(uint32_t acs, r.Count(1u << 12));
    udf.ac_programs.resize(acs);
    for (uint32_t a = 0; a < acs; ++a) {
      DANA_ASSIGN_OR_RETURN(uint32_t n, r.Count());
      udf.ac_programs[a].instructions.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        engine::AcInstruction& instr = udf.ac_programs[a].instructions[i];
        DANA_ASSIGN_OR_RETURN(uint8_t op, r.U8());
        if (op > static_cast<uint8_t>(engine::AluOp::kMov)) {
          return Status::Corruption("bad cluster opcode");
        }
        instr.op = static_cast<engine::AluOp>(op);
        DANA_ASSIGN_OR_RETURN(instr.active_mask, r.U8());
        for (uint32_t l = 0; l < engine::kAusPerAc; ++l) {
          if (instr.active_mask & (1u << l)) {
            DANA_ASSIGN_OR_RETURN(uint64_t word, r.U64());
            DANA_ASSIGN_OR_RETURN(instr.lanes[l],
                                  engine::AuMicroOp::Decode(word));
          }
        }
      }
    }
  }

  storage::PageLayout& l = udf.page_layout;
  DANA_ASSIGN_OR_RETURN(l.page_size, r.U32());
  DANA_ASSIGN_OR_RETURN(l.header_size, r.U32());
  DANA_ASSIGN_OR_RETURN(l.item_id_size, r.U32());
  DANA_ASSIGN_OR_RETURN(l.tuple_header_size, r.U32());
  DANA_ASSIGN_OR_RETURN(l.special_size, r.U32());
  DANA_ASSIGN_OR_RETURN(l.lower_offset, r.U32());
  DANA_ASSIGN_OR_RETURN(l.upper_offset, r.U32());
  DANA_ASSIGN_OR_RETURN(l.special_offset, r.U32());
  DANA_ASSIGN_OR_RETURN(udf.shape.num_tuples, r.U64());
  DANA_ASSIGN_OR_RETURN(udf.shape.tuples_per_page, r.U32());
  DANA_ASSIGN_OR_RETURN(udf.shape.num_pages, r.U64());
  DANA_ASSIGN_OR_RETURN(udf.shape.tuple_payload_bytes, r.U32());
  DANA_ASSIGN_OR_RETURN(udf.fpga.name, r.Str());
  DANA_ASSIGN_OR_RETURN(udf.fpga.dsp_slices, r.U64());
  DANA_ASSIGN_OR_RETURN(udf.fpga.bram_bytes, r.U64());
  DANA_ASSIGN_OR_RETURN(udf.fpga.freq_hz, r.F64());
  DANA_ASSIGN_OR_RETURN(udf.fpga.axi_bytes_per_sec, r.F64());

  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after catalog blob");
  }
  return udf;
}

}  // namespace dana::compiler
