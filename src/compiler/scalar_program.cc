#include "compiler/scalar_program.h"

#include <map>
#include <sstream>

#include "hdfg/broadcast.h"

namespace dana::compiler {

std::string ValueRef::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "-";
    case Kind::kSub: {
      std::string prefix = region == ValueRegion::kTuple
                               ? "t"
                               : region == ValueRegion::kBatch ? "b" : "e";
      prefix += "%";
      prefix += std::to_string(index);
      return prefix;
    }
    case Kind::kModel:
      return "model" + std::to_string(var_id) + "[" + std::to_string(index) +
             "]";
    case Kind::kInput:
      return "in" + std::to_string(var_id) + "[" + std::to_string(index) +
             "]";
    case Kind::kOutput:
      return "out" + std::to_string(var_id) + "[" + std::to_string(index) +
             "]";
    case Kind::kMeta:
      return "meta" + std::to_string(var_id);
    case Kind::kConst:
      return std::to_string(constant);
    case Kind::kMergeOut:
      return "merge[" + std::to_string(index) + "]";
  }
  return "?";
}

uint64_t ScalarProgram::ModelElements() const {
  uint64_t n = 0;
  for (const auto& v : model_vars) n += hdfg::NumElements(v->dims);
  return n;
}

uint64_t ScalarProgram::TupleElements() const {
  uint64_t n = 0;
  for (const auto& v : input_vars) n += hdfg::NumElements(v->dims);
  for (const auto& v : output_vars) n += hdfg::NumElements(v->dims);
  return n;
}

std::string ScalarProgram::ToString() const {
  std::ostringstream os;
  auto dump = [&](const char* name, const std::vector<ScalarOp>& ops,
                  ValueRegion region) {
    os << name << " (" << ops.size() << " ops):\n";
    for (size_t i = 0; i < ops.size(); ++i) {
      os << "  " << ValueRef::Sub(region, static_cast<uint32_t>(i)).ToString()
         << " = " << engine::AluOpName(ops[i].op) << " "
         << ops[i].a.ToString();
      if (ops[i].b.kind != ValueRef::Kind::kNone) {
        os << ", " << ops[i].b.ToString();
      }
      os << "\n";
    }
  };
  dump("tuple", tuple_ops, ValueRegion::kTuple);
  os << "merges (" << merge_slots.size() << "):\n";
  for (size_t i = 0; i < merge_slots.size(); ++i) {
    os << "  merge[" << i << "] = " << engine::AluOpName(merge_slots[i].combine)
       << " over " << merge_slots[i].src.ToString() << "\n";
  }
  dump("batch", batch_ops, ValueRegion::kBatch);
  dump("epoch", epoch_ops, ValueRegion::kEpoch);
  for (const auto& w : model_writes) {
    os << "write model" << w.model_var << " (" << w.elems.size()
       << " elems)\n";
  }
  return os.str();
}

Result<engine::AluOp> ToAluOp(dsl::OpKind op) {
  using dsl::OpKind;
  switch (op) {
    case OpKind::kAdd:
      return engine::AluOp::kAdd;
    case OpKind::kSub:
      return engine::AluOp::kSub;
    case OpKind::kMul:
      return engine::AluOp::kMul;
    case OpKind::kDiv:
      return engine::AluOp::kDiv;
    case OpKind::kLt:
      return engine::AluOp::kLt;
    case OpKind::kGt:
      return engine::AluOp::kGt;
    case OpKind::kSigmoid:
      return engine::AluOp::kSigmoid;
    case OpKind::kGaussian:
      return engine::AluOp::kGaussian;
    case OpKind::kSqrt:
      return engine::AluOp::kSqrt;
    default:
      return Status::InvalidArgument("no ALU op for " + dsl::OpKindName(op));
  }
}

namespace {

ValueRegion ToValueRegion(hdfg::Region r) {
  switch (r) {
    case hdfg::Region::kPerBatch:
      return ValueRegion::kBatch;
    case hdfg::Region::kPerEpoch:
      return ValueRegion::kEpoch;
    default:
      return ValueRegion::kTuple;
  }
}

/// Lowering context: element maps per node plus the growing op lists.
class Lowerer {
 public:
  explicit Lowerer(const hdfg::Graph& g) : g_(g) {}

  Result<ScalarProgram> Run() {
    prog_.merge_coef = g_.merge_coef;
    prog_.max_epochs = g_.max_epochs;
    elems_.resize(g_.nodes.size());

    for (hdfg::NodeId id = 0; id < g_.nodes.size(); ++id) {
      DANA_RETURN_NOT_OK(LowerNode(id));
    }

    for (size_t u = 0; u < g_.update_roots.size(); ++u) {
      ModelWrite w;
      w.model_var = VarId(g_.model_vars[u], &prog_.model_vars);
      w.elems = elems_[g_.update_roots[u]];
      prog_.model_writes.push_back(std::move(w));
    }
    if (g_.convergence_root != hdfg::kInvalidNode) {
      prog_.has_convergence = true;
      prog_.convergence = elems_[g_.convergence_root][0];
    }
    return std::move(prog_);
  }

 private:
  uint32_t VarId(std::shared_ptr<const dsl::Var> var,
                 std::vector<std::shared_ptr<const dsl::Var>>* table) {
    for (uint32_t i = 0; i < table->size(); ++i) {
      if ((*table)[i] == var) return i;
    }
    table->push_back(std::move(var));
    return static_cast<uint32_t>(table->size() - 1);
  }

  std::vector<ScalarOp>* OpsFor(ValueRegion r) {
    switch (r) {
      case ValueRegion::kTuple:
        return &prog_.tuple_ops;
      case ValueRegion::kBatch:
        return &prog_.batch_ops;
      case ValueRegion::kEpoch:
        return &prog_.epoch_ops;
    }
    return &prog_.tuple_ops;
  }

  ValueRef Emit(ValueRegion region, engine::AluOp op, ValueRef a,
                ValueRef b) {
    auto* ops = OpsFor(region);
    ops->push_back({op, a, b});
    return ValueRef::Sub(region, static_cast<uint32_t>(ops->size() - 1));
  }

  /// Balanced binary reduction of `vals` with `op` in `region`.
  ValueRef ReduceTree(ValueRegion region, engine::AluOp op,
                      std::vector<ValueRef> vals) {
    while (vals.size() > 1) {
      std::vector<ValueRef> next;
      next.reserve((vals.size() + 1) / 2);
      for (size_t i = 0; i + 1 < vals.size(); i += 2) {
        next.push_back(Emit(region, op, vals[i], vals[i + 1]));
      }
      if (vals.size() % 2) next.push_back(vals.back());
      vals = std::move(next);
    }
    return vals[0];
  }

  Status LowerNode(hdfg::NodeId id) {
    const hdfg::Node& n = g_.nodes[id];
    std::vector<ValueRef>& out = elems_[id];
    const uint64_t out_n = hdfg::NumElements(n.dims);

    switch (n.op) {
      case dsl::OpKind::kVarRef: {
        const std::shared_ptr<const dsl::Var> var = n.var;
        const uint64_t ne = hdfg::NumElements(var->dims);
        out.resize(ne);
        ValueRef::Kind kind;
        uint32_t var_id;
        switch (var->kind) {
          case dsl::VarKind::kModel:
            kind = ValueRef::Kind::kModel;
            var_id = VarId(var, &prog_.model_vars);
            break;
          case dsl::VarKind::kInput:
            kind = ValueRef::Kind::kInput;
            var_id = VarId(var, &prog_.input_vars);
            break;
          case dsl::VarKind::kOutput:
            kind = ValueRef::Kind::kOutput;
            var_id = VarId(var, &prog_.output_vars);
            break;
          case dsl::VarKind::kMeta:
            kind = ValueRef::Kind::kMeta;
            var_id = VarId(var, &prog_.meta_vars);
            break;
          default:
            return Status::Internal("unexpected leaf kind");
        }
        for (uint64_t i = 0; i < ne; ++i) {
          ValueRef r;
          r.kind = kind;
          r.var_id = var_id;
          r.index = static_cast<uint32_t>(i);
          out[i] = r;
        }
        break;
      }
      case dsl::OpKind::kConst:
        out = {ValueRef::Const(n.constant)};
        break;
      case dsl::OpKind::kMerge: {
        const auto& src = elems_[n.inputs[0]];
        out.resize(src.size());
        DANA_ASSIGN_OR_RETURN(engine::AluOp combine, ToAluOp(n.merge_op));
        for (size_t i = 0; i < src.size(); ++i) {
          ValueRef r;
          r.kind = ValueRef::Kind::kMergeOut;
          r.index = static_cast<uint32_t>(prog_.merge_slots.size());
          prog_.merge_slots.push_back({combine, src[i]});
          out[i] = r;
        }
        break;
      }
      case dsl::OpKind::kSigmoid:
      case dsl::OpKind::kGaussian:
      case dsl::OpKind::kSqrt: {
        const auto& in = elems_[n.inputs[0]];
        DANA_ASSIGN_OR_RETURN(engine::AluOp op, ToAluOp(n.op));
        const ValueRegion region = ToValueRegion(n.region);
        out.resize(in.size());
        for (size_t i = 0; i < in.size(); ++i) {
          out[i] = Emit(region, op, in[i], ValueRef::None());
        }
        break;
      }
      case dsl::OpKind::kSigma:
      case dsl::OpKind::kPi:
      case dsl::OpKind::kNorm: {
        const auto& in = elems_[n.inputs[0]];
        const auto& in_dims = g_.nodes[n.inputs[0]].dims;
        const ValueRegion region = ToValueRegion(n.region);
        const engine::AluOp combine = n.op == dsl::OpKind::kPi
                                          ? engine::AluOp::kMul
                                          : engine::AluOp::kAdd;
        uint64_t trail = 1;
        for (size_t i = n.axis + 1; i < in_dims.size(); ++i) {
          trail *= in_dims[i];
        }
        const uint64_t axis_n = in_dims[n.axis];
        const uint64_t lead = in.size() / (trail * axis_n);
        out.resize(out_n);
        for (uint64_t l = 0; l < lead; ++l) {
          for (uint64_t t = 0; t < trail; ++t) {
            std::vector<ValueRef> lane(axis_n);
            for (uint64_t a = 0; a < axis_n; ++a) {
              lane[a] = in[(l * axis_n + a) * trail + t];
            }
            if (n.op == dsl::OpKind::kNorm) {
              for (auto& v : lane) {
                v = Emit(region, engine::AluOp::kMul, v, v);
              }
            }
            ValueRef r = ReduceTree(region, combine, std::move(lane));
            if (n.op == dsl::OpKind::kNorm) {
              r = Emit(region, engine::AluOp::kSqrt, r, ValueRef::None());
            }
            out[l * trail + t] = r;
          }
        }
        break;
      }
      default: {
        // Elementwise binary with broadcasting.
        const auto& a = elems_[n.inputs[0]];
        const auto& b = elems_[n.inputs[1]];
        DANA_ASSIGN_OR_RETURN(engine::AluOp op, ToAluOp(n.op));
        const ValueRegion region = ToValueRegion(n.region);
        const hdfg::BroadcastIndexer idx(g_.nodes[n.inputs[0]].dims,
                                         g_.nodes[n.inputs[1]].dims);
        out.resize(out_n);
        for (uint64_t i = 0; i < out_n; ++i) {
          out[i] = Emit(region, op, a[idx.Index(true, i)],
                        b[idx.Index(false, i)]);
        }
        break;
      }
    }
    return Status::OK();
  }

  const hdfg::Graph& g_;
  ScalarProgram prog_;
  std::vector<std::vector<ValueRef>> elems_;
};

}  // namespace

Result<ScalarProgram> LowerGraph(const hdfg::Graph& graph) {
  Lowerer lowerer(graph);
  return lowerer.Run();
}

}  // namespace dana::compiler
