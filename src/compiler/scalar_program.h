#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dsl/expr.h"
#include "engine/isa.h"
#include "hdfg/graph.h"

namespace dana::compiler {

/// Region tag of a scalar value (mirrors hdfg::Region for sub-op outputs).
enum class ValueRegion : uint8_t { kTuple = 0, kBatch = 1, kEpoch = 2 };

/// Reference to one scalar value in the lowered program.
struct ValueRef {
  enum class Kind : uint8_t {
    kNone = 0,   ///< absent operand (unary ops)
    kSub,        ///< output of a scalar op: (region, index into that list)
    kModel,      ///< element `index` of model var `var_id`
    kInput,      ///< element `index` of input var `var_id`
    kOutput,     ///< element `index` of output var `var_id`
    kMeta,       ///< meta var `var_id` (scalar)
    kConst,      ///< literal `constant`
    kMergeOut,   ///< merged value: merge slot `index`
  };
  Kind kind = Kind::kNone;
  ValueRegion region = ValueRegion::kTuple;  // for kSub
  uint32_t index = 0;
  uint32_t var_id = 0;
  double constant = 0.0;

  static ValueRef None() { return {}; }
  static ValueRef Const(double c) {
    ValueRef r;
    r.kind = Kind::kConst;
    r.constant = c;
    return r;
  }
  static ValueRef Sub(ValueRegion region, uint32_t index) {
    ValueRef r;
    r.kind = Kind::kSub;
    r.region = region;
    r.index = index;
    return r;
  }

  std::string ToString() const;
};

/// One atomic scalar operation (one hDFG sub-node, §4.4): the unit the
/// scheduler maps onto an analytic unit.
struct ScalarOp {
  engine::AluOp op = engine::AluOp::kNop;
  ValueRef a, b;
};

/// One element of a merge boundary: per-tuple value `src` is combined
/// across the batch with `combine` on the tree bus.
struct MergeSlot {
  engine::AluOp combine = engine::AluOp::kAdd;
  ValueRef src;
};

/// Model write-back: after the per-batch region, element `i` of model
/// variable `model_var` takes the value of `elems[i]`.
struct ModelWrite {
  uint32_t model_var = 0;
  std::vector<ValueRef> elems;
};

/// The fully lowered (flattened) UDF: every multi-dimensional hDFG node
/// expanded into scalar ops with explicit element routing. This is the
/// input of both the scheduler (timing) and the engine evaluator
/// (functional fp32 execution).
struct ScalarProgram {
  /// Variable tables; ValueRef::var_id indexes these. Shared ownership
  /// keeps the program self-contained even after the DSL Algo and the
  /// hDFG it was lowered from are gone.
  std::vector<std::shared_ptr<const dsl::Var>> model_vars;
  std::vector<std::shared_ptr<const dsl::Var>> input_vars;
  std::vector<std::shared_ptr<const dsl::Var>> output_vars;
  std::vector<std::shared_ptr<const dsl::Var>> meta_vars;

  /// Scalar ops by region, each in dependency (topological) order.
  std::vector<ScalarOp> tuple_ops;
  std::vector<ScalarOp> batch_ops;
  std::vector<ScalarOp> epoch_ops;

  std::vector<MergeSlot> merge_slots;
  std::vector<ModelWrite> model_writes;

  /// Convergence condition value (valid when has_convergence).
  ValueRef convergence;
  bool has_convergence = false;

  uint32_t merge_coef = 1;
  uint32_t max_epochs = 1;

  /// Total model elements across model variables.
  uint64_t ModelElements() const;
  /// Total elements of one training tuple (inputs + outputs).
  uint64_t TupleElements() const;

  std::string ToString() const;
};

/// Maps a DSL op to the engine ALU op; InvalidArgument for structural ops.
dana::Result<engine::AluOp> ToAluOp(dsl::OpKind op);

/// Flattens an hDFG into a ScalarProgram (the backend's first step, §6.2).
dana::Result<ScalarProgram> LowerGraph(const hdfg::Graph& graph);

}  // namespace dana::compiler
