#pragma once

#include <vector>

#include "common/result.h"
#include "compiler/scalar_program.h"
#include "compiler/scheduler.h"
#include "engine/isa.h"

namespace dana::compiler {

/// Emits the per-cluster instruction streams for one scheduled region
/// (the "AC and AU micro-instructions" of §6.2).
///
/// Ops that share a cluster and a start cycle were packed by the scheduler
/// into one selective-SIMD cluster instruction; this pass materializes it:
/// the cluster opcode, the active-AU mask, and per-lane AuMicroOps whose
/// source kinds encode where each operand physically comes from (own
/// scratchpad, neighbor register, or bus FIFO).
///
/// Scratchpad allocation is a bump allocator per AU: every scheduled op's
/// result gets the next free word of its AU's data memory; leaf values
/// (model, tuple data, meta) occupy a reserved low region written by the
/// access engine.
dana::Result<std::vector<engine::AcProgram>> EmitAcPrograms(
    const std::vector<ScalarOp>& ops, const Schedule& schedule,
    ValueRegion region, uint32_t num_acs);

/// Total encoded instruction-stream bytes across clusters (catalog
/// footprint; each AU micro-op packs to 8 bytes as stored).
uint64_t EncodedSizeBytes(const std::vector<engine::AcProgram>& programs);

}  // namespace dana::compiler
