#pragma once

#include <string>

#include "compiler/compiler.h"

namespace dana::compiler {

/// Renders a synthesis-style utilization and timing report for a compiled
/// accelerator: resource usage against the FPGA's budget (DSPs, LUTs,
/// BRAM, compute units), the access/execution engine split, instruction
/// footprints of both ISAs, and the static-schedule summary the
/// performance estimator works from (§6.1).
std::string UtilizationReport(const CompiledUdf& udf);

}  // namespace dana::compiler
