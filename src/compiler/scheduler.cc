#include "compiler/scheduler.h"

#include <algorithm>
#include <queue>
#include <string>

namespace dana::compiler {

namespace {

/// Per-op scheduling state.
struct OpState {
  uint32_t deps[2] = {UINT32_MAX, UINT32_MAX};
  uint32_t indeg = 0;
  uint32_t priority = 0;    // critical-path length to a sink
  uint32_t min_ready = 0;   // max dep finish (0-hop lower bound)
  bool scheduled = false;
};

struct HeapEntry {
  uint32_t priority;
  uint32_t op;
  bool operator<(const HeapEntry& o) const {
    // max-heap by priority, tie-break to lower id for determinism
    if (priority != o.priority) return priority < o.priority;
    return op > o.op;
  }
};

}  // namespace

Result<Schedule> Scheduler::Run(const std::vector<ScalarOp>& ops) const {
  const uint32_t n = static_cast<uint32_t>(ops.size());
  Schedule sched;
  sched.placements.resize(n);
  sched.op_count = n;
  if (n == 0) return sched;
  if (config_.num_acs == 0 || config_.aus_per_ac == 0) {
    return Status::InvalidArgument("scheduler needs at least one AC/AU");
  }

  // Dependency extraction: same-region kSub references.
  std::vector<OpState> st(n);
  std::vector<std::vector<uint32_t>> dependents(n);
  for (uint32_t i = 0; i < n; ++i) {
    int d = 0;
    for (const ValueRef* ref : {&ops[i].a, &ops[i].b}) {
      if (ref->kind == ValueRef::Kind::kSub) {
        const uint32_t dep = ref->index;
        if (dep >= i) {
          return Status::Internal("scalar program not topologically ordered");
        }
        st[i].deps[d++] = dep;
        ++st[i].indeg;
        dependents[dep].push_back(i);
      }
    }
  }

  // Critical-path priorities (reverse topological: ops are in topo order).
  for (uint32_t i = n; i-- > 0;) {
    const uint32_t lat = engine::AluOpLatency(ops[i].op);
    uint32_t best = 0;
    for (uint32_t dep_of : dependents[i]) {
      best = std::max(best, st[dep_of].priority);
    }
    st[i].priority = best + lat;
  }

  // Ready heap seeded with zero-indegree ops.
  std::priority_queue<HeapEntry> avail;
  for (uint32_t i = 0; i < n; ++i) {
    if (st[i].indeg == 0) avail.push({st[i].priority, i});
  }

  const uint32_t acs = config_.num_acs;
  const uint32_t lanes = config_.aus_per_ac;
  std::vector<uint64_t> ac_time(acs, 0);
  // Producer placement lookup for hop costs.
  auto ready_for = [&](uint32_t op, uint32_t ac) {
    uint64_t r = 0;
    for (uint32_t dep : st[op].deps) {
      if (dep == UINT32_MAX) continue;
      const OpPlacement& p = sched.placements[dep];
      const uint64_t hop =
          p.ac == ac ? config_.intra_ac_hop : config_.inter_ac_hop;
      r = std::max<uint64_t>(r, p.finish_cycle + hop);
    }
    return r;
  };
  auto min_ready_for = [&](uint32_t op) {
    uint64_t r = 0;
    for (uint32_t dep : st[op].deps) {
      if (dep == UINT32_MAX) continue;
      r = std::max<uint64_t>(r, sched.placements[dep].finish_cycle);
    }
    return r;
  };

  uint32_t scheduled = 0;
  std::vector<uint32_t> group;       // ops packed into one AC instruction
  std::vector<HeapEntry> postponed;  // popped but not startable now
  uint64_t guard = 0;
  const uint64_t guard_max = static_cast<uint64_t>(n) * 64 + 1024;

  while (scheduled < n) {
    if (++guard > guard_max) {
      return Status::Internal("scheduler failed to converge");
    }
    // Pick the cluster whose program counter is furthest behind.
    uint32_t ac = 0;
    for (uint32_t a = 1; a < acs; ++a) {
      if (ac_time[a] < ac_time[ac]) ac = a;
    }
    uint64_t t = ac_time[ac];

    // Pull startable ops (bounded scan to stay near O(n log n)).
    group.clear();
    postponed.clear();
    engine::AluOp opcode = engine::AluOp::kNop;
    uint64_t next_event = UINT64_MAX;
    const size_t scan_limit = 4 * static_cast<size_t>(lanes) + 32;
    while (!avail.empty() && postponed.size() < scan_limit &&
           group.size() < lanes) {
      HeapEntry e = avail.top();
      avail.pop();
      const uint64_t r = ready_for(e.op, ac);
      const bool opcode_ok = group.empty() || !config_.selective_simd ||
                             ops[e.op].op == opcode;
      if (r <= t && opcode_ok) {
        if (group.empty()) opcode = ops[e.op].op;
        group.push_back(e.op);
      } else {
        next_event = std::min(next_event, std::max(r, t));
        postponed.push_back(e);
      }
    }
    for (const auto& e : postponed) avail.push(e);

    if (group.empty()) {
      if (avail.empty()) {
        return Status::Internal("deadlock: no ready ops but work remains");
      }
      // Nothing startable on this cluster yet: advance its clock.
      ac_time[ac] = next_event == UINT64_MAX ? t + 1 : next_event;
      continue;
    }

    // Lane assignment: prefer a producer's lane (zero-hop chaining).
    uint32_t lane_used = 0;  // bitmask
    std::vector<uint32_t> lane_of(group.size(), UINT32_MAX);
    for (size_t g = 0; g < group.size(); ++g) {
      for (uint32_t dep : st[group[g]].deps) {
        if (dep == UINT32_MAX) continue;
        const OpPlacement& p = sched.placements[dep];
        if (p.ac == ac && !(lane_used & (1u << p.au))) {
          lane_of[g] = p.au;
          lane_used |= 1u << p.au;
          break;
        }
      }
    }
    for (size_t g = 0; g < group.size(); ++g) {
      if (lane_of[g] != UINT32_MAX) continue;
      for (uint32_t l = 0; l < lanes; ++l) {
        if (!(lane_used & (1u << l))) {
          lane_of[g] = l;
          lane_used |= 1u << l;
          break;
        }
      }
    }

    // Issue the cluster instruction: blocking semantics (§5.2) — the AC
    // proceeds to its next instruction when the designated AUs complete.
    uint32_t dur = 0;
    for (uint32_t op : group) {
      dur = std::max(dur, engine::AluOpLatency(ops[op].op));
    }
    for (size_t g = 0; g < group.size(); ++g) {
      const uint32_t op = group[g];
      OpPlacement& p = sched.placements[op];
      p.ac = ac;
      p.au = lane_of[g];
      p.start_cycle = static_cast<uint32_t>(t);
      p.finish_cycle = static_cast<uint32_t>(t + dur);
      st[op].scheduled = true;
      for (uint32_t dep : st[op].deps) {
        if (dep != UINT32_MAX && sched.placements[dep].ac != ac) {
          ++sched.cross_ac_transfers;
        }
      }
      ++scheduled;
      for (uint32_t dep_of : dependents[op]) {
        if (--st[dep_of].indeg == 0) {
          st[dep_of].min_ready =
              static_cast<uint32_t>(min_ready_for(dep_of));
          avail.push({st[dep_of].priority, dep_of});
        }
      }
    }
    ac_time[ac] = t + dur;
    sched.makespan = std::max<uint64_t>(sched.makespan, t + dur);
  }

  return sched;
}

}  // namespace dana::compiler
