#pragma once

#include <string>

#include "common/result.h"
#include "compiler/compiler.h"

namespace dana::compiler {

/// Binary serialization of a compiled accelerator.
///
/// The paper stores "the FPGA design, its schedule, operation map, and
/// instructions" in the RDBMS catalog (§6.2) and re-executes them whenever
/// a query calls the UDF. These functions give that catalog entry a real
/// on-disk format: a versioned little-endian stream containing the lowered
/// scalar program (with its variable tables), the chosen design point with
/// all three region schedules, the Strider program (22-bit words + config
/// registers), the per-cluster execution-engine streams (48-bit micro-op
/// words), the page layout, and the workload shape.
///
/// A deserialized CompiledUdf is fully runnable: the Accelerator trains
/// from it without recompilation, and the round trip is bit-exact (tested
/// in serialization_test.cc). The translated hDFG is intentionally NOT
/// serialized — it is a front-end artifact the backend no longer needs.
///
/// Format: "DANA" magic, u32 version, then length-prefixed sections. All
/// integers little-endian; doubles as IEEE-754 bit patterns.
inline constexpr uint32_t kCatalogFormatVersion = 1;

/// Serializes `udf` into a catalog blob.
std::string SerializeUdf(const CompiledUdf& udf);

/// Parses a catalog blob produced by SerializeUdf. Fails with Corruption
/// on malformed input and InvalidArgument on version mismatch.
dana::Result<CompiledUdf> DeserializeUdf(const std::string& blob);

}  // namespace dana::compiler
