#include "compiler/compiler.h"

#include <sstream>

#include "hdfg/translator.h"
#include "strider/assembler.h"
#include "strider/codegen.h"

namespace dana::compiler {

std::string CompiledUdf::CatalogBlob() const {
  std::ostringstream os;
  os << "udf: " << udf_name << "\n";
  os << "fpga: " << fpga.name << "\n";
  os << "design: " << design.ToString() << "\n";
  os << "page: size=" << page_layout.page_size
     << " tuples/page=" << shape.tuples_per_page << "\n";
  os << "--- strider program ---\n" << strider::Disassemble(strider_program);
  os << "--- execution engine (" << ac_programs.size() << " clusters) ---\n";
  for (size_t ac = 0; ac < ac_programs.size(); ++ac) {
    os << "AC" << ac << ": " << ac_programs[ac].instructions.size()
       << " instructions\n";
  }
  return os.str();
}

Result<CompiledUdf> UdfCompiler::Compile(const dsl::Algo& algo,
                                         const storage::PageLayout& layout,
                                         const WorkloadShape& shape) const {
  CompiledUdf out;
  out.udf_name = algo.name();
  out.page_layout = layout;
  out.fpga = fpga_;
  out.shape = shape;

  // Front end: DSL -> hDFG (§4.4).
  DANA_ASSIGN_OR_RETURN(out.graph, hdfg::Translator::Translate(algo));

  // Lowering: hDFG -> scalar sub-node program (§6.2).
  DANA_ASSIGN_OR_RETURN(out.program, LowerGraph(out.graph));

  // Consistency: tuple width implied by the program vs the page geometry.
  const uint64_t tuple_bytes = 4 * out.program.TupleElements();
  if (shape.tuple_payload_bytes != 0 &&
      shape.tuple_payload_bytes != tuple_bytes) {
    return Status::InvalidArgument(
        "algo consumes " + std::to_string(tuple_bytes) +
        "-byte tuples but the table stores " +
        std::to_string(shape.tuple_payload_bytes) + "-byte payloads");
  }

  // Hardware generation + design space exploration (§6.1).
  HardwareGenerator hw(fpga_, hw_options_);
  DANA_ASSIGN_OR_RETURN(out.design, hw.Generate(out.program, layout, shape));

  // Strider program for the page layout (§5.1.2).
  DANA_ASSIGN_OR_RETURN(out.strider_program,
                        strider::BuildPageWalkProgram(layout));

  // Execution-engine instruction streams for one thread (§6.2).
  DANA_ASSIGN_OR_RETURN(
      out.ac_programs,
      EmitAcPrograms(out.program.tuple_ops, out.design.tuple_schedule,
                     ValueRegion::kTuple, out.design.acs_per_thread));
  return out;
}

}  // namespace dana::compiler
