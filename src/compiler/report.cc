#include "compiler/report.h"

#include <cstdio>
#include <sstream>

#include "common/table_printer.h"
#include "compiler/codegen.h"

namespace dana::compiler {

namespace {
std::string Pct(uint64_t used, uint64_t total) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                total == 0 ? 0.0 : 100.0 * used / total);
  return buf;
}
}  // namespace

std::string UtilizationReport(const CompiledUdf& udf) {
  const DesignPoint& d = udf.design;
  const FpgaSpec& f = udf.fpga;
  std::ostringstream os;

  os << "Accelerator utilization report — UDF '" << udf.udf_name << "' on "
     << f.name << "\n\n";

  TablePrinter resources({"Resource", "Used", "Available", "Utilization"});
  resources.AddRow({"Analytic units (AUs)", std::to_string(d.total_aus),
                    std::to_string(f.max_compute_units),
                    Pct(d.total_aus, f.max_compute_units)});
  resources.AddRow({"DSP slices", std::to_string(d.dsps_used),
                    std::to_string(f.dsp_slices),
                    Pct(d.dsps_used, f.dsp_slices)});
  resources.AddRow({"LUTs", std::to_string(d.luts_used),
                    std::to_string(f.luts), Pct(d.luts_used, f.luts)});
  resources.AddRow({"BRAM (bytes)", std::to_string(d.bram_used),
                    std::to_string(f.bram_bytes),
                    Pct(d.bram_used, f.bram_bytes)});
  os << resources.ToString() << "\n";

  TablePrinter org({"Component", "Configuration"});
  org.AddRow({"Execution engine",
              std::to_string(d.num_threads) + " threads x " +
                  std::to_string(d.acs_per_thread) + " ACs x 8 AUs"});
  org.AddRow({"Access engine",
              std::to_string(d.num_page_buffers) + " page buffers / Striders @ " +
                  std::to_string(udf.page_layout.page_size / 1024) +
                  " KB pages"});
  org.AddRow({"Merge network",
              "tree bus, " + std::to_string(d.tree_bus_lanes) + " lane(s)"});
  org.AddRow({"Clock", TablePrinter::Fmt(f.freq_hz / 1e6, 0) + " MHz"});
  os << org.ToString() << "\n";

  uint64_t engine_instrs = 0;
  for (const auto& acp : udf.ac_programs) {
    engine_instrs += acp.instructions.size();
  }
  TablePrinter code({"Instruction stream", "Count", "Encoded bytes"});
  code.AddRow({"Strider ISA (22-bit)",
               std::to_string(udf.strider_program.code.size()),
               std::to_string(udf.strider_program.EncodedBytes())});
  code.AddRow({"Execution engine (AC instructions)",
               std::to_string(engine_instrs),
               std::to_string(EncodedSizeBytes(udf.ac_programs))});
  os << code.ToString() << "\n";

  TablePrinter sched({"Region", "Scalar ops", "Makespan (cycles)",
                      "Cross-AC transfers"});
  sched.AddRow({"Update rule (per tuple)",
                std::to_string(udf.program.tuple_ops.size()),
                std::to_string(d.tuple_schedule.makespan),
                std::to_string(d.tuple_schedule.cross_ac_transfers)});
  sched.AddRow({"Model update (per batch)",
                std::to_string(udf.program.batch_ops.size()),
                std::to_string(d.batch_schedule.makespan),
                std::to_string(d.batch_schedule.cross_ac_transfers)});
  sched.AddRow({"Convergence (per epoch)",
                std::to_string(udf.program.epoch_ops.size()),
                std::to_string(d.epoch_schedule.makespan),
                std::to_string(d.epoch_schedule.cross_ac_transfers)});
  os << sched.ToString();
  os << "\nEstimated cycles per epoch: " << d.est_cycles_per_epoch << "\n";
  return os.str();
}

}  // namespace dana::compiler
