#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/codegen.h"
#include "compiler/hw_generator.h"
#include "compiler/scalar_program.h"
#include "dsl/algo.h"
#include "hdfg/graph.h"
#include "storage/page_layout.h"
#include "strider/isa.h"

namespace dana::compiler {

/// Everything DAnA generates for one UDF: the translated graph, the lowered
/// scalar program, the chosen hardware design, and both instruction streams
/// (Strider + execution engine). This is the object stored in the RDBMS
/// catalog and executed when a query invokes the UDF (paper Figure 2).
struct CompiledUdf {
  std::string udf_name;
  hdfg::Graph graph;
  ScalarProgram program;
  DesignPoint design;
  strider::StriderProgram strider_program;
  /// Per-cluster instruction streams for the per-tuple region of one
  /// thread (threads are architecturally identical, §5.2).
  std::vector<engine::AcProgram> ac_programs;
  storage::PageLayout page_layout;
  FpgaSpec fpga;
  WorkloadShape shape;

  /// Human-readable metadata blob stored in the catalog (design summary,
  /// schedules, and disassembled instruction streams).
  std::string CatalogBlob() const;
};

/// End-to-end DAnA compilation workflow (paper §3): DSL -> translator ->
/// lowering -> hardware generation -> scheduling -> code generation.
class UdfCompiler {
 public:
  explicit UdfCompiler(FpgaSpec fpga) : fpga_(fpga) {}
  UdfCompiler(FpgaSpec fpga, HardwareGenerator::Options hw_options)
      : fpga_(fpga), hw_options_(hw_options) {}

  /// Compiles `algo` for a table with the given page layout and shape.
  /// `shape.tuple_payload_bytes` must match the algo's tuple width
  /// (4 bytes per input/output element in float4 storage).
  dana::Result<CompiledUdf> Compile(const dsl::Algo& algo,
                                    const storage::PageLayout& layout,
                                    const WorkloadShape& shape) const;

 private:
  FpgaSpec fpga_;
  HardwareGenerator::Options hw_options_;
};

}  // namespace dana::compiler
