#include "compiler/codegen.h"

#include <algorithm>
#include <map>
#include <string>

namespace dana::compiler {

namespace {

/// Reserved scratchpad words for leaf data (model/tuple/meta image) at the
/// bottom of each AU's data memory; op results are allocated above it.
constexpr uint16_t kLeafRegionWords = 256;

engine::SrcRef LowerSrc(const ValueRef& ref, const Schedule& schedule,
                        ValueRegion region, uint32_t my_ac, uint32_t my_au,
                        const std::vector<uint16_t>& result_addr) {
  using K = ValueRef::Kind;
  engine::SrcRef src;
  switch (ref.kind) {
    case K::kNone:
      src.kind = engine::SrcKind::kNone;
      break;
    case K::kSub: {
      if (ref.region != region) {
        // Value produced by another region's schedule; it was spilled to
        // the leaf image of the scratchpad between regions.
        src.kind = engine::SrcKind::kScratch;
        src.addr = static_cast<uint16_t>(ref.index % kLeafRegionWords);
        break;
      }
      const OpPlacement& p = schedule.placements[ref.index];
      if (p.ac == my_ac && p.au == my_au) {
        src.kind = engine::SrcKind::kScratch;
        src.addr = result_addr[ref.index];
      } else if (p.ac == my_ac) {
        // Neighbor register when adjacent, else the intra-AC bus FIFO.
        if (p.au + 1 == my_au) {
          src.kind = engine::SrcKind::kLeft;
        } else if (my_au + 1 == p.au) {
          src.kind = engine::SrcKind::kRight;
        } else {
          src.kind = engine::SrcKind::kBus;
        }
      } else {
        src.kind = engine::SrcKind::kBus;  // inter-AC bus delivery
        src.addr = 1;                      // FIFO channel 1 == inter-AC
      }
      break;
    }
    case K::kConst:
    case K::kMeta:
      src.kind = engine::SrcKind::kImmediate;
      src.addr = static_cast<uint16_t>(ref.var_id & 0xFFF);
      break;
    default:
      // Model / input / output image in the leaf region of the scratchpad.
      src.kind = engine::SrcKind::kScratch;
      src.addr = static_cast<uint16_t>(ref.index % kLeafRegionWords);
      break;
  }
  return src;
}

}  // namespace

Result<std::vector<engine::AcProgram>> EmitAcPrograms(
    const std::vector<ScalarOp>& ops, const Schedule& schedule,
    ValueRegion region, uint32_t num_acs) {
  if (schedule.placements.size() != ops.size()) {
    return Status::InvalidArgument("schedule does not match op list");
  }

  // Scratchpad bump allocation per (ac, au).
  std::map<std::pair<uint32_t, uint32_t>, uint16_t> next_word;
  std::vector<uint16_t> result_addr(ops.size(), 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpPlacement& p = schedule.placements[i];
    uint16_t& cursor = next_word[{p.ac, p.au}];
    result_addr[i] = static_cast<uint16_t>(kLeafRegionWords + cursor);
    cursor = static_cast<uint16_t>((cursor + 1) % (4096 - kLeafRegionWords));
  }

  // Group ops into cluster instructions keyed by (ac, start_cycle).
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint32_t>> groups;
  for (uint32_t i = 0; i < ops.size(); ++i) {
    const OpPlacement& p = schedule.placements[i];
    if (p.ac >= num_acs) {
      return Status::Internal("placement cluster out of range");
    }
    groups[{p.ac, p.start_cycle}].push_back(i);
  }

  std::vector<engine::AcProgram> programs(num_acs);
  for (const auto& [key, members] : groups) {
    const uint32_t ac = key.first;
    engine::AcInstruction instr;
    instr.op = ops[members[0]].op;
    for (uint32_t op_id : members) {
      const OpPlacement& p = schedule.placements[op_id];
      if (p.au >= engine::kAusPerAc) {
        return Status::Internal("placement lane out of range");
      }
      if (instr.active_mask & (1u << p.au)) {
        return Status::Internal("two ops share a lane in one instruction");
      }
      instr.active_mask |= static_cast<uint8_t>(1u << p.au);
      engine::AuMicroOp& lane = instr.lanes[p.au];
      lane.op = ops[op_id].op;
      lane.src1 =
          LowerSrc(ops[op_id].a, schedule, region, ac, p.au, result_addr);
      lane.src2 =
          LowerSrc(ops[op_id].b, schedule, region, ac, p.au, result_addr);
      lane.dst = engine::DstKind::kScratch;
      lane.dst_addr = static_cast<uint16_t>(result_addr[op_id] & 0x1FF);
    }
    programs[ac].instructions.push_back(instr);
  }
  return programs;
}

uint64_t EncodedSizeBytes(const std::vector<engine::AcProgram>& programs) {
  uint64_t n = 0;
  for (const auto& p : programs) {
    for (const auto& instr : p.instructions) {
      n += 2;  // cluster opcode + active mask
      for (uint32_t l = 0; l < engine::kAusPerAc; ++l) {
        if (instr.active_mask & (1u << l)) n += 8;
      }
    }
  }
  return n;
}

}  // namespace dana::compiler
