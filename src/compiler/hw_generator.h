#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/scalar_program.h"
#include "compiler/scheduler.h"
#include "storage/page_layout.h"

namespace dana::compiler {

/// Target FPGA resources (paper Table 4: Xilinx Virtex UltraScale+ VU9P).
struct FpgaSpec {
  std::string name = "Xilinx Virtex UltraScale+ VU9P";
  uint64_t luts = 1'182'000;
  uint64_t flip_flops = 2'364'000;
  uint64_t dsp_slices = 6'840;
  uint64_t bram_bytes = 44ull << 20;  // 44 MB on-chip memory
  double freq_hz = 150e6;
  /// Host link bandwidth (PCIe Gen3 x16 to the buffer pool).
  double axi_bytes_per_sec = 16e9;
  /// Practical AU ceiling from placement/routing (paper §7.2: "maximum
  /// 1024 compute units can be instantiated" on the UltraScale+).
  uint32_t max_compute_units = 1024;

  /// Per-AU resource footprint of the hand-optimized template.
  uint64_t dsps_per_au = 5;
  uint64_t luts_per_au = 900;
  /// Extra LUT cost when each AU carries its own decoder instead of the
  /// shared selective-SIMD cluster controller (MIMD ablation).
  uint64_t mimd_extra_luts_per_au = 450;

  /// AXI payload bytes moved per FPGA cycle.
  double AxiBytesPerCycle() const { return axi_bytes_per_sec / freq_hz; }
};

/// A fully parameterized accelerator instance for one UDF.
struct DesignPoint {
  /// Parallel update-rule threads (bounded by the merge coefficient).
  uint32_t num_threads = 1;
  /// Analytic clusters allocated to each thread.
  uint32_t acs_per_thread = 1;
  /// Page buffers (each with its own Strider).
  uint32_t num_page_buffers = 1;
  /// Tree-bus ALU lanes used by the merge network (the shared
  /// line-topology bus moves/combines this many values per cycle).
  uint32_t tree_bus_lanes = 1;
  /// Words per cycle the shared inter-AC bus delivers for operand traffic
  /// between clusters inside the update rule (wider than the merge path:
  /// neighbouring clusters exchange through segmented bus sections).
  uint32_t inter_ac_bus_lanes = 16;

  /// Static schedules for each region, per thread.
  Schedule tuple_schedule;
  Schedule batch_schedule;
  Schedule epoch_schedule;

  /// Resource accounting.
  uint64_t total_aus = 0;
  uint64_t dsps_used = 0;
  uint64_t luts_used = 0;
  uint64_t bram_used = 0;

  /// Estimator output: cycles per epoch (pipeline steady state).
  uint64_t est_cycles_per_epoch = 0;

  std::string ToString() const;
};

/// Workload geometry the estimator needs.
struct WorkloadShape {
  uint64_t num_tuples = 0;
  uint32_t tuples_per_page = 1;
  uint64_t num_pages = 0;
  uint32_t tuple_payload_bytes = 0;
};

/// Static performance estimation (paper §6.1): cycles for one epoch given a
/// design point, the page-walk cost, and the AXI transfer cost, assuming
/// the access engine and execution engine interleave (pipeline) across page
/// buffers. Exact because the schedule is static, there is no cache, and
/// the architecture is fixed during execution.
uint64_t EstimateEpochCycles(const ScalarProgram& prog,
                             const DesignPoint& design, const FpgaSpec& fpga,
                             const storage::PageLayout& layout,
                             const WorkloadShape& shape,
                             double bandwidth_scale = 1.0);

/// Merge-network cycles for one batch: log2(threads) tree stages, each
/// moving/combining `merge_elems` values over `lanes` bus ALUs, plus the
/// model write-back broadcast.
uint64_t MergeCycles(uint32_t threads, uint64_t merge_elems,
                     uint64_t model_elems, uint32_t lanes);

/// DAnA's hardware generator (paper §6.1): splits FPGA resources between
/// the access engine (page buffers + Striders) and the execution engine
/// (threads of ACs), then explores thread counts up to the merge
/// coefficient and picks the smallest design within 5% of the best
/// estimated performance.
class HardwareGenerator {
 public:
  struct Options {
    /// Ablation: give every AU its own controller (no selective SIMD);
    /// costs extra LUTs per AU, shrinking the fabric.
    bool mimd_only = false;
    /// Force a specific thread count (0 = explore).
    uint32_t force_threads = 0;
    /// Fraction of BRAM reserved for page buffers before compute data.
    double page_buffer_bram_fraction = 0.5;
  };

  explicit HardwareGenerator(FpgaSpec fpga) : fpga_(fpga) {}
  HardwareGenerator(FpgaSpec fpga, Options options)
      : fpga_(fpga), options_(options) {}

  /// Generates the best design point for `prog` over `layout`/`shape`.
  dana::Result<DesignPoint> Generate(const ScalarProgram& prog,
                                     const storage::PageLayout& layout,
                                     const WorkloadShape& shape) const;

  const FpgaSpec& fpga() const { return fpga_; }

 private:
  FpgaSpec fpga_;
  Options options_;
};

}  // namespace dana::compiler
