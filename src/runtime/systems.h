#pragma once

#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "compiler/compiler.h"
#include "ml/reference.h"
#include "ml/workloads.h"
#include "runtime/cost_model.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace dana::runtime {

/// Cache state of a run (paper §7 default setup). kOsCached is the middle
/// endpoint of the tiered pricing model: the buffer pool is cold but the
/// table's pages sit in the modeled kernel page cache, so every pool miss
/// is served at OS-cache speed instead of disk speed.
enum class CacheState : uint8_t { kWarm, kCold, kOsCached };

/// Outcome of running one workload on one system.
struct SystemResult {
  std::string system;
  dana::SimTime total;       ///< end-to-end runtime at paper scale
  dana::SimTime io;          ///< disk time (scaled)
  dana::SimTime compute;     ///< compute/FPGA time (scaled)
  dana::SimTime overhead;    ///< query/startup overheads (not scaled)
  uint32_t epochs = 0;
  /// Cross-query batching attribution (DAnA only): time the whole batch
  /// amortizes over one page-streaming sweep (overheads included, scaled)
  /// vs the incremental engine time each co-trained query adds.
  dana::SimTime shared_time;
  dana::SimTime per_query_time;
  uint32_t batch_queries = 1;  ///< queries co-trained in this pass
  /// Epoch-resolved attribution (DAnA only), for epoch-sliced resumable
  /// execution: the first epoch carries the run's cold-I/O transient, every
  /// later epoch repeats the steady state. All at paper scale, without the
  /// fixed overheads below; a run of e >= 1 epochs costs
  ///   query_overhead + epoch_overhead * e
  ///     + first_epoch.wall + steady_epoch.wall * (e - 1)
  /// which is the same decomposition `total` extrapolates from.
  struct EpochCost {
    dana::SimTime wall;       ///< pipelined epoch wall time
    dana::SimTime shared;     ///< one-pass streaming side (batch-amortized)
    dana::SimTime per_query;  ///< incremental engine time per co-trained model
  };
  EpochCost first_epoch;
  EpochCost steady_epoch;
  /// One-time query startup (PostgreSQL + DAnA DMA/config setup), unscaled.
  dana::SimTime query_overhead;
  /// Per-epoch host orchestration (stream restart, model read-back),
  /// unscaled.
  dana::SimTime epoch_overhead;
  /// Trained model (flattened first model variable) and its loss on the
  /// (scaled) training set; checks the systems do equivalent work.
  std::vector<double> model;
  double loss = 0.0;
};

/// Shared experiment context: one workload's generated data, its table,
/// and per-slot buffer pools sized so that table-vs-pool proportions match
/// the paper's 8 GB pool against Table 3 dataset sizes.
///
/// Each accelerator slot executing this workload gets its own pool from the
/// group (independent frames and OS-cache accounting, shared DiskModel), so
/// concurrent slots no longer alias one cache. Slot 0 is the default and
/// reproduces the original single-pool behaviour exactly.
class WorkloadInstance {
 public:
  /// Builds the dataset and table for `workload` with the given page size.
  static dana::Result<std::unique_ptr<WorkloadInstance>> Create(
      const ml::Workload& workload, uint32_t page_size = 32 * 1024);

  const ml::Workload& workload() const { return workload_; }
  const ml::Dataset& dataset() const { return dataset_; }
  const storage::Table& table() const { return *table_; }
  /// Slot `slot`'s buffer pool; pools are created lazily per slot.
  storage::BufferPool* pool(uint32_t slot = 0) { return pools_->pool(slot); }
  /// Ensures pools exist for slots [0, n); existing pools keep their state.
  void EnsureSlots(uint32_t n) { pools_->Resize(n); }
  uint32_t num_slots() const {
    return static_cast<uint32_t>(pools_->size());
  }
  /// Aggregate hit/miss/io statistics across every slot's pool.
  storage::BufferPoolStats PoolStatsRollup() const {
    return pools_->Rollup();
  }

  /// Resets slot `slot`'s pool to the requested cache state, clearing
  /// stats. Partially-decayed states are charged analytically (the
  /// executor interpolates between the two measured endpoints); a test
  /// that wants a physically partial pool uses BufferPool::Prewarm's
  /// fraction directly.
  void PrepareCache(CacheState state, uint32_t slot = 0);

  /// This table's page count over one slot pool's frame count: the
  /// size-ratio input of storage::CacheResidencyModel::OnRun. <= 1 means a
  /// run leaves the table fully resident. Because each pool is sized to
  /// 8 GB / scale, the ratio reduces to paper-scale table bytes over the
  /// paper's 8 GB shared_buffers — a scale-free quantity, comparable
  /// across workloads generated at different scales.
  double PoolSizeRatio() const;

  /// Scale-normalized footprint of this table in a *shared* slot pool of
  /// `shared_frames` frames: the logical page count whose sweep occupies
  /// the same proportion of that pool as the paper-scale table occupies of
  /// the paper's 8 GB pool (PoolSizeRatio() * shared_frames, at least 1).
  /// This is the page count an executor's physical residency pool scans
  /// per epoch, so tables generated at different scales share one pool in
  /// consistent units.
  uint64_t NormalizedPages(uint64_t shared_frames) const;

  /// Virtual size multiplier (paper tuples / generated tuples).
  double scale() const { return workload_.scale; }

 private:
  WorkloadInstance(ml::Workload workload) : workload_(std::move(workload)) {}

  ml::Workload workload_;
  ml::Dataset dataset_;
  std::unique_ptr<storage::Table> table_;
  std::unique_ptr<storage::BufferPoolGroup> pools_;
};

/// MADlib on single-threaded PostgreSQL: functionally trains through the
/// double-precision reference implementation while charging the CPU cost
/// model; I/O goes through the shared buffer pool.
class MadlibPostgres {
 public:
  explicit MadlibPostgres(CpuCostModel cost) : cost_(cost) {}
  /// `train_model=false` skips the functional reference training (the
  /// benchmark harness only needs the timing model).
  dana::Result<SystemResult> Run(WorkloadInstance* instance, CacheState cache,
                                 bool train_model = true) const;

 private:
  CpuCostModel cost_;
};

/// MADlib on Greenplum with N segments (paper default 8).
class MadlibGreenplum {
 public:
  MadlibGreenplum(CpuCostModel cost, uint32_t segments)
      : cost_(cost), segments_(segments) {}
  dana::Result<SystemResult> Run(WorkloadInstance* instance, CacheState cache,
                                 bool train_model = true) const;

 private:
  CpuCostModel cost_;
  uint32_t segments_;
};

/// DAnA+PostgreSQL: compiles the workload's UDF and runs the accelerator
/// simulator end to end.
class DanaSystem {
 public:
  struct Options {
    compiler::FpgaSpec fpga;
    compiler::HardwareGenerator::Options hw;
    accel::RunOptions run;
    /// When nonzero and the workload assumes more epochs than this, run
    /// only this many functional epochs and extrapolate the (count-linear)
    /// timing to the full epoch budget. The benchmark harness uses 2 (the
    /// first epoch captures cold-cache I/O, the second the steady state).
    uint32_t functional_epoch_cap = 0;
  };

  DanaSystem(CpuCostModel cost, Options options)
      : cost_(cost), options_(std::move(options)) {}
  /// Defaults to the Table 4 FPGA (DefaultFpga()).
  explicit DanaSystem(CpuCostModel cost);

  /// Compiles the UDF for this workload (cached per instance by callers).
  dana::Result<compiler::CompiledUdf> Compile(
      const WorkloadInstance& instance) const;

  /// Full run: compile + train.
  dana::Result<SystemResult> Run(WorkloadInstance* instance,
                                 CacheState cache) const;

  /// Train with a pre-compiled UDF (lets sweeps reuse compilation).
  /// `batch_queries > 1` runs a cross-query batched pass: one page-streaming
  /// sweep on `slot`'s buffer pool feeds that many identical co-trained
  /// models, and the result's shared/per-query fields attribute the time.
  /// The defaults reproduce the original single-query, slot-0 behaviour.
  dana::Result<SystemResult> RunCompiled(const compiler::CompiledUdf& udf,
                                         WorkloadInstance* instance,
                                         CacheState cache,
                                         uint32_t batch_queries = 1,
                                         uint32_t slot = 0) const;

  const Options& options() const { return options_; }
  Options* mutable_options() { return &options_; }

 private:
  CpuCostModel cost_;
  Options options_;
};

/// Out-of-RDBMS library (Liblinear / DimmWitted, Fig 15): pays export +
/// transform phases, then computes at `compute_speedup_vs_madlib` times
/// the MADlib compute rate using up to `threads` cores.
class ExternalLibrary {
 public:
  ExternalLibrary(CpuCostModel cost, std::string name,
                  double compute_speedup_vs_madlib)
      : cost_(cost),
        name_(std::move(name)),
        compute_speedup_(compute_speedup_vs_madlib) {}

  struct Phases {
    dana::SimTime export_time;
    dana::SimTime transform_time;
    dana::SimTime compute_time;
    dana::SimTime Total() const {
      return export_time + transform_time + compute_time;
    }
  };

  dana::Result<Phases> Run(WorkloadInstance* instance) const;

 private:
  CpuCostModel cost_;
  std::string name_;
  double compute_speedup_;
};

/// TABLA (Fig 16): a single-threaded accelerator without Striders — the
/// CPU extracts tuples and the access/execute stages do not interleave.
/// Returns compute-only time per epoch (at paper scale), matching the
/// figure's compute-time comparison.
class TablaSystem {
 public:
  TablaSystem(CpuCostModel cost, compiler::FpgaSpec fpga)
      : cost_(cost), fpga_(fpga) {}

  dana::Result<dana::SimTime> ComputeTimePerEpoch(
      WorkloadInstance* instance) const;

 private:
  CpuCostModel cost_;
  compiler::FpgaSpec fpga_;
};

/// The FPGA spec used throughout the evaluation (Table 4) with the host
/// link calibrated to the paper's observed streaming rates.
compiler::FpgaSpec DefaultFpga();

}  // namespace dana::runtime
