#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "dsl/algo.h"
#include "runtime/systems.h"
#include "storage/catalog.h"

namespace dana::runtime {

/// A parsed DAnA UDF invocation.
struct UdfQuery {
  std::string udf_name;    ///< e.g. "linearR"
  std::string table_name;  ///< training-data table
};

/// Parses the paper's query form:
///   SELECT * FROM dana.<udf>('<table>');
/// Whitespace-insensitive; single or double quotes accepted.
dana::Result<UdfQuery> ParseUdfQuery(const std::string& sql);

/// The DAnA session: owns the catalog, registered UDFs, and the execution
/// path from a SQL string to a trained model (paper Figure 2's flow).
class Session {
 public:
  explicit Session(DanaSystem::Options options);
  Session();

  storage::Catalog* catalog() { return &catalog_; }

  /// Registers a UDF (the analyst's DSL program). Compilation is deferred
  /// to the first query so the page layout and table shape are known; the
  /// compiled design is then stored in the catalog.
  dana::Status RegisterUdf(std::unique_ptr<dsl::Algo> algo);

  /// Executes "SELECT * FROM dana.<udf>('<table>')": parses, compiles on
  /// first use, trains on the table through a buffer pool, and returns the
  /// run report with the trained model.
  dana::Result<accel::RunReport> ExecuteQuery(const std::string& sql);

  /// The compiled design for a UDF after its first query (for inspection).
  dana::Result<const compiler::CompiledUdf*> GetCompiled(
      const std::string& udf_name) const;

  storage::BufferPool* buffer_pool() { return pool_.get(); }

 private:
  DanaSystem::Options options_;
  storage::Catalog catalog_;
  std::map<std::string, std::unique_ptr<dsl::Algo>> udfs_;
  std::map<std::string, std::unique_ptr<compiler::CompiledUdf>> compiled_;
  std::unique_ptr<storage::BufferPool> pool_;
};

}  // namespace dana::runtime
