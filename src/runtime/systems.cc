#include "runtime/systems.h"

#include <algorithm>
#include <cmath>

#include "ml/datasets.h"

namespace dana::runtime {

compiler::FpgaSpec DefaultFpga() {
  compiler::FpgaSpec fpga;
  // Effective host-link streaming rate from the buffer pool to the FPGA's
  // page buffers (PCIe Gen3 with DMA overheads, as observed end-to-end).
  fpga.axi_bytes_per_sec = 2e9;
  return fpga;
}

// ---------------------------------------------------------------------------
// WorkloadInstance
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WorkloadInstance>> WorkloadInstance::Create(
    const ml::Workload& workload, uint32_t page_size) {
  auto instance =
      std::unique_ptr<WorkloadInstance>(new WorkloadInstance(workload));
  instance->dataset_ = ml::GenerateDataset(workload.dataset_spec());

  storage::PageLayout layout;
  layout.page_size = page_size;
  DANA_ASSIGN_OR_RETURN(
      instance->table_,
      ml::BuildTable(workload.id, instance->dataset_, layout));

  // Pool and OS page cache scaled so their proportions against the table
  // match the paper's 8 GB shared_buffers and 32 GB RAM against Table 3.
  const double pool_bytes = 8.0 * (1ull << 30) / workload.scale;
  const double os_cache_bytes = 24.0 * (1ull << 30) / workload.scale;
  const uint64_t min_bytes = 8ull * page_size;
  storage::DiskModel disk;
  disk.seq_read_bw = kDiskSeqReadBytesPerSec;
  instance->pools_ = std::make_unique<storage::BufferPoolGroup>(
      std::max<uint64_t>(static_cast<uint64_t>(pool_bytes), min_bytes),
      page_size, disk,
      std::max<uint64_t>(static_cast<uint64_t>(os_cache_bytes), min_bytes));
  return instance;
}

void WorkloadInstance::PrepareCache(CacheState state, uint32_t slot) {
  storage::BufferPool* pool = pools_->pool(slot);
  pool->Clear();
  pool->ResetStats();
  if (state == CacheState::kWarm) {
    pool->Prewarm(*table_);
    pool->ResetStats();
  } else if (state == CacheState::kOsCached) {
    // The os-warm endpoint: pool cold, kernel page cache holding the
    // table (a prior query streamed it) — misses pay the memory-copy
    // rate, not the device.
    pool->MarkOsCached(*table_);
    pool->ResetStats();
  }
}

double WorkloadInstance::PoolSizeRatio() const {
  const double frames =
      static_cast<double>(pools_->pool(0)->num_frames());
  return static_cast<double>(table_->num_pages()) / std::max(frames, 1.0);
}

uint64_t WorkloadInstance::NormalizedPages(uint64_t shared_frames) const {
  const double pages =
      PoolSizeRatio() * static_cast<double>(shared_frames) + 0.5;
  return std::max<uint64_t>(1, static_cast<uint64_t>(pages));
}

namespace {

/// Charges one full scan of the table through the pool and returns the
/// accumulated I/O time (at generated scale).
Result<dana::SimTime> ScanEpochIo(WorkloadInstance* instance) {
  const dana::SimTime before = instance->pool()->stats().io_time;
  const storage::Table& table = instance->table();
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    DANA_RETURN_NOT_OK(instance->pool()->FetchPage(table, p).status());
  }
  return instance->pool()->stats().io_time - before;
}

/// Trains the double-precision reference and fills model/loss.
Status TrainReference(const WorkloadInstance& instance, SystemResult* out) {
  const ml::Workload& w = instance.workload();
  ml::ReferenceTrainer trainer(w.kind, w.params);
  DANA_ASSIGN_OR_RETURN(out->model, trainer.Train(instance.dataset(),
                                                  w.assumed_epochs));
  out->loss = trainer.Loss(instance.dataset(), out->model);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// MADlib + PostgreSQL
// ---------------------------------------------------------------------------

Result<SystemResult> MadlibPostgres::Run(WorkloadInstance* instance,
                                         CacheState cache,
                                         bool train_model) const {
  const ml::Workload& w = instance->workload();
  SystemResult r;
  r.system = "MADlib+PostgreSQL";
  r.epochs = w.assumed_epochs;

  instance->PrepareCache(cache);
  dana::SimTime io;
  for (uint32_t e = 0; e < w.assumed_epochs; ++e) {
    DANA_ASSIGN_OR_RETURN(dana::SimTime epoch_io, ScanEpochIo(instance));
    io += epoch_io;
  }
  r.io = io * instance->scale();

  const dana::SimTime per_tuple = cost_.MadlibTupleTime(w.kind, w.params);
  const double virtual_tuples = static_cast<double>(w.tuples) * w.scale;
  r.compute =
      per_tuple * virtual_tuples * static_cast<double>(w.assumed_epochs);
  r.overhead = cost_.pg_query_overhead;
  // Single-threaded PostgreSQL executes the scan and the UDF in one
  // process: I/O and compute serialize.
  r.total = r.overhead + r.io + r.compute;

  if (train_model) {
    DANA_RETURN_NOT_OK(TrainReference(*instance, &r));
  }
  return r;
}

// ---------------------------------------------------------------------------
// MADlib + Greenplum
// ---------------------------------------------------------------------------

Result<SystemResult> MadlibGreenplum::Run(WorkloadInstance* instance,
                                          CacheState cache,
                                          bool train_model) const {
  const ml::Workload& w = instance->workload();
  SystemResult r;
  r.system = "MADlib+Greenplum(" + std::to_string(segments_) + ")";
  r.epochs = w.assumed_epochs;

  instance->PrepareCache(cache);
  dana::SimTime io;
  for (uint32_t e = 0; e < w.assumed_epochs; ++e) {
    DANA_ASSIGN_OR_RETURN(dana::SimTime epoch_io, ScanEpochIo(instance));
    io += epoch_io;
  }
  // Segments issue I/O concurrently but share one device; modest overlap.
  r.io = io * instance->scale() / 1.5;

  const double gp_speedup =
      w.gp_speedup_8seg * GreenplumModel::SegmentCurve(segments_);
  const dana::SimTime per_tuple = cost_.MadlibTupleTime(w.kind, w.params);
  const double virtual_tuples = static_cast<double>(w.tuples) * w.scale;
  r.compute = per_tuple * virtual_tuples *
              static_cast<double>(w.assumed_epochs) / gp_speedup;
  r.overhead = cost_.gp_query_overhead;
  r.total = r.overhead + r.io + r.compute;

  if (train_model) {
    DANA_RETURN_NOT_OK(TrainReference(*instance, &r));
  }
  return r;
}

// ---------------------------------------------------------------------------
// DAnA + PostgreSQL
// ---------------------------------------------------------------------------

DanaSystem::DanaSystem(CpuCostModel cost) : cost_(cost) {
  options_.fpga = DefaultFpga();
}

Result<compiler::CompiledUdf> DanaSystem::Compile(
    const WorkloadInstance& instance) const {
  const ml::Workload& w = instance.workload();
  DANA_ASSIGN_OR_RETURN(auto algo, ml::BuildAlgo(w.kind, w.params));

  compiler::WorkloadShape shape;
  shape.num_tuples = instance.table().num_tuples();
  shape.num_pages = instance.table().num_pages();
  shape.tuples_per_page = instance.table().TuplesOnPage(0);
  shape.tuple_payload_bytes = w.TuplePayloadBytes();

  compiler::UdfCompiler udf_compiler(options_.fpga, options_.hw);
  return udf_compiler.Compile(*algo, instance.table().layout(), shape);
}

Result<SystemResult> DanaSystem::Run(WorkloadInstance* instance,
                                     CacheState cache) const {
  DANA_ASSIGN_OR_RETURN(auto udf, Compile(*instance));
  return RunCompiled(udf, instance, cache);
}

Result<SystemResult> DanaSystem::RunCompiled(const compiler::CompiledUdf& udf,
                                             WorkloadInstance* instance,
                                             CacheState cache,
                                             uint32_t batch_queries,
                                             uint32_t slot) const {
  const ml::Workload& w = instance->workload();
  SystemResult r;
  r.system = "DAnA+PostgreSQL";
  r.batch_queries = std::max<uint32_t>(batch_queries, 1);

  instance->PrepareCache(cache, slot);
  accel::RunOptions run = options_.run;
  if (run.initial_models.empty()) {
    run.initial_models = {ml::InitialModel(w.kind, w.params)};
  }
  run.batch_queries = r.batch_queries;
  const uint32_t budget =
      run.max_epochs_override ? run.max_epochs_override : w.dana_epochs;
  uint32_t run_epochs = budget;
  if (options_.functional_epoch_cap != 0 &&
      budget > options_.functional_epoch_cap) {
    run_epochs = std::max<uint32_t>(2, options_.functional_epoch_cap);
  }
  run.max_epochs_override = run_epochs;
  run.cpu_extract_per_tuple = cost_.cpu_extract_per_tuple;

  accel::Accelerator accelerator(udf);
  DANA_ASSIGN_OR_RETURN(
      accel::RunReport report,
      accelerator.Train(instance->table(), instance->pool(slot), run));

  dana::SimTime wall = report.total_time;
  dana::SimTime io = report.io_time;
  dana::SimTime fpga = report.fpga_time;
  dana::SimTime shared = report.shared_time;
  dana::SimTime per_query = report.per_query_time;
  r.epochs = report.epochs_run;
  if (report.epochs_run == run_epochs && run_epochs < budget &&
      !report.converged) {
    // Extrapolate: first epoch (cold I/O) + steady state for the rest.
    const accel::EpochBreakdown& first = report.epochs.front();
    const accel::EpochBreakdown& steady = report.epochs.back();
    const double rest = static_cast<double>(budget - 1);
    wall = first.wall + steady.wall * rest;
    io = first.io + steady.io * rest;
    shared = first.shared + steady.shared * rest;
    per_query = first.per_query + steady.per_query * rest;
    fpga = fpga * (static_cast<double>(budget) / report.epochs_run);
    r.epochs = budget;
  }
  // Epoch-resolved attribution for resumable execution: the measured first
  // epoch carries the cold transient, the last measured epoch is the steady
  // state every remaining epoch repeats (the same two points the
  // extrapolation above uses).
  if (!report.epochs.empty()) {
    const accel::EpochBreakdown& first = report.epochs.front();
    const accel::EpochBreakdown& steady = report.epochs.back();
    r.first_epoch = {first.wall * instance->scale(),
                     first.shared * instance->scale(),
                     first.per_query * instance->scale()};
    r.steady_epoch = {steady.wall * instance->scale(),
                      steady.shared * instance->scale(),
                      steady.per_query * instance->scale()};
    r.query_overhead = cost_.pg_query_overhead + cost_.dana_query_overhead;
    r.epoch_overhead = cost_.dana_epoch_overhead;
  }
  r.io = io * instance->scale();
  r.compute = fpga * instance->scale();
  // Fixed (unscaled) costs: query startup plus per-epoch orchestration.
  // A batched pass is one physical execution, so overheads are paid once
  // for the whole batch (and attributed to the shared side).
  r.overhead = cost_.pg_query_overhead + cost_.dana_query_overhead +
               cost_.dana_epoch_overhead * static_cast<double>(r.epochs);
  r.total = r.overhead + wall * instance->scale();
  r.shared_time = r.overhead + shared * instance->scale();
  r.per_query_time = per_query * instance->scale();

  r.model.assign(report.final_models[0].begin(),
                 report.final_models[0].end());
  ml::ReferenceTrainer trainer(w.kind, w.params);
  r.loss = trainer.Loss(instance->dataset(), r.model);
  return r;
}

// ---------------------------------------------------------------------------
// External libraries (Fig 15)
// ---------------------------------------------------------------------------

Result<ExternalLibrary::Phases> ExternalLibrary::Run(
    WorkloadInstance* instance) const {
  const ml::Workload& w = instance->workload();
  const double bytes =
      static_cast<double>(instance->table().SizeBytes()) * instance->scale();
  Phases p;
  p.export_time = dana::SimTime::Seconds(bytes / cost_.export_bytes_per_sec);
  p.transform_time =
      dana::SimTime::Seconds(bytes / cost_.transform_bytes_per_sec);
  const dana::SimTime madlib_compute =
      cost_.MadlibTupleTime(w.kind, w.params) *
      (static_cast<double>(w.tuples) * w.scale) *
      static_cast<double>(w.assumed_epochs);
  p.compute_time = madlib_compute / compute_speedup_;
  return p;
}

// ---------------------------------------------------------------------------
// TABLA (Fig 16)
// ---------------------------------------------------------------------------

Result<dana::SimTime> TablaSystem::ComputeTimePerEpoch(
    WorkloadInstance* instance) const {
  const ml::Workload& w = instance->workload();
  DANA_ASSIGN_OR_RETURN(auto algo, ml::BuildAlgo(w.kind, w.params));

  compiler::WorkloadShape shape;
  shape.num_tuples = instance->table().num_tuples();
  shape.num_pages = instance->table().num_pages();
  shape.tuples_per_page = instance->table().TuplesOnPage(0);
  shape.tuple_payload_bytes = w.TuplePayloadBytes();

  compiler::HardwareGenerator::Options hw;
  hw.force_threads = 1;  // TABLA offers single-threaded acceleration
  compiler::UdfCompiler udf_compiler(fpga_, hw);
  DANA_ASSIGN_OR_RETURN(auto udf,
                        udf_compiler.Compile(*algo, instance->table().layout(),
                                             shape));

  instance->PrepareCache(CacheState::kWarm);
  accel::RunOptions run;
  run.strider_bypass = true;  // no Striders: CPU feeds the engines
  run.max_epochs_override = std::min<uint32_t>(w.dana_epochs, 2);
  run.cpu_extract_per_tuple = cost_.cpu_extract_per_tuple;

  accel::Accelerator accelerator(udf);
  DANA_ASSIGN_OR_RETURN(
      accel::RunReport report,
      accelerator.Train(instance->table(), instance->pool(), run));
  return report.total_time * instance->scale() /
         std::max<uint32_t>(report.epochs_run, 1);
}

}  // namespace dana::runtime
