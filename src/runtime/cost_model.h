#pragma once

#include "common/sim_time.h"
#include "ml/algorithms.h"
#include "ml/workloads.h"

namespace dana::runtime {

/// Timing model of the evaluation machine's CPU side (paper §7: four-core
/// i7-6700 @ 3.4 GHz, 32 GB RAM, MADlib v1.12).
///
/// All constants are calibrated against Table 5's absolute runtimes and the
/// figure speedups; EXPERIMENTS.md records the calibration. The structure
/// (per-tuple overhead + per-flop cost differentiated by algorithm) follows
/// the paper's own explanations: linear regression "has high CPU
/// vectorization potential" (small DAnA gains on Blog Feedback) while
/// logistic's transcendentals and MADlib's array handling are slow.
struct CpuCostModel {
  double freq_hz = 3.4e9;

  /// Per-tuple UDF invocation + tuple deform overhead in MADlib/PostgreSQL.
  dana::SimTime madlib_tuple_overhead = dana::SimTime::Micros(1.5);

  /// Floating-point work MADlib performs per tuple per pass. MADlib's
  /// training methods differ fundamentally from the streaming SGD the
  /// accelerator runs: logregr uses IRLS (Newton) which accumulates a
  /// d x d information matrix per tuple, linregr accumulates the (upper-
  /// triangular) X^T X, while SVM (IGD) and LRMF touch O(d) / O(d*k).
  /// This asymmetry is what produces the paper's largest speedups on the
  /// wide logistic/linear workloads.
  static double MadlibFlopsPerTuple(ml::AlgoKind kind,
                                    const ml::AlgoParams& params) {
    const double d = params.dims;
    const double k = params.rank;
    switch (kind) {
      case ml::AlgoKind::kLogisticRegression:
        return d * d + 5 * d;  // IRLS: x x^T accumulation + gradient
      case ml::AlgoKind::kLinearRegression:
        return d * d / 2 + 3 * d;  // normal equations, symmetric X^T X
      case ml::AlgoKind::kSvm:
        return 7 * d;  // incremental gradient descent
      case ml::AlgoKind::kLowRankMF:
        return 7 * d * k;  // factor-row updates
    }
    return 5 * d;
  }

  /// MADlib cost per floating-point operation (implementation efficiency).
  double MadlibNsPerFlop(ml::AlgoKind kind) const {
    switch (kind) {
      case ml::AlgoKind::kLogisticRegression:
        return 2.0;   // dense rank-1 updates, some transcendental
      case ml::AlgoKind::kLinearRegression:
        return 0.62;  // vectorizes well
      case ml::AlgoKind::kSvm:
        return 3.7;   // per-element UDF array handling
      case ml::AlgoKind::kLowRankMF:
        return 3.7;
    }
    return 2.0;
  }

  /// MADlib+PostgreSQL compute time for one tuple of one pass.
  dana::SimTime MadlibTupleTime(ml::AlgoKind kind,
                                const ml::AlgoParams& params) const {
    return madlib_tuple_overhead +
           dana::SimTime::Nanos(MadlibFlopsPerTuple(kind, params) *
                                MadlibNsPerFlop(kind));
  }

  /// Query parse/plan/startup overheads.
  dana::SimTime pg_query_overhead = dana::SimTime::Millis(15);
  dana::SimTime gp_query_overhead = dana::SimTime::Millis(300);
  /// DAnA adds configuration-FSM programming and DMA setup on top of the
  /// PostgreSQL query machinery.
  dana::SimTime dana_query_overhead = dana::SimTime::Millis(10);
  /// Host-side per-epoch orchestration: restarting the page stream,
  /// reading back the model, and the convergence handshake.
  dana::SimTime dana_epoch_overhead = dana::SimTime::Millis(8);

  /// CPU-side tuple extraction+transform rate used by the strider-bypass
  /// ablation and the TABLA comparison.
  dana::SimTime cpu_extract_per_tuple = dana::SimTime::Micros(0.35);

  /// External-library (Fig 15) phase rates: exporting via COPY TO + text
  /// parsing, then reformatting into the library's layout.
  double export_bytes_per_sec = 25e6;
  double transform_bytes_per_sec = 700e6;
};

/// Coarse DAnA service-time estimate for scheduler admission decisions
/// (shortest-job-first ordering in src/sched/). The accelerator is
/// host-link bound for the Table 3 workloads, so one epoch approximately
/// streams the (paper-scale) table once over the AXI link; fixed query and
/// per-epoch orchestration overheads come from the CPU cost model. This is
/// an ordering heuristic only — reported runtimes always come from the
/// cycle-level simulator, never from this estimate.
inline dana::SimTime EstimateDanaRuntime(const ml::Workload& w,
                                         const CpuCostModel& cost,
                                         double axi_bytes_per_sec) {
  const double bytes_per_epoch = static_cast<double>(w.tuples) * w.scale *
                                 static_cast<double>(w.TuplePayloadBytes());
  const dana::SimTime stream =
      dana::SimTime::Seconds(bytes_per_epoch / axi_bytes_per_sec);
  const double epochs = static_cast<double>(w.dana_epochs);
  return cost.pg_query_overhead + cost.dana_query_overhead +
         (stream + cost.dana_epoch_overhead) * epochs;
}

/// Effective sequential heap-scan rate of the evaluation machine's SATA
/// SSD: the WorkloadInstance disk model charges real I/O at this rate, and
/// the a-priori cold estimate below prices it identically so queue
/// ordering stays consistent with what dispatches are charged.
inline constexpr double kDiskSeqReadBytesPerSec = 200e6;

/// Residency-aware variant of EstimateDanaRuntime for affinity SJF queue
/// ordering: the cold/warm cost interpolates the way a dispatch is charged
/// — the missing fraction of the table must be re-read from disk in the
/// first epoch, which only lengthens the run where that I/O exceeds the
/// overlapped host-link stream. Purely a-priori (no measured state), so
/// queue ordering is deterministic regardless of what the executor has
/// memoized.
inline dana::SimTime EstimateDanaRuntimeAtWarmth(
    const ml::Workload& w, const CpuCostModel& cost, double axi_bytes_per_sec,
    double warm_fraction,
    double disk_bytes_per_sec = kDiskSeqReadBytesPerSec) {
  const dana::SimTime base = EstimateDanaRuntime(w, cost, axi_bytes_per_sec);
  const double miss = warm_fraction < 0.0   ? 1.0
                      : warm_fraction > 1.0 ? 0.0
                                            : 1.0 - warm_fraction;
  const double bytes_per_epoch = static_cast<double>(w.tuples) * w.scale *
                                 static_cast<double>(w.TuplePayloadBytes());
  const dana::SimTime io =
      dana::SimTime::Seconds(bytes_per_epoch * miss / disk_bytes_per_sec);
  const dana::SimTime stream =
      dana::SimTime::Seconds(bytes_per_epoch / axi_bytes_per_sec);
  return io > stream ? base + (io - stream) : base;
}

/// Greenplum scaling model: the 8-segment speedup is taken per workload
/// from the paper (it folds in MADlib/Greenplum implementation behaviour);
/// other segment counts scale it by the paper's Figure 13 curve.
struct GreenplumModel {
  uint32_t segments = 8;

  /// Relative performance vs the 8-segment configuration (Figure 13
  /// geomeans: 4 segments 0.96x, 8 segments 1.00x, 16 segments 0.89x).
  static double SegmentCurve(uint32_t segments) {
    switch (segments) {
      case 4:
        return 0.96;
      case 8:
        return 1.0;
      case 16:
        return 0.89;
      default:
        // Mild diminishing-returns interpolation for other counts.
        return segments < 8 ? 0.9 + 0.0125 * segments
                            : 1.0 - 0.011 * (segments - 8);
    }
  }
};

}  // namespace dana::runtime
