#include "runtime/query.h"

#include <algorithm>
#include <cctype>

#include "compiler/serialization.h"

namespace dana::runtime {

namespace {
std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

bool ConsumeWord(const std::string& s, size_t* i, const std::string& word) {
  *i = SkipSpace(s, *i);
  if (Lower(s.substr(*i, word.size())) != word) return false;
  *i += word.size();
  return true;
}
}  // namespace

Result<UdfQuery> ParseUdfQuery(const std::string& sql) {
  size_t i = 0;
  if (!ConsumeWord(sql, &i, "select")) {
    return Status::InvalidArgument("expected SELECT");
  }
  if (!ConsumeWord(sql, &i, "*")) {
    return Status::InvalidArgument("expected '*' projection");
  }
  if (!ConsumeWord(sql, &i, "from")) {
    return Status::InvalidArgument("expected FROM");
  }
  if (!ConsumeWord(sql, &i, "dana.")) {
    return Status::InvalidArgument("expected dana.<udf>(...)");
  }
  i = SkipSpace(sql, i);
  UdfQuery q;
  while (i < sql.size() &&
         (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) {
    q.udf_name += sql[i++];
  }
  if (q.udf_name.empty()) {
    return Status::InvalidArgument("missing UDF name");
  }
  i = SkipSpace(sql, i);
  if (i >= sql.size() || sql[i] != '(') {
    return Status::InvalidArgument("expected '(' after UDF name");
  }
  i = SkipSpace(sql, i + 1);
  if (i >= sql.size() || (sql[i] != '\'' && sql[i] != '"')) {
    return Status::InvalidArgument("expected quoted table name");
  }
  const char quote = sql[i++];
  while (i < sql.size() && sql[i] != quote) q.table_name += sql[i++];
  if (i >= sql.size()) {
    return Status::InvalidArgument("unterminated table name");
  }
  i = SkipSpace(sql, i + 1);
  if (i >= sql.size() || sql[i] != ')') {
    return Status::InvalidArgument("expected ')'");
  }
  if (q.table_name.empty()) {
    return Status::InvalidArgument("empty table name");
  }
  return q;
}

Session::Session(DanaSystem::Options options) : options_(std::move(options)) {
  storage::DiskModel disk;
  pool_ = std::make_unique<storage::BufferPool>(256ull << 20, 32 * 1024,
                                                disk);
}

Session::Session() : Session([] {
  DanaSystem::Options o;
  o.fpga = DefaultFpga();
  return o;
}()) {}

Status Session::RegisterUdf(std::unique_ptr<dsl::Algo> algo) {
  DANA_RETURN_NOT_OK(algo->Validate());
  const std::string name = algo->name();
  if (udfs_.count(name)) {
    return Status::AlreadyExists("UDF '" + name + "' already registered");
  }
  udfs_[name] = std::move(algo);
  return Status::OK();
}

Result<accel::RunReport> Session::ExecuteQuery(const std::string& sql) {
  DANA_ASSIGN_OR_RETURN(UdfQuery q, ParseUdfQuery(sql));
  auto udf_it = udfs_.find(q.udf_name);
  if (udf_it == udfs_.end()) {
    return Status::NotFound("UDF '" + q.udf_name + "' not registered");
  }
  DANA_ASSIGN_OR_RETURN(storage::Table * table,
                        catalog_.GetTable(q.table_name));
  if (table->layout().page_size != pool_->page_size()) {
    return Status::InvalidArgument("table page size differs from pool");
  }

  // Compile on first use; the design + instruction streams land in the
  // catalog, as in Figure 2.
  auto compiled_it = compiled_.find(q.udf_name);
  if (compiled_it == compiled_.end()) {
    compiler::WorkloadShape shape;
    shape.num_tuples = table->num_tuples();
    shape.num_pages = table->num_pages();
    shape.tuples_per_page = table->TuplesOnPage(0);
    shape.tuple_payload_bytes = table->schema().RowBytes();

    compiler::UdfCompiler udf_compiler(options_.fpga, options_.hw);
    DANA_ASSIGN_OR_RETURN(
        auto compiled,
        udf_compiler.Compile(*udf_it->second, table->layout(), shape));
    auto owned = std::make_unique<compiler::CompiledUdf>(std::move(compiled));
    // The catalog entry is the loadable binary design (paper Figure 2);
    // another session can deserialize and run it without recompiling.
    catalog_.PutUdfMetadata(q.udf_name, compiler::SerializeUdf(*owned));
    compiled_it = compiled_.emplace(q.udf_name, std::move(owned)).first;
  }

  accel::Accelerator accelerator(*compiled_it->second);
  return accelerator.Train(*table, pool_.get(), options_.run);
}

Result<const compiler::CompiledUdf*> Session::GetCompiled(
    const std::string& udf_name) const {
  auto it = compiled_.find(udf_name);
  if (it == compiled_.end()) {
    return Status::NotFound("UDF '" + udf_name + "' not compiled yet");
  }
  return static_cast<const compiler::CompiledUdf*>(it->second.get());
}

}  // namespace dana::runtime
