#pragma once

#include "common/result.h"
#include "storage/page_layout.h"
#include "strider/isa.h"

namespace dana::strider {

/// Generates the Strider page-walk program for a page layout (paper §5.1.2).
///
/// The generated program mirrors the paper's assembly sketch:
///  1. page-header processing: read `lower` (end of the line-pointer
///     array) and `special` into registers;
///  2. first-tuple-pointer processing: unpack the first line pointer to
///     learn the (uniform) tuple length;
///  3. a bentr/bexit loop that walks every line pointer, unpacks the tuple
///     offset, and cln-emits the tuple payload with its header stripped.
///
/// Constants wider than 5-bit immediates (page-layout offsets, bit-field
/// specs) are placed in configuration registers / loaded with ins, exactly
/// the role the paper gives config data.
///
/// Config register map of the generated program:
///   %cr0 = page header size (first line-pointer address)
///   %cr1 = line-pointer size
///   %cr2 = tuple header size (cln skip)
///   %cr3 = extrBi spec for ItemId offset field  (bits 0..14)
///   %cr4 = extrBi spec for ItemId length field  (bits 17..31)
///   %cr5 = `lower` field address within the page header
dana::Result<StriderProgram> BuildPageWalkProgram(
    const storage::PageLayout& layout);

/// Static cycle estimate for one page holding `tuples` tuples of
/// `payload_bytes` each, matching StriderSim's timing model. Used by the
/// hardware generator's performance estimator (§6.1).
uint64_t EstimatePageWalkCycles(const storage::PageLayout& layout,
                                uint32_t tuples, uint32_t payload_bytes,
                                uint32_t emit_width_bytes = 8);

}  // namespace dana::strider
