#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dana::strider {

/// Strider opcodes (paper Table 2).
enum class Opcode : uint8_t {
  kReadB = 0,   ///< readB  dst, addr, nbytes : dst = LE int of page[addr..+n)
  kExtrB = 1,   ///< extrB  dst, src, spec    : extract bytes from a register
  kWriteB = 2,  ///< writeB addr, src, nbytes : write register to page buffer
  kExtrBi = 3,  ///< extrBi dst, src, spec    : extract a bit field
  kCln = 4,     ///< cln    addr, len, skip   : emit page[addr+skip..addr+len)
  kIns = 5,     ///< ins    dst, imm12        : load an immediate / insert bits
  kAd = 6,      ///< ad     dst, a, b         : dst = a + b
  kSub = 7,     ///< sub    dst, a, b         : dst = a - b
  kMul = 8,     ///< mul    dst, a, b         : dst = a * b
  kBentr = 9,   ///< bentr                    : loop start marker
  kBexit = 10,  ///< bexit  cond, a, b        : loop back, or exit on cond
};

/// Mnemonic for an opcode ("readB", ...).
std::string OpcodeName(Opcode op);

/// Parses a mnemonic; NotFound for unknown names.
dana::Result<Opcode> OpcodeFromName(const std::string& name);

/// Number of Strider registers. Registers 0..15 are configuration registers
/// (%cr0..%cr15, preset by the runtime's configuration FSM before the
/// program runs); 16..31 are temporaries (%t0..%t15).
inline constexpr uint32_t kNumRegisters = 32;
inline constexpr uint32_t kNumConfigRegisters = 16;

/// One 6-bit operand field: either a register reference (bit 5 set,
/// low 5 bits = register index) or a 5-bit immediate.
struct Operand {
  bool is_reg = false;
  uint8_t value = 0;  // register index 0..31, or immediate 0..31

  static Operand Reg(uint8_t index) { return {true, index}; }
  static Operand Imm(uint8_t value) { return {false, value}; }
  /// Renders as "%cr3", "%t7", or a decimal immediate.
  std::string ToString() const;
};

/// Bexit condition codes: exit the loop when the comparison holds,
/// otherwise jump back to the matching bentr.
enum class BexitCond : uint8_t {
  kEq = 0,   ///< exit when a == b
  kGe = 1,   ///< exit when a >= b (the paper's free-space check)
  kLt = 2,   ///< exit when a <  b
};

/// One decoded Strider instruction.
///
/// Encoding (22 bits): opcode in [21:18], fields f1/f2/f3 in [17:12],
/// [11:6], [5:0]. For kIns, f2 and f3 concatenate into a 12-bit immediate.
/// Field meaning is positional per opcode, as listed with each Opcode.
struct Instruction {
  Opcode op = Opcode::kReadB;
  Operand f1, f2, f3;

  /// 12-bit immediate view for kIns (f2:f3 raw bits).
  uint32_t Imm12() const;
  static Instruction MakeIns(uint8_t dst_reg, uint32_t imm12);

  /// Packs into the low 22 bits of a word.
  uint32_t Encode() const;
  /// Unpacks; Corruption if the opcode is invalid.
  static dana::Result<Instruction> Decode(uint32_t word);
  /// Assembly rendering, e.g. "readB %t0, 12, 2".
  std::string ToString() const;
};

/// Bit-field spec packing for extrBi: offset in bits [11:6], length in
/// bits [5:0] of a 12-bit value (register-held or kIns-loaded).
inline constexpr uint32_t PackBitSpec(uint32_t bit_offset, uint32_t len) {
  return (bit_offset << 6) | (len & 0x3Fu);
}
/// Byte-field spec packing for extrB: offset*8 and len*8 of PackBitSpec.
inline constexpr uint32_t PackByteSpec(uint32_t byte_offset, uint32_t len) {
  return PackBitSpec(byte_offset * 8, len * 8);
}

/// A complete Strider program: instruction stream plus the configuration
/// register image the runtime loads before execution (page-layout constants
/// too wide for 5-bit immediates travel here, matching the paper's
/// "configuration registers").
struct StriderProgram {
  std::vector<Instruction> code;
  std::array<uint32_t, kNumConfigRegisters> config = {};

  /// Size of the encoded instruction stream in bytes (22 bits per
  /// instruction, padded to 3 bytes as stored in the catalog blob).
  uint64_t EncodedBytes() const { return code.size() * 3; }

  /// Full assembly listing.
  std::string ToString() const;
};

}  // namespace dana::strider
