#include "strider/codegen.h"

namespace dana::strider {

namespace {
constexpr uint8_t kCr0 = 0, kCr1 = 1, kCr2 = 2, kCr3 = 3, kCr4 = 4, kCr5 = 5;
// Temporaries (register file indices 16+).
constexpr uint8_t kT0 = 16;  // lower (line-pointer array end)
constexpr uint8_t kT2 = 18;  // packed line pointer
constexpr uint8_t kT4 = 20;  // tuple offset
constexpr uint8_t kT5 = 21;  // tuple length (header + payload)
constexpr uint8_t kT6 = 22;  // line-pointer cursor

Instruction Make3(Opcode op, Operand a, Operand b, Operand c) {
  Instruction ins;
  ins.op = op;
  ins.f1 = a;
  ins.f2 = b;
  ins.f3 = c;
  return ins;
}
}  // namespace

Result<StriderProgram> BuildPageWalkProgram(
    const storage::PageLayout& layout) {
  if (layout.header_size < 16) {
    return Status::InvalidArgument("page header too small for this layout");
  }
  StriderProgram p;
  p.config[kCr0] = layout.header_size;
  p.config[kCr1] = layout.item_id_size;
  p.config[kCr2] = layout.tuple_header_size;
  p.config[kCr3] = PackBitSpec(0, 15);   // ItemId offset field
  p.config[kCr4] = PackBitSpec(17, 15);  // ItemId length field
  p.config[kCr5] = layout.lower_offset;

  using Op = Opcode;
  auto reg = [](uint8_t r) { return Operand::Reg(r); };
  auto imm = [](uint8_t v) { return Operand::Imm(v); };

  // Page-header processing.
  p.code.push_back(Make3(Op::kReadB, reg(kT0), reg(kCr5), imm(2)));  // lower
  // Line-pointer cursor starts at the first ItemId.
  p.code.push_back(Make3(Op::kAd, reg(kT6), reg(kCr0), imm(0)));

  // Tuple extraction loop: one iteration per line pointer.
  p.code.push_back(Make3(Op::kBentr, {}, {}, {}));
  //   Read and unpack the line pointer.
  p.code.push_back(Make3(Op::kReadB, reg(kT2), reg(kT6), imm(4)));
  p.code.push_back(Make3(Op::kExtrBi, reg(kT4), reg(kT2), reg(kCr3)));
  p.code.push_back(Make3(Op::kExtrBi, reg(kT5), reg(kT2), reg(kCr4)));
  //   Emit the payload (skip the tuple header).
  p.code.push_back(Make3(Op::kCln, reg(kT4), reg(kT5), reg(kCr2)));
  //   Advance the cursor; exit once it reaches `lower`.
  p.code.push_back(Make3(Op::kAd, reg(kT6), reg(kT6), reg(kCr1)));
  p.code.push_back(Make3(Op::kBexit,
                         imm(static_cast<uint8_t>(BexitCond::kGe)),
                         reg(kT6), reg(kT0)));
  return p;
}

uint64_t EstimatePageWalkCycles(const storage::PageLayout& layout,
                                uint32_t tuples, uint32_t payload_bytes,
                                uint32_t emit_width_bytes) {
  (void)layout;
  // Header processing + cursor init: 2 instructions. Loop: bentr once;
  // 6 instructions per iteration plus payload emission.
  const uint64_t per_tuple =
      6 + (payload_bytes + emit_width_bytes - 1) / emit_width_bytes;
  // An empty page still runs one guard iteration.
  const uint64_t iters = tuples == 0 ? 1 : tuples;
  return 3 + iters * per_tuple;
}

}  // namespace dana::strider
