#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "strider/isa.h"

namespace dana::strider {

/// Outcome of running a Strider program over one page buffer.
struct StriderRunResult {
  /// Extracted tuple payloads, in page order, headers stripped by cln.
  std::vector<std::vector<uint8_t>> tuples;
  /// Total cycles consumed (1 per instruction plus cln emission cycles).
  uint64_t cycles = 0;
  /// Dynamic instruction count.
  uint64_t instructions = 0;
};

/// Cycle-level interpreter for Strider programs.
///
/// One Strider owns one page buffer (paper Figure 5); Run() models a full
/// walk of that buffer: header parsing, tuple-pointer chasing, and payload
/// emission toward the execution engine. Timing: every instruction costs
/// one cycle; cln additionally costs ceil(len/emit_width) cycles to stream
/// the payload through the shifter (the BRAM read port emits emit_width
/// bytes per cycle).
class StriderSim {
 public:
  /// `emit_width_bytes`: bytes the Strider can push per cycle (BRAM read
  /// width after the shifter; 8 on the VU9P configuration).
  explicit StriderSim(uint32_t emit_width_bytes = 8)
      : emit_width_(emit_width_bytes) {}

  /// Executes `program` against `page` (one page image). Fails on invalid
  /// register/page accesses or when `max_cycles` is exceeded (runaway
  /// loop protection).
  dana::Result<StriderRunResult> Run(const StriderProgram& program,
                                     std::span<const uint8_t> page,
                                     uint64_t max_cycles = 1u << 24) const;

 private:
  uint32_t emit_width_;
};

}  // namespace dana::strider
