#include "strider/isa.h"

#include <sstream>

namespace dana::strider {

std::string OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kReadB:
      return "readB";
    case Opcode::kExtrB:
      return "extrB";
    case Opcode::kWriteB:
      return "writeB";
    case Opcode::kExtrBi:
      return "extrBi";
    case Opcode::kCln:
      return "cln";
    case Opcode::kIns:
      return "ins";
    case Opcode::kAd:
      return "ad";
    case Opcode::kSub:
      return "sub";
    case Opcode::kMul:
      return "mul";
    case Opcode::kBentr:
      return "bentr";
    case Opcode::kBexit:
      return "bexit";
  }
  return "?";
}

Result<Opcode> OpcodeFromName(const std::string& name) {
  for (int i = 0; i <= 10; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (OpcodeName(op) == name) return op;
  }
  return Status::NotFound("unknown Strider mnemonic '" + name + "'");
}

std::string Operand::ToString() const {
  if (!is_reg) return std::to_string(static_cast<int>(value));
  if (value < kNumConfigRegisters) {
    return "%cr" + std::to_string(static_cast<int>(value));
  }
  return "%t" + std::to_string(static_cast<int>(value - kNumConfigRegisters));
}

namespace {
uint32_t EncodeField(const Operand& o) {
  return (o.is_reg ? 0x20u : 0u) | (o.value & 0x1Fu);
}
Operand DecodeField(uint32_t bits) {
  Operand o;
  o.is_reg = (bits & 0x20u) != 0;
  o.value = static_cast<uint8_t>(bits & 0x1Fu);
  return o;
}
}  // namespace

uint32_t Instruction::Imm12() const {
  return (EncodeField(f2) << 6) | EncodeField(f3);
}

Instruction Instruction::MakeIns(uint8_t dst_reg, uint32_t imm12) {
  Instruction ins;
  ins.op = Opcode::kIns;
  ins.f1 = Operand::Reg(dst_reg);
  // Split the immediate across the raw bits of f2/f3.
  ins.f2.is_reg = ((imm12 >> 6) & 0x20u) != 0;
  ins.f2.value = static_cast<uint8_t>((imm12 >> 6) & 0x1Fu);
  ins.f3.is_reg = (imm12 & 0x20u) != 0;
  ins.f3.value = static_cast<uint8_t>(imm12 & 0x1Fu);
  return ins;
}

uint32_t Instruction::Encode() const {
  return (static_cast<uint32_t>(op) << 18) | (EncodeField(f1) << 12) |
         (EncodeField(f2) << 6) | EncodeField(f3);
}

Result<Instruction> Instruction::Decode(uint32_t word) {
  if (word >> 22) {
    return Status::Corruption("Strider word has bits above bit 21");
  }
  const uint32_t opcode = word >> 18;
  if (opcode > 10) {
    return Status::Corruption("invalid Strider opcode " +
                              std::to_string(opcode));
  }
  Instruction ins;
  ins.op = static_cast<Opcode>(opcode);
  ins.f1 = DecodeField((word >> 12) & 0x3Fu);
  ins.f2 = DecodeField((word >> 6) & 0x3Fu);
  ins.f3 = DecodeField(word & 0x3Fu);
  return ins;
}

std::string Instruction::ToString() const {
  std::ostringstream os;
  os << OpcodeName(op);
  switch (op) {
    case Opcode::kBentr:
      break;
    case Opcode::kIns:
      os << " " << f1.ToString() << ", " << Imm12();
      break;
    default:
      os << " " << f1.ToString() << ", " << f2.ToString() << ", "
         << f3.ToString();
      break;
  }
  return os.str();
}

std::string StriderProgram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < code.size(); ++i) {
    os << i << ": " << code[i].ToString() << "\n";
  }
  return os.str();
}

}  // namespace dana::strider
