#include "strider/simulator.h"

#include <string>

namespace dana::strider {

namespace {

/// Machine state: 32 registers plus a writable copy-on-write page view.
struct Machine {
  uint32_t regs[kNumRegisters] = {};
  std::vector<uint8_t> page;  // local copy: writeB is page-buffer-local
  std::vector<size_t> loop_stack;

  uint32_t Get(const Operand& o) const {
    return o.is_reg ? regs[o.value] : o.value;
  }
  Status Set(const Operand& o, uint32_t v) {
    if (!o.is_reg) {
      return Status::InvalidArgument("destination operand is an immediate");
    }
    regs[o.value] = v;
    return Status::OK();
  }
};

}  // namespace

Result<StriderRunResult> StriderSim::Run(const StriderProgram& program,
                                         std::span<const uint8_t> page,
                                         uint64_t max_cycles) const {
  Machine m;
  for (uint32_t i = 0; i < kNumConfigRegisters; ++i) {
    m.regs[i] = program.config[i];
  }
  m.page.assign(page.begin(), page.end());

  StriderRunResult result;
  size_t pc = 0;
  while (pc < program.code.size()) {
    if (result.cycles > max_cycles) {
      return Status::ResourceExhausted("Strider exceeded cycle budget (loop "
                                       "without a reachable bexit?)");
    }
    const Instruction& ins = program.code[pc];
    ++result.instructions;
    ++result.cycles;
    switch (ins.op) {
      case Opcode::kReadB: {
        const uint32_t addr = m.Get(ins.f2);
        const uint32_t n = m.Get(ins.f3);
        if (n > 4) {
          return Status::InvalidArgument("readB reads at most 4 bytes");
        }
        if (addr + n > m.page.size()) {
          return Status::OutOfRange("readB at " + std::to_string(addr) +
                                    "+" + std::to_string(n) +
                                    " past page end");
        }
        uint32_t v = 0;
        for (uint32_t i = 0; i < n; ++i) {
          v |= static_cast<uint32_t>(m.page[addr + i]) << (8 * i);
        }
        DANA_RETURN_NOT_OK(m.Set(ins.f1, v));
        break;
      }
      case Opcode::kWriteB: {
        const uint32_t addr = m.Get(ins.f1);
        const uint32_t v = m.Get(ins.f2);
        const uint32_t n = m.Get(ins.f3);
        if (n > 4) {
          return Status::InvalidArgument("writeB writes at most 4 bytes");
        }
        if (addr + n > m.page.size()) {
          return Status::OutOfRange("writeB past page end");
        }
        for (uint32_t i = 0; i < n; ++i) {
          m.page[addr + i] = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
        }
        break;
      }
      case Opcode::kExtrB: {
        const uint32_t src = m.Get(ins.f2);
        const uint32_t spec = m.Get(ins.f3);
        const uint32_t bit_off = spec >> 6;
        const uint32_t bit_len = spec & 0x3Fu;
        const uint64_t mask =
            bit_len >= 32 ? 0xFFFFFFFFull : ((1ull << bit_len) - 1);
        DANA_RETURN_NOT_OK(
            m.Set(ins.f1, static_cast<uint32_t>((src >> bit_off) & mask)));
        break;
      }
      case Opcode::kExtrBi: {
        const uint32_t src = m.Get(ins.f2);
        const uint32_t spec = m.Get(ins.f3);
        const uint32_t bit_off = spec >> 6;
        const uint32_t bit_len = spec & 0x3Fu;
        if (bit_off >= 32) {
          return Status::OutOfRange("extrBi bit offset >= 32");
        }
        const uint64_t mask =
            bit_len >= 32 ? 0xFFFFFFFFull : ((1ull << bit_len) - 1);
        DANA_RETURN_NOT_OK(
            m.Set(ins.f1, static_cast<uint32_t>((src >> bit_off) & mask)));
        break;
      }
      case Opcode::kCln: {
        const uint32_t addr = m.Get(ins.f1);
        const uint32_t len = m.Get(ins.f2);
        const uint32_t skip = m.Get(ins.f3);
        if (len > skip) {
          const uint32_t start = addr + skip;
          const uint32_t count = len - skip;
          if (start + count > m.page.size()) {
            return Status::OutOfRange("cln emits past page end");
          }
          result.tuples.emplace_back(m.page.begin() + start,
                                     m.page.begin() + start + count);
          result.cycles += (count + emit_width_ - 1) / emit_width_;
        }
        break;
      }
      case Opcode::kIns: {
        DANA_RETURN_NOT_OK(m.Set(ins.f1, ins.Imm12()));
        break;
      }
      case Opcode::kAd:
        DANA_RETURN_NOT_OK(m.Set(ins.f1, m.Get(ins.f2) + m.Get(ins.f3)));
        break;
      case Opcode::kSub:
        DANA_RETURN_NOT_OK(m.Set(ins.f1, m.Get(ins.f2) - m.Get(ins.f3)));
        break;
      case Opcode::kMul:
        DANA_RETURN_NOT_OK(m.Set(ins.f1, m.Get(ins.f2) * m.Get(ins.f3)));
        break;
      case Opcode::kBentr:
        m.loop_stack.push_back(pc + 1);
        break;
      case Opcode::kBexit: {
        if (m.loop_stack.empty()) {
          return Status::FailedPrecondition("bexit without bentr");
        }
        const uint32_t cond = m.Get(ins.f1);
        const uint32_t a = m.Get(ins.f2);
        const uint32_t b = m.Get(ins.f3);
        bool exit_loop = false;
        switch (static_cast<BexitCond>(cond)) {
          case BexitCond::kEq:
            exit_loop = (a == b);
            break;
          case BexitCond::kGe:
            exit_loop = (a >= b);
            break;
          case BexitCond::kLt:
            exit_loop = (a < b);
            break;
          default:
            return Status::InvalidArgument("bad bexit condition " +
                                           std::to_string(cond));
        }
        if (exit_loop) {
          m.loop_stack.pop_back();
        } else {
          pc = m.loop_stack.back();
          continue;
        }
        break;
      }
    }
    ++pc;
  }
  return result;
}

}  // namespace dana::strider
