#pragma once

#include <string>

#include "common/result.h"
#include "strider/isa.h"

namespace dana::strider {

/// Two-pass text assembler for the Strider ISA.
///
/// Accepted syntax (one instruction per line):
///
///   \\ comment                 ; also "//" and "#" comments
///   readB %t0, 12, 2
///   ins   %t3, 1103
///   bentr
///   bexit 1, %t6, %t0
///
/// Operands are registers (%cr0..%cr15, %t0..%t15) or decimal immediates.
/// Immediates other than kIns's must fit 5 bits; kIns takes 12 bits.
dana::Result<StriderProgram> Assemble(const std::string& text);

/// Disassembles a program back to text that Assemble() round-trips.
std::string Disassemble(const StriderProgram& program);

}  // namespace dana::strider
