#include "strider/assembler.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace dana::strider {

namespace {

void StripComment(std::string* line) {
  for (const char* marker : {"\\\\", "//", "#", ";"}) {
    const size_t pos = line->find(marker);
    if (pos != std::string::npos) line->resize(pos);
  }
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) {
        tokens.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

Result<Operand> ParseOperand(const std::string& tok) {
  if (tok.empty()) return Status::InvalidArgument("empty operand");
  if (tok[0] == '%') {
    if (tok.rfind("%cr", 0) == 0) {
      const int idx = std::atoi(tok.c_str() + 3);
      if (idx < 0 || idx >= static_cast<int>(kNumConfigRegisters)) {
        return Status::InvalidArgument("bad config register '" + tok + "'");
      }
      return Operand::Reg(static_cast<uint8_t>(idx));
    }
    if (tok.rfind("%t", 0) == 0) {
      const int idx = std::atoi(tok.c_str() + 2);
      if (idx < 0 || idx >= 16) {
        return Status::InvalidArgument("bad temp register '" + tok + "'");
      }
      return Operand::Reg(static_cast<uint8_t>(kNumConfigRegisters + idx));
    }
    return Status::InvalidArgument("bad register '" + tok + "'");
  }
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad immediate '" + tok + "'");
  }
  if (v < 0 || v > 31) {
    return Status::OutOfRange("immediate " + tok +
                              " does not fit 5 bits (use ins for 12-bit "
                              "immediates or a config register)");
  }
  return Operand::Imm(static_cast<uint8_t>(v));
}

}  // namespace

Result<StriderProgram> Assemble(const std::string& text) {
  StriderProgram program;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  int loop_depth = 0;
  while (std::getline(in, line)) {
    ++line_no;
    StripComment(&line);
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;

    auto opcode = OpcodeFromName(tokens[0]);
    if (!opcode.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + opcode.status().message());
    }
    Instruction ins;
    ins.op = *opcode;

    const size_t argc = tokens.size() - 1;
    switch (ins.op) {
      case Opcode::kBentr:
        if (argc != 0) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bentr takes no operands");
        }
        ++loop_depth;
        break;
      case Opcode::kIns: {
        if (argc != 2) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": ins takes 2 operands");
        }
        DANA_ASSIGN_OR_RETURN(Operand dst, ParseOperand(tokens[1]));
        if (!dst.is_reg) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": ins destination must be a "
                                         "register");
        }
        char* end = nullptr;
        const long imm = std::strtol(tokens[2].c_str(), &end, 10);
        if (end == tokens[2].c_str() || *end != '\0' || imm < 0 ||
            imm > 4095) {
          return Status::OutOfRange("line " + std::to_string(line_no) +
                                    ": ins immediate must be 0..4095");
        }
        ins = Instruction::MakeIns(dst.value, static_cast<uint32_t>(imm));
        break;
      }
      case Opcode::kBexit: {
        if (argc != 3) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bexit takes 3 operands");
        }
        if (loop_depth == 0) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bexit without matching bentr");
        }
        --loop_depth;
        DANA_ASSIGN_OR_RETURN(ins.f1, ParseOperand(tokens[1]));
        DANA_ASSIGN_OR_RETURN(ins.f2, ParseOperand(tokens[2]));
        DANA_ASSIGN_OR_RETURN(ins.f3, ParseOperand(tokens[3]));
        break;
      }
      default: {
        if (argc != 3) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": " + tokens[0] +
              " takes 3 operands");
        }
        DANA_ASSIGN_OR_RETURN(ins.f1, ParseOperand(tokens[1]));
        DANA_ASSIGN_OR_RETURN(ins.f2, ParseOperand(tokens[2]));
        DANA_ASSIGN_OR_RETURN(ins.f3, ParseOperand(tokens[3]));
        break;
      }
    }
    program.code.push_back(ins);
  }
  if (loop_depth != 0) {
    return Status::InvalidArgument("unterminated bentr loop");
  }
  return program;
}

std::string Disassemble(const StriderProgram& program) {
  std::string out;
  for (const auto& ins : program.code) {
    out += ins.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace dana::strider
