#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dana {

/// Dense string interner: maps each distinct name to a small integer id
/// (assigned in first-intern order, starting at 0) so hot paths can key
/// flat arrays and hash integers instead of hashing and comparing strings
/// per event. Ids are stable for the interner's lifetime; `Name` returns
/// the canonical spelling. Used by the scheduler (workload ids), the
/// buffer pool (table names), and the residency ledger.
class Interner {
 public:
  static constexpr uint32_t kInvalidId = UINT32_MAX;

  /// Id of `name`, interning it on first sight.
  uint32_t Intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    // Map keys own their characters (names_ may reallocate on growth).
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Id of `name` if already interned, else kInvalidId. Never allocates.
  uint32_t Find(std::string_view name) const {
    auto it = ids_.find(name);
    return it != ids_.end() ? it->second : kInvalidId;
  }

  /// Canonical spelling of `id` (must be a value previously returned).
  const std::string& Name(uint32_t id) const { return names_[id]; }

  /// Number of distinct names interned (ids are 0..size()-1).
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  void clear() {
    ids_.clear();
    names_.clear();
  }

 private:
  /// Heterogeneous hashing: lookups take string_view without constructing
  /// a std::string.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, uint32_t, Hash, Eq> ids_;
  std::vector<std::string> names_;
};

}  // namespace dana
