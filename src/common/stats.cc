#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dana {

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(std::max(v, 1e-300));
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Percentile(std::vector<double> values, double p) {
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return std::isnan(v); }),
               values.end());
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  if (p == 0.0) return values.front();
  if (p == 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace dana
