#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace dana {

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(std::max(v, 1e-300));
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

}  // namespace dana
