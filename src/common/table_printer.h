#pragma once

#include <string>
#include <vector>

namespace dana {

/// Fixed-width ASCII table writer used by the benchmark harness to print
/// paper-style result tables (one per reproduced table/figure).
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Renders the table.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  /// Formats a double with `prec` digits after the point.
  static std::string Fmt(double v, int prec = 2);

  /// Formats a speedup as "12.3x".
  static std::string Speedup(double v, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace dana
