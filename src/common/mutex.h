#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dana {

/// Annotated std::mutex wrapper: the capability type clang's
/// `-Wthread-safety` analysis tracks. libstdc++'s std::mutex carries no
/// capability attributes, so data "guarded" by a bare std::mutex is
/// invisible to the checker — every mutex this project owns goes through
/// this wrapper instead. Zero overhead: all members inline to the
/// std::mutex calls.
///
/// The lowercase lock()/unlock() aliases make Mutex a BasicLockable so
/// CondVar (a std::condition_variable_any underneath) can wait on it
/// directly; project code should use MutexLock, not manual Lock/Unlock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling for std::condition_variable_any.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a dana::Mutex — the annotated std::lock_guard. The
/// SCOPED_CAPABILITY attribute tells the analysis the capability is held
/// for exactly this object's lifetime (early returns included).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with dana::Mutex. Wait() releases and
/// reacquires the caller-held mutex (std::condition_variable_any over the
/// BasicLockable Mutex), so the REQUIRES contract matches what actually
/// happens at the wait boundary. Spurious wakeups are possible, exactly as
/// with std::condition_variable: callers loop on their predicate —
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// The explicit while-loop (rather than a predicate lambda) keeps the
/// guarded predicate reads inside the analyzed, REQUIRES-checked scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); `mu` must be held and is
  /// released for the duration of the block.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dana
