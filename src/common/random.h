#pragma once

#include <cmath>
#include <cstdint>

namespace dana {

/// Deterministic xorshift128+ pseudo-random generator.
///
/// Used everywhere in the repo instead of std::mt19937 so dataset generation
/// and the experiment harness are reproducible bit-for-bit across platforms
/// and standard-library implementations.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream everywhere.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the two lanes.
    s_[0] = SplitMix(seed);
    s_[1] = SplitMix(s_[0]);
  }

  /// Next raw 64-bit value.
  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) { return n == 0 ? 0 : Next64() % n; }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t s_[2];
};

}  // namespace dana
