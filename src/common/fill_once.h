#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace dana {

/// Concurrency-safe memo table with fill-once/wait semantics, the pattern
/// ZNS caches use for their zone-map results: a lookup either returns the
/// ready entry immediately or — when the key is cold — elects exactly one
/// caller to run the filler while every concurrent requester of the same
/// key blocks on a wait handle until the fill lands. N slot workers asking
/// for the same cold artifact therefore never duplicate the work.
///
/// Failure semantics: a failed fill is NOT cached. The waiters that joined
/// the in-flight fill receive its error status; the entry is then erased,
/// so the next requester retries the filler from scratch.
///
/// Pointer stability: values live behind per-entry allocations that are
/// never moved and — once ready — never erased, so returned pointers stay
/// valid for the map's lifetime (until Clear(), which must not race with
/// readers; it is meant for single-threaded points between runs).
template <typename K, typename V>
class FillOnceMap {
 public:
  using Filler = std::function<Result<V>()>;

  /// Returns the ready value for `key`, filling it first if needed. When
  /// this call ran the filler itself — successfully or not — `*filled_here`
  /// (if non-null) is set to true; ready hits and waits set it to false.
  Result<const V*> GetOrFill(const K& key, const Filler& filler,
                             bool* filled_here = nullptr) {
    if (filled_here != nullptr) *filled_here = false;
    std::shared_ptr<Entry> entry;
    {
      MutexLock lock(mu_);
      for (;;) {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
          entry = std::make_shared<Entry>();
          entries_.emplace(key, entry);
          break;  // this caller fills
        }
        entry = it->second;
        if (entry->value.has_value()) return &*entry->value;
        // A fill is in flight: block on the shared wait handle. The fill
        // outcome for THIS generation is delivered to us even if the map
        // entry has already been erased (failure) by the filler.
        while (!entry->settled) cv_.Wait(mu_);
        if (entry->value.has_value()) return &*entry->value;
        return entry->error;
      }
    }
    // Run the filler outside the map lock so unrelated keys stay serviceable.
    if (filled_here != nullptr) *filled_here = true;
    Result<V> result = filler();
    {
      MutexLock lock(mu_);
      entry->settled = true;
      if (result.ok()) {
        entry->value.emplace(std::move(result).ValueOrDie());
      } else {
        entry->error = result.status();
        entries_.erase(key);  // next requester retries
      }
    }
    cv_.NotifyAll();
    if (!result.ok()) return result.status();
    return &*entry->value;
  }

  /// The ready value for `key`, or null when absent or still filling.
  const V* Find(const K& key) const {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second->value.has_value()) return nullptr;
    return &*it->second->value;
  }

  /// Number of ready entries (in-flight fills excluded).
  size_t size() const {
    MutexLock lock(mu_);
    size_t n = 0;
    for (const auto& [k, e] : entries_) {
      if (e->value.has_value()) ++n;
    }
    return n;
  }

  /// Drops every entry. Must not race with concurrent GetOrFill/Find or
  /// with readers of previously returned pointers.
  void Clear() {
    MutexLock lock(mu_);
    entries_.clear();
  }

 private:
  /// Per-key fill state. The fields are written only by the elected filler
  /// under mu_ and read by waiters under mu_ (the settled handshake); once
  /// `value` is engaged it is immutable, which is what lets GetOrFill hand
  /// out stable pointers after the lock is dropped.
  struct Entry {
    std::optional<V> value;        // set iff the fill succeeded
    Status error = Status::OK();   // set iff the fill failed
    bool settled = false;          // fill finished (either way)
  };

  mutable Mutex mu_;
  CondVar cv_;
  std::map<K, std::shared_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

}  // namespace dana
