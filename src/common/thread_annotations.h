#pragma once

/// Clang thread-safety-analysis attribute macros (the `-Wthread-safety`
/// static checker): annotating which mutex guards which data turns the
/// repo's two dynamic determinism contracts — byte-identical snapshots and
/// simulator-oracle parity in the threaded runtime — into build-time
/// guarantees about lock discipline. Under any compiler (or clang build)
/// without the attributes, every macro expands to nothing, so the
/// annotations cost nothing outside the `static-analysis` CI leg.
///
/// Apply them through `common/mutex.h`'s annotated wrappers: libstdc++'s
/// std::mutex/std::lock_guard carry no capability attributes, so guarding
/// data with a bare std::mutex tells the analysis nothing.

#if defined(__clang__) && defined(__has_attribute)
#define DANA_THREAD_ANNOTATION_IMPL(x) __has_attribute(x)
#else
#define DANA_THREAD_ANNOTATION_IMPL(x) 0
#endif

#if DANA_THREAD_ANNOTATION_IMPL(guarded_by)
#define DANA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DANA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Class attribute: the type is a lockable capability ("mutex").
#define CAPABILITY(x) DANA_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII type that acquires a capability in its
/// constructor and releases it in its destructor.
#define SCOPED_CAPABILITY DANA_THREAD_ANNOTATION(scoped_lockable)

/// Data member attribute: reads and writes require holding `x`.
#define GUARDED_BY(x) DANA_THREAD_ANNOTATION(guarded_by(x))

/// Data member attribute: the *pointee* is guarded by `x`.
#define PT_GUARDED_BY(x) DANA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: the caller must hold the listed capabilities.
#define REQUIRES(...) \
  DANA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the listed capabilities
/// (guards against self-deadlock on a non-recursive mutex).
#define EXCLUDES(...) DANA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: the function acquires the capability (held on
/// return, not on entry).
#define ACQUIRE(...) \
  DANA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: the function releases the capability.
#define RELEASE(...) \
  DANA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the function returns
/// `b` (try_lock shape).
#define TRY_ACQUIRE(b, ...) \
  DANA_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Declaration-ordering attributes for documenting lock hierarchies.
#define ACQUIRED_BEFORE(...) \
  DANA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DANA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function attribute: opt this function out of the analysis. Reserved for
/// documented single-threaded contracts the checker cannot see (e.g.
/// post-run accessors handed to tests between runs).
#define NO_THREAD_SAFETY_ANALYSIS \
  DANA_THREAD_ANNOTATION(no_thread_safety_analysis)
