#include "common/status.h"

namespace dana {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace dana
