#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace dana {

/// Error category for a failed operation.
///
/// DAnA library code does not throw exceptions on fallible paths; functions
/// that can fail return a Status (or a Result<T>, see result.h). This mirrors
/// the Arrow / RocksDB idiom used across production database code.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIOError = 9,
  kCorruption = 10,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy when OK
/// (no allocation) and carry a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  /// @name Error factories
  /// One factory per error category; each takes a human-readable message.
  ///@{
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  ///@}

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// True iff the code matches.
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

}  // namespace dana
