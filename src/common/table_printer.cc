#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace dana {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&]() {
    std::string s = "+";
    for (size_t w : widths) {
      s.append(w + 2, '-');
      s += "+";
    }
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      s += " " + v;
      s.append(widths[c] - v.size() + 1, ' ');
      s += "|";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TablePrinter::Speedup(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", prec, v);
  return buf;
}

}  // namespace dana
