#include "common/sim_time.h"

#include <cstdio>

namespace dana {

std::string SimTime::ToString() const {
  char buf[64];
  const double ns = ns_;
  if (ns >= 60e9) {
    const double s = ns / 1e9;
    const int h = static_cast<int>(s / 3600);
    const int m = static_cast<int>((s - h * 3600) / 60);
    const double sec = s - h * 3600 - m * 60;
    if (h > 0) {
      std::snprintf(buf, sizeof(buf), "%dh %dm %.0fs", h, m, sec);
    } else {
      std::snprintf(buf, sizeof(buf), "%dm %.1fs", m, sec);
    }
  } else if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", ns);
  }
  return buf;
}

}  // namespace dana
