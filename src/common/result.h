#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dana {

/// Either a value of type T or an error Status.
///
/// Result is the value-returning companion of Status. Construct it from a T
/// (success) or from a non-OK Status (failure). Accessing the value of a
/// failed Result aborts, so callers must check ok() first or use the
/// DANA_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  /// True iff this result holds a value.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; OK() if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// The contained value. Aborts if !ok().
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(rep_);
  }

  /// Moves the contained value out. Aborts if !ok().
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(rep_));
  }

  /// The contained value, or `fallback` on error.
  T ValueOr(T fallback) const& {
    if (ok()) return std::get<T>(rep_);
    return fallback;
  }

  /// Accesses the value like a pointer. Aborts if !ok().
  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const {
    CheckOk();
    return &std::get<T>(rep_);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace dana

/// Propagates a non-OK Status out of the current function.
#define DANA_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::dana::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define DANA_CONCAT_IMPL(x, y) x##y
#define DANA_CONCAT(x, y) DANA_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define DANA_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto DANA_CONCAT(_result_, __LINE__) = (rexpr);                  \
  if (!DANA_CONCAT(_result_, __LINE__).ok())                       \
    return DANA_CONCAT(_result_, __LINE__).status();               \
  lhs = std::move(DANA_CONCAT(_result_, __LINE__)).ValueOrDie()
