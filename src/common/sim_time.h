#pragma once

#include <cstdint>
#include <string>

namespace dana {

/// Simulated wall-clock time, in nanoseconds.
///
/// Every component of the reproduction (disk model, CPU cost model,
/// cycle-level accelerator simulator) reports durations as SimTime so that
/// end-to-end runtimes of heterogeneous systems are directly comparable,
/// exactly as the paper compares measured wall clocks.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// @name Factories
  ///@{
  static constexpr SimTime Nanos(double ns) { return SimTime(ns); }
  static constexpr SimTime Micros(double us) { return SimTime(us * 1e3); }
  static constexpr SimTime Millis(double ms) { return SimTime(ms * 1e6); }
  static constexpr SimTime Seconds(double s) { return SimTime(s * 1e9); }
  /// Duration of `cycles` clock cycles at `freq_hz`.
  static constexpr SimTime Cycles(uint64_t cycles, double freq_hz) {
    return SimTime(static_cast<double>(cycles) * 1e9 / freq_hz);
  }
  static constexpr SimTime Zero() { return SimTime(0); }
  ///@}

  constexpr double nanos() const { return ns_; }
  constexpr double micros() const { return ns_ / 1e3; }
  constexpr double millis() const { return ns_ / 1e6; }
  constexpr double seconds() const { return ns_ / 1e9; }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  constexpr SimTime operator*(double k) const { return SimTime(ns_ * k); }
  constexpr SimTime operator/(double k) const { return SimTime(ns_ / k); }
  constexpr double operator/(SimTime o) const { return ns_ / o.ns_; }
  SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  /// Larger / smaller of two durations; used when overlapping phases
  /// (e.g. I/O interleaved with compute takes max(io, compute)).
  static constexpr SimTime Max(SimTime a, SimTime b) { return a < b ? b : a; }
  static constexpr SimTime Min(SimTime a, SimTime b) { return a < b ? a : b; }

  /// Human-readable rendering with an adaptive unit ("1.34 s", "820 us", ...).
  std::string ToString() const;

 private:
  explicit constexpr SimTime(double ns) : ns_(ns) {}
  double ns_ = 0;
};

}  // namespace dana
