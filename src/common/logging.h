#pragma once

#include <sstream>
#include <string>

namespace dana {

/// Severity levels for the lightweight logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Current process-wide minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dana

#define DANA_LOG(level)                                                  \
  ::dana::internal::LogMessage(::dana::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal invariant check: aborts with a message when `cond` is false.
/// Used for programming errors, never for data-dependent failures (those
/// return Status).
#define DANA_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::dana::internal::LogMessage(::dana::LogLevel::kError, __FILE__, __LINE__) \
      << "Check failed: " #cond " "
