#pragma once

#include <cstddef>
#include <vector>

namespace dana {

/// Geometric mean of `values`; the paper reports geomean speedups in every
/// evaluation figure. Returns 0 for an empty input; non-positive entries are
/// clamped to a tiny positive value to keep the result defined.
double GeoMean(const std::vector<double>& values);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& values);

/// Minimum; 0 for empty input.
double Min(const std::vector<double>& values);

}  // namespace dana
