#pragma once

#include <cstddef>
#include <vector>

namespace dana {

/// Geometric mean of `values`; the paper reports geomean speedups in every
/// evaluation figure. Returns 0 for an empty input; non-positive entries are
/// clamped to a tiny positive value to keep the result defined.
double GeoMean(const std::vector<double>& values);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& values);

/// Minimum; 0 for empty input.
double Min(const std::vector<double>& values);

/// p-th percentile (p in [0, 100]) with linear interpolation between the
/// two closest ranks (numpy's default): the scheduler's latency report uses
/// this for p50/p95/p99. NaN-safe edge cases: an empty input (or one that
/// is all-NaN after NaN entries are dropped) returns quiet_NaN — "no data"
/// is not the same as "zero latency"; a NaN p returns NaN; p is otherwise
/// clamped to [0, 100], with p=0 returning the exact minimum and p=100 the
/// exact maximum (no interpolation round-off); a single element is returned
/// unchanged for every p. Takes a copy because the computation sorts.
double Percentile(std::vector<double> values, double p);

}  // namespace dana
