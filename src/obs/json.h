#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dana::obs {

/// Minimal JSON document model for the observability layer: metric
/// snapshots, Chrome trace_event files, and the BENCH_*.json benchmark
/// telemetry all serialize through this one type, and `bench_compare`
/// parses committed baselines back with it.
///
/// Design constraints (why not a third-party library):
///  - determinism: object members keep insertion order and `Dump` formats
///    numbers via one fixed code path, so identical runs produce
///    byte-identical files (the CI regression gate diffs them);
///  - no new dependencies: the container only bakes in the toolchain.
class Json {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}      // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}             // NOLINT
  Json(int64_t v) : Json(static_cast<double>(v)) {}         // NOLINT
  Json(uint64_t v) : Json(static_cast<double>(v)) {}        // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// @name Array access
  ///@{
  size_t size() const {
    return type_ == Type::kArray ? array_.size() : members_.size();
  }
  const Json& at(size_t i) const { return array_.at(i); }
  Json& Append(Json v) {
    array_.push_back(std::move(v));
    return array_.back();
  }
  const std::vector<Json>& items() const { return array_; }
  ///@}

  /// @name Object access (insertion-ordered)
  ///@{
  /// Sets `key` (replacing an existing member in place, preserving its
  /// position) and returns the stored value.
  Json& Set(const std::string& key, Json v);
  /// Member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  ///@}

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form. Number
  /// formatting is deterministic: integral values in the exactly-
  /// representable range print without a decimal point, everything else
  /// uses shortest-round-trip via %.17g trimmed to the shortest string
  /// that re-parses to the same double.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document (UTF-8 passthrough; \uXXXX escapes are decoded
  /// for the BMP). Returns InvalidArgument with a byte offset on error.
  static dana::Result<Json> Parse(const std::string& text);

  /// Writes `Dump(indent)` plus a trailing newline to `path`.
  dana::Status WriteFile(const std::string& path, int indent = 2) const;
  /// Reads and parses `path`.
  static dana::Result<Json> ReadFile(const std::string& path);

  /// Formats one double exactly as Dump does — exposed so non-JSON output
  /// (tables) can render the same digits the snapshot file carries.
  static std::string FormatNumber(double v);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace dana::obs
