#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace dana::obs {

/// Which way a benchmark metric should move to count as an improvement —
/// the direction travels *with* the metric in BENCH_*.json, so
/// `bench_compare` needs no out-of-band configuration to know that p95
/// regressing up is bad but throughput regressing down is.
enum class Direction : uint8_t {
  kLowerIsBetter,   ///< latencies, overheads, wall times
  kHigherIsBetter,  ///< throughputs, hit rates, speedups
  kInfo,            ///< context only (counts, config echoes) — never gated
};

const char* DirectionName(Direction d);

/// Serializer for structured benchmark telemetry: every `bench_*` target
/// builds one StatsWriter per area and emits `BENCH_<area>.json` with its
/// headline numbers, so speedups and regressions are diffable across PRs
/// instead of buried in printed tables. Schema:
///
///   {
///     "bench": "<area>",
///     "schema_version": 1,
///     "config": { ... },                      // knobs the numbers depend on
///     "metrics": {
///       "<name>": {"value": N, "better": "lower"|"higher"|"info"},
///       ...
///     }
///   }
///
/// A metric entry may additionally carry `"tolerance": T` (see the
/// tolerance-taking Add overload); absent for metrics gated at the
/// comparison's global tolerance.
///
/// Metric insertion order is preserved in the file (readable diffs); the
/// CI gate (`tools/bench_compare`) compares by name, so order never
/// affects the comparison.
class StatsWriter {
 public:
  explicit StatsWriter(std::string area) : area_(std::move(area)) {}

  const std::string& area() const { return area_; }

  /// Records a configuration knob the metrics depend on. bench_compare
  /// refuses to compare files whose configs differ — a baseline from one
  /// workload shape says nothing about another.
  void SetConfig(const std::string& key, Json value);

  /// Records one metric. Re-adding a name overwrites (last value wins).
  void Add(const std::string& name, double value, Direction direction);

  /// Records one metric with its own regression tolerance (relative, e.g.
  /// 0.5 = halving a "higher" metric trips the gate). The tolerance is
  /// serialized with the metric and overrides `bench_compare`'s global
  /// --tolerance for this metric only — the vehicle for wall-clock
  /// scoreboards (sim_qps) that need more headroom than the simulated
  /// metrics they share a file with.
  void Add(const std::string& name, double value, Direction direction,
           double tolerance);

  size_t metric_count() const { return metrics_.members().size(); }

  Json ToJson() const;

  /// Writes `BENCH_<area>.json` into `dir` (default: the
  /// DANA_BENCH_JSON_DIR environment variable, else the current
  /// directory). Returns the path written on success.
  dana::Result<std::string> Write(const std::string& dir = "") const;

  /// "<dir>/BENCH_<area>.json" with the same dir defaulting as Write.
  static std::string DefaultPath(const std::string& area,
                                 const std::string& dir = "");

 private:
  std::string area_;
  Json config_ = Json::Object();
  Json metrics_ = Json::Object();
};

}  // namespace dana::obs
