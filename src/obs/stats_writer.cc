#include "obs/stats_writer.h"

#include <cstdlib>

namespace dana::obs {

const char* DirectionName(Direction d) {
  switch (d) {
    case Direction::kLowerIsBetter:
      return "lower";
    case Direction::kHigherIsBetter:
      return "higher";
    case Direction::kInfo:
      return "info";
  }
  return "?";
}

void StatsWriter::SetConfig(const std::string& key, Json value) {
  config_.Set(key, std::move(value));
}

void StatsWriter::Add(const std::string& name, double value,
                      Direction direction) {
  Json entry = Json::Object();
  entry.Set("value", value);
  entry.Set("better", DirectionName(direction));
  metrics_.Set(name, std::move(entry));
}

void StatsWriter::Add(const std::string& name, double value,
                      Direction direction, double tolerance) {
  Json entry = Json::Object();
  entry.Set("value", value);
  entry.Set("better", DirectionName(direction));
  entry.Set("tolerance", tolerance);
  metrics_.Set(name, std::move(entry));
}

Json StatsWriter::ToJson() const {
  Json root = Json::Object();
  root.Set("bench", area_);
  root.Set("schema_version", 1);
  root.Set("config", config_);
  root.Set("metrics", metrics_);
  return root;
}

std::string StatsWriter::DefaultPath(const std::string& area,
                                     const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* env = std::getenv("DANA_BENCH_JSON_DIR");
    base = env != nullptr ? env : ".";
  }
  if (!base.empty() && base.back() != '/') base += '/';
  return base + "BENCH_" + area + ".json";
}

dana::Result<std::string> StatsWriter::Write(const std::string& dir) const {
  const std::string path = DefaultPath(area_, dir);
  DANA_RETURN_NOT_OK(ToJson().WriteFile(path));
  return path;
}

}  // namespace dana::obs
