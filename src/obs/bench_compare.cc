#include "obs/bench_compare.h"

#include <cmath>
#include <limits>

namespace dana::obs {

namespace {

dana::Result<const Json*> RequireObject(const Json& doc, const char* key) {
  const Json* v = doc.Find(key);
  if (v == nullptr || !v->is_object()) {
    return dana::Status::InvalidArgument(
        std::string("BENCH json is missing object member '") + key + "'");
  }
  return v;
}

double MetricValue(const Json& entry) {
  const Json* v = entry.Find("value");
  return v != nullptr && v->is_number()
             ? v->AsNumber()
             : std::numeric_limits<double>::quiet_NaN();
}

std::string MetricDirection(const Json& entry) {
  const Json* d = entry.Find("better");
  return d != nullptr && d->is_string() ? d->AsString() : "info";
}

double MetricTolerance(const Json& entry, double global) {
  const Json* t = entry.Find("tolerance");
  return t != nullptr && t->is_number() ? t->AsNumber() : global;
}

}  // namespace

dana::Result<CompareReport> CompareBenchJson(const Json& baseline,
                                             const Json& fresh,
                                             double tolerance) {
  CompareReport report;

  // Config equality: compact-dump both and compare the strings (member
  // order is insertion order, and both files come from the same writer, so
  // a real mismatch is a real knob difference).
  const Json* base_cfg = baseline.Find("config");
  const Json* fresh_cfg = fresh.Find("config");
  const std::string base_cfg_s =
      base_cfg != nullptr ? base_cfg->Dump() : "{}";
  const std::string fresh_cfg_s =
      fresh_cfg != nullptr ? fresh_cfg->Dump() : "{}";
  if (base_cfg_s != fresh_cfg_s) {
    report.config_mismatch = true;
    report.config_diff =
        "baseline config " + base_cfg_s + " vs fresh config " + fresh_cfg_s;
  }

  DANA_ASSIGN_OR_RETURN(const Json* base_metrics,
                        RequireObject(baseline, "metrics"));
  DANA_ASSIGN_OR_RETURN(const Json* fresh_metrics,
                        RequireObject(fresh, "metrics"));

  for (const auto& [name, base_entry] : base_metrics->members()) {
    MetricDelta d;
    d.name = name;
    d.baseline = MetricValue(base_entry);
    d.direction = MetricDirection(base_entry);
    d.tolerance = MetricTolerance(base_entry, tolerance);
    const Json* fresh_entry = fresh_metrics->Find(name);
    if (fresh_entry == nullptr) {
      d.missing = true;
      report.deltas.push_back(std::move(d));
      continue;
    }
    d.fresh = MetricValue(*fresh_entry);
    if (std::isnan(d.baseline) || std::isnan(d.fresh)) {
      // A NaN on either side (serialized null) carries no signal; info.
      d.relative_change = 0.0;
    } else if (d.baseline != 0.0) {
      d.relative_change = (d.fresh - d.baseline) / std::fabs(d.baseline);
    } else if (d.fresh != 0.0) {
      d.relative_change = d.fresh > 0
                              ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
    }
    if (d.direction == "lower") {
      d.regressed = d.relative_change > d.tolerance;
      d.improved = d.relative_change < -d.tolerance;
    } else if (d.direction == "higher") {
      d.regressed = d.relative_change < -d.tolerance;
      d.improved = d.relative_change > d.tolerance;
    }
    report.deltas.push_back(std::move(d));
  }

  for (const auto& [name, entry] : fresh_metrics->members()) {
    (void)entry;
    if (base_metrics->Find(name) == nullptr) {
      report.new_metrics.push_back(name);
    }
  }
  return report;
}

dana::Result<CompareReport> CompareBenchFiles(const std::string& baseline_path,
                                              const std::string& fresh_path,
                                              double tolerance) {
  DANA_ASSIGN_OR_RETURN(Json baseline, Json::ReadFile(baseline_path));
  DANA_ASSIGN_OR_RETURN(Json fresh, Json::ReadFile(fresh_path));
  return CompareBenchJson(baseline, fresh, tolerance);
}

}  // namespace dana::obs
