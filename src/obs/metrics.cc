#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "common/stats.h"
#include "common/table_printer.h"

namespace dana::obs {

// Each readout snapshots the sample vector under the histogram mutex and
// computes on the copy: readers never hold the lock across arithmetic, and
// Mean() does not re-enter the (non-recursive) lock through Sum().

double Histogram::Sum() const {
  const std::vector<double> s = samples();
  double total = 0.0;
  for (double v : s) total += v;
  return total;
}

double Histogram::Mean() const {
  const std::vector<double> s = samples();
  if (s.empty()) return std::numeric_limits<double>::quiet_NaN();
  double total = 0.0;
  for (double v : s) total += v;
  return total / static_cast<double>(s.size());
}

double Histogram::Min() const {
  const std::vector<double> s = samples();
  if (s.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(s.begin(), s.end());
}

double Histogram::Max() const {
  const std::vector<double> s = samples();
  if (s.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(s.begin(), s.end());
}

double Histogram::Percentile(double p) const {
  return dana::Percentile(samples(), p);
}

Counter* MetricRegistry::counter(const std::string& name) {
  dana::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  dana::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::histogram(const std::string& name) {
  dana::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricRegistry::Clear() {
  dana::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Json MetricRegistry::ToJson() const {
  dana::MutexLock lock(mu_);
  Json root = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, c] : counters_) counters.Set(name, c->value());
  Json gauges = Json::Object();
  for (const auto& [name, g] : gauges_) gauges.Set(name, g->value());
  Json histograms = Json::Object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::Object();
    entry.Set("count", static_cast<double>(h->count()));
    entry.Set("mean", h->Mean());
    entry.Set("min", h->Min());
    entry.Set("max", h->Max());
    entry.Set("p50", h->Percentile(50));
    entry.Set("p95", h->Percentile(95));
    entry.Set("p99", h->Percentile(99));
    histograms.Set(name, std::move(entry));
  }
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root;
}

TablePrinter MetricRegistry::ToTable() const {
  dana::MutexLock lock(mu_);
  TablePrinter table({"metric", "type", "value", "p50", "p95", "p99"});
  for (const auto& [name, c] : counters_) {
    table.AddRow({name, "counter", Json::FormatNumber(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    table.AddRow({name, "gauge", Json::FormatNumber(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    table.AddRow({name, "histogram",
                  "n=" + std::to_string(h->count()) +
                      " mean=" + Json::FormatNumber(h->Mean()),
                  Json::FormatNumber(h->Percentile(50)),
                  Json::FormatNumber(h->Percentile(95)),
                  Json::FormatNumber(h->Percentile(99))});
  }
  return table;
}

}  // namespace dana::obs
