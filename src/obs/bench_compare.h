#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace dana::obs {

/// One metric's baseline-vs-fresh comparison.
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double fresh = 0.0;
  std::string direction;  ///< "lower" | "higher" | "info"
  /// (fresh - baseline) / |baseline|; 0 when the baseline is 0 and the
  /// fresh value matches, +-inf when it doesn't.
  double relative_change = 0.0;
  /// Tolerance this metric was gated at: the baseline entry's own
  /// "tolerance" member when present, else the comparison's global value.
  double tolerance = 0.0;
  bool regressed = false;  ///< past tolerance in the bad direction
  bool improved = false;   ///< past tolerance in the good direction
  bool missing = false;    ///< metric absent from the fresh file
};

/// Outcome of comparing two BENCH_*.json documents.
struct CompareReport {
  std::vector<MetricDelta> deltas;  ///< baseline order
  /// Metrics in the fresh file with no baseline entry — not a failure
  /// (new PRs add metrics), but reported so baselines get refreshed.
  std::vector<std::string> new_metrics;
  bool config_mismatch = false;
  std::string config_diff;  ///< human-readable first difference

  bool HasRegression() const {
    if (config_mismatch) return true;
    for (const MetricDelta& d : deltas) {
      if (d.regressed || d.missing) return true;
    }
    return false;
  }
};

/// Compares a committed baseline against a freshly emitted BENCH_*.json.
/// For every baseline metric with direction "lower", a fresh value more
/// than `tolerance` (relative) above the baseline is a regression; for
/// "higher", more than `tolerance` below; "info" metrics are reported but
/// never gate. A baseline metric missing from the fresh file is a
/// regression (a silently dropped stat is how scoreboards rot). Differing
/// "config" objects fail the comparison outright — the numbers are not
/// comparable. A baseline entry carrying its own "tolerance" member is
/// gated at that value instead of `tolerance` (wall-clock metrics ride in
/// files whose simulated metrics deserve a tighter gate).
dana::Result<CompareReport> CompareBenchJson(const Json& baseline,
                                             const Json& fresh,
                                             double tolerance);

/// File-path convenience over CompareBenchJson.
dana::Result<CompareReport> CompareBenchFiles(const std::string& baseline_path,
                                              const std::string& fresh_path,
                                              double tolerance);

}  // namespace dana::obs
