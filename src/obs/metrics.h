#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace dana {
class TablePrinter;
}

namespace dana::obs {

/// Monotonic event counter ("how many times did X happen / how much of X
/// accumulated"). Values are doubles so time totals (seconds) and plain
/// counts share one type; integral counts stay exactly representable.
///
/// Thread-safe: Increment is a relaxed atomic add, so concurrent slot
/// workers in the threaded runtime can publish without a lock. Totals are
/// order-independent for the integral counts the scheduler emits; float
/// accumulation order can differ across threaded runs, which is why the
/// runtime parity suite compares counter totals, not serialized bytes,
/// for time-valued counters.
class Counter {
 public:
  void Increment(double by = 1.0) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value ("what is X right now").
/// Thread-safe: Set/value are relaxed atomic store/load.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample sink with percentile readout. Samples are kept raw (the
/// simulator's runs are small — hundreds of queries), so Percentile()
/// agrees exactly with common/stats.h Percentile over the same samples and
/// two identical runs serialize identically.
///
/// Thread-safe: Record appends under an internal mutex. Concurrent
/// recorders may interleave in any order; every readout here is
/// order-independent (count/sum/mean/min/max and rank-based percentiles
/// over a sorted copy). samples() returns insertion order and is meant for
/// post-run single-threaded readers (tests, StatsWriter).
class Histogram {
 public:
  void Record(double v) {
    dana::MutexLock lock(mu_);
    samples_.push_back(v);
  }
  uint64_t count() const {
    dana::MutexLock lock(mu_);
    return samples_.size();
  }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// p in [0, 100]; NaN for an empty histogram (common/stats.h semantics).
  double Percentile(double p) const;
  std::vector<double> samples() const {
    dana::MutexLock lock(mu_);
    return samples_;
  }

 private:
  mutable dana::Mutex mu_;
  std::vector<double> samples_ GUARDED_BY(mu_);
};

/// Named registry the instrumented subsystems (Scheduler,
/// DanaQueryExecutor, BufferPool, CompileCache) publish into.
///
/// Cost model: instrumentation sites hold a `MetricRegistry*` that is null
/// when telemetry is off — the entire cost of disabled telemetry is one
/// pointer test (the `Count`/`Observe`/`Measure` helpers below inline it).
/// When enabled, metric objects are created on first use and looked up by
/// name; hot paths that publish per-event should resolve the pointer once
/// and increment through it.
///
/// Determinism: metrics live in a std::map, so snapshots iterate in name
/// order; given a deterministic simulation, two identical runs produce
/// byte-identical `ToJson().Dump()` output — the property the obs test
/// suite and the `dana sched --metrics-json` acceptance check pin.
///
/// Thread-safe: the name→metric maps are guarded by a registry mutex, and
/// the metric objects themselves are individually thread-safe (atomic
/// counters/gauges, mutexed histograms). Metric pointers are stable for
/// the registry's lifetime — Clear() is the only invalidating call and is
/// reserved for single-threaded points between runs — so hot paths may
/// cache the pointer once and publish lock-free through it.
class MetricRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Drops every metric (a fresh registry between runs). Not safe to call
  /// concurrently with holders of previously returned metric pointers.
  void Clear();

  /// Snapshot of every metric, sorted by name. Counters/gauges serialize
  /// as bare numbers; histograms as {count, mean, min, max, p50, p95, p99}.
  Json ToJson() const;

  /// The same snapshot as table rows (metric | type | value | p50 | p95 |
  /// p99) for the existing table_printer pipeline.
  TablePrinter ToTable() const;

 private:
  mutable dana::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

/// Null-safe helpers: the idiomatic publish call at an instrumentation
/// site. All compile to a pointer test when `r` is null, and are safe to
/// call from concurrent slot workers when `r` is set.
inline void Count(MetricRegistry* r, const std::string& name,
                  double by = 1.0) {
  if (r != nullptr) r->counter(name)->Increment(by);
}
inline void SetGauge(MetricRegistry* r, const std::string& name, double v) {
  if (r != nullptr) r->gauge(name)->Set(v);
}
inline void Observe(MetricRegistry* r, const std::string& name, double v) {
  if (r != nullptr) r->histogram(name)->Record(v);
}

}  // namespace dana::obs
