#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dana {
class TablePrinter;
}

namespace dana::obs {

/// Monotonic event counter ("how many times did X happen / how much of X
/// accumulated"). Values are doubles so time totals (seconds) and plain
/// counts share one type; integral counts stay exactly representable.
class Counter {
 public:
  void Increment(double by = 1.0) { value_ += by; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value ("what is X right now").
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Sample sink with percentile readout. Samples are kept raw (the
/// simulator's runs are small — hundreds of queries), so Percentile()
/// agrees exactly with common/stats.h Percentile over the same samples and
/// two identical runs serialize identically.
class Histogram {
 public:
  void Record(double v) { samples_.push_back(v); }
  uint64_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// p in [0, 100]; NaN for an empty histogram (common/stats.h semantics).
  double Percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Named registry the instrumented subsystems (Scheduler,
/// DanaQueryExecutor, BufferPool, CompileCache) publish into.
///
/// Cost model: instrumentation sites hold a `MetricRegistry*` that is null
/// when telemetry is off — the entire cost of disabled telemetry is one
/// pointer test (the `Count`/`Observe`/`Measure` helpers below inline it).
/// When enabled, metric objects are created on first use and looked up by
/// name; hot paths that publish per-event should resolve the pointer once
/// and increment through it.
///
/// Determinism: metrics live in a std::map, so snapshots iterate in name
/// order; given a deterministic simulation, two identical runs produce
/// byte-identical `ToJson().Dump()` output — the property the obs test
/// suite and the `dana sched --metrics-json` acceptance check pin.
class MetricRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Drops every metric (a fresh registry between runs).
  void Clear();

  /// Snapshot of every metric, sorted by name. Counters/gauges serialize
  /// as bare numbers; histograms as {count, mean, min, max, p50, p95, p99}.
  Json ToJson() const;

  /// The same snapshot as table rows (metric | type | value | p50 | p95 |
  /// p99) for the existing table_printer pipeline.
  TablePrinter ToTable() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Null-safe helpers: the idiomatic publish call at an instrumentation
/// site. All compile to a pointer test when `r` is null.
inline void Count(MetricRegistry* r, const std::string& name,
                  double by = 1.0) {
  if (r != nullptr) r->counter(name)->Increment(by);
}
inline void SetGauge(MetricRegistry* r, const std::string& name, double v) {
  if (r != nullptr) r->gauge(name)->Set(v);
}
inline void Observe(MetricRegistry* r, const std::string& name, double v) {
  if (r != nullptr) r->histogram(name)->Record(v);
}

}  // namespace dana::obs
