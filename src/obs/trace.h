#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "obs/json.h"

namespace dana::obs {

/// Records per-slot execution spans on the simulated clock and serializes
/// them as Chrome trace_event JSON — the file `chrome://tracing` and
/// Perfetto load directly, so a scheduled run's dispatch/slice/checkpoint/
/// resume/preempt timeline is inspectable span by span.
///
/// Mapping: one process ("dana accelerator") whose thread ids are slot
/// indices; a complete event ("ph":"X") per span with microsecond
/// timestamps of the *simulated* clock; instant events ("ph":"i") for
/// point occurrences (checkpoint, resume). Events serialize in the order
/// they were recorded, so a deterministic schedule yields a byte-identical
/// trace file.
class SlotTracer {
 public:
  using Args = std::vector<std::pair<std::string, Json>>;

  /// A span occupying `slot` from `start` to `end` of the simulated clock.
  /// `category` groups spans for trace-viewer filtering ("run", "compile",
  /// "ctx-switch", ...). Zero/negative-length spans are recorded with a
  /// zero duration (the viewers accept them).
  void Span(uint32_t slot, const std::string& name,
            const std::string& category, dana::SimTime start,
            dana::SimTime end, Args args = {});

  /// A point event on `slot` at `at` (checkpoint taken, run resumed, ...).
  void Instant(uint32_t slot, const std::string& name,
               const std::string& category, dana::SimTime at, Args args = {});

  size_t event_count() const { return events_.size(); }

  /// The trace document: {"traceEvents": [...], metadata...}. Thread-name
  /// metadata events for every slot seen are emitted first, in slot order.
  Json ToJson() const;

  /// Writes `ToJson()` to `path` (pretty-printed; Perfetto and
  /// chrome://tracing both accept it).
  dana::Status WriteFile(const std::string& path) const;

 private:
  Json Event(uint32_t slot, const std::string& name,
             const std::string& category, const char* phase, dana::SimTime ts,
             Args args) const;

  std::vector<Json> events_;
  uint32_t max_slot_ = 0;
  bool any_ = false;
};

}  // namespace dana::obs
