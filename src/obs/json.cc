#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dana::obs {

Json& Json::Set(const std::string& key, Json v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Json::FormatNumber(double v) {
  // JSON has no NaN or infinity; null marks "not a finite number".
  if (!std::isfinite(v)) return "null";
  // Exactly-representable integers print as integers: counter values stay
  // readable and byte-stable.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest round-trip decimal: try increasing precision until the
  // rendered string parses back to the identical double. Deterministic —
  // no locale, no platform-dependent shortest-float algorithms.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  std::string pad;
  std::string close_pad;
  if (indent > 0) {
    pad.push_back('\n');
    pad.append(static_cast<size_t>(indent) * static_cast<size_t>(depth + 1),
               ' ');
    close_pad.push_back('\n');
    close_pad.append(
        static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
  }
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += FormatNumber(number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += pad;
        AppendEscaped(out, members_[i].first);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the whole document string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  dana::Result<Json> Document() {
    DANA_ASSIGN_OR_RETURN(Json v, Value());
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  dana::Status Err(const std::string& what) const {
    return dana::Status::InvalidArgument(
        "JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  dana::Result<Json> Value() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ObjectValue();
    if (c == '[') return ArrayValue();
    if (c == '"') {
      DANA_ASSIGN_OR_RETURN(std::string s, String());
      return Json(std::move(s));
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    return Number();
  }

  dana::Result<Json> Number() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    return Json(v);
  }

  dana::Result<std::string> String() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape digit");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by
          // our own writer).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  dana::Result<Json> ArrayValue() {
    Consume('[');
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      DANA_ASSIGN_OR_RETURN(Json v, Value());
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  dana::Result<Json> ObjectValue() {
    Consume('{');
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      DANA_ASSIGN_OR_RETURN(std::string key, String());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      DANA_ASSIGN_OR_RETURN(Json v, Value());
      obj.Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

dana::Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Document();
}

dana::Status Json::WriteFile(const std::string& path, int indent) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return dana::Status::IOError("cannot open '" + path + "'");
  out << Dump(indent) << "\n";
  if (!out) return dana::Status::IOError("short write to '" + path + "'");
  return dana::Status::OK();
}

dana::Result<Json> Json::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return dana::Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

}  // namespace dana::obs
