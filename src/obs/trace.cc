#include "obs/trace.h"

#include <algorithm>

namespace dana::obs {

namespace {
constexpr int kPid = 1;  // one simulated machine per trace
}

Json SlotTracer::Event(uint32_t slot, const std::string& name,
                       const std::string& category, const char* phase,
                       dana::SimTime ts, Args args) const {
  Json e = Json::Object();
  e.Set("name", name);
  e.Set("cat", category);
  e.Set("ph", phase);
  e.Set("ts", ts.micros());
  e.Set("pid", kPid);
  e.Set("tid", static_cast<double>(slot));
  if (!args.empty()) {
    Json a = Json::Object();
    for (auto& [k, v] : args) a.Set(k, std::move(v));
    e.Set("args", std::move(a));
  }
  return e;
}

void SlotTracer::Span(uint32_t slot, const std::string& name,
                      const std::string& category, dana::SimTime start,
                      dana::SimTime end, Args args) {
  Json e = Event(slot, name, category, "X", start, std::move(args));
  const double dur = std::max(0.0, (end - start).micros());
  e.Set("dur", dur);
  events_.push_back(std::move(e));
  max_slot_ = std::max(max_slot_, slot);
  any_ = true;
}

void SlotTracer::Instant(uint32_t slot, const std::string& name,
                         const std::string& category, dana::SimTime at,
                         Args args) {
  Json e = Event(slot, name, category, "i", at, std::move(args));
  e.Set("s", "t");  // thread-scoped instant
  events_.push_back(std::move(e));
  max_slot_ = std::max(max_slot_, slot);
  any_ = true;
}

Json SlotTracer::ToJson() const {
  Json trace = Json::Array();
  // Metadata first: name the process and each slot's timeline row.
  Json proc = Json::Object();
  proc.Set("name", "process_name");
  proc.Set("ph", "M");
  proc.Set("pid", kPid);
  Json proc_args = Json::Object();
  proc_args.Set("name", "dana accelerator (simulated)");
  proc.Set("args", std::move(proc_args));
  trace.Append(std::move(proc));
  if (any_) {
    for (uint32_t s = 0; s <= max_slot_; ++s) {
      Json t = Json::Object();
      t.Set("name", "thread_name");
      t.Set("ph", "M");
      t.Set("pid", kPid);
      t.Set("tid", static_cast<double>(s));
      Json targs = Json::Object();
      targs.Set("name", "slot " + std::to_string(s));
      t.Set("args", std::move(targs));
      trace.Append(std::move(t));
    }
  }
  for (const Json& e : events_) trace.Append(e);

  Json root = Json::Object();
  root.Set("traceEvents", std::move(trace));
  root.Set("displayTimeUnit", "ms");
  return root;
}

dana::Status SlotTracer::WriteFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

}  // namespace dana::obs
