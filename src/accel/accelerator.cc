#include "accel/accelerator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "compiler/hw_generator.h"
#include "hdfg/graph.h"

namespace dana::accel {

Accelerator::Accelerator(const compiler::CompiledUdf& udf) : udf_(udf) {
  access_config_.num_page_buffers = udf.design.num_page_buffers;
}

Status Accelerator::DecodeTuple(const std::vector<uint8_t>& payload,
                                engine::TupleData* out) const {
  const compiler::ScalarProgram& prog = udf_.program;
  const uint64_t want = 4 * prog.TupleElements();
  if (payload.size() < want) {
    return Status::Corruption("tuple payload of " +
                              std::to_string(payload.size()) +
                              " bytes, expected " + std::to_string(want));
  }
  size_t off = 0;
  auto take = [&](const std::shared_ptr<const dsl::Var>& var,
                  std::vector<float>* dst) {
    const uint64_t n = hdfg::NumElements(var->dims);
    dst->resize(n);
    std::memcpy(dst->data(), payload.data() + off, n * 4);
    off += n * 4;
  };
  out->inputs.resize(prog.input_vars.size());
  out->outputs.resize(prog.output_vars.size());
  for (size_t i = 0; i < prog.input_vars.size(); ++i) {
    take(prog.input_vars[i], &out->inputs[i]);
  }
  for (size_t i = 0; i < prog.output_vars.size(); ++i) {
    take(prog.output_vars[i], &out->outputs[i]);
  }
  return Status::OK();
}

Result<RunReport> Accelerator::Train(const storage::Table& table,
                                     storage::BufferPool* pool,
                                     const RunOptions& options) const {
  const compiler::ScalarProgram& prog = udf_.program;
  const compiler::DesignPoint& design = udf_.design;
  const double freq = udf_.fpga.freq_hz;

  engine::ScalarEvaluator evaluator(prog);
  for (size_t m = 0; m < options.initial_models.size(); ++m) {
    DANA_RETURN_NOT_OK(evaluator.SetModel(
        static_cast<uint32_t>(m), options.initial_models[m]));
  }

  AccessEngine access(access_config_, udf_.strider_program);

  const uint32_t epochs_budget = options.max_epochs_override
                                     ? options.max_epochs_override
                                     : prog.max_epochs;
  // Segmented execution: earlier segments consumed `epochs_completed` of
  // the budget; this call runs at most `epoch_limit` of the remainder.
  const uint32_t done_before = std::min(options.epochs_completed,
                                        epochs_budget);
  uint32_t segment_budget = epochs_budget - done_before;
  if (options.epoch_limit != 0) {
    segment_budget = std::min(segment_budget, options.epoch_limit);
  }
  const uint64_t batch_size = std::max<uint32_t>(prog.merge_coef, 1);
  const uint32_t threads = design.num_threads;
  // Co-trained queries sharing this pass: identical models see identical
  // tuples, so the update rules are evaluated functionally once and the
  // engine cycle cost is charged once per model.
  const uint32_t batch_q = std::max<uint32_t>(options.batch_queries, 1);

  RunReport report;
  // The configuration FSM programs the design once per run; a resumed
  // segment finds it already on the fabric.
  if (done_before == 0) report.fpga_cycles += access.ConfigCycles();

  std::vector<engine::TupleData> batch;
  batch.reserve(batch_size);

  for (uint32_t epoch = 0; epoch < segment_budget; ++epoch) {
    const dana::SimTime io_before = pool->stats().io_time;
    uint64_t strider_cycles = 0;
    uint64_t engine_cycles = 0;
    uint64_t batches = 0;
    uint64_t tuples_this_epoch = 0;

    auto flush_batch = [&]() -> Status {
      if (batch.empty()) return Status::OK();
      DANA_RETURN_NOT_OK(evaluator.EvalBatch(batch));
      // Timing: each thread runs ceil(batch/threads) rule instances
      // back-to-back, then the tree bus merges and the model updates.
      const uint64_t rule_runs = (batch.size() + threads - 1) / threads;
      engine_cycles +=
          batch_q *
          (rule_runs * std::max<uint64_t>(design.tuple_schedule.EffectiveMakespan(
                                              design.inter_ac_bus_lanes,
                                              threads),
                                          1) +
           compiler::MergeCycles(threads, prog.merge_slots.size(),
                                 prog.ModelElements(),
                                 design.tree_bus_lanes) +
           design.batch_schedule.makespan);
      ++batches;
      batch.clear();
      return Status::OK();
    };

    for (uint64_t p = 0; p < table.num_pages(); ++p) {
      DANA_ASSIGN_OR_RETURN(const uint8_t* frame, pool->FetchPage(table, p));
      DANA_ASSIGN_OR_RETURN(
          PageExtraction extraction,
          access.WalkPage({frame, table.layout().page_size}));
      strider_cycles += extraction.strider_cycles;
      report.strider_instructions += extraction.tuples.size();
      for (auto& payload : extraction.tuples) {
        engine::TupleData tuple;
        DANA_RETURN_NOT_OK(DecodeTuple(payload, &tuple));
        batch.push_back(std::move(tuple));
        ++tuples_this_epoch;
        if (batch.size() >= batch_size) {
          DANA_RETURN_NOT_OK(flush_batch());
        }
      }
    }
    DANA_RETURN_NOT_OK(flush_batch());
    report.tuples_processed += tuples_this_epoch;

    // ---- Epoch timing ----------------------------------------------------
    EpochBreakdown bd;
    bd.io = pool->stats().io_time - io_before;

    const double axi_bpc =
        udf_.fpga.AxiBytesPerCycle() * options.bandwidth_scale;
    const uint64_t page_bytes = table.num_pages() * table.layout().page_size;

    if (!options.strider_bypass) {
      const uint64_t axi_cycles = static_cast<uint64_t>(
          std::ceil(static_cast<double>(page_bytes) / axi_bpc));
      const uint64_t strider_par =
          strider_cycles / std::max<uint32_t>(design.num_page_buffers, 1);
      bd.axi = dana::SimTime::Cycles(axi_cycles, freq);
      bd.strider = dana::SimTime::Cycles(strider_par, freq);
      bd.engine = dana::SimTime::Cycles(engine_cycles, freq);
      uint64_t fpga_cycles;
      if (design.num_page_buffers >= 2) {
        // Access/execute interleaving: epoch runs at the slowest stage.
        fpga_cycles = std::max({axi_cycles, strider_par, engine_cycles}) +
                      strider_cycles / std::max<uint64_t>(
                                           table.num_pages(), 1);  // fill
      } else {
        fpga_cycles = axi_cycles + strider_par + engine_cycles;
      }
      fpga_cycles += design.epoch_schedule.makespan;
      const dana::SimTime fpga_time = dana::SimTime::Cycles(fpga_cycles, freq);
      // The accelerator stalls when the buffer pool cannot replace pages
      // fast enough (§7.1, S/N SVM): wall = slower of I/O and FPGA.
      bd.wall = dana::SimTime::Max(fpga_time, bd.io);
      bd.shared = dana::SimTime::Max(
          bd.io, dana::SimTime::Cycles(std::max(axi_cycles, strider_par),
                                       freq));
      bd.per_query = bd.engine / static_cast<double>(batch_q);
      report.fpga_cycles += fpga_cycles;
      report.fpga_time += fpga_time;
    } else {
      // Figure 11 alternative: CPU extracts and transforms each tuple and
      // DMAs it individually; no access/execute interleaving is possible.
      const uint64_t tuple_bytes = 4 * prog.TupleElements();
      const dana::SimTime cpu_extract =
          (options.cpu_extract_per_tuple +
           dana::SimTime::Nanos(options.cpu_extract_ns_per_byte *
                                static_cast<double>(tuple_bytes))) *
          static_cast<double>(tuples_this_epoch);
      const uint64_t dma_cycles = static_cast<uint64_t>(
          std::ceil(static_cast<double>(tuple_bytes) / axi_bpc +
                    static_cast<double>(options.handshake_cycles_per_tuple)) *
          tuples_this_epoch);
      const uint64_t fpga_cycles =
          dma_cycles + engine_cycles + design.epoch_schedule.makespan;
      bd.axi = dana::SimTime::Cycles(dma_cycles, freq);
      bd.strider = dana::SimTime::Zero();
      bd.engine = dana::SimTime::Cycles(engine_cycles, freq);
      const dana::SimTime fpga_time = dana::SimTime::Cycles(fpga_cycles, freq);
      bd.wall = cpu_extract + dana::SimTime::Max(fpga_time, bd.io);
      // Bypass mode: CPU extraction + per-tuple DMA stream once per pass;
      // only the engine compute replicates per co-trained model.
      bd.shared = cpu_extract + dana::SimTime::Max(bd.axi, bd.io);
      bd.per_query = bd.engine / static_cast<double>(batch_q);
      report.fpga_cycles += fpga_cycles;
      report.fpga_time += fpga_time;
    }

    report.io_time += bd.io;
    report.total_time += bd.wall;
    report.shared_time += bd.shared;
    report.per_query_time += bd.per_query;
    report.epochs.push_back(bd);
    ++report.epochs_run;

    DANA_ASSIGN_OR_RETURN(bool stop, evaluator.EvalConvergence());
    if (stop) {
      report.converged = true;
      break;
    }
  }

  report.epochs_completed = done_before + report.epochs_run;
  report.resumable = !report.converged &&
                     report.epochs_completed < epochs_budget;
  report.final_models.resize(prog.model_vars.size());
  for (uint32_t m = 0; m < prog.model_vars.size(); ++m) {
    report.final_models[m] = evaluator.Model(m);
  }
  return report;
}

}  // namespace dana::accel
