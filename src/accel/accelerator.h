#pragma once

#include <cstdint>
#include <vector>

#include "accel/access_engine.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "compiler/compiler.h"
#include "engine/evaluator.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace dana::accel {

/// Per-run knobs of the accelerator simulator; each maps to one of the
/// paper's sensitivity experiments.
struct RunOptions {
  /// Figure 11 ablation: bypass Striders — the CPU extracts/transforms
  /// tuples and DMAs them one at a time to the execution engines.
  bool strider_bypass = false;
  /// Figure 14: scale the AXI/host bandwidth (0.25x .. 4x).
  double bandwidth_scale = 1.0;
  /// Overrides the algo's epoch budget when nonzero.
  uint32_t max_epochs_override = 0;
  /// CPU-side per-tuple extraction + transform cost in bypass mode.
  dana::SimTime cpu_extract_per_tuple = dana::SimTime::Micros(0.35);
  /// Additional CPU transform cost per payload byte in bypass mode (the
  /// CPU touches every byte to deform, convert, and marshal the tuple).
  double cpu_extract_ns_per_byte = 3.0;
  /// CPU<->FPGA handshake cycles per tuple DMA in bypass mode.
  uint64_t handshake_cycles_per_tuple = 300;
  /// Initial model values (flattened per model var); zeros when empty.
  std::vector<std::vector<float>> initial_models;
  /// Co-trained queries sharing this pass (cross-query batching): one
  /// Strider page-streaming sweep feeds `batch_queries` identical models'
  /// execution engines, so the access side (I/O, AXI, page walking) is paid
  /// once while engine compute scales with the batch. 1 = the paper's
  /// single-query pass.
  uint32_t batch_queries = 1;
  /// Segmented (resumable) execution: when nonzero, this call runs at most
  /// this many epochs of the remaining budget and returns, leaving the run
  /// preemptible at the epoch boundary. Chain segments by feeding the
  /// returned `final_models` into the next segment's `initial_models` and
  /// advancing `epochs_completed`; with the same table and an undisturbed
  /// buffer pool the concatenated segments reproduce the unsegmented run's
  /// per-epoch timings and final model bit for bit (cold I/O is paid in
  /// whichever segment runs the first epoch). 0 runs to the budget.
  uint32_t epoch_limit = 0;
  /// Epochs already consumed by earlier segments of this run. Counts
  /// against the epoch budget, and nonzero values skip the one-time
  /// configuration-FSM programming (the design is already on the fabric).
  uint32_t epochs_completed = 0;
};

/// Timing breakdown of one epoch (all converted to simulated time at the
/// design's clock).
struct EpochBreakdown {
  dana::SimTime io;        ///< buffer-pool miss service time
  dana::SimTime axi;       ///< page DMA over the host link
  dana::SimTime strider;   ///< page walking (parallel across buffers)
  dana::SimTime engine;    ///< update-rule compute + merge + model update
                           ///< (whole batch: scales with batch_queries)
  dana::SimTime wall;      ///< pipelined epoch wall time
  /// Cross-query attribution of the epoch: `shared` is the one-pass
  /// streaming cost every co-batched query amortizes (the slower of the
  /// I/O and the AXI/Strider access side); `per_query` is the incremental
  /// engine-merge time each additional co-trained model adds
  /// (engine / batch_queries). Attribution, not a partition of `wall` —
  /// pipelining overlaps the two.
  dana::SimTime shared;
  dana::SimTime per_query;
};

/// Result of a training run (or of one segment of a segmented run).
struct RunReport {
  uint32_t epochs_run = 0;  ///< epochs executed by this call (this segment)
  /// Cumulative epochs across all segments of the run:
  /// `RunOptions::epochs_completed` plus this segment's `epochs_run`.
  uint32_t epochs_completed = 0;
  /// True while the run still has budget left and has not converged — the
  /// checkpoint in `final_models` can seed a further segment.
  bool resumable = false;
  bool converged = false;
  uint64_t tuples_processed = 0;
  dana::SimTime total_time;        ///< end-to-end accelerator wall time
  dana::SimTime io_time;           ///< total buffer-pool miss time
  dana::SimTime fpga_time;         ///< total on-FPGA time
  dana::SimTime shared_time;       ///< Σ epoch shared (one-pass streaming)
  dana::SimTime per_query_time;    ///< Σ epoch per_query (engine per model)
  uint64_t fpga_cycles = 0;
  uint64_t strider_instructions = 0;
  std::vector<EpochBreakdown> epochs;
  /// Trained model values, one vector per model variable.
  std::vector<std::vector<float>> final_models;
};

/// The DAnA accelerator: functional + cycle-level simulation of the
/// generated design training on a heap table through the buffer pool.
///
/// Functionally, every page is walked by the real Strider interpreter and
/// every update rule executes in fp32 through the lowered scalar program —
/// the returned model is genuinely trained. Timing follows the paper's
/// pipeline: with >=2 page buffers the access engine interleaves with the
/// execution engine, so an epoch runs at the rate of its slowest stage.
///
/// With `RunOptions::batch_queries = K > 1` the simulator models a
/// cross-query batched pass: K queries of the same algorithm co-train off
/// one page-streaming sweep. The access side (I/O, AXI, Striders) is
/// charged once; engine compute scales by K. All K models start identical
/// and see the same tuple order, so their trajectories coincide — the one
/// functionally-trained model in `final_models` is every query's result.
class Accelerator {
 public:
  explicit Accelerator(const compiler::CompiledUdf& udf);

  /// Trains on `table`, fetching pages through `pool`. The pool's stats
  /// are used (and reset) to attribute I/O time.
  dana::Result<RunReport> Train(const storage::Table& table,
                                storage::BufferPool* pool,
                                const RunOptions& options) const;

  const compiler::CompiledUdf& udf() const { return udf_; }

 private:
  /// Splits a payload into per-variable fp32 element vectors.
  dana::Status DecodeTuple(const std::vector<uint8_t>& payload,
                           engine::TupleData* out) const;

  const compiler::CompiledUdf& udf_;
  AccessEngineConfig access_config_;
};

}  // namespace dana::accel
