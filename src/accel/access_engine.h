#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "strider/isa.h"
#include "strider/simulator.h"

namespace dana::accel {

/// Configuration of the multi-threaded access engine (paper Figure 5).
struct AccessEngineConfig {
  /// On-chip page buffers; each has a dedicated Strider.
  uint32_t num_page_buffers = 8;
  /// Bytes the shifter aligns per cycle out of a page buffer's BRAM port.
  uint32_t emit_width_bytes = 8;
  /// One-time alignment cost the shifter adds per page.
  uint32_t shifter_cycles_per_page = 4;
  /// Cycles for the configuration FSM to route Strider instructions and
  /// config registers at program-load time (charged once per query).
  uint32_t config_fsm_cycles_per_word = 1;
};

/// Result of walking one page.
struct PageExtraction {
  std::vector<std::vector<uint8_t>> tuples;
  uint64_t strider_cycles = 0;
};

/// The access engine: page buffers fed over AXI, each walked by its own
/// Strider. This component owns the functional Strider interpreter; the
/// Accelerator charges its cycle counts into the epoch pipeline model.
class AccessEngine {
 public:
  AccessEngine(AccessEngineConfig config, strider::StriderProgram program);

  /// Loads `page` into a page buffer and runs the Strider program over it.
  /// Cycle cost includes the shifter alignment.
  dana::Result<PageExtraction> WalkPage(std::span<const uint8_t> page) const;

  /// One-time configuration cost: shipping the Strider program and config
  /// registers through the configuration FSM to every Strider.
  uint64_t ConfigCycles() const;

  const AccessEngineConfig& config() const { return config_; }
  const strider::StriderProgram& program() const { return program_; }

 private:
  AccessEngineConfig config_;
  strider::StriderProgram program_;
  strider::StriderSim sim_;
};

}  // namespace dana::accel
