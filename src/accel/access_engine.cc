#include "accel/access_engine.h"

namespace dana::accel {

AccessEngine::AccessEngine(AccessEngineConfig config,
                           strider::StriderProgram program)
    : config_(config),
      program_(std::move(program)),
      sim_(config.emit_width_bytes) {}

Result<PageExtraction> AccessEngine::WalkPage(
    std::span<const uint8_t> page) const {
  DANA_ASSIGN_OR_RETURN(auto run, sim_.Run(program_, page));
  PageExtraction out;
  out.tuples = std::move(run.tuples);
  out.strider_cycles = run.cycles + config_.shifter_cycles_per_page;
  return out;
}

uint64_t AccessEngine::ConfigCycles() const {
  const uint64_t words =
      program_.code.size() + strider::kNumConfigRegisters;
  return words * config_.config_fsm_cycles_per_word * config_.num_page_buffers;
}

}  // namespace dana::accel
