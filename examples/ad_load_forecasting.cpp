// The paper's motivating Example 1 (§1): a marketing firm's data scientist
// forecasts hourly ad-serving load with a multi-regression model across a
// hundred features stored in PostgreSQL, and wants FPGA acceleration
// without writing Verilog or manually extracting her data.
//
// This example walks the whole DAnA workflow for that scenario and prints
// the comparison the paper motivates: MADlib+PostgreSQL vs the generated
// accelerator, on the same table, through the same buffer pool.

#include <cstdio>

#include "common/table_printer.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "ml/reference.h"
#include "ml/workloads.h"
#include "runtime/systems.h"

using namespace dana;

int main() {
  // A hundred features of ad-serving telemetry, ~50k hourly observations.
  ml::Workload workload;
  workload.id = "ad_load";
  workload.display_name = "Ad-serving load forecast";
  workload.kind = ml::AlgoKind::kLinearRegression;
  workload.params.dims = 100;
  workload.params.learning_rate = 0.3;
  workload.params.merge_coef = 32;
  workload.params.epochs = 20;
  workload.tuples = 8000;
  workload.paper_dims = 100;
  workload.scale = 6.25;  // pretend the production table is 50k rows
  workload.assumed_epochs = 1;  // MADlib linregr: one-pass normal equations
  workload.dana_epochs = 20;    // streaming gradient descent
  workload.gp_speedup_8seg = 2.5;

  auto instance = runtime::WorkloadInstance::Create(workload);
  if (!instance.ok()) {
    std::fprintf(stderr, "setup: %s\n", instance.status().ToString().c_str());
    return 1;
  }

  runtime::CpuCostModel cost;
  runtime::MadlibPostgres madlib(cost);
  runtime::DanaSystem dana(cost);

  auto pg = madlib.Run(instance->get(), runtime::CacheState::kWarm);
  auto da = dana.Run(instance->get(), runtime::CacheState::kWarm);
  if (!pg.ok() || !da.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 (!pg.ok() ? pg : da).status().ToString().c_str());
    return 1;
  }

  std::printf("Ad-serving load forecasting (paper Example 1)\n");
  std::printf("table: %llu rows x %u features (%.1f MB at paper scale)\n\n",
              static_cast<unsigned long long>(workload.tuples * 6),
              workload.params.dims,
              instance->get()->table().SizeBytes() * workload.scale / 1e6);

  TablePrinter table({"System", "End-to-end", "I/O", "Compute", "MSE"});
  table.AddRow({pg->system, pg->total.ToString(), pg->io.ToString(),
                pg->compute.ToString(), TablePrinter::Fmt(pg->loss, 5)});
  table.AddRow({da->system, da->total.ToString(), da->io.ToString(),
                da->compute.ToString(), TablePrinter::Fmt(da->loss, 5)});
  table.Print();
  std::printf(
      "\nDAnA speedup: %.1fx, with no Verilog, no manual export, and the "
      "model trained to the same loss.\n",
      pg->total / da->total);
  return 0;
}
