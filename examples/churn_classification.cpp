// Customer-churn classification with logistic regression: writes the UDF
// directly in the DSL (update rule + merge + convergence, §4.2), registers
// it in a session, and trains via the paper's SQL form. Demonstrates the
// setConvergence() path: training stops as soon as the merged-gradient
// norm falls under the threshold instead of exhausting the epoch budget.

#include <cstdio>

#include "dsl/algo.h"
#include "dsl/expr.h"
#include "ml/datasets.h"
#include "ml/reference.h"
#include "runtime/query.h"

using namespace dana;

int main() {
  constexpr uint32_t kFeatures = 24;
  constexpr uint32_t kMergeCoef = 16;

  // --- UDF: logistic regression with convergence check -------------------
  auto algo = std::make_unique<dsl::Algo>("churn");
  auto mo = algo->Model("mo", {kFeatures});
  auto in = algo->Input("in", {kFeatures});
  auto out = algo->Output("out");  // 1 = churned, 0 = retained
  auto lr = algo->Meta("lr", 1.0);
  auto inv = algo->Meta("inv", 1.0 / kMergeCoef);

  auto score = dsl::Sigma(mo * in, 0);
  auto prob = dsl::Sigmoid(score);
  auto grad = (prob - out) * in;
  auto g = algo->Merge(grad, kMergeCoef, dsl::OpKind::kAdd);
  if (!algo->SetModel(mo, mo - lr * (g * inv)).ok()) return 1;
  algo->SetEpochs(200);
  auto tol = algo->Meta("tol", 8.0);
  algo->SetConvergence(dsl::Norm(g, 0) < tol);

  // --- Data: synthetic churn table ----------------------------------------
  ml::DatasetSpec spec;
  spec.kind = ml::AlgoKind::kLogisticRegression;
  spec.dims = kFeatures;
  spec.tuples = 6000;
  spec.seed = 2026;
  auto data = ml::GenerateDataset(spec);

  runtime::Session session;
  storage::PageLayout layout;
  auto table = ml::BuildTable("customers", data, layout);
  if (!table.ok() ||
      !session.catalog()->RegisterTable(std::move(table).ValueOrDie()).ok() ||
      !session.RegisterUdf(std::move(algo)).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  auto report = session.ExecuteQuery("SELECT * FROM dana.churn('customers');");
  if (!report.ok()) {
    std::fprintf(stderr, "query: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("churn model trained in %u epochs (%s; budget was 200)\n",
              report->epochs_run,
              report->converged ? "converged early" : "budget exhausted");
  std::printf("simulated accelerator time: %s\n",
              report->total_time.ToString().c_str());

  // Classification accuracy of the FPGA-trained model.
  const auto& w = report->final_models[0];
  uint64_t correct = 0;
  for (const auto& row : data.rows) {
    double s = 0;
    for (uint32_t i = 0; i < kFeatures; ++i) s += w[i] * row[i];
    const bool predicted = s > 0;
    if (predicted == (row[kFeatures] > 0.5)) ++correct;
  }
  std::printf("training accuracy: %.1f%% over %zu customers\n",
              100.0 * correct / data.rows.size(), data.rows.size());
  return correct * 100 < data.rows.size() * 65 ? 1 : 0;  // expect >= 65%
}
