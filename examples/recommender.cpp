// Movie recommendation with low-rank matrix factorization (the paper's
// Netflix workload): each tuple is one user's dense rating row; the UDF
// factorizes the rating matrix through item factors R, with the user
// projection computed on the fly (see ml::BuildAlgo docs for the
// projection-form substitution).
//
// Demonstrates multi-dimensional models ([items][rank]) flowing through
// the whole stack: translator cross-join broadcasting, group ops on both
// axes, the vector outer product, and the tree-bus merge of a matrix.

#include <cmath>
#include <cstdio>

#include "accel/accelerator.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "ml/reference.h"
#include "runtime/systems.h"

using namespace dana;

int main() {
  ml::AlgoParams params;
  params.dims = 120;  // catalogue size (items)
  params.rank = 8;
  params.learning_rate = 0.5;
  params.merge_coef = 4;
  params.epochs = 12;

  ml::DatasetSpec spec;
  spec.kind = ml::AlgoKind::kLowRankMF;
  spec.dims = params.dims;
  spec.rank = params.rank;
  spec.tuples = 400;  // users
  spec.seed = 99;
  auto data = ml::GenerateDataset(spec);

  // Build table + compile the UDF through the full pipeline.
  storage::PageLayout layout;
  auto table = std::move(ml::BuildTable("ratings", data, layout)).ValueOrDie();
  auto algo =
      std::move(ml::BuildAlgo(ml::AlgoKind::kLowRankMF, params)).ValueOrDie();

  compiler::WorkloadShape shape;
  shape.num_tuples = table->num_tuples();
  shape.num_pages = table->num_pages();
  shape.tuples_per_page = table->TuplesOnPage(0);
  shape.tuple_payload_bytes = table->schema().RowBytes();
  compiler::UdfCompiler udf_compiler{runtime::DefaultFpga()};
  auto udf = udf_compiler.Compile(*algo, layout, shape);
  if (!udf.ok()) {
    std::fprintf(stderr, "compile: %s\n", udf.status().ToString().c_str());
    return 1;
  }
  std::printf("generated accelerator: %s\n", udf->design.ToString().c_str());

  storage::BufferPool pool(64ull << 20, layout.page_size,
                           storage::DiskModel{});
  accel::RunOptions run;
  run.initial_models = {ml::InitialModel(ml::AlgoKind::kLowRankMF, params)};
  accel::Accelerator accelerator(*udf);
  auto report = accelerator.Train(*table, &pool, run);
  if (!report.ok()) {
    std::fprintf(stderr, "train: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // Reconstruction quality: before vs after training.
  ml::ReferenceTrainer ref(ml::AlgoKind::kLowRankMF, params);
  const std::vector<float> init =
      ml::InitialModel(ml::AlgoKind::kLowRankMF, params);
  std::vector<double> initial(init.begin(), init.end());
  std::vector<double> trained(report->final_models[0].begin(),
                              report->final_models[0].end());
  const double before = ref.Loss(data, initial);
  const double after = ref.Loss(data, trained);
  std::printf("reconstruction MSE: %.4f -> %.4f over %u epochs (%s)\n",
              before, after, report->epochs_run,
              report->total_time.ToString().c_str());
  std::printf("factor matrix: %u items x %u latent dims\n", params.dims,
              params.rank);
  return after < before * 0.8 ? 0 : 1;
}
