// Quickstart: the paper's linear-regression walkthrough (§4.3), end to end.
//
// 1. Express the update rule, merge function, and convergence in the DSL.
// 2. Load a training table into the storage engine.
// 3. Register the UDF and run the paper's query form:
//      SELECT * FROM dana.linearR('training_data_table');
//    DAnA translates the UDF to an hDFG, generates the accelerator design,
//    programs the Striders for the page layout, and trains on the FPGA
//    simulator directly from the buffer pool.

#include <cstdio>

#include "compiler/report.h"
#include "dsl/algo.h"
#include "dsl/expr.h"
#include "ml/datasets.h"
#include "ml/reference.h"
#include "runtime/query.h"

using namespace dana;

int main() {
  constexpr uint32_t kDims = 10;
  constexpr uint32_t kMergeCoef = 8;

  // --- 1. The UDF, exactly as in the paper's code snippet -----------------
  auto algo = std::make_unique<dsl::Algo>("linearR");
  auto mo = algo->Model("mo", {kDims});
  auto in = algo->Input("in", {kDims});
  auto out = algo->Output("out");
  auto lr = algo->Meta("lr", 0.3);
  auto inv = algo->Meta("inv_coef", 1.0 / kMergeCoef);

  // Gradient of the squared loss.
  auto s = dsl::Sigma(mo * in, 0);
  auto er = s - out;
  auto grad = er * in;

  // Merge function: batched gradient descent over 8 threads.
  auto g = algo->Merge(grad, kMergeCoef, dsl::OpKind::kAdd);

  // Gradient-descent optimizer.
  auto up = lr * (g * inv);
  auto mo_up = mo - up;
  if (auto st = algo->SetModel(mo, mo_up); !st.ok()) {
    std::fprintf(stderr, "SetModel: %s\n", st.ToString().c_str());
    return 1;
  }
  algo->SetEpochs(60);

  // Convergence: stop when the merged-gradient norm falls below 0.05.
  auto conv_factor = algo->Meta("conv_factor", 0.05);
  auto n = dsl::Norm(g, 0);
  algo->SetConvergence(n < conv_factor);

  // --- 2. Training data --------------------------------------------------
  ml::DatasetSpec spec;
  spec.kind = ml::AlgoKind::kLinearRegression;
  spec.dims = kDims;
  spec.tuples = 4000;
  spec.seed = 42;
  ml::Dataset data = ml::GenerateDataset(spec);

  runtime::Session session;
  storage::PageLayout layout;  // 32 KB PostgreSQL-style pages
  auto table = ml::BuildTable("training_data_table", data, layout);
  if (!table.ok()) {
    std::fprintf(stderr, "BuildTable: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  const uint64_t pages = (*table)->num_pages();
  if (auto st = session.catalog()->RegisterTable(
          std::move(table).ValueOrDie());
      !st.ok()) {
    std::fprintf(stderr, "RegisterTable: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- 3. Register the UDF and run the query ------------------------------
  if (auto st = session.RegisterUdf(std::move(algo)); !st.ok()) {
    std::fprintf(stderr, "RegisterUdf: %s\n", st.ToString().c_str());
    return 1;
  }
  auto report =
      session.ExecuteQuery("SELECT * FROM dana.linearR('training_data_table');");
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // --- 4. Results ---------------------------------------------------------
  auto compiled = session.GetCompiled("linearR");
  std::printf("%s\n", compiler::UtilizationReport(**compiled).c_str());
  std::printf("table: %llu tuples on %llu pages\n",
              static_cast<unsigned long long>(spec.tuples),
              static_cast<unsigned long long>(pages));
  std::printf("epochs run: %u (converged: %s)\n", report->epochs_run,
              report->converged ? "yes" : "no");
  std::printf("simulated accelerator time: %s (%llu FPGA cycles)\n",
              report->total_time.ToString().c_str(),
              static_cast<unsigned long long>(report->fpga_cycles));

  // Compare the FPGA-trained model against the double-precision reference.
  ml::AlgoParams params;
  params.dims = kDims;
  params.learning_rate = 0.3;
  params.merge_coef = kMergeCoef;
  params.epochs = report->epochs_run;
  ml::ReferenceTrainer ref(ml::AlgoKind::kLinearRegression, params);
  std::vector<double> model(report->final_models[0].begin(),
                            report->final_models[0].end());
  std::printf("training loss (MSE): %.6f\n", ref.Loss(data, model));
  std::printf("model[0..4]:");
  for (int i = 0; i < 5; ++i) std::printf(" %.4f", model[i]);
  std::printf("\n");
  return 0;
}
