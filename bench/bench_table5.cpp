// Reproduces Table 5: absolute end-to-end runtimes across all systems
// (MADlib+PostgreSQL, MADlib+Greenplum, DAnA+PostgreSQL), warm cache.
//
// Absolute numbers depend on the calibrated CPU cost model and the assumed
// epoch counts (EXPERIMENTS.md); the shape to check is per-column ordering
// and rough magnitudes.

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  bench::Harness::PrintHeader("Table 5: absolute runtimes across systems",
                              "Mahajan et al., PVLDB 11(11), Table 5");

  TablePrinter table({"Workload", "PG paper", "PG ours", "GP paper",
                      "GP ours", "DAnA paper", "DAnA ours"});
  for (const auto& w : ml::AllWorkloads()) {
    auto pg = harness.RunPg(w.id, runtime::CacheState::kWarm);
    auto gp = harness.RunGp(w.id, runtime::CacheState::kWarm);
    auto dana = harness.RunDana(w.id, runtime::CacheState::kWarm);
    if (!pg.ok() || !gp.ok() || !dana.ok()) {
      std::fprintf(stderr, "%s failed\n", w.id.c_str());
      return 1;
    }
    table.AddRow({w.display_name,
                  SimTime::Seconds(w.paper.pg_runtime_s).ToString(),
                  pg->total.ToString(),
                  SimTime::Seconds(w.paper.gp_runtime_s).ToString(),
                  gp->total.ToString(),
                  SimTime::Seconds(w.paper.dana_runtime_s).ToString(),
                  dana->total.ToString()});
  }
  table.Print();
  return 0;
}
