// Reproduces Figure 9: end-to-end runtime speedup over MADlib+PostgreSQL
// for the synthetic nominal (S/N) datasets, warm (9a) and cold (9b) cache.

#include <cstdio>

#include "bench_harness.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  obs::StatsWriter stats("fig9");
  stats.SetConfig("group", "sn");
  harness.set_stats(&stats);
  bench::Harness::PrintHeader(
      "Figure 9: end-to-end speedup, synthetic nominal datasets",
      "Mahajan et al., PVLDB 11(11), Figure 9a/9b");
  for (auto cache :
       {runtime::CacheState::kWarm, runtime::CacheState::kCold}) {
    auto st =
        harness.RunSpeedupFigure(ml::SyntheticNominalWorkloads(), cache);
    if (!st.ok()) {
      std::fprintf(stderr, "fig9 failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto st = bench::Harness::EmitBenchJson(stats);
  if (!st.ok()) {
    std::fprintf(stderr, "fig9 telemetry failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
