#include "bench_harness.h"

#include <cstdio>

#include "common/stats.h"
#include "common/table_printer.h"

namespace dana::bench {

Harness::Harness() = default;

runtime::DanaSystem::Options Harness::dana_options() const {
  runtime::DanaSystem::Options o;
  o.fpga = runtime::DefaultFpga();
  o.functional_epoch_cap = 2;
  return o;
}

Result<runtime::WorkloadInstance*> Harness::Instance(const std::string& id) {
  auto it = instances_.find(id);
  if (it != instances_.end()) return it->second.get();
  const ml::Workload* w = ml::FindWorkload(id);
  if (w == nullptr) {
    return Status::NotFound("unknown workload '" + id + "'");
  }
  DANA_ASSIGN_OR_RETURN(auto instance, runtime::WorkloadInstance::Create(*w));
  auto* ptr = instance.get();
  instances_[id] = std::move(instance);
  return ptr;
}

Result<const compiler::CompiledUdf*> Harness::Compiled(const std::string& id) {
  auto it = compiled_.find(id);
  if (it != compiled_.end()) return it->second.get();
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance, Instance(id));
  runtime::DanaSystem dana(cost_, dana_options());
  DANA_ASSIGN_OR_RETURN(auto udf, dana.Compile(*instance));
  auto owned = std::make_unique<compiler::CompiledUdf>(std::move(udf));
  auto* ptr = owned.get();
  compiled_[id] = std::move(owned);
  return static_cast<const compiler::CompiledUdf*>(ptr);
}

Result<runtime::SystemResult> Harness::RunPg(const std::string& id,
                                             runtime::CacheState cache) {
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance, Instance(id));
  return runtime::MadlibPostgres(cost_).Run(instance, cache,
                                            /*train_model=*/false);
}

Result<runtime::SystemResult> Harness::RunGp(const std::string& id,
                                             runtime::CacheState cache,
                                             uint32_t segments) {
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance, Instance(id));
  return runtime::MadlibGreenplum(cost_, segments)
      .Run(instance, cache, /*train_model=*/false);
}

Result<runtime::SystemResult> Harness::RunDana(
    const std::string& id, runtime::CacheState cache,
    const accel::RunOptions& run_overrides) {
  DANA_ASSIGN_OR_RETURN(const compiler::CompiledUdf* udf, Compiled(id));
  return RunDanaCompiled(*udf, id, cache, run_overrides);
}

Result<runtime::SystemResult> Harness::RunDanaCompiled(
    const compiler::CompiledUdf& udf, const std::string& id,
    runtime::CacheState cache, const accel::RunOptions& run_overrides) {
  DANA_ASSIGN_OR_RETURN(runtime::WorkloadInstance * instance, Instance(id));
  runtime::DanaSystem::Options options = dana_options();
  options.run = run_overrides;
  runtime::DanaSystem dana(cost_, options);
  return dana.RunCompiled(udf, instance, cache);
}

Status Harness::RunSpeedupFigure(const std::vector<ml::Workload>& workloads,
                                 runtime::CacheState cache) {
  const bool warm = cache == runtime::CacheState::kWarm;
  std::printf("--- %s cache ---\n", warm ? "warm" : "cold");
  TablePrinter table({"Workload", "GP paper", "GP ours", "DAnA paper",
                      "DAnA ours", "DAnA runtime"});
  std::vector<double> gp_ours, dana_ours, gp_paper, dana_paper;
  for (const auto& w : workloads) {
    DANA_ASSIGN_OR_RETURN(auto pg, RunPg(w.id, cache));
    DANA_ASSIGN_OR_RETURN(auto gp, RunGp(w.id, cache));
    DANA_ASSIGN_OR_RETURN(auto dana, RunDana(w.id, cache));
    const double gp_speedup = pg.total / gp.total;
    const double dana_speedup = pg.total / dana.total;
    gp_ours.push_back(gp_speedup);
    dana_ours.push_back(dana_speedup);
    gp_paper.push_back(warm ? w.paper.gp_speedup_warm
                            : w.paper.gp_speedup_cold);
    dana_paper.push_back(warm ? w.paper.dana_speedup_warm
                              : w.paper.dana_speedup_cold);
    table.AddRow({w.display_name, TablePrinter::Speedup(gp_paper.back()),
                  TablePrinter::Speedup(gp_speedup),
                  TablePrinter::Speedup(dana_paper.back()),
                  TablePrinter::Speedup(dana_speedup),
                  dana.total.ToString()});
  }
  table.AddSeparator();
  table.AddRow({"Geomean", TablePrinter::Speedup(GeoMean(gp_paper)),
                TablePrinter::Speedup(GeoMean(gp_ours)),
                TablePrinter::Speedup(GeoMean(dana_paper)),
                TablePrinter::Speedup(GeoMean(dana_ours)), ""});
  table.Print();
  if (stats_ != nullptr) {
    const std::string prefix = warm ? "warm." : "cold.";
    stats_->Add(prefix + "gp_geomean_speedup", GeoMean(gp_ours),
                obs::Direction::kHigherIsBetter);
    stats_->Add(prefix + "dana_geomean_speedup", GeoMean(dana_ours),
                obs::Direction::kHigherIsBetter);
    stats_->Add(prefix + "workloads",
                static_cast<double>(workloads.size()),
                obs::Direction::kInfo);
  }
  return Status::OK();
}

Status Harness::EmitBenchJson(const obs::StatsWriter& writer) {
  DANA_ASSIGN_OR_RETURN(std::string path, writer.Write());
  std::printf("\nbench telemetry written to %s (%zu metrics)\n",
              path.c_str(), writer.metric_count());
  return Status::OK();
}

void Harness::PrintHeader(const std::string& experiment,
                          const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "(speedups are simulated end-to-end runtimes at paper scale; 'paper' "
      "columns are the published values)\n\n");
}

}  // namespace dana::bench
