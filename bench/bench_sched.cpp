// Concurrent multi-query scheduling: policy x slot-count sweep.
//
// A Zipfian request mix over the public Table 3 workloads (hot algorithms
// are the short interactive ones, the long LRMF trainings are rare) arrives
// as a Poisson stream; the scheduler multiplexes the requests onto N
// simulated accelerator slots under each policy. Reports throughput and
// p50/p95/p99 latency; service times come from the cycle-level DAnA
// simulator (measured once per algorithm, reused via the compile cache).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_harness.h"
#include "common/table_printer.h"
#include "obs/stats_writer.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"
#include "storage/buffer_pool.h"

int main() {
  using namespace dana;
  bench::Harness::PrintHeader(
      "Multi-query scheduling: policy x slot-count sweep",
      "beyond the paper: concurrent serving of Table 3 workloads");

  // DANA_BENCH_FAST=1 (CI) trims each sweep's request stream; the win
  // assertions below hold in both configurations, and BENCH_sched.json
  // records which one produced the numbers ("config"/"fast"), so the
  // regression gate refuses to compare across them.
  const bool fast = std::getenv("DANA_BENCH_FAST") != nullptr;
  const auto bench_start = std::chrono::steady_clock::now();
  obs::StatsWriter stats("sched");
  stats.SetConfig("fast", fast);

  // Wall-clock accounting. `timed_run` wraps every Scheduler::Run so the
  // time spent inside the discrete-event loop (not service-time
  // measurement, not table printing) accumulates into one simulator
  // throughput number; `end_sweep` closes out a sweep with its own
  // wall_s.<sweep> info metric, so a slowdown is attributable to a sweep
  // instead of buried in a single whole-binary wall time.
  double sched_wall_s = 0.0;
  uint64_t sched_queries = 0;
  auto timed_run = [&](auto&& scheduler, const auto& requests) {
    const auto t0 = std::chrono::steady_clock::now();
    auto report = scheduler.Run(requests);
    sched_wall_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (report.ok()) {
      sched_queries += static_cast<uint64_t>(report->queries.size());
    }
    return report;
  };
  auto sweep_start = bench_start;
  auto end_sweep = [&](const char* name) {
    const auto now = std::chrono::steady_clock::now();
    stats.Add(std::string("wall_s.") + name,
              std::chrono::duration<double>(now - sweep_start).count(),
              obs::Direction::kInfo);
    sweep_start = now;
  };

  // The policy and batching sweeps compare scheduling disciplines in the
  // warm steady-state regime (every run finds its pool warm, placement is
  // costless) — the PR 2 executor, kept so those comparisons isolate queue
  // discipline from cache effects. The affinity sweep below switches
  // residency modeling on.
  sched::DanaQueryExecutor::Options warm_opts;
  warm_opts.model_residency = false;
  sched::DanaQueryExecutor executor(warm_opts);

  // Popularity ranking: estimated-shortest first.
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& w : ml::PublicWorkloads()) {
    auto est = executor.Estimate(w.id);
    if (!est.ok()) {
      std::fprintf(stderr, "%s: %s\n", w.id.c_str(),
                   est.status().ToString().c_str());
      return 1;
    }
    ranked.emplace_back(est->seconds(), w.id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> catalog;
  std::vector<double> est_s;
  for (const auto& [est, id] : ranked) {
    catalog.push_back(id);
    est_s.push_back(est);
  }

  // Zipf-weighted mean of the *measured* service times fixes the arrival
  // rate so one slot runs slightly overloaded and four slots run
  // comfortably. Measuring here is free: the executor memoizes these runs
  // and every scheduled query reuses them.
  sched::DriverOptions driver_opts;
  driver_opts.num_queries = fast ? 60 : 100;
  driver_opts.zipf_exponent = 0.99;
  stats.SetConfig("policy_queries",
                  static_cast<double>(driver_opts.num_queries));
  auto mean_service = sched::WeightedMeanServiceSeconds(
      executor, catalog, sched::Popularity::kZipfian,
      driver_opts.zipf_exponent);
  if (!mean_service.ok()) {
    std::fprintf(stderr, "%s\n", mean_service.status().ToString().c_str());
    return 1;
  }
  const double weighted_service = *mean_service;
  driver_opts.arrival_rate_qps = 1.3 / weighted_service;
  std::printf("catalog: %zu public workloads, zipf s=%.2f, arrival rate "
              "%.3f qps (zipf-weighted mean service %.1f s, SJF estimates "
              "%.2f..%.2f s)\n\n",
              catalog.size(), driver_opts.zipf_exponent,
              driver_opts.arrival_rate_qps, weighted_service, est_s.front(),
              est_s.back());

  sched::WorkloadDriver driver(catalog, driver_opts);
  auto stream = driver.Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"policy", "slots", "queries", "throughput (q/h)",
                      "mean lat", "p50", "p95", "p99", "mean wait",
                      "compile hits"});
  std::vector<std::pair<double, double>> fcfs_vs_sjf;  // mean lat per slots
  for (uint32_t slots : {1u, 2u, 4u}) {
    double fcfs_mean = 0, sjf_mean = 0;
    for (sched::Policy policy :
         {sched::Policy::kFcfs, sched::Policy::kSjf,
          sched::Policy::kRoundRobin}) {
      sched::Scheduler scheduler({.slots = slots, .policy = policy},
                                 &executor);
      auto report = timed_run(scheduler, *stream);
      if (!report.ok()) {
        std::fprintf(stderr, "%s/%u: %s\n", sched::PolicyName(policy), slots,
                     report.status().ToString().c_str());
        return 1;
      }
      if (policy == sched::Policy::kFcfs) {
        fcfs_mean = report->MeanLatency().seconds();
      } else if (policy == sched::Policy::kSjf) {
        sjf_mean = report->MeanLatency().seconds();
      }
      if (slots == 2) {
        // The contended-but-not-saturated point: the headline per-policy
        // scoreboard the CI gate watches.
        const std::string p = std::string("policy.") +
                              sched::PolicyName(policy);
        stats.Add(p + ".throughput_qps", report->ThroughputQps(),
                  obs::Direction::kHigherIsBetter);
        stats.Add(p + ".p50_s", report->LatencyPercentile(50).seconds(),
                  obs::Direction::kLowerIsBetter);
        stats.Add(p + ".p95_s", report->LatencyPercentile(95).seconds(),
                  obs::Direction::kLowerIsBetter);
        stats.Add(p + ".p99_s", report->LatencyPercentile(99).seconds(),
                  obs::Direction::kLowerIsBetter);
        stats.Add(p + ".mean_wait_s", report->MeanWait().seconds(),
                  obs::Direction::kLowerIsBetter);
      }
      table.AddRow(
          {sched::PolicyName(policy), std::to_string(slots),
           std::to_string(report->queries.size()),
           TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
           report->MeanLatency().ToString(),
           report->LatencyPercentile(50).ToString(),
           report->LatencyPercentile(95).ToString(),
           report->LatencyPercentile(99).ToString(),
           report->MeanWait().ToString(),
           std::to_string(report->compile_hits) + "/" +
               std::to_string(report->compile_hits +
                              report->compile_misses)});
    }
    fcfs_vs_sjf.emplace_back(fcfs_mean, sjf_mean);
    if (slots != 4) table.AddSeparator();
  }
  table.Print();

  std::printf("\ncompiler invocations across the whole sweep: %llu "
              "(cache served %llu repeat queries)\n",
              static_cast<unsigned long long>(
                  executor.compile_cache().misses()),
              static_cast<unsigned long long>(executor.compile_cache().hits()));
  const uint32_t slot_counts[] = {1, 2, 4};
  bool sjf_wins_somewhere = false;
  for (size_t i = 0; i < fcfs_vs_sjf.size(); ++i) {
    const auto& [fcfs_mean, sjf_mean] = fcfs_vs_sjf[i];
    if (sjf_mean < fcfs_mean) {
      sjf_wins_somewhere = true;
      std::printf("SJF beats FCFS mean latency at %u slot(s): %.1f s vs "
                  "%.1f s\n",
                  slot_counts[i], sjf_mean, fcfs_mean);
    }
  }
  if (!sjf_wins_somewhere) {
    std::printf("SJF beats FCFS mean latency in NO reported configuration\n");
  }
  end_sweep("policy");

  // --- Cross-query batching sweep ----------------------------------------
  // A hotter Zipfian mix (theta 1.2: the head algorithm dominates) on 2
  // slots, overloaded so queues form. Batched dispatch coalesces up to K
  // co-resident same-algorithm queries into one accelerator pass: the page
  // stream is paid once per batch (shared) while engine-merge compute
  // scales per query (private).
  sched::DriverOptions batch_opts = driver_opts;
  batch_opts.zipf_exponent = 1.2;
  // Not trimmed in fast mode: the batch=4-wins-everywhere assertion is
  // tail-sensitive at smaller streams (throughput is queries/makespan, and
  // a shorter stream's makespan is dominated by the last few completions),
  // and the sweep is cheap — service times are memoized, only the
  // discrete-event scheduling re-runs.
  batch_opts.num_queries = 150;
  stats.SetConfig("batch_queries",
                  static_cast<double>(batch_opts.num_queries));
  // Recalibrate against the hotter mix and overload both slots (1.4x their
  // capacity) so an admission queue actually builds up — batches can only
  // form from co-resident queries.
  auto batch_mean = sched::WeightedMeanServiceSeconds(
      executor, catalog, sched::Popularity::kZipfian,
      batch_opts.zipf_exponent);
  if (!batch_mean.ok()) {
    std::fprintf(stderr, "%s\n", batch_mean.status().ToString().c_str());
    return 1;
  }
  batch_opts.arrival_rate_qps = 1.4 * 2 / *batch_mean;
  sched::WorkloadDriver batch_driver(catalog, batch_opts);
  auto batch_stream = batch_driver.Generate();
  if (!batch_stream.ok()) {
    std::fprintf(stderr, "%s\n", batch_stream.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCross-query batching sweep: 2 slots, zipf s=%.2f, "
              "%.3f qps\n",
              batch_opts.zipf_exponent, batch_opts.arrival_rate_qps);
  TablePrinter btable({"policy", "max batch", "throughput (q/h)", "mean lat",
                       "p95", "mean batch", "shared", "private"});
  bool batching_wins = true;
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf,
        sched::Policy::kRoundRobin}) {
    double qps_b1 = 0, lat_b1 = 0;
    for (uint32_t max_batch : {1u, 4u, 8u}) {
      sched::Scheduler scheduler(
          {.slots = 2, .policy = policy, .max_batch = max_batch}, &executor);
      auto report = timed_run(scheduler, *batch_stream);
      if (!report.ok()) {
        std::fprintf(stderr, "%s/batch=%u: %s\n", sched::PolicyName(policy),
                     max_batch, report.status().ToString().c_str());
        return 1;
      }
      if (policy == sched::Policy::kFcfs) {
        const std::string b = "batch.b" + std::to_string(max_batch);
        stats.Add(b + ".throughput_qps", report->ThroughputQps(),
                  obs::Direction::kHigherIsBetter);
        stats.Add(b + ".mean_lat_s", report->MeanLatency().seconds(),
                  obs::Direction::kLowerIsBetter);
        stats.Add(b + ".mean_batch", report->MeanBatchSize(),
                  obs::Direction::kInfo);
      }
      if (max_batch == 1) {
        qps_b1 = report->ThroughputQps();
        lat_b1 = report->MeanLatency().seconds();
      } else if (max_batch == 4 &&
                 (report->ThroughputQps() <= qps_b1 ||
                  report->MeanLatency().seconds() >= lat_b1)) {
        batching_wins = false;
      }
      btable.AddRow({sched::PolicyName(policy), std::to_string(max_batch),
                     TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
                     report->MeanLatency().ToString(),
                     report->LatencyPercentile(95).ToString(),
                     TablePrinter::Fmt(report->MeanBatchSize(), 2),
                     report->shared_service.ToString(),
                     report->private_service.ToString()});
    }
    if (policy != sched::Policy::kRoundRobin) btable.AddSeparator();
  }
  btable.Print();
  std::printf("%s\n",
              batching_wins
                  ? "batch=4 beats batch=1 on throughput AND mean latency "
                    "under every policy"
                  : "batching does NOT beat per-query dispatch somewhere");
  end_sweep("batch");

  // --- Slot-affinity / cache-residency sweep ------------------------------
  // Placement realism on: this executor prices per-slot cache residency
  // from one shared *physical* pool per slot (the default; each table's
  // sweep passes through the pool in scale-normalized frames), so a slot's
  // first run of a table is charged a genuinely cold pool, a repeat on the
  // same slot is warm, and residency is whatever the clock sweep actually
  // left resident after other tables' installs. Affinity dispatch
  // (affinity_weight > 0) sends each query to the slot already warm for
  // its table and prefers warm queued candidates; weight 0 is the
  // affinity-blind PR 2 dispatch rule bit-for-bit (pinned by the
  // sched_golden test suite), so the two rows differ only in placement.
  // The mix is the synthetic suite — tables of 0.2x to 4.8x the buffer
  // pool — because that is where placement has teeth: every big-table run
  // sweeps a slot's pool, so a misplaced query pays minutes of re-streamed
  // I/O that a warm slot would have skipped.
  sched::DanaQueryExecutor res_executor;
  std::vector<std::pair<double, std::string>> big_ranked;
  for (const auto& group :
       {ml::SyntheticNominalWorkloads(), ml::SyntheticExtensiveWorkloads()}) {
    for (const auto& w : group) {
      auto est = res_executor.Estimate(w.id);
      if (!est.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.id.c_str(),
                     est.status().ToString().c_str());
        return 1;
      }
      big_ranked.emplace_back(est->seconds(), w.id);
    }
  }
  std::sort(big_ranked.begin(), big_ranked.end());
  std::vector<std::string> big_catalog;
  for (const auto& [est, id] : big_ranked) big_catalog.push_back(id);

  // Moderate load (not overload): with queues short, affinity acts through
  // slot *choice* — the affinity-blind rule dispatches to the longest-idle
  // slot, the worst possible placement for locality, while affinity keeps a
  // repeating table on the slot still holding its pages.
  sched::DriverOptions affinity_opts = driver_opts;
  affinity_opts.zipf_exponent = 1.2;
  affinity_opts.num_queries = fast ? 80 : 120;
  stats.SetConfig("affinity_queries",
                  static_cast<double>(affinity_opts.num_queries));
  auto affinity_mean = sched::WeightedMeanServiceSeconds(
      res_executor, big_catalog, sched::Popularity::kZipfian,
      affinity_opts.zipf_exponent);
  if (!affinity_mean.ok()) {
    std::fprintf(stderr, "%s\n", affinity_mean.status().ToString().c_str());
    return 1;
  }
  affinity_opts.arrival_rate_qps = 0.75 * 4 / *affinity_mean;
  sched::WorkloadDriver affinity_driver(big_catalog, affinity_opts);
  auto affinity_stream = affinity_driver.Generate();
  if (!affinity_stream.ok()) {
    std::fprintf(stderr, "%s\n",
                 affinity_stream.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSlot-affinity sweep (physical per-slot shared pools charge "
              "residency): synthetic suite, 4 slots, batch 4, zipf s=%.2f, "
              "%.3f qps\n",
              affinity_opts.zipf_exponent, affinity_opts.arrival_rate_qps);
  TablePrinter atable({"policy", "affinity", "throughput (q/h)", "mean lat",
                       "p95", "warm hits", "mean warm", "mean batch"});
  bool affinity_wins = true;
  bool affinity_deterministic = true;
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf,
        sched::Policy::kRoundRobin}) {
    double lat_a0 = 0, warm_a0 = 0;
    for (double affinity : {0.0, 0.5}) {
      sched::SchedulerOptions opts{.slots = 4,
                                   .policy = policy,
                                   .max_batch = 4,
                                   .sjf_aging_weight = 0,
                                   .affinity_weight = affinity};
      res_executor.ResetResidency();
      auto report =
          timed_run(sched::Scheduler(opts, &res_executor), *affinity_stream);
      if (!report.ok()) {
        std::fprintf(stderr, "%s/affinity=%.1f: %s\n",
                     sched::PolicyName(policy), affinity,
                     report.status().ToString().c_str());
        return 1;
      }
      // Determinism across repeats: a second run from an equally cold
      // machine must reproduce every completion bit-for-bit.
      res_executor.ResetResidency();
      auto repeat =
          timed_run(sched::Scheduler(opts, &res_executor), *affinity_stream);
      if (!repeat.ok() || repeat->queries.size() != report->queries.size()) {
        affinity_deterministic = false;
      } else {
        for (size_t i = 0; i < report->queries.size(); ++i) {
          if (report->queries[i].id != repeat->queries[i].id ||
              report->queries[i].slot != repeat->queries[i].slot ||
              report->queries[i].completion.nanos() !=
                  repeat->queries[i].completion.nanos()) {
            affinity_deterministic = false;
            break;
          }
        }
      }
      if (affinity == 0.5) {
        const std::string a = std::string("affinity.") +
                              sched::PolicyName(policy);
        stats.Add(a + ".warm_hit_rate", report->WarmHitRate(),
                  obs::Direction::kHigherIsBetter);
        stats.Add(a + ".mean_lat_s", report->MeanLatency().seconds(),
                  obs::Direction::kLowerIsBetter);
        stats.Add(a + ".p95_s", report->LatencyPercentile(95).seconds(),
                  obs::Direction::kLowerIsBetter);
      }
      if (affinity == 0.0) {
        lat_a0 = report->MeanLatency().seconds();
        warm_a0 = report->WarmHitRate();
      } else if (report->MeanLatency().seconds() >= lat_a0 ||
                 report->WarmHitRate() <= warm_a0) {
        affinity_wins = false;
        std::printf("  [affinity does not win under %s: lat %.1f vs %.1f s, "
                    "warm %.0f%% vs %.0f%%]\n",
                    sched::PolicyName(policy),
                    report->MeanLatency().seconds(), lat_a0,
                    report->WarmHitRate() * 100, warm_a0 * 100);
      }
      atable.AddRow({sched::PolicyName(policy), TablePrinter::Fmt(affinity, 1),
                     TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
                     report->MeanLatency().ToString(),
                     report->LatencyPercentile(95).ToString(),
                     TablePrinter::Fmt(report->WarmHitRate() * 100.0, 0) + "%",
                     TablePrinter::Fmt(report->MeanWarmFraction(), 2),
                     TablePrinter::Fmt(report->MeanBatchSize(), 2)});
    }
    if (policy != sched::Policy::kRoundRobin) atable.AddSeparator();
  }
  atable.Print();
  std::printf("%s\n%s\n",
              affinity_wins
                  ? "affinity>0 beats affinity=0 on mean latency AND warm-hit "
                    "rate under every policy (batch=4, Zipfian)"
                  : "affinity does NOT beat affinity-blind dispatch somewhere",
              affinity_deterministic
                  ? "affinity sweep is deterministic across repeats"
                  : "affinity sweep is NOT deterministic across repeats");
  end_sweep("affinity");

  // --- Mixed-workload preemption sweep ------------------------------------
  // Interactive analysts share the machine with long batch trainings: the
  // three shortest-estimate ranks of the synthetic catalog (also the
  // hottest under the Zipfian mix) are tagged latency-sensitive, the rest
  // are batch runs of up to ~120 epochs. With the preemption quantum off a
  // dispatched training blocks interactive queries for its whole service;
  // with it on, a waiting interactive query checkpoints the
  // longest-remaining batch run at its next epoch boundary and takes the
  // slot, at a 50 ms context switch per preemption.
  sched::DriverOptions mixed_opts = affinity_opts;
  mixed_opts.interactive_ranks = 3;
  mixed_opts.num_queries = fast ? 80 : 120;
  stats.SetConfig("mixed_queries",
                  static_cast<double>(mixed_opts.num_queries));
  // Load the machine enough that interactive queries actually wait behind
  // batch occupancy on 2 slots.
  mixed_opts.arrival_rate_qps = 0.9 * 2 / *affinity_mean;
  sched::WorkloadDriver mixed_driver(big_catalog, mixed_opts);
  auto mixed_stream = mixed_driver.Generate();
  if (!mixed_stream.ok()) {
    std::fprintf(stderr, "%s\n", mixed_stream.status().ToString().c_str());
    return 1;
  }
  const dana::SimTime ctx_cost = dana::SimTime::Millis(50);
  std::printf("\nMixed-workload preemption sweep: synthetic suite, 2 slots, "
              "3 interactive ranks, quantum 8 epochs, ctx 50 ms, %.3f qps\n",
              mixed_opts.arrival_rate_qps);
  TablePrinter ptable({"policy", "quantum", "int p95", "int mean",
                       "batch p95", "batch thr (q/h)", "preempts",
                       "ctx overhead", "makespan"});
  bool preemption_wins = true;
  bool batch_overhead_bounded = true;
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf,
        sched::Policy::kRoundRobin}) {
    double int_p95_off = 0, batch_thr_off = 0;
    for (uint32_t quantum : {0u, 8u}) {
      sched::SchedulerOptions opts{.slots = 2,
                                   .policy = policy,
                                   .max_batch = 4,
                                   .sjf_aging_weight = 0,
                                   .affinity_weight = 0.5,
                                   .preemption_quantum_epochs = quantum,
                                   .context_switch_cost = ctx_cost,
                                   .batch_window = dana::SimTime::Zero()};
      res_executor.ResetResidency();
      auto report =
          timed_run(sched::Scheduler(opts, &res_executor), *mixed_stream);
      if (!report.ok()) {
        std::fprintf(stderr, "%s/quantum=%u: %s\n",
                     sched::PolicyName(policy), quantum,
                     report.status().ToString().c_str());
        return 1;
      }
      const auto kInt = sched::QueryClass::kInteractive;
      const auto kBatch = sched::QueryClass::kBatch;
      const double int_p95 =
          report->ClassLatencyPercentile(kInt, 95).seconds();
      const double batch_thr = report->ClassThroughputQps(kBatch) * 3600.0;
      if (quantum == 8) {
        const std::string pr = std::string("preempt.") +
                               sched::PolicyName(policy);
        stats.Add(pr + ".int_p95_s", int_p95, obs::Direction::kLowerIsBetter);
        stats.Add(pr + ".batch_throughput_qph", batch_thr,
                  obs::Direction::kHigherIsBetter);
        stats.Add(pr + ".ctx_overhead_s",
                  report->preemption_overhead.seconds(),
                  obs::Direction::kInfo);
        stats.Add(pr + ".preemptions",
                  static_cast<double>(report->preemptions),
                  obs::Direction::kInfo);
      }
      if (quantum == 0) {
        int_p95_off = int_p95;
        batch_thr_off = batch_thr;
      } else {
        if (int_p95 >= int_p95_off) {
          preemption_wins = false;
          std::printf("  [interactive p95 does not improve under %s: "
                      "%.1f s vs %.1f s]\n",
                      sched::PolicyName(policy), int_p95, int_p95_off);
        }
        // The batch side pays for the SLO: bounded, reported overhead.
        if (batch_thr < 0.75 * batch_thr_off) {
          batch_overhead_bounded = false;
          std::printf("  [batch throughput degraded more than 25%% under "
                      "%s: %.1f vs %.1f q/h]\n",
                      sched::PolicyName(policy), batch_thr, batch_thr_off);
        } else {
          std::printf("  %s: interactive p95 %.1f -> %.1f s (-%.0f%%), "
                      "batch throughput %.1f -> %.1f q/h (%.1f%% overhead)\n",
                      sched::PolicyName(policy), int_p95_off, int_p95,
                      (1 - int_p95 / int_p95_off) * 100, batch_thr_off,
                      batch_thr, (1 - batch_thr / batch_thr_off) * 100);
        }
      }
      ptable.AddRow(
          {sched::PolicyName(policy), std::to_string(quantum),
           report->ClassLatencyPercentile(kInt, 95).ToString(),
           report->ClassMeanLatency(kInt).ToString(),
           report->ClassLatencyPercentile(kBatch, 95).ToString(),
           TablePrinter::Fmt(batch_thr, 1),
           std::to_string(report->preemptions),
           report->preemption_overhead.ToString(),
           report->makespan.ToString()});
    }
    if (policy != sched::Policy::kRoundRobin) ptable.AddSeparator();
  }
  ptable.Print();
  std::printf("%s\n",
              preemption_wins && batch_overhead_bounded
                  ? "preemption improves interactive p95 under every policy "
                    "with bounded batch-throughput overhead"
                  : "preemption does NOT deliver the SLO trade-off somewhere");
  end_sweep("preempt");

  // --- Batching window x affinity sweep -----------------------------------
  // A freed slot may hold up to the window for same-algorithm arrivals to
  // coalesce a larger batch: queueing latency is spent to buy batch
  // amortization. Swept against affinity because placement interacts with
  // waiting — held batches dispatch to the warm slot chosen at hold start.
  // Moderate load, where queues are short and batches otherwise barely
  // form.
  sched::DriverOptions window_opts = affinity_opts;
  window_opts.num_queries = fast ? 70 : 100;
  stats.SetConfig("window_queries",
                  static_cast<double>(window_opts.num_queries));
  window_opts.arrival_rate_qps = 0.85 * 2 / *affinity_mean;
  sched::WorkloadDriver window_driver(big_catalog, window_opts);
  auto window_stream = window_driver.Generate();
  if (!window_stream.ok()) {
    std::fprintf(stderr, "%s\n", window_stream.status().ToString().c_str());
    return 1;
  }
  const double mean_svc_s = *affinity_mean;
  std::printf("\nBatching window x affinity sweep: synthetic suite, 2 slots, "
              "batch 8, fcfs, %.3f qps (mean service %.0f s)\n",
              window_opts.arrival_rate_qps, mean_svc_s);
  TablePrinter wtable({"window", "affinity", "throughput (q/h)", "mean lat",
                       "p95", "mean batch", "mean wait"});
  bool window_coalesces = true;
  double batch_w0 = 0;
  for (double window_frac : {0.0, 0.25, 1.0}) {
    for (double w_affinity : {0.0, 0.5}) {
      sched::SchedulerOptions opts{
          .slots = 2,
          .policy = sched::Policy::kFcfs,
          .max_batch = 8,
          .sjf_aging_weight = 0,
          .affinity_weight = w_affinity,
          .preemption_quantum_epochs = 0,
          .context_switch_cost = dana::SimTime::Zero(),
          .batch_window = dana::SimTime::Seconds(window_frac * mean_svc_s)};
      res_executor.ResetResidency();
      auto report =
          timed_run(sched::Scheduler(opts, &res_executor), *window_stream);
      if (!report.ok()) {
        std::fprintf(stderr, "window=%.2f/affinity=%.1f: %s\n", window_frac,
                     w_affinity, report.status().ToString().c_str());
        return 1;
      }
      if (w_affinity == 0.0) {
        if (window_frac == 0.0) {
          batch_w0 = report->MeanBatchSize();
        } else if (window_frac == 1.0) {
          if (report->MeanBatchSize() <= batch_w0) window_coalesces = false;
          stats.Add("window.full.mean_batch", report->MeanBatchSize(),
                    obs::Direction::kHigherIsBetter);
        }
      }
      wtable.AddRow({TablePrinter::Fmt(window_frac * mean_svc_s, 0) + " s",
                     TablePrinter::Fmt(w_affinity, 1),
                     TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
                     report->MeanLatency().ToString(),
                     report->LatencyPercentile(95).ToString(),
                     TablePrinter::Fmt(report->MeanBatchSize(), 2),
                     report->MeanWait().ToString()});
    }
    if (window_frac != 1.0) wtable.AddSeparator();
  }
  wtable.Print();
  std::printf("%s\n", window_coalesces
                          ? "the full batching window forms larger batches "
                            "than windowless dispatch (fcfs, affinity 0)"
                          : "the batching window does NOT form larger "
                            "batches");

  end_sweep("window");

  // --- Tiered-hierarchy eviction sweep ------------------------------------
  // Storage-level replay: policy x tier-size sweep of the buffer-pool
  // hierarchy itself, no scheduler in the loop. Six synthetic tables from
  // 0.25x to 3.2x the *smallest* pool (fixed absolute sizes, so doubling
  // the pool genuinely fits more of the mix) are scanned under a
  // hottest-first Zipfian request stream (the small tables are the hot
  // ones — the cacheable regime); each request counts a warm hit when at
  // least half its table
  // is held across the pool + OS tiers (an os-warm page counts half, as
  // the executor's placement heuristic weighs it), then sweeps the table
  // through the pool. The gated figure of merit is warm hits per kframe of
  // total configured memory — a policy only wins by earning hits, not by
  // buying frames.
  bool tier_wins = false;
  bool tier_deterministic = true;
  {
    struct TierConfig {
      storage::EvictionKind kind;
      uint64_t pool;
      uint64_t os;
    };
    const std::vector<TierConfig> configs = {
        {storage::EvictionKind::kClock, 256, 0},
        {storage::EvictionKind::kLru, 256, 0},
        {storage::EvictionKind::kPromotional, 256, 0},
        {storage::EvictionKind::kLru, 256, 512},
        {storage::EvictionKind::kPromotional, 256, 512},
        {storage::EvictionKind::kClock, 512, 0},
        {storage::EvictionKind::kLru, 512, 0},
        {storage::EvictionKind::kPromotional, 512, 0},
        {storage::EvictionKind::kLru, 512, 1024},
        {storage::EvictionKind::kPromotional, 512, 1024},
    };
    const uint32_t tier_requests = fast ? 400u : 1000u;
    stats.SetConfig("tier_requests", static_cast<double>(tier_requests));
    const double ratios[] = {0.25, 0.4, 0.6, 0.9, 1.6, 3.2};
    constexpr size_t kTables = sizeof(ratios) / sizeof(ratios[0]);

    auto run_config = [&](const TierConfig& cfg) {
      auto pool = storage::BufferPool::SizedInFrames(
          cfg.pool, 8 * 1024, storage::DiskModel{}, cfg.kind, cfg.os);
      uint32_t tids[kTables];
      uint64_t pages[kTables];
      for (size_t i = 0; i < kTables; ++i) {
        std::string tname = "t";
        tname += std::to_string(i);
        tids[i] = pool.InternTable(tname);
        pages[i] = std::max<uint64_t>(
            1, static_cast<uint64_t>(ratios[i] * 256.0));
      }
      // Hottest-first Zipf(0.99) over the tables, sampled from a fixed
      // 64-bit LCG — bit-identical across runs and platforms.
      double cum[kTables];
      double total = 0.0;
      for (size_t i = 0; i < kTables; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), 0.99);
        cum[i] = total;
      }
      uint64_t x = 0x9E3779B97F4A7C15ull;
      uint64_t warm_hits = 0;
      for (uint32_t r = 0; r < tier_requests; ++r) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const double u =
            static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0) *
            total;
        size_t t = 0;
        while (t + 1 < kTables && u > cum[t]) ++t;
        const double warm =
            pool.ResidentShare(tids[t], pages[t]) +
            0.5 * pool.TierResidentShare(storage::BufferPool::kOsTier,
                                         tids[t], pages[t]);
        if (warm >= 0.5) ++warm_hits;
        pool.ScanTable(tids[t], pages[t]);
      }
      return warm_hits;
    };

    std::vector<uint64_t> tier_hits;
    for (const auto& cfg : configs) tier_hits.push_back(run_config(cfg));
    // Determinism: a second replay from a fresh pool must reproduce every
    // count exactly (the whole sweep is pure simulated state).
    for (size_t i = 0; i < configs.size(); ++i) {
      if (run_config(configs[i]) != tier_hits[i]) tier_deterministic = false;
    }

    std::printf("\nTiered-hierarchy eviction sweep: %zu tables "
                "(0.25x..3.2x pool), zipf s=0.99, %u requests\n",
                kTables, tier_requests);
    TablePrinter ttable({"policy", "pool frames", "os frames", "warm hits",
                         "hit rate", "hits/kframe"});
    for (size_t i = 0; i < configs.size(); ++i) {
      const TierConfig& cfg = configs[i];
      const double per_kframe =
          static_cast<double>(tier_hits[i]) * 1000.0 /
          static_cast<double>(cfg.pool + cfg.os);
      const std::string name = storage::EvictionKindName(cfg.kind);
      std::string metric = "tier.";
      metric += name;
      metric += ".p";
      metric += std::to_string(cfg.pool);
      metric += ".os";
      metric += std::to_string(cfg.os);
      metric += ".warm_hits_per_kframe";
      stats.Add(metric, per_kframe, obs::Direction::kHigherIsBetter);
      ttable.AddRow({name, std::to_string(cfg.pool), std::to_string(cfg.os),
                     std::to_string(tier_hits[i]),
                     TablePrinter::Fmt(static_cast<double>(tier_hits[i]) *
                                           100.0 / tier_requests,
                                       1) +
                         "%",
                     TablePrinter::Fmt(per_kframe, 1)});
    }
    ttable.Print();
    // The headline claim: at an identical memory footprint (same pool, no
    // OS tier), LRU or promotional eviction earns more warm hits than the
    // legacy clock sweep in at least one configuration.
    for (uint64_t pool_frames : {256ull, 512ull}) {
      uint64_t clock_hits = 0, lru_hits = 0, promo_hits = 0;
      for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].pool != pool_frames || configs[i].os != 0) continue;
        if (configs[i].kind == storage::EvictionKind::kClock) {
          clock_hits = tier_hits[i];
        } else if (configs[i].kind == storage::EvictionKind::kLru) {
          lru_hits = tier_hits[i];
        } else {
          promo_hits = tier_hits[i];
        }
      }
      if (lru_hits > clock_hits || promo_hits > clock_hits) {
        tier_wins = true;
        std::printf("at %llu frames: clock %llu, lru %llu, promotional "
                    "%llu warm hits — an evicting policy beats clock\n",
                    static_cast<unsigned long long>(pool_frames),
                    static_cast<unsigned long long>(clock_hits),
                    static_cast<unsigned long long>(lru_hits),
                    static_cast<unsigned long long>(promo_hits));
      }
    }
    if (!tier_wins) {
      std::printf("NO evicting policy beats clock at an equal footprint\n");
    }
    std::printf("%s\n", tier_deterministic
                            ? "tier sweep is deterministic across replays"
                            : "tier sweep is NOT deterministic");
  }
  end_sweep("tier");

  // Total wall time stays for trend-watching (kInfo, never gated); the
  // per-sweep wall_s.* entries above localize where it went. The simulator
  // throughput across every Run call IS gated, at its own wide tolerance:
  // wall-clock on a shared runner jitters, but a halving means the event
  // loop got structurally slower.
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  stats.Add("wall_time_s", wall_s, obs::Direction::kInfo);
  if (sched_wall_s > 0.0) {
    stats.Add("sim_qps", static_cast<double>(sched_queries) / sched_wall_s,
              obs::Direction::kHigherIsBetter, 0.5);
  }
  auto st = bench::Harness::EmitBenchJson(stats);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_sched telemetry failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  return (sjf_wins_somewhere && batching_wins && affinity_wins &&
          affinity_deterministic && preemption_wins &&
          batch_overhead_bounded && window_coalesces && tier_wins &&
          tier_deterministic)
             ? 0
             : 1;
}
