// Concurrent multi-query scheduling: policy x slot-count sweep.
//
// A Zipfian request mix over the public Table 3 workloads (hot algorithms
// are the short interactive ones, the long LRMF trainings are rare) arrives
// as a Poisson stream; the scheduler multiplexes the requests onto N
// simulated accelerator slots under each policy. Reports throughput and
// p50/p95/p99 latency; service times come from the cycle-level DAnA
// simulator (measured once per algorithm, reused via the compile cache).

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_harness.h"
#include "common/table_printer.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"

int main() {
  using namespace dana;
  bench::Harness::PrintHeader(
      "Multi-query scheduling: policy x slot-count sweep",
      "beyond the paper: concurrent serving of Table 3 workloads");

  sched::DanaQueryExecutor executor;

  // Popularity ranking: estimated-shortest first.
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& w : ml::PublicWorkloads()) {
    auto est = executor.Estimate(w.id);
    if (!est.ok()) {
      std::fprintf(stderr, "%s: %s\n", w.id.c_str(),
                   est.status().ToString().c_str());
      return 1;
    }
    ranked.emplace_back(est->seconds(), w.id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> catalog;
  std::vector<double> est_s;
  for (const auto& [est, id] : ranked) {
    catalog.push_back(id);
    est_s.push_back(est);
  }

  // Zipf-weighted mean of the *measured* service times fixes the arrival
  // rate so one slot runs slightly overloaded and four slots run
  // comfortably. Measuring here is free: the executor memoizes these runs
  // and every scheduled query reuses them.
  sched::DriverOptions driver_opts;
  driver_opts.num_queries = 100;
  driver_opts.zipf_exponent = 0.99;
  auto mean_service = sched::WeightedMeanServiceSeconds(
      executor, catalog, sched::Popularity::kZipfian,
      driver_opts.zipf_exponent);
  if (!mean_service.ok()) {
    std::fprintf(stderr, "%s\n", mean_service.status().ToString().c_str());
    return 1;
  }
  const double weighted_service = *mean_service;
  driver_opts.arrival_rate_qps = 1.3 / weighted_service;
  std::printf("catalog: %zu public workloads, zipf s=%.2f, arrival rate "
              "%.3f qps (zipf-weighted mean service %.1f s, SJF estimates "
              "%.2f..%.2f s)\n\n",
              catalog.size(), driver_opts.zipf_exponent,
              driver_opts.arrival_rate_qps, weighted_service, est_s.front(),
              est_s.back());

  sched::WorkloadDriver driver(catalog, driver_opts);
  auto stream = driver.Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"policy", "slots", "queries", "throughput (q/h)",
                      "mean lat", "p50", "p95", "p99", "mean wait",
                      "compile hits"});
  std::vector<std::pair<double, double>> fcfs_vs_sjf;  // mean lat per slots
  for (uint32_t slots : {1u, 2u, 4u}) {
    double fcfs_mean = 0, sjf_mean = 0;
    for (sched::Policy policy :
         {sched::Policy::kFcfs, sched::Policy::kSjf,
          sched::Policy::kRoundRobin}) {
      sched::Scheduler scheduler({.slots = slots, .policy = policy},
                                 &executor);
      auto report = scheduler.Run(*stream);
      if (!report.ok()) {
        std::fprintf(stderr, "%s/%u: %s\n", sched::PolicyName(policy), slots,
                     report.status().ToString().c_str());
        return 1;
      }
      if (policy == sched::Policy::kFcfs) {
        fcfs_mean = report->MeanLatency().seconds();
      } else if (policy == sched::Policy::kSjf) {
        sjf_mean = report->MeanLatency().seconds();
      }
      table.AddRow(
          {sched::PolicyName(policy), std::to_string(slots),
           std::to_string(report->queries.size()),
           TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
           report->MeanLatency().ToString(),
           report->LatencyPercentile(50).ToString(),
           report->LatencyPercentile(95).ToString(),
           report->LatencyPercentile(99).ToString(),
           report->MeanWait().ToString(),
           std::to_string(report->compile_hits) + "/" +
               std::to_string(report->compile_hits +
                              report->compile_misses)});
    }
    fcfs_vs_sjf.emplace_back(fcfs_mean, sjf_mean);
    if (slots != 4) table.AddSeparator();
  }
  table.Print();

  std::printf("\ncompiler invocations across the whole sweep: %llu "
              "(cache served %llu repeat queries)\n",
              static_cast<unsigned long long>(
                  executor.compile_cache().misses()),
              static_cast<unsigned long long>(executor.compile_cache().hits()));
  const uint32_t slot_counts[] = {1, 2, 4};
  bool sjf_wins_somewhere = false;
  for (size_t i = 0; i < fcfs_vs_sjf.size(); ++i) {
    const auto& [fcfs_mean, sjf_mean] = fcfs_vs_sjf[i];
    if (sjf_mean < fcfs_mean) {
      sjf_wins_somewhere = true;
      std::printf("SJF beats FCFS mean latency at %u slot(s): %.1f s vs "
                  "%.1f s\n",
                  slot_counts[i], sjf_mean, fcfs_mean);
    }
  }
  if (!sjf_wins_somewhere) {
    std::printf("SJF beats FCFS mean latency in NO reported configuration\n");
  }

  // --- Cross-query batching sweep ----------------------------------------
  // A hotter Zipfian mix (theta 1.2: the head algorithm dominates) on 2
  // slots, overloaded so queues form. Batched dispatch coalesces up to K
  // co-resident same-algorithm queries into one accelerator pass: the page
  // stream is paid once per batch (shared) while engine-merge compute
  // scales per query (private).
  sched::DriverOptions batch_opts = driver_opts;
  batch_opts.zipf_exponent = 1.2;
  batch_opts.num_queries = 150;
  // Recalibrate against the hotter mix and overload both slots (1.4x their
  // capacity) so an admission queue actually builds up — batches can only
  // form from co-resident queries.
  auto batch_mean = sched::WeightedMeanServiceSeconds(
      executor, catalog, sched::Popularity::kZipfian,
      batch_opts.zipf_exponent);
  if (!batch_mean.ok()) {
    std::fprintf(stderr, "%s\n", batch_mean.status().ToString().c_str());
    return 1;
  }
  batch_opts.arrival_rate_qps = 1.4 * 2 / *batch_mean;
  sched::WorkloadDriver batch_driver(catalog, batch_opts);
  auto batch_stream = batch_driver.Generate();
  if (!batch_stream.ok()) {
    std::fprintf(stderr, "%s\n", batch_stream.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCross-query batching sweep: 2 slots, zipf s=%.2f, "
              "%.3f qps\n",
              batch_opts.zipf_exponent, batch_opts.arrival_rate_qps);
  TablePrinter btable({"policy", "max batch", "throughput (q/h)", "mean lat",
                       "p95", "mean batch", "shared", "private"});
  bool batching_wins = true;
  for (sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kSjf,
        sched::Policy::kRoundRobin}) {
    double qps_b1 = 0, lat_b1 = 0;
    for (uint32_t max_batch : {1u, 4u, 8u}) {
      sched::Scheduler scheduler(
          {.slots = 2, .policy = policy, .max_batch = max_batch}, &executor);
      auto report = scheduler.Run(*batch_stream);
      if (!report.ok()) {
        std::fprintf(stderr, "%s/batch=%u: %s\n", sched::PolicyName(policy),
                     max_batch, report.status().ToString().c_str());
        return 1;
      }
      if (max_batch == 1) {
        qps_b1 = report->ThroughputQps();
        lat_b1 = report->MeanLatency().seconds();
      } else if (max_batch == 4 &&
                 (report->ThroughputQps() <= qps_b1 ||
                  report->MeanLatency().seconds() >= lat_b1)) {
        batching_wins = false;
      }
      btable.AddRow({sched::PolicyName(policy), std::to_string(max_batch),
                     TablePrinter::Fmt(report->ThroughputQps() * 3600.0, 1),
                     report->MeanLatency().ToString(),
                     report->LatencyPercentile(95).ToString(),
                     TablePrinter::Fmt(report->MeanBatchSize(), 2),
                     report->shared_service.ToString(),
                     report->private_service.ToString()});
    }
    if (policy != sched::Policy::kRoundRobin) btable.AddSeparator();
  }
  btable.Print();
  std::printf("%s\n",
              batching_wins
                  ? "batch=4 beats batch=1 on throughput AND mean latency "
                    "under every policy"
                  : "batching does NOT beat per-query dispatch somewhere");
  return (sjf_wins_somewhere && batching_wins) ? 0 : 1;
}
