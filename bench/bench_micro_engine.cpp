// Microbenchmarks: backend compilation (lowering + list scheduling) and
// functional fp32 execution throughput of the engine evaluator.

#include <benchmark/benchmark.h>

#include "compiler/scalar_program.h"
#include "compiler/scheduler.h"
#include "engine/evaluator.h"
#include "hdfg/translator.h"
#include "ml/algorithms.h"

namespace {

using namespace dana;

compiler::ScalarProgram LowerAlgo(uint32_t dims) {
  ml::AlgoParams p;
  p.dims = dims;
  p.merge_coef = 16;
  auto algo =
      std::move(ml::BuildAlgo(ml::AlgoKind::kLogisticRegression, p))
          .ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  return std::move(compiler::LowerGraph(graph)).ValueOrDie();
}

void BM_LowerLogistic(benchmark::State& state) {
  ml::AlgoParams p;
  p.dims = static_cast<uint32_t>(state.range(0));
  p.merge_coef = 16;
  auto algo =
      std::move(ml::BuildAlgo(ml::AlgoKind::kLogisticRegression, p))
          .ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  for (auto _ : state) {
    auto prog = compiler::LowerGraph(graph);
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_LowerLogistic)->Arg(54)->Arg(520)->Arg(2000);

void BM_ScheduleLogistic(benchmark::State& state) {
  auto prog = LowerAlgo(static_cast<uint32_t>(state.range(0)));
  compiler::SchedulerConfig cfg;
  cfg.num_acs = 16;
  compiler::Scheduler sched(cfg);
  for (auto _ : state) {
    auto s = sched.Run(prog.tuple_ops);
    benchmark::DoNotOptimize(s);
  }
  state.counters["ops"] = static_cast<double>(prog.tuple_ops.size());
}
BENCHMARK(BM_ScheduleLogistic)->Arg(54)->Arg(520)->Arg(2000);

void BM_EvaluatorTupleThroughput(benchmark::State& state) {
  const uint32_t dims = static_cast<uint32_t>(state.range(0));
  auto prog = LowerAlgo(dims);
  engine::ScalarEvaluator evaluator(prog);
  std::vector<engine::TupleData> batch(16);
  for (auto& t : batch) {
    t.inputs = {std::vector<float>(dims, 0.01f)};
    t.outputs = {{1.0f}};
  }
  uint64_t tuples = 0;
  for (auto _ : state) {
    auto st = evaluator.EvalBatch(batch);
    benchmark::DoNotOptimize(st);
    tuples += batch.size();
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvaluatorTupleThroughput)->Arg(54)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
