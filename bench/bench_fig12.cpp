// Reproduces Figure 12: DAnA accelerator runtime (access + execution
// engines) with an increasing merge coefficient (thread count), normalized
// to the single-thread design, with the achieved compute utilization.
//
// The paper's four panels: Remote Sensing SVM and LR improve until peak
// utilization; Netflix (LRMF) is flat — one update-rule instance already
// saturates the fabric; Patient saturates quickly.

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"

using namespace dana;

namespace {

/// Paper's normalized-runtime series per merge coefficient (read off
/// Figure 12; 0 marks coefficients outside the panel's x-range).
struct PaperSeries {
  const char* id;
  double runtime[6];  // coef 1, 4, 16, 64, 256, 1024 (relative to coef=1)
};
const PaperSeries kPaper[] = {
    {"rs_svm", {1.0, 0.55, 0.30, 0.22, 0.20, 0.20}},
    {"rs_lr", {1.0, 0.55, 0.30, 0.22, 0.20, 0.20}},
    {"netflix", {1.0, 1.0, 1.0, 0, 0, 0}},
    {"patient", {1.0, 0.45, 0.30, 0.28, 0.28, 0.28}},
};

}  // namespace

int main() {
  bench::Harness harness;
  bench::Harness::PrintHeader(
      "Figure 12: runtime vs merge coefficient (threads)",
      "Mahajan et al., PVLDB 11(11), Figure 12");

  const uint32_t coefs[] = {1, 4, 16, 64, 256, 1024};
  for (const auto& series : kPaper) {
    const ml::Workload* w = ml::FindWorkload(series.id);
    if (w == nullptr) return 1;
    auto instance = harness.Instance(w->id);
    if (!instance.ok()) return 1;

    TablePrinter table({"Merge coef", "Threads", "Paper runtime",
                        "Our runtime", "Utilization"});
    double base = 0;
    for (size_t c = 0; c < 6; ++c) {
      // Rebuild the UDF with this merge coefficient and instantiate as
      // many threads as the fabric allows (the sensitivity study sweeps
      // the thread count directly, paper 7.2).
      ml::Workload variant = *w;
      variant.params.merge_coef = coefs[c];
      runtime::DanaSystem::Options opts = harness.dana_options();
      opts.hw.force_threads =
          std::min(coefs[c], runtime::DefaultFpga().max_compute_units /
                                 engine::kAusPerAc);
      runtime::DanaSystem dana(harness.cost(), opts);
      auto instance2 = runtime::WorkloadInstance::Create(variant);
      if (!instance2.ok()) return 1;
      auto udf = dana.Compile(**instance2);
      if (!udf.ok()) {
        std::fprintf(stderr, "%s coef %u: %s\n", w->id.c_str(), coefs[c],
                     udf.status().ToString().c_str());
        return 1;
      }
      (*instance2)->PrepareCache(runtime::CacheState::kWarm);
      auto r = dana.RunCompiled(*udf, instance2->get(),
                                runtime::CacheState::kWarm);
      if (!r.ok()) return 1;
      const double fpga = r->compute.seconds();
      if (c == 0) base = fpga;
      // Achieved compute utilization: scalar ops in flight vs fabric.
      const auto& d = udf->design;
      const double per_thread_par =
          d.tuple_schedule.makespan == 0
              ? 0
              : static_cast<double>(d.tuple_schedule.op_count) /
                    d.tuple_schedule.makespan;
      const double util =
          std::min(1.0, per_thread_par * d.num_threads /
                            static_cast<double>(udf->fpga.max_compute_units));
      std::string paper = series.runtime[c] > 0
                              ? TablePrinter::Fmt(series.runtime[c], 2) + "x"
                              : "-";
      table.AddRow({std::to_string(coefs[c]), std::to_string(d.num_threads),
                    paper, TablePrinter::Fmt(fpga / base, 2) + "x",
                    TablePrinter::Fmt(util * 100, 0) + "%"});
    }
    std::printf("%s (%s):\n", w->display_name.c_str(),
                ml::AlgoKindName(w->kind).c_str());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
