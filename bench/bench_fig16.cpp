// Reproduces Figure 16: DAnA compute-time speedup over TABLA.
//
// TABLA is modeled as the paper describes its limitations: a single-
// threaded accelerator whose tuples are extracted and transformed by the
// CPU (no Striders, no access/execute interleaving).

#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table_printer.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  bench::Harness::PrintHeader("Figure 16: DAnA vs TABLA (compute time)",
                              "Mahajan et al., PVLDB 11(11), Figure 16");

  TablePrinter table({"Workload", "Paper speedup", "Our speedup",
                      "TABLA time", "DAnA time"});
  std::vector<double> paper, ours;
  for (const auto& w : ml::AllWorkloads()) {
    if (w.paper.tabla_compute_ratio <= 0) continue;  // Fig 16 covers 10
    auto instance = harness.Instance(w.id);
    if (!instance.ok()) return 1;
    runtime::TablaSystem tabla(harness.cost(), runtime::DefaultFpga());
    auto tabla_time = tabla.ComputeTimePerEpoch(*instance);
    auto dana = harness.RunDana(w.id, runtime::CacheState::kWarm);
    if (!tabla_time.ok() || !dana.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", w.id.c_str(),
                   tabla_time.ok() ? dana.status().ToString().c_str()
                                   : tabla_time.status().ToString().c_str());
      return 1;
    }
    // Compute-only comparison per epoch: DAnA's FPGA time vs TABLA's
    // compute path (both systems run the same SGD pass structure).
    const dana::SimTime dana_per_epoch =
        dana->compute / std::max<uint32_t>(dana->epochs, 1);
    const double speedup = *tabla_time / dana_per_epoch;
    paper.push_back(w.paper.tabla_compute_ratio);
    ours.push_back(speedup);
    table.AddRow({w.display_name,
                  TablePrinter::Speedup(w.paper.tabla_compute_ratio),
                  TablePrinter::Speedup(speedup), tabla_time->ToString(),
                  dana_per_epoch.ToString()});
  }
  table.AddSeparator();
  table.AddRow({"Geomean", TablePrinter::Speedup(GeoMean(paper)),
                TablePrinter::Speedup(GeoMean(ours)), "", ""});
  table.Print();
  std::printf(
      "\nPaper attributes DAnA's 4.7x geomean advantage to Strider "
      "interleaving and multi-threaded execution engines.\n");
  return 0;
}
