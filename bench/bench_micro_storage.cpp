// Microbenchmarks: page codec and buffer pool (host-side throughput of the
// storage substrate).

#include <benchmark/benchmark.h>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace {

using namespace dana::storage;

void BM_PageAddTuple(benchmark::State& state) {
  PageLayout layout;
  std::vector<uint8_t> buf(layout.page_size);
  std::vector<uint8_t> payload(220, 0x5A);
  uint64_t tuples = 0;
  for (auto _ : state) {
    Page page(buf.data(), layout);
    page.InitEmpty();
    while (page.AddTuple(payload, 55).ok()) ++tuples;
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageAddTuple);

void BM_SchemaEncodeDecode(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  Schema schema = Schema::Dense(width);
  std::vector<double> row(width + 1, 1.25);
  std::vector<uint8_t> buf(schema.RowBytes());
  std::vector<double> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schema.EncodeRow(row, buf.data()));
    benchmark::DoNotOptimize(
        schema.DecodeRow(buf.data(), schema.RowBytes(), &out));
  }
}
BENCHMARK(BM_SchemaEncodeDecode)->Arg(54)->Arg(520);

void BM_BufferPoolFetchWarm(benchmark::State& state) {
  PageLayout layout;
  Table table("t", Schema::Dense(54), layout);
  std::vector<double> row(55, 1.0);
  while (table.num_pages() < 64) {
    (void)table.AppendRow(row);
  }
  BufferPool pool(128ull * layout.page_size, layout.page_size, DiskModel{});
  pool.Prewarm(table);
  uint64_t fetches = 0;
  for (auto _ : state) {
    for (uint64_t p = 0; p < table.num_pages(); ++p) {
      benchmark::DoNotOptimize(pool.FetchPage(table, p));
      ++fetches;
    }
  }
  state.counters["fetches/s"] = benchmark::Counter(
      static_cast<double>(fetches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BufferPoolFetchWarm);

void BM_BufferPoolFetchThrashing(benchmark::State& state) {
  PageLayout layout;
  Table table("t", Schema::Dense(54), layout);
  std::vector<double> row(55, 1.0);
  while (table.num_pages() < 64) {
    (void)table.AppendRow(row);
  }
  BufferPool pool(16ull * layout.page_size, layout.page_size, DiskModel{});
  for (auto _ : state) {
    for (uint64_t p = 0; p < table.num_pages(); ++p) {
      benchmark::DoNotOptimize(pool.FetchPage(table, p));
    }
  }
  state.counters["hit_rate"] = pool.stats().HitRate();
}
BENCHMARK(BM_BufferPoolFetchThrashing);

}  // namespace

BENCHMARK_MAIN();
