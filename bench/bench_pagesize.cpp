// Reproduces the §7 page-size sensitivity study: end-to-end runtimes at
// 8, 16, and 32 KB buffer page sizes, normalized to 32 KB.
//
// The paper reports "no significant impact" for PostgreSQL and Greenplum
// and uses 32 KB for DAnA so at least one tuple fits per page for every
// dataset; the Strider ISA handles all three layouts with the same program.

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"
#include "runtime/systems.h"

using namespace dana;

int main() {
  bench::Harness::PrintHeader(
      "Page-size sensitivity (8/16/32 KB)",
      "Mahajan et al., PVLDB 11(11), §7 'Default setup' discussion");

  runtime::CpuCostModel cost;
  TablePrinter table({"Workload", "System", "8 KB", "16 KB", "32 KB"});
  for (const auto& w : ml::PublicWorkloads()) {
    if (w.TuplePayloadBytes() + 28 > 8 * 1024 - 24) {
      // Tuple would not fit the smallest page; the paper picked 32 KB for
      // exactly this reason.
      continue;
    }
    std::map<uint32_t, double> pg_times, dana_times;
    for (uint32_t page_kb : {8u, 16u, 32u}) {
      auto instance = runtime::WorkloadInstance::Create(w, page_kb * 1024);
      if (!instance.ok()) {
        std::fprintf(stderr, "%s @%uKB: %s\n", w.id.c_str(), page_kb,
                     instance.status().ToString().c_str());
        return 1;
      }
      runtime::MadlibPostgres pg(cost);
      auto pg_r = pg.Run(instance->get(), runtime::CacheState::kWarm,
                         /*train_model=*/false);
      runtime::DanaSystem::Options opt;
      opt.fpga = runtime::DefaultFpga();
      opt.functional_epoch_cap = 2;
      runtime::DanaSystem dana(cost, opt);
      auto da_r = dana.Run(instance->get(), runtime::CacheState::kWarm);
      if (!pg_r.ok() || !da_r.ok()) {
        std::fprintf(stderr, "%s @%uKB run failed\n", w.id.c_str(), page_kb);
        return 1;
      }
      pg_times[page_kb] = pg_r->total.seconds();
      dana_times[page_kb] = da_r->total.seconds();
    }
    table.AddRow({w.display_name, "MADlib+PostgreSQL",
                  TablePrinter::Fmt(pg_times[32] / pg_times[8], 2) + "x",
                  TablePrinter::Fmt(pg_times[32] / pg_times[16], 2) + "x",
                  "1.00x"});
    table.AddRow({"", "DAnA+PostgreSQL",
                  TablePrinter::Fmt(dana_times[32] / dana_times[8], 2) + "x",
                  TablePrinter::Fmt(dana_times[32] / dana_times[16], 2) + "x",
                  "1.00x"});
  }
  table.Print();
  std::printf(
      "\nShape check: values near 1.00x across page sizes (paper: 'page "
      "size had no significant impact on the runtimes').\n");
  return 0;
}
