// Reproduces Table 3 (dataset & model inventory) and Table 4 (FPGA spec).
//
// Datasets are synthetic stand-ins generated at a reduced tuple count; the
// "scale" column is the virtual multiplier the timing harness applies so
// runtimes are reported at paper size (see DESIGN.md substitutions).

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"
#include "runtime/systems.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  bench::Harness::PrintHeader("Table 3: datasets and machine learning models",
                              "Mahajan et al., PVLDB 11(11), Table 3");

  TablePrinter table({"Workload", "Algorithm", "Model topology",
                      "Paper tuples", "Our tuples", "Scale", "Our pages",
                      "Our size (MB)", "Paper size (MB)"});
  for (const auto& w : ml::AllWorkloads()) {
    auto instance = harness.Instance(w.id);
    if (!instance.ok()) {
      std::fprintf(stderr, "%s: %s\n", w.id.c_str(),
                   instance.status().ToString().c_str());
      return 1;
    }
    const auto& t = (*instance)->table();
    std::string topo = std::to_string(w.params.dims);
    if (w.kind == ml::AlgoKind::kLowRankMF) {
      topo = std::to_string(w.tuples) + ", " + std::to_string(w.params.dims) +
             ", " + std::to_string(w.params.rank);
    }
    table.AddRow({w.display_name, ml::AlgoKindName(w.kind), topo,
                  std::to_string(w.paper.tuples), std::to_string(w.tuples),
                  TablePrinter::Fmt(w.scale, 1) + "x",
                  std::to_string(t.num_pages()),
                  TablePrinter::Fmt(t.SizeBytes() / 1e6, 1),
                  TablePrinter::Fmt(w.paper.size_mb, 0)});
  }
  table.Print();

  std::printf("\nTable 4: FPGA specification used by the simulator\n");
  const compiler::FpgaSpec fpga = runtime::DefaultFpga();
  TablePrinter t4({"FPGA", "LUTs", "Flip-Flops", "Frequency", "BRAM",
                   "# DSPs", "Host link"});
  t4.AddRow({fpga.name, std::to_string(fpga.luts / 1000) + " K",
             std::to_string(fpga.flip_flops / 1000) + " K",
             TablePrinter::Fmt(fpga.freq_hz / 1e6, 0) + " MHz",
             std::to_string(fpga.bram_bytes >> 20) + " MB",
             std::to_string(fpga.dsp_slices),
             TablePrinter::Fmt(fpga.axi_bytes_per_sec / 1e9, 1) + " GB/s"});
  t4.Print();
  return 0;
}
