#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "ml/workloads.h"
#include "obs/stats_writer.h"
#include "runtime/systems.h"

namespace dana::bench {

/// Shared machinery for the figure/table reproduction binaries.
///
/// Caches one WorkloadInstance (dataset + table + pool) and one compiled
/// accelerator per workload so that a bench binary sweeping many
/// configurations pays dataset generation and UDF compilation once.
///
/// Timing extrapolation: workloads assume `assumed_epochs` passes; the
/// harness runs up to two functional epochs (the first epoch captures
/// cold-cache I/O, the second the steady state) and extrapolates the wall
/// time linearly — exact because every per-epoch cost in the simulator is
/// count-linear.
class Harness {
 public:
  Harness();

  /// The instance for a workload id (creating it on first use).
  dana::Result<runtime::WorkloadInstance*> Instance(const std::string& id);

  /// The compiled accelerator for a workload id (default DAnA options).
  dana::Result<const compiler::CompiledUdf*> Compiled(const std::string& id);

  /// MADlib+PostgreSQL end-to-end runtime (timing only; no functional
  /// training — the test suite covers model equivalence).
  dana::Result<runtime::SystemResult> RunPg(const std::string& id,
                                            runtime::CacheState cache);

  /// MADlib+Greenplum with `segments` segments.
  dana::Result<runtime::SystemResult> RunGp(const std::string& id,
                                            runtime::CacheState cache,
                                            uint32_t segments = 8);

  /// DAnA+PostgreSQL; `run_overrides` tweaks bandwidth/bypass etc.
  dana::Result<runtime::SystemResult> RunDana(
      const std::string& id, runtime::CacheState cache,
      const accel::RunOptions& run_overrides = {});

  /// DAnA with a specific pre-compiled design (thread sweeps etc).
  dana::Result<runtime::SystemResult> RunDanaCompiled(
      const compiler::CompiledUdf& udf, const std::string& id,
      runtime::CacheState cache, const accel::RunOptions& run_overrides = {});

  const runtime::CpuCostModel& cost() const { return cost_; }
  runtime::DanaSystem::Options dana_options() const;

  /// Prints the standard bench header for a reproduced figure/table.
  static void PrintHeader(const std::string& experiment,
                          const std::string& paper_ref);

  /// Runs one end-to-end speedup figure (the Figure 8/9/10 shape): for
  /// each workload, MADlib+PostgreSQL (baseline), MADlib+Greenplum, and
  /// DAnA, in the given cache state; prints paper-vs-measured speedups
  /// and geomeans. Returns non-OK on the first failing run. With a stats
  /// writer attached (set_stats), records the measured geomeans as
  /// `<warm|cold>.gp_geomean_speedup` / `.dana_geomean_speedup` gated
  /// metrics.
  dana::Status RunSpeedupFigure(const std::vector<ml::Workload>& workloads,
                                runtime::CacheState cache);

  /// Attaches a StatsWriter (not owned; null detaches): subsequent
  /// RunSpeedupFigure calls record their headline numbers into it, so a
  /// bench binary can emit BENCH_<area>.json alongside its tables.
  void set_stats(obs::StatsWriter* stats) { stats_ = stats; }

  /// Writes `writer`'s BENCH_<area>.json (StatsWriter::Write — the dir
  /// comes from DANA_BENCH_JSON_DIR, default cwd) and prints the path.
  static dana::Status EmitBenchJson(const obs::StatsWriter& writer);

 private:
  runtime::CpuCostModel cost_;
  std::map<std::string, std::unique_ptr<runtime::WorkloadInstance>>
      instances_;
  std::map<std::string, std::unique_ptr<compiler::CompiledUdf>> compiled_;
  obs::StatsWriter* stats_ = nullptr;
};

}  // namespace dana::bench
