// Reproduces Figure 10: end-to-end runtime speedup over MADlib+PostgreSQL
// for the synthetic extensive (S/E) datasets, warm (10a) and cold (10b).

#include <cstdio>

#include "bench_harness.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  obs::StatsWriter stats("fig10");
  stats.SetConfig("group", "se");
  harness.set_stats(&stats);
  bench::Harness::PrintHeader(
      "Figure 10: end-to-end speedup, synthetic extensive datasets",
      "Mahajan et al., PVLDB 11(11), Figure 10a/10b");
  for (auto cache :
       {runtime::CacheState::kWarm, runtime::CacheState::kCold}) {
    auto st =
        harness.RunSpeedupFigure(ml::SyntheticExtensiveWorkloads(), cache);
    if (!st.ok()) {
      std::fprintf(stderr, "fig10 failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto st = bench::Harness::EmitBenchJson(stats);
  if (!st.ok()) {
    std::fprintf(stderr, "fig10 telemetry failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
