// Reproduces Figure 11: DAnA with vs without Striders, all 14 workloads,
// warm cache, speedups over MADlib+PostgreSQL.
//
// "Without Striders" simulates the alternate design the paper evaluates:
// the CPU extracts and transforms each training tuple and ships it to the
// execution engines one DMA at a time, so the access and execution stages
// cannot interleave.

#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table_printer.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  bench::Harness::PrintHeader("Figure 11: benefit of Striders",
                              "Mahajan et al., PVLDB 11(11), Figure 11");

  TablePrinter table({"Workload", "w/o Strider paper", "w/o Strider ours",
                      "with Strider paper", "with Strider ours"});
  std::vector<double> wo_paper, wo_ours, w_paper, w_ours;
  for (const auto& w : ml::AllWorkloads()) {
    auto pg = harness.RunPg(w.id, runtime::CacheState::kWarm);
    auto with = harness.RunDana(w.id, runtime::CacheState::kWarm);
    accel::RunOptions bypass;
    bypass.strider_bypass = true;
    auto without = harness.RunDana(w.id, runtime::CacheState::kWarm, bypass);
    if (!pg.ok() || !with.ok() || !without.ok()) {
      std::fprintf(stderr, "%s failed\n", w.id.c_str());
      return 1;
    }
    const double s_with = pg->total / with->total;
    const double s_without = pg->total / without->total;
    wo_ours.push_back(s_without);
    w_ours.push_back(s_with);
    wo_paper.push_back(w.paper.dana_wo_strider);
    w_paper.push_back(w.paper.dana_speedup_warm);
    table.AddRow({w.display_name,
                  TablePrinter::Speedup(w.paper.dana_wo_strider),
                  TablePrinter::Speedup(s_without),
                  TablePrinter::Speedup(w.paper.dana_speedup_warm),
                  TablePrinter::Speedup(s_with)});
  }
  table.AddSeparator();
  table.AddRow({"Geomean", TablePrinter::Speedup(GeoMean(wo_paper)),
                TablePrinter::Speedup(GeoMean(wo_ours)),
                TablePrinter::Speedup(GeoMean(w_paper)),
                TablePrinter::Speedup(GeoMean(w_ours))});
  table.Print();
  std::printf(
      "\nPaper: Striders amplify raw-acceleration benefits by 4.6x on "
      "average (10.8x vs 2.3x geomean). Ours: %.1fx (%.1fx vs %.1fx).\n",
      GeoMean(w_ours) / GeoMean(wo_ours), GeoMean(w_ours), GeoMean(wo_ours));
  return 0;
}
