// Reproduces Figure 14: DAnA accelerator (FPGA) time with the host link
// bandwidth scaled 0.25x .. 4x, relative to the baseline bandwidth.
//
// The paper's shape: larger workloads become bandwidth bound (up to ~2.1x
// at 4x bandwidth for S/E Linear) except the compute-heavy LRMF workloads,
// which are insensitive.

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"

using namespace dana;

namespace {
/// Paper Figure 14 speedups vs baseline bandwidth {0.25x, 0.5x, 2x, 4x}.
struct PaperRow {
  const char* id;
  double s[4];
};
const PaperRow kPaper[] = {
    {"rs_lr", {0.7, 0.9, 1.1, 1.13}},   {"wlan", {1.0, 1.0, 1.0, 1.0}},
    {"rs_svm", {0.6, 0.8, 1.1, 1.2}},   {"netflix", {0.8, 0.9, 1.1, 1.1}},
    {"patient", {0.9, 1.0, 1.0, 1.0}},  {"blog", {1.0, 1.0, 1.0, 1.0}},
    {"sn_logistic", {0.4, 0.7, 1.4, 1.7}}, {"sn_svm", {0.5, 0.7, 1.2, 1.4}},
    {"sn_lrmf", {0.9, 1.0, 1.0, 1.0}},  {"sn_linear", {0.3, 0.6, 1.5, 2.1}},
    {"se_logistic", {0.4, 0.7, 1.4, 1.8}}, {"se_svm", {0.4, 0.7, 1.3, 1.6}},
    {"se_lrmf", {1.0, 1.0, 1.0, 1.0}},  {"se_linear", {0.3, 0.6, 1.6, 2.1}},
};
}  // namespace

int main() {
  bench::Harness harness;
  bench::Harness::PrintHeader(
      "Figure 14: FPGA time vs host-link bandwidth",
      "Mahajan et al., PVLDB 11(11), Figure 14");

  const double scales[4] = {0.25, 0.5, 2.0, 4.0};
  TablePrinter table({"Workload", "0.25x paper", "0.25x ours", "0.5x paper",
                      "0.5x ours", "2x paper", "2x ours", "4x paper",
                      "4x ours"});
  for (const auto& row : kPaper) {
    const ml::Workload* w = ml::FindWorkload(row.id);
    auto base = harness.RunDana(row.id, runtime::CacheState::kWarm);
    if (!base.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.id,
                   base.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> cells = {w->display_name};
    for (int i = 0; i < 4; ++i) {
      accel::RunOptions opt;
      opt.bandwidth_scale = scales[i];
      auto r = harness.RunDana(row.id, runtime::CacheState::kWarm, opt);
      if (!r.ok()) return 1;
      // FPGA-time speedup relative to baseline bandwidth.
      const double speedup = base->compute / r->compute;
      cells.push_back(TablePrinter::Fmt(row.s[i], 2));
      cells.push_back(TablePrinter::Fmt(speedup, 2));
    }
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nShape check: LRMF workloads are compute-bound (flat rows); wide "
      "linear/logistic synthetic workloads are bandwidth-bound.\n");
  return 0;
}
