// Reproduces Figure 13: MADlib+Greenplum performance with 4, 8, and 16
// segments (plus single-threaded PostgreSQL), publicly available datasets,
// normalized to the 8-segment configuration.

#include <cstdio>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table_printer.h"

using namespace dana;

namespace {
/// Paper's Figure 13 values: runtime speedup relative to 8 segments.
struct PaperRow {
  const char* id;
  double pg, seg4, seg8, seg16;
};
const PaperRow kPaper[] = {
    {"rs_lr", 0.31, 0.87, 1.00, 0.69},  {"wlan", 1.03, 1.21, 1.00, 0.95},
    {"rs_svm", 0.42, 0.96, 1.00, 1.26}, {"netflix", 1.14, 1.02, 1.00, 0.90},
    {"patient", 0.42, 0.97, 1.00, 0.73}, {"blog", 0.39, 0.80, 1.00, 0.95},
};
}  // namespace

int main() {
  bench::Harness harness;
  bench::Harness::PrintHeader(
      "Figure 13: Greenplum performance with varying segments",
      "Mahajan et al., PVLDB 11(11), Figure 13");

  TablePrinter table({"Workload", "PG paper", "PG ours", "4seg paper",
                      "4seg ours", "16seg paper", "16seg ours"});
  std::vector<double> pg_o, s4_o, s16_o, pg_p, s4_p, s16_p;
  for (const auto& row : kPaper) {
    auto pg = harness.RunPg(row.id, runtime::CacheState::kWarm);
    auto g4 = harness.RunGp(row.id, runtime::CacheState::kWarm, 4);
    auto g8 = harness.RunGp(row.id, runtime::CacheState::kWarm, 8);
    auto g16 = harness.RunGp(row.id, runtime::CacheState::kWarm, 16);
    if (!pg.ok() || !g4.ok() || !g8.ok() || !g16.ok()) {
      std::fprintf(stderr, "%s failed\n", row.id);
      return 1;
    }
    // Normalize to 8 segments, as the figure does.
    const double pg_rel = g8->total / pg->total;
    const double s4_rel = g8->total / g4->total;
    const double s16_rel = g8->total / g16->total;
    pg_o.push_back(pg_rel);
    s4_o.push_back(s4_rel);
    s16_o.push_back(s16_rel);
    pg_p.push_back(row.pg);
    s4_p.push_back(row.seg4);
    s16_p.push_back(row.seg16);
    const ml::Workload* w = ml::FindWorkload(row.id);
    table.AddRow({w->display_name, TablePrinter::Fmt(row.pg, 2),
                  TablePrinter::Fmt(pg_rel, 2), TablePrinter::Fmt(row.seg4, 2),
                  TablePrinter::Fmt(s4_rel, 2),
                  TablePrinter::Fmt(row.seg16, 2),
                  TablePrinter::Fmt(s16_rel, 2)});
  }
  table.AddSeparator();
  table.AddRow({"Geomean", TablePrinter::Fmt(GeoMean(pg_p), 2),
                TablePrinter::Fmt(GeoMean(pg_o), 2),
                TablePrinter::Fmt(GeoMean(s4_p), 2),
                TablePrinter::Fmt(GeoMean(s4_o), 2),
                TablePrinter::Fmt(GeoMean(s16_p), 2),
                TablePrinter::Fmt(GeoMean(s16_o), 2)});
  table.Print();
  std::printf(
      "\nShape check: 8 segments performs best; 16 segments regresses "
      "(paper geomean 0.89, ours %.2f).\n",
      GeoMean(s16_o));
  return 0;
}
