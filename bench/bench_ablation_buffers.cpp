// Ablation: BRAM split between page buffers and compute data
// (DESIGN.md design-choice #3; paper §6.1's allocation policy).
//
// More page buffers means more Striders walking pages in parallel and
// deeper access/execute interleaving; fewer means more BRAM left for
// compute. A single buffer also removes the pipeline entirely (the access
// and execution engines serialize), which is the paper's motivation for
// processing data "at a page granularity" across many buffers.

#include <cstdio>

#include "accel/accelerator.h"
#include "bench_harness.h"
#include "common/table_printer.h"

using namespace dana;

int main() {
  bench::Harness::PrintHeader(
      "Ablation: page buffers / BRAM split",
      "paper §5.1 (page-granularity processing) and §6.1 (BRAM allocation)");

  runtime::CpuCostModel cost;
  TablePrinter table(
      {"Workload", "Buffers", "Striders in parallel", "Epoch FPGA time",
       "vs best"});
  for (const char* id : {"rs_lr", "sn_logistic"}) {
    const ml::Workload* w = ml::FindWorkload(id);
    auto instance = runtime::WorkloadInstance::Create(*w);
    if (!instance.ok()) return 1;

    // Compile once, then override the page-buffer count of the design.
    runtime::DanaSystem::Options opt;
    opt.fpga = runtime::DefaultFpga();
    opt.functional_epoch_cap = 2;
    runtime::DanaSystem dana(cost, opt);
    auto udf = dana.Compile(**instance);
    if (!udf.ok()) return 1;

    std::vector<std::pair<uint32_t, double>> results;
    for (uint32_t buffers : {1u, 2u, 4u, 8u, 16u, 32u}) {
      compiler::CompiledUdf variant = *udf;
      variant.design.num_page_buffers = buffers;
      auto r = dana.RunCompiled(variant, instance->get(),
                                runtime::CacheState::kWarm);
      if (!r.ok()) return 1;
      results.push_back({buffers, r->compute.seconds()});
    }
    double best = results[0].second;
    for (auto& [b, t] : results) best = std::min(best, t);
    for (auto& [b, t] : results) {
      table.AddRow({b == 1 ? w->display_name : "", std::to_string(b),
                    std::to_string(b), SimTime::Seconds(t).ToString(),
                    TablePrinter::Fmt(t / best, 2) + "x"});
    }
  }
  table.Print();
  std::printf(
      "\nOne buffer serializes access and execution (no interleaving); the "
      "curve flattens once the slowest pipeline stage stops being the "
      "Striders.\n");
  return 0;
}
