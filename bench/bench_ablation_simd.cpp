// Ablation: selective SIMD vs full MIMD (DESIGN.md design-choice #4).
//
// DAnA's analytic clusters share one controller across 8 AUs (selective
// SIMD, §5.2), which constrains each cluster to one opcode per issue but
// saves the per-AU decoder area. The MIMD alternative gives every AU its
// own controller: schedules get marginally shorter, but the fatter AUs
// shrink the fabric, which costs far more than the flexibility buys —
// the quantitative argument behind the paper's design choice.

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"

using namespace dana;

int main() {
  bench::Harness::PrintHeader(
      "Ablation: selective SIMD vs per-AU MIMD control",
      "design rationale of paper §5.2 (AC collective-instruction scheme)");

  runtime::CpuCostModel cost;
  TablePrinter table({"Workload", "SIMD AUs", "MIMD AUs", "SIMD makespan",
                      "MIMD makespan", "SIMD epoch", "MIMD epoch",
                      "SIMD advantage"});
  for (const char* id : {"rs_lr", "wlan", "netflix", "sn_logistic"}) {
    const ml::Workload* w = ml::FindWorkload(id);
    auto instance = runtime::WorkloadInstance::Create(*w);
    if (!instance.ok()) return 1;

    runtime::DanaSystem::Options simd_opt;
    simd_opt.fpga = runtime::DefaultFpga();
    simd_opt.functional_epoch_cap = 2;
    runtime::DanaSystem::Options mimd_opt = simd_opt;
    mimd_opt.hw.mimd_only = true;

    runtime::DanaSystem simd(cost, simd_opt), mimd(cost, mimd_opt);
    auto udf_s = simd.Compile(**instance);
    auto udf_m = mimd.Compile(**instance);
    if (!udf_s.ok() || !udf_m.ok()) {
      std::fprintf(stderr, "%s compile failed\n", id);
      return 1;
    }
    auto r_s = simd.RunCompiled(*udf_s, instance->get(),
                                runtime::CacheState::kWarm);
    auto r_m = mimd.RunCompiled(*udf_m, instance->get(),
                                runtime::CacheState::kWarm);
    if (!r_s.ok() || !r_m.ok()) return 1;

    table.AddRow({w->display_name, std::to_string(udf_s->design.total_aus),
                  std::to_string(udf_m->design.total_aus),
                  std::to_string(udf_s->design.tuple_schedule.makespan),
                  std::to_string(udf_m->design.tuple_schedule.makespan),
                  r_s->compute.ToString(), r_m->compute.ToString(),
                  TablePrinter::Speedup(r_m->compute / r_s->compute, 2)});
  }
  table.Print();
  std::printf(
      "\nSelective SIMD keeps the full 1024-AU fabric; per-AU controllers "
      "cost LUTs and halve the practical fabric, so MIMD never wins "
      "end-to-end even where its schedules are shorter.\n");
  return 0;
}
