// Microbenchmarks: Strider ISA encode/decode, assembly, and page-walk
// throughput of the cycle-level interpreter (host-side performance of the
// simulator itself, not simulated time).

#include <benchmark/benchmark.h>

#include "ml/datasets.h"
#include "storage/table.h"
#include "strider/assembler.h"
#include "strider/codegen.h"
#include "strider/simulator.h"

namespace {

using namespace dana;

void BM_StriderEncodeDecode(benchmark::State& state) {
  strider::Instruction ins;
  ins.op = strider::Opcode::kReadB;
  ins.f1 = strider::Operand::Reg(16);
  ins.f2 = strider::Operand::Imm(12);
  ins.f3 = strider::Operand::Imm(2);
  for (auto _ : state) {
    const uint32_t w = ins.Encode();
    auto back = strider::Instruction::Decode(w);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_StriderEncodeDecode);

void BM_StriderAssemble(benchmark::State& state) {
  const std::string text =
      "readB %t0, 12, 2\nad %t6, 24, 0\nbentr\nreadB %t2, %t6, 4\n"
      "extrBi %t4, %t2, %cr3\ncln %t4, %t5, %cr2\nad %t6, %t6, 4\n"
      "bexit 1, %t6, %t0\n";
  for (auto _ : state) {
    auto prog = strider::Assemble(text);
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_StriderAssemble);

void BM_PageWalk(benchmark::State& state) {
  const uint32_t features = static_cast<uint32_t>(state.range(0));
  storage::PageLayout layout;
  ml::DatasetSpec spec;
  spec.dims = features;
  spec.tuples = 4096;
  ml::Dataset data = ml::GenerateDataset(spec);
  auto table = std::move(ml::BuildTable("t", data, layout)).ValueOrDie();
  auto prog = std::move(strider::BuildPageWalkProgram(layout)).ValueOrDie();
  strider::StriderSim sim;

  uint64_t tuples = 0;
  for (auto _ : state) {
    for (uint64_t p = 0; p < table->num_pages(); ++p) {
      auto run = sim.Run(prog, {table->PageData(p), layout.page_size});
      tuples += run->tuples.size();
      benchmark::DoNotOptimize(run);
    }
  }
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PageWalk)->Arg(54)->Arg(520)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
