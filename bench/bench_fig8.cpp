// Reproduces Figure 8: end-to-end runtime speedup over MADlib+PostgreSQL
// for the publicly available datasets, warm cache (8a) and cold cache (8b).

#include <cstdio>

#include "bench_harness.h"

int main() {
  using namespace dana;
  bench::Harness harness;
  obs::StatsWriter stats("fig8");
  stats.SetConfig("group", "public");
  harness.set_stats(&stats);
  bench::Harness::PrintHeader(
      "Figure 8: end-to-end speedup, publicly available datasets",
      "Mahajan et al., PVLDB 11(11), Figure 8a/8b");
  for (auto cache :
       {runtime::CacheState::kWarm, runtime::CacheState::kCold}) {
    auto st = harness.RunSpeedupFigure(ml::PublicWorkloads(), cache);
    if (!st.ok()) {
      std::fprintf(stderr, "fig8 failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto st = bench::Harness::EmitBenchJson(stats);
  if (!st.ok()) {
    std::fprintf(stderr, "fig8 telemetry failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
