// Event-loop microbenchmark: simulator throughput (sim_qps) of the
// discrete-event scheduler itself, swept over request-count x slot-count.
//
// The executor is a synthetic constant-cost stub (no cycle-level simulator,
// no pools), so the wall time measured here is the scheduler's own event
// loop: queue pushes/pops under each policy, batching coalescing, compile
// charging, and stat assembly. The arrival rate overloads the machine ~3x
// so queues grow deep — exactly the regime where the pending-queue and
// slot-scan data structures dominate. Every policy runs the same seeded
// stream; sim_qps for a point is scheduled-queries-per-wall-second across
// all three policies, best of several repetitions (max over reps is the
// standard microbenchmark noise filter; the simulated output itself is
// deterministic and identical across reps).
//
// Emits BENCH_micro_sched.json with one gated (better: higher) sim_qps
// metric per sweep point; the CI bench-telemetry job compares it against
// bench/baselines/BENCH_micro_sched.json at a wide tolerance (wall-clock
// metrics jitter on shared runners). The sweep is already CI-sized, so
// DANA_BENCH_FAST does not change its shape (and is deliberately not
// recorded in the config: the committed baseline compares against both
// local and CI runs).

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/table_printer.h"
#include "obs/stats_writer.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"

namespace {

using namespace dana;

/// Deterministic synthetic costs, ascending with catalog rank so the
/// Zipf-hottest algorithms are the short ones (as bench_sched ranks them).
class StubExecutor : public sched::QueryExecutor {
 public:
  explicit StubExecutor(const std::vector<std::string>& catalog) {
    for (size_t i = 0; i < catalog.size(); ++i) {
      const double rank = static_cast<double>(i);
      Split s;
      s.shared = 0.8 + 0.45 * rank;
      s.per_query = 0.15 + 0.04 * rank;
      s.estimate = s.shared + s.per_query;
      costs_[catalog[i]] = s;
    }
  }

  Result<sched::BatchCost> Dispatch(const sched::QueryBatch& batch) override {
    const Split& s = costs_.at(batch.workload_id);
    sched::BatchCost cost;
    cost.shared = dana::SimTime::Seconds(s.shared);
    cost.per_query = dana::SimTime::Seconds(s.per_query);
    cost.service = dana::SimTime::Seconds(
        s.shared + s.per_query * static_cast<double>(batch.size()));
    cost.compile = dana::SimTime::Seconds(0.4);
    return cost;
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    return dana::SimTime::Seconds(costs_.at(id).estimate);
  }

 private:
  struct Split {
    double shared, per_query, estimate;
  };
  std::map<std::string, Split> costs_;
};

double Elapsed(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

struct PointResult {
  double sim_qps = 0.0;  ///< best over reps
  double wall_s = 0.0;   ///< wall of the best rep
  int reps = 0;
};

}  // namespace

int main() {
  bench::Harness::PrintHeader(
      "Scheduler event-loop throughput: request-count x slots sweep",
      "scoreboard for the simulator hot path (ROADMAP raw-speed item)");

  obs::StatsWriter stats("micro_sched");

  std::vector<std::string> catalog;
  for (int i = 0; i < 12; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "w%02d", i);
    catalog.emplace_back(buf);
  }
  stats.SetConfig("catalog", static_cast<double>(catalog.size()));
  stats.SetConfig("requests", "1000,10000");
  stats.SetConfig("slots", "2,8");
  stats.SetConfig("policies", "fcfs,sjf,rr");
  stats.SetConfig("max_batch", 4.0);
  stats.SetConfig("event_point", "r10000.s8 window=10ms interactive=3");

  const std::vector<uint32_t> request_counts = {1000, 10000};
  const std::vector<uint32_t> slot_counts = {2, 8};
  const std::vector<sched::Policy> policies = {
      sched::Policy::kFcfs, sched::Policy::kSjf, sched::Policy::kRoundRobin};

  TablePrinter table(
      {"point", "queries", "reps", "best wall (s)", "sim qps"});

  // One rep schedules the point's stream under all three policies; reps
  // repeat until the point has either 5 reps or ~0.5 s of wall time, and
  // the best rep wins. A pre-optimization build takes seconds per rep at
  // the 10k points and simply stops after the first.
  auto run_point = [&](uint32_t requests, uint32_t slots, bool event_path,
                       const char* label) -> int {
    sched::DriverOptions dopts;
    dopts.num_queries = requests;
    // ~3x overload: queues grow deep and the queue structures dominate.
    dopts.arrival_rate_qps = 2.0 * static_cast<double>(slots);
    dopts.zipf_exponent = 1.1;
    if (event_path) dopts.interactive_ranks = 3;
    sched::WorkloadDriver driver(catalog, dopts);
    auto stream = driver.Generate();
    if (!stream.ok()) {
      std::fprintf(stderr, "driver: %s\n",
                   stream.status().ToString().c_str());
      return 1;
    }

    StubExecutor executor(catalog);
    PointResult best;
    const auto point_start = std::chrono::steady_clock::now();
    while (best.reps < 5 && Elapsed(point_start) < 0.5) {
      const auto rep_start = std::chrono::steady_clock::now();
      uint64_t scheduled = 0;
      for (sched::Policy policy : policies) {
        sched::SchedulerOptions sopts;
        sopts.slots = slots;
        sopts.policy = policy;
        sopts.max_batch = 4;
        if (event_path) {
          sopts.batch_window = dana::SimTime::Millis(10);
        }
        sched::Scheduler scheduler(sopts, &executor);
        auto report = scheduler.Run(*stream);
        if (!report.ok()) {
          std::fprintf(stderr, "%s: %s\n", label,
                       report.status().ToString().c_str());
          return 1;
        }
        scheduled += report->queries.size();
      }
      const double wall = Elapsed(rep_start);
      const double qps = static_cast<double>(scheduled) / wall;
      if (qps > best.sim_qps) {
        best.sim_qps = qps;
        best.wall_s = wall;
      }
      ++best.reps;
    }

    table.AddRow({label, std::to_string(3 * requests),
                  std::to_string(best.reps), TablePrinter::Fmt(best.wall_s, 4),
                  TablePrinter::Fmt(best.sim_qps, 0)});
    // Wall-clock throughput on shared CI runners jitters far more than any
    // simulated metric: gate at 0.75 (a 4x slowdown trips, scheduler noise
    // does not). The CI job's --tolerance 0.30 stays the default for
    // metrics without their own tolerance.
    stats.Add(std::string("sim_qps.") + label, best.sim_qps,
              obs::Direction::kHigherIsBetter, 0.75);
    stats.Add(std::string("wall_s.") + label, best.wall_s,
              obs::Direction::kInfo);
    return 0;
  };

  for (uint32_t requests : request_counts) {
    for (uint32_t slots : slot_counts) {
      char label[32];
      std::snprintf(label, sizeof(label), "r%u.s%u", requests, slots);
      if (run_point(requests, slots, /*event_path=*/false, label) != 0) {
        return 1;
      }
    }
  }
  // The event-driven (preemptive-path) loop: a batch-formation window and
  // interactive arrivals route the same stream through PreemptiveEngine,
  // exercising AvailableSlots/hold/continuation bookkeeping.
  if (run_point(10000, 8, /*event_path=*/true, "event.r10000.s8") != 0) {
    return 1;
  }

  table.Print();

  auto st = bench::Harness::EmitBenchJson(stats);
  if (!st.ok()) {
    std::fprintf(stderr, "bench json: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
