// Reproduces Figure 15: comparison with out-of-RDBMS software libraries
// (Liblinear and DimmWitted): (a) runtime breakdown into data export /
// transform / analytics, (b) compute-time speedup over MADlib+PostgreSQL,
// (c) end-to-end speedup.
//
// The libraries' compute efficiency relative to MADlib is a model input
// taken from the paper's measurements (we cannot run the closed binaries);
// the export/transform phases and all end-to-end composition are computed
// by our models, so (a) and (c) are genuine outputs.

#include <cstdio>

#include "bench_harness.h"
#include "common/table_printer.h"

using namespace dana;

namespace {
struct LibRow {
  const char* id;
  const char* lib;
  /// Compute-time speedup of the library over MADlib+PostgreSQL (Fig 15b).
  double compute_speedup;
  /// Paper's end-to-end speedup over MADlib+PostgreSQL (Fig 15c).
  double paper_end_to_end;
  /// Paper's export share of the end-to-end runtime (Fig 15a).
  double paper_export_pct;
};
const LibRow kRows[] = {
    {"rs_lr", "Liblinear", 2.90, 0.375, 84.0},
    {"rs_lr", "DimmWitted", 0.56, 0.25, 56.7},
    {"wlan", "Liblinear", 28.84, 6.29, 83.8},
    {"wlan", "DimmWitted", 7.74, 4.70, 62.6},
    {"sn_logistic", "Liblinear", 15.44, 5.53, 57.4},
    {"sn_logistic", "DimmWitted", 20.90, 7.35, 64.7},
    {"rs_svm", "Liblinear", 0.16, 0.14, 69.2},
    {"rs_svm", "DimmWitted", 0.10, 0.12, 57.9},
    {"sn_svm", "Liblinear", 0.10, 0.10, 65.5},
    {"sn_svm", "DimmWitted", 0.10, 0.10, 65.6},
    {"patient", "DimmWitted", 3.90, 0.51, 74.6},
    {"blog", "DimmWitted", 1.90, 0.52, 86.2},
    {"sn_linear", "DimmWitted", 10.50, 5.50, 45.5},
};
}  // namespace

int main() {
  bench::Harness harness;
  bench::Harness::PrintHeader(
      "Figure 15: comparison with external software libraries",
      "Mahajan et al., PVLDB 11(11), Figure 15a/15b/15c");

  TablePrinter table({"Workload", "Library", "Export%", "Transform%",
                      "Compute%", "paper Export%", "E2E paper", "E2E ours",
                      "DAnA ours"});
  for (const auto& row : kRows) {
    auto instance = harness.Instance(row.id);
    if (!instance.ok()) return 1;
    runtime::ExternalLibrary lib(harness.cost(), row.lib,
                                 row.compute_speedup);
    auto phases = lib.Run(*instance);
    auto pg = harness.RunPg(row.id, runtime::CacheState::kWarm);
    auto dana = harness.RunDana(row.id, runtime::CacheState::kWarm);
    if (!phases.ok() || !pg.ok() || !dana.ok()) {
      std::fprintf(stderr, "%s/%s failed\n", row.id, row.lib);
      return 1;
    }
    const double total = phases->Total().seconds();
    const ml::Workload* w = ml::FindWorkload(row.id);
    table.AddRow(
        {w->display_name, row.lib,
         TablePrinter::Fmt(100 * phases->export_time.seconds() / total, 1),
         TablePrinter::Fmt(100 * phases->transform_time.seconds() / total, 1),
         TablePrinter::Fmt(100 * phases->compute_time.seconds() / total, 1),
         TablePrinter::Fmt(row.paper_export_pct, 1),
         TablePrinter::Speedup(row.paper_end_to_end, 2),
         TablePrinter::Speedup(pg->total / phases->Total(), 2),
         TablePrinter::Speedup(pg->total / dana->total, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: exporting data out of the RDBMS dominates (Fig 15a); "
      "DAnA needs no export and stays uniformly faster (Fig 15c).\n");
  return 0;
}
