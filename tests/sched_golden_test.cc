// Golden scheduler regression suite (ctest label: sched_golden).
//
// Pins the exact schedule — dispatch order, latency percentiles, makespan,
// batching and compile accounting — that each policy produces for one
// seeded Zipfian request stream over a synthetic executor, so a refactor
// that silently reshuffles schedules (tie-break drift, queue-order bugs,
// float reassociation) fails the build instead of shipping. The pinned
// values are the PR 2 scheduler's output; the affinity-weight-zero runs
// must keep reproducing them bit for bit no matter how the affinity
// machinery evolves.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"

namespace dana::sched {
namespace {

/// Deterministic synthetic costs: batch of K occupies shared + K*per_query.
class GoldenExecutor : public QueryExecutor {
 public:
  GoldenExecutor() {
    Set("hot", 2, 0.5, 3, 1);
    Set("warm", 4, 1, 6, 1);
    Set("mid", 8, 2, 11, 2);
    Set("tail", 20, 5, 26, 3);
  }

  Result<BatchCost> Dispatch(const QueryBatch& batch) override {
    const Split& s = costs_.at(batch.workload_id);
    BatchCost cost;
    cost.shared = dana::SimTime::Seconds(s.shared);
    cost.per_query = dana::SimTime::Seconds(s.per_query);
    cost.service = dana::SimTime::Seconds(
        s.shared + s.per_query * static_cast<double>(batch.size()));
    cost.compile = dana::SimTime::Seconds(s.compile);
    return cost;
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    return dana::SimTime::Seconds(costs_.at(id).estimate);
  }

 private:
  struct Split {
    double shared, per_query, estimate, compile;
  };
  void Set(const std::string& id, double shared, double per_query,
           double estimate, double compile) {
    costs_[id] = {shared, per_query, estimate, compile};
  }
  std::map<std::string, Split> costs_;
};

/// The one seeded stream every golden run schedules: Zipfian (s = 1.1)
/// over four classes, 40 queries at 0.5 qps — saturating two slots so
/// queues form and policies actually differ.
std::vector<QueryRequest> GoldenStream() {
  DriverOptions opts;
  opts.seed = 0x5EEDFACE;
  opts.num_queries = 40;
  opts.arrival_rate_qps = 0.5;
  opts.popularity = Popularity::kZipfian;
  opts.zipf_exponent = 1.1;
  WorkloadDriver driver({"hot", "warm", "mid", "tail"}, opts);
  auto stream = driver.Generate();
  EXPECT_TRUE(stream.ok());
  return *stream;
}

ScheduleReport RunGolden(Policy policy, double affinity_weight) {
  GoldenExecutor exec;
  Scheduler scheduler({.slots = 2,
                       .policy = policy,
                       .max_batch = 2,
                       .sjf_aging_weight = 0,
                       .affinity_weight = affinity_weight},
                      &exec);
  auto report = scheduler.Run(GoldenStream());
  EXPECT_TRUE(report.ok());
  return *report;
}

std::vector<uint64_t> DispatchOrder(const ScheduleReport& report) {
  std::vector<uint64_t> order;
  for (const QueryStat& q : report.queries) order.push_back(q.id);
  return order;
}

struct Golden {
  std::vector<uint64_t> order;
  double p50_s, p95_s, p99_s, makespan_s;
  uint64_t batches, compile_hits;
};

void ExpectMatchesGolden(const ScheduleReport& report, const Golden& golden) {
  EXPECT_EQ(DispatchOrder(report), golden.order);
  EXPECT_NEAR(report.LatencyPercentile(50).seconds(), golden.p50_s, 1e-6);
  EXPECT_NEAR(report.LatencyPercentile(95).seconds(), golden.p95_s, 1e-6);
  EXPECT_NEAR(report.LatencyPercentile(99).seconds(), golden.p99_s, 1e-6);
  EXPECT_NEAR(report.makespan.seconds(), golden.makespan_s, 1e-6);
  EXPECT_EQ(report.batches, golden.batches);
  EXPECT_EQ(report.compile_hits, golden.compile_hits);
}

// Regeneration aid (runs only with --gtest_also_run_disabled_tests): prints
// the golden literals below. Only paste new values for an *intentional*
// schedule change, and say why in the commit.
TEST(SchedulerGoldenTest, DISABLED_PrintGoldens) {
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    ScheduleReport r = RunGolden(policy, 0.0);
    std::printf("// %s\n{{", PolicyName(policy));
    for (uint64_t id : DispatchOrder(r)) std::printf("%llu, ",
        static_cast<unsigned long long>(id));
    std::printf("},\n %.9f, %.9f, %.9f, %.9f, %llu, %llu}\n",
                r.LatencyPercentile(50).seconds(),
                r.LatencyPercentile(95).seconds(),
                r.LatencyPercentile(99).seconds(), r.makespan.seconds(),
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.compile_hits));
  }
}

const Golden& GoldenFor(Policy policy) {
  static const std::map<Policy, Golden> goldens = {
      {Policy::kFcfs,
       {{0,  1,  2,  3,  4,  5,  6,  7,  8,  13, 9,  16, 10, 11,
         12, 14, 15, 17, 25, 18, 19, 20, 21, 22, 23, 24, 26, 27,
         31, 28, 29, 30, 32, 33, 35, 34, 36, 37, 38, 39},
        28.990068535, 44.741890129, 51.090790778, 126.129806968, 26, 36}},
      {Policy::kSjf,
       {{0,  1,  2,  3,  4, 5,  6,  7,  11, 12, 14, 15, 18, 19,
         20, 21, 22, 23, 9, 16, 24, 28, 29, 30, 26, 32, 33, 8,
         13, 35, 37, 36, 17, 25, 27, 31, 38, 39, 10, 34},
        6.777569800, 53.432328531, 78.424873021, 129.992746380, 30, 36}},
      {Policy::kRoundRobin,
       {{0,  1,  2,  3,  4,  5,  6,  7,  8,  13, 9,  16, 11, 12,
         10, 17, 25, 24, 26, 14, 15, 34, 27, 31, 36, 18, 19, 38,
         39, 20, 21, 22, 23, 28, 29, 30, 32, 33, 35, 37},
        32.445490629, 57.741801447, 59.297803183, 124.629806968, 26, 36}},
  };
  return goldens.at(policy);
}

TEST(SchedulerGoldenTest, FcfsScheduleIsPinned) {
  ExpectMatchesGolden(RunGolden(Policy::kFcfs, 0.0), GoldenFor(Policy::kFcfs));
}

TEST(SchedulerGoldenTest, SjfScheduleIsPinned) {
  ExpectMatchesGolden(RunGolden(Policy::kSjf, 0.0), GoldenFor(Policy::kSjf));
}

TEST(SchedulerGoldenTest, RoundRobinScheduleIsPinned) {
  ExpectMatchesGolden(RunGolden(Policy::kRoundRobin, 0.0),
                      GoldenFor(Policy::kRoundRobin));
}

/// The scheduler's default options (no affinity field touched) must equal
/// the explicit affinity_weight = 0 runs — i.e. the pinned PR 2 schedules.
TEST(SchedulerGoldenTest, DefaultOptionsReproduceTheGoldens) {
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    GoldenExecutor exec;
    Scheduler scheduler({.slots = 2, .policy = policy, .max_batch = 2},
                        &exec);
    auto report = scheduler.Run(GoldenStream());
    ASSERT_TRUE(report.ok());
    ExpectMatchesGolden(*report, GoldenFor(policy));
  }
}

/// Preemption off is the golden scheduler: explicit zero preemption and
/// batching-window knobs (with every other preemptive option primed) must
/// keep reproducing the pinned PR 3 schedules bit for bit, no matter how
/// the epoch-slicing machinery evolves.
TEST(SchedulerGoldenTest, PreemptionOffReproducesTheGoldens) {
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    GoldenExecutor exec;
    Scheduler scheduler({.slots = 2,
                         .policy = policy,
                         .max_batch = 2,
                         .sjf_aging_weight = 0,
                         .affinity_weight = 0,
                         .preemption_quantum_epochs = 0,
                         .context_switch_cost = dana::SimTime::Seconds(30),
                         .batch_window = dana::SimTime::Zero()},
                        &exec);
    auto report = scheduler.Run(GoldenStream());
    ASSERT_TRUE(report.ok());
    ExpectMatchesGolden(*report, GoldenFor(policy));
  }
}

/// Back-to-back runs are bit-for-bit identical — the property the CI
/// determinism step double-checks by diffing two -L sched_golden logs.
TEST(SchedulerGoldenTest, RepeatRunsAreBitForBit) {
  for (Policy policy : {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin}) {
    ScheduleReport a = RunGolden(policy, 0.0);
    ScheduleReport b = RunGolden(policy, 0.0);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (size_t i = 0; i < a.queries.size(); ++i) {
      EXPECT_EQ(a.queries[i].id, b.queries[i].id);
      EXPECT_EQ(a.queries[i].slot, b.queries[i].slot);
      EXPECT_EQ(a.queries[i].start.nanos(), b.queries[i].start.nanos());
      EXPECT_EQ(a.queries[i].completion.nanos(),
                b.queries[i].completion.nanos());
    }
  }
}

}  // namespace
}  // namespace dana::sched
