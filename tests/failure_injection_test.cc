#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "compiler/report.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/table.h"
#include "strider/codegen.h"
#include "strider/simulator.h"

namespace dana {
namespace {

using storage::Page;
using storage::PageLayout;

/// Builds one valid page of `n` tuples with `payload` bytes each.
std::vector<uint8_t> ValidPage(const PageLayout& layout, uint32_t n,
                               uint32_t payload) {
  std::vector<uint8_t> buf(layout.page_size);
  Page page(buf.data(), layout);
  page.InitEmpty();
  std::vector<uint8_t> data(payload);
  for (uint32_t t = 0; t < n; ++t) {
    for (uint32_t i = 0; i < payload; ++i) {
      data[i] = static_cast<uint8_t>(t + i);
    }
    EXPECT_TRUE(page.AddTuple(data, 4).ok());
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Corrupt pages: the Strider either extracts nothing wrong or fails with a
// clean Status — never crashes, never emits bytes outside the page.
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, LinePointerPastPageEnd) {
  PageLayout layout;
  auto buf = ValidPage(layout, 10, 64);
  // Point slot 3's line pointer beyond the page.
  const uint32_t packed =
      storage::PackItemId(layout.page_size - 8, storage::kLpNormal, 500);
  std::memcpy(buf.data() + layout.header_size + 3 * 4, &packed, 4);

  Page page(buf.data(), layout);
  EXPECT_TRUE(page.Validate().IsCorruption());

  auto prog = strider::BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  strider::StriderSim sim;
  auto run = sim.Run(*prog, buf);
  // The walk must fail cleanly (the cln read would cross the page end).
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsOutOfRange()) << run.status().ToString();
}

TEST(FailureInjectionTest, LowerFieldInsaneTerminatesWalk) {
  PageLayout layout;
  layout.page_size = 8 * 1024;  // lower below points past this page
  auto buf = ValidPage(layout, 5, 64);
  // lower far past the page: the line-pointer loop would run off the page
  // buffer and must be stopped by a bounds error, not loop forever.
  const uint16_t bad = 0x7FF0;
  std::memcpy(buf.data() + layout.lower_offset, &bad, 2);
  auto prog = strider::BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  strider::StriderSim sim;
  auto run = sim.Run(*prog, buf, /*max_cycles=*/1 << 20);
  EXPECT_FALSE(run.ok());
}

TEST(FailureInjectionTest, ZeroedPageYieldsNoTuples) {
  PageLayout layout;
  std::vector<uint8_t> buf(layout.page_size, 0);  // all-zero page
  auto prog = strider::BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  strider::StriderSim sim;
  auto run = sim.Run(*prog, buf);
  // lower == 0 < header: the loop exits immediately on its guard.
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->tuples.empty());
}

TEST(FailureInjectionTest, RandomByteFlipsNeverCrashTheStrider) {
  PageLayout layout;
  layout.page_size = 8 * 1024;
  auto prog = strider::BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  strider::StriderSim sim;
  Rng rng(4242);
  const auto golden = ValidPage(layout, 20, 100);
  for (int trial = 0; trial < 200; ++trial) {
    auto buf = golden;
    // Flip 1-8 random bytes anywhere in the page.
    const int flips = 1 + static_cast<int>(rng.UniformInt(8));
    for (int f = 0; f < flips; ++f) {
      buf[rng.UniformInt(buf.size())] ^=
          static_cast<uint8_t>(1 + rng.UniformInt(255));
    }
    auto run = sim.Run(prog.ValueOrDie(), buf, /*max_cycles=*/1 << 20);
    if (run.ok()) {
      // Whatever was extracted must at least lie within the page.
      for (const auto& t : run->tuples) {
        EXPECT_LE(t.size(), layout.page_size);
      }
    } else {
      // Clean, classified failure.
      EXPECT_TRUE(run.status().IsOutOfRange() ||
                  run.status().IsResourceExhausted() ||
                  run.status().IsInvalidArgument())
          << run.status().ToString();
    }
  }
}

TEST(FailureInjectionTest, TupleShorterThanHeaderIsCorruption) {
  PageLayout layout;
  auto buf = ValidPage(layout, 2, 64);
  // Shrink slot 0's length below the tuple header size.
  const uint32_t packed_short = storage::PackItemId(
      layout.page_size - (layout.tuple_header_size + 64), storage::kLpNormal,
      8);
  std::memcpy(buf.data() + layout.header_size, &packed_short, 4);
  Page page(buf.data(), layout);
  EXPECT_TRUE(page.GetTuplePayload(0).status().IsCorruption());
}

TEST(FailureInjectionTest, DeadSlotSkippedByCodec) {
  PageLayout layout;
  auto buf = ValidPage(layout, 3, 32);
  Page page(buf.data(), layout);
  auto item = page.GetItemId(1);
  ASSERT_TRUE(item.ok());
  const uint32_t dead =
      storage::PackItemId(item->first, storage::kLpDead, item->second);
  std::memcpy(buf.data() + layout.header_size + 4, &dead, 4);
  EXPECT_TRUE(page.GetTuplePayload(1).status().IsNotFound());
  EXPECT_TRUE(page.GetTuplePayload(0).ok());
  EXPECT_TRUE(page.GetTuplePayload(2).ok());
}

// ---------------------------------------------------------------------------
// Utilization report sanity
// ---------------------------------------------------------------------------

TEST(UtilizationReportTest, MentionsEveryResource) {
  ml::AlgoParams p;
  p.dims = 16;
  p.merge_coef = 8;
  auto algo = std::move(ml::BuildAlgo(ml::AlgoKind::kLogisticRegression, p))
                  .ValueOrDie();
  ml::DatasetSpec spec;
  spec.kind = ml::AlgoKind::kLogisticRegression;
  spec.dims = 16;
  spec.tuples = 100;
  auto data = ml::GenerateDataset(spec);
  storage::PageLayout layout;
  auto table = std::move(ml::BuildTable("t", data, layout)).ValueOrDie();
  compiler::WorkloadShape shape;
  shape.num_tuples = table->num_tuples();
  shape.num_pages = table->num_pages();
  shape.tuples_per_page = table->TuplesOnPage(0);
  shape.tuple_payload_bytes = table->schema().RowBytes();
  compiler::UdfCompiler compiler{compiler::FpgaSpec{}};
  auto udf = std::move(compiler.Compile(*algo, layout, shape)).ValueOrDie();

  const std::string report = compiler::UtilizationReport(udf);
  for (const char* token :
       {"DSP slices", "LUTs", "BRAM", "Analytic units", "Strider ISA",
        "Execution engine", "page buffers", "Update rule", "Merge network",
        "Estimated cycles per epoch"}) {
    EXPECT_NE(report.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace dana
