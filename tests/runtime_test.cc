#include <gtest/gtest.h>

#include "compiler/serialization.h"
#include "ml/workloads.h"
#include "runtime/cost_model.h"
#include "runtime/query.h"
#include "runtime/systems.h"

namespace dana::runtime {
namespace {

// ---------------------------------------------------------------------------
// Workload catalog (Table 3)
// ---------------------------------------------------------------------------

TEST(WorkloadsTest, FourteenWorkloadsInPaperGroups) {
  EXPECT_EQ(ml::AllWorkloads().size(), 14u);
  EXPECT_EQ(ml::PublicWorkloads().size(), 6u);
  EXPECT_EQ(ml::SyntheticNominalWorkloads().size(), 4u);
  EXPECT_EQ(ml::SyntheticExtensiveWorkloads().size(), 4u);
}

TEST(WorkloadsTest, LookupById) {
  const ml::Workload* w = ml::FindWorkload("rs_lr");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->display_name, "Remote Sensing LR");
  EXPECT_EQ(w->kind, ml::AlgoKind::kLogisticRegression);
  EXPECT_EQ(w->params.dims, 54u);
  EXPECT_EQ(ml::FindWorkload("nope"), nullptr);
}

TEST(WorkloadsTest, ScaleReflectsPaperElements) {
  for (const auto& w : ml::AllWorkloads()) {
    EXPECT_GT(w.scale, 0.99) << w.id;
    // Element-based virtual scaling: generated elements x scale == paper
    // elements (tuples x width).
    const double paper_elems =
        static_cast<double>(w.paper.tuples) * w.paper_dims;
    const double our_elems =
        static_cast<double>(w.tuples) * w.params.dims;
    EXPECT_NEAR(w.scale * our_elems, paper_elems, paper_elems * 0.01)
        << w.id;
    EXPECT_GT(w.paper.dana_speedup_warm, 0.0) << w.id;
    EXPECT_GT(w.assumed_epochs, 0u) << w.id;
    EXPECT_GT(w.dana_epochs, 0u) << w.id;
  }
}

TEST(WorkloadsTest, TuplePayloadMatchesKind) {
  const ml::Workload* netflix = ml::FindWorkload("netflix");
  ASSERT_NE(netflix, nullptr);
  EXPECT_EQ(netflix->TuplePayloadBytes(), netflix->params.dims * 4);
  const ml::Workload* blog = ml::FindWorkload("blog");
  EXPECT_EQ(blog->TuplePayloadBytes(), (blog->params.dims + 1) * 4);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, LogisticCostlierThanLinearPerFlop) {
  CpuCostModel cm;
  EXPECT_GT(cm.MadlibNsPerFlop(ml::AlgoKind::kLogisticRegression),
            cm.MadlibNsPerFlop(ml::AlgoKind::kLinearRegression));
}

TEST(CostModelTest, TupleTimeGrowsWithWidth) {
  CpuCostModel cm;
  ml::AlgoParams narrow, wide;
  narrow.dims = 10;
  wide.dims = 1000;
  EXPECT_GT(
      cm.MadlibTupleTime(ml::AlgoKind::kSvm, wide).nanos(),
      cm.MadlibTupleTime(ml::AlgoKind::kSvm, narrow).nanos() * 10);
}

TEST(CostModelTest, GreenplumSegmentCurvePeaksAt8) {
  EXPECT_LT(GreenplumModel::SegmentCurve(4), 1.0);
  EXPECT_DOUBLE_EQ(GreenplumModel::SegmentCurve(8), 1.0);
  EXPECT_LT(GreenplumModel::SegmentCurve(16), 1.0);
}

// ---------------------------------------------------------------------------
// Systems on a small real workload
// ---------------------------------------------------------------------------

class SystemsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ml::Workload* w = ml::FindWorkload("rs_lr");
    ASSERT_NE(w, nullptr);
    ml::Workload scaled = *w;
    scaled.tuples = 3000;  // shrink further for test speed
    scaled.scale = static_cast<double>(w->paper.tuples) / scaled.tuples;
    instance_ = std::move(WorkloadInstance::Create(scaled)).ValueOrDie()
                    .release();
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }
  static WorkloadInstance* instance_;
};

WorkloadInstance* SystemsTest::instance_ = nullptr;

TEST_F(SystemsTest, DanaBeatsMadlibWarm) {
  CpuCostModel cm;
  MadlibPostgres pg(cm);
  DanaSystem dana(cm);
  auto pg_r = std::move(pg.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto da_r = std::move(dana.Run(instance_, CacheState::kWarm)).ValueOrDie();
  EXPECT_GT(pg_r.total / da_r.total, 4.0)
      << "paper reports 28.2x on Remote Sensing LR";
  EXPECT_LT(pg_r.total / da_r.total, 120.0);
}

TEST_F(SystemsTest, ColdCacheShrinksAdvantage) {
  CpuCostModel cm;
  MadlibPostgres pg(cm);
  DanaSystem dana(cm);
  auto pg_w = std::move(pg.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto da_w = std::move(dana.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto pg_c = std::move(pg.Run(instance_, CacheState::kCold)).ValueOrDie();
  auto da_c = std::move(dana.Run(instance_, CacheState::kCold)).ValueOrDie();
  EXPECT_GT(pg_c.total.nanos(), pg_w.total.nanos());
  EXPECT_GT(da_c.total.nanos(), da_w.total.nanos());
  EXPECT_LT(pg_c.total / da_c.total, pg_w.total / da_w.total);
}

TEST_F(SystemsTest, GreenplumBetween) {
  CpuCostModel cm;
  MadlibPostgres pg(cm);
  MadlibGreenplum gp(cm, 8);
  DanaSystem dana(cm);
  auto pg_r = std::move(pg.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto gp_r = std::move(gp.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto da_r = std::move(dana.Run(instance_, CacheState::kWarm)).ValueOrDie();
  EXPECT_LT(gp_r.total.nanos(), pg_r.total.nanos());
  EXPECT_LT(da_r.total.nanos(), gp_r.total.nanos());
}

TEST_F(SystemsTest, AllSystemsTrainEquivalentModels) {
  CpuCostModel cm;
  MadlibPostgres pg(cm);
  DanaSystem dana(cm);
  auto pg_r = std::move(pg.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto da_r = std::move(dana.Run(instance_, CacheState::kWarm)).ValueOrDie();
  ASSERT_EQ(pg_r.model.size(), da_r.model.size());
  // Same loss neighbourhood (fp32 vs fp64 training).
  EXPECT_NEAR(pg_r.loss, da_r.loss, 0.05 * (1.0 + pg_r.loss));
}

TEST_F(SystemsTest, ExternalLibraryDominatedByExport) {
  CpuCostModel cm;
  ExternalLibrary lib(cm, "Liblinear", 2.9);
  auto phases = std::move(lib.Run(instance_)).ValueOrDie();
  EXPECT_GT(phases.export_time.nanos(), phases.transform_time.nanos());
  EXPECT_GT(phases.export_time / phases.Total(), 0.5)
      << "Fig 15a shows export dominating";
}

TEST_F(SystemsTest, TablaSlowerThanDana) {
  CpuCostModel cm;
  DanaSystem dana(cm);
  TablaSystem tabla(cm, DefaultFpga());
  auto da_r = std::move(dana.Run(instance_, CacheState::kWarm)).ValueOrDie();
  auto tb = std::move(tabla.ComputeTimePerEpoch(instance_)).ValueOrDie();
  const dana::SimTime dana_per_epoch =
      da_r.compute / std::max<uint32_t>(da_r.epochs, 1);
  EXPECT_GT(tb.nanos(), dana_per_epoch.nanos());
}

TEST_F(SystemsTest, PerSlotPoolsAreIndependentAndEquivalent) {
  CpuCostModel cm;
  DanaSystem dana(cm);
  auto udf = std::move(dana.Compile(*instance_)).ValueOrDie();

  // Two slots train the same table off private pools: identical results,
  // and each slot's hit/miss accounting stays its own.
  instance_->EnsureSlots(2);
  auto slot0 = std::move(dana.RunCompiled(udf, instance_, CacheState::kCold,
                                          /*batch_queries=*/1, /*slot=*/0))
                   .ValueOrDie();
  const auto slot0_stats = instance_->pool(0)->stats();
  EXPECT_GT(slot0_stats.misses, 0u);
  EXPECT_EQ(instance_->pool(1)->stats().misses, 0u)
      << "slot 0's training must not touch slot 1's pool";

  auto slot1 = std::move(dana.RunCompiled(udf, instance_, CacheState::kCold,
                                          /*batch_queries=*/1, /*slot=*/1))
                   .ValueOrDie();
  EXPECT_DOUBLE_EQ(slot1.total.nanos(), slot0.total.nanos());
  EXPECT_DOUBLE_EQ(slot1.io.nanos(), slot0.io.nanos());
  EXPECT_EQ(slot1.model, slot0.model);
  EXPECT_EQ(instance_->pool(1)->stats().misses, slot0_stats.misses)
      << "an identically-prepared slot does identical I/O";
  // Slot 0's counters were not disturbed by slot 1's run.
  EXPECT_EQ(instance_->pool(0)->stats().misses, slot0_stats.misses);
  EXPECT_EQ(instance_->pool(0)->stats().hits, slot0_stats.hits);

  const storage::BufferPoolStats rollup = instance_->PoolStatsRollup();
  EXPECT_EQ(rollup.misses, 2 * slot0_stats.misses);

  // The defaulted arguments are the single-pool baseline: same slot-0 pool,
  // same timing as an explicit (batch=1, slot=0) run.
  auto baseline =
      std::move(dana.RunCompiled(udf, instance_, CacheState::kCold))
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(baseline.total.nanos(), slot0.total.nanos());
  EXPECT_EQ(baseline.batch_queries, 1u);
}

TEST_F(SystemsTest, BatchedRunAmortizesSharedStream) {
  CpuCostModel cm;
  DanaSystem dana(cm);
  auto udf = std::move(dana.Compile(*instance_)).ValueOrDie();
  auto one = std::move(dana.RunCompiled(udf, instance_, CacheState::kWarm))
                 .ValueOrDie();
  auto four = std::move(dana.RunCompiled(udf, instance_, CacheState::kWarm,
                                         /*batch_queries=*/4))
                  .ValueOrDie();
  EXPECT_EQ(four.batch_queries, 4u);
  // Four co-trained queries in one pass beat four serial passes...
  EXPECT_LT(four.total.nanos(), 4.0 * one.total.nanos());
  // ...because the stream is paid once: shared attribution matches the
  // single run's, while per-query engine time is per model.
  EXPECT_NEAR(four.shared_time.nanos(), one.shared_time.nanos(),
              1e-6 * one.shared_time.nanos());
  EXPECT_NEAR(four.per_query_time.nanos(), one.per_query_time.nanos(),
              1e-6 * one.per_query_time.nanos() + 1.0);
}

TEST(SystemsSmallTest, SegmentSweepShapesLikeFig13) {
  const ml::Workload* w = ml::FindWorkload("patient");
  ASSERT_NE(w, nullptr);
  ml::Workload scaled = *w;
  scaled.tuples = 1000;
  scaled.scale = static_cast<double>(w->paper.tuples) / scaled.tuples;
  auto instance = std::move(WorkloadInstance::Create(scaled)).ValueOrDie();
  CpuCostModel cm;
  auto t4 = std::move(MadlibGreenplum(cm, 4).Run(instance.get(),
                                                 CacheState::kWarm))
                .ValueOrDie();
  auto t8 = std::move(MadlibGreenplum(cm, 8).Run(instance.get(),
                                                 CacheState::kWarm))
                .ValueOrDie();
  auto t16 = std::move(MadlibGreenplum(cm, 16).Run(instance.get(),
                                                   CacheState::kWarm))
                 .ValueOrDie();
  EXPECT_LE(t8.total.nanos(), t4.total.nanos());
  EXPECT_LE(t8.total.nanos(), t16.total.nanos());
}

// ---------------------------------------------------------------------------
// Query parsing + session
// ---------------------------------------------------------------------------

TEST(QueryParseTest, AcceptsPaperForm) {
  auto q = ParseUdfQuery("SELECT * FROM dana.linearR('training_data');");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->udf_name, "linearR");
  EXPECT_EQ(q->table_name, "training_data");
}

TEST(QueryParseTest, CaseAndWhitespaceInsensitive) {
  auto q = ParseUdfQuery("select  *   from   DANA.svm ( \"t1\" )");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->udf_name, "svm");
  EXPECT_EQ(q->table_name, "t1");
}

TEST(QueryParseTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseUdfQuery("SELECT a FROM dana.f('t')").ok());
  EXPECT_FALSE(ParseUdfQuery("SELECT * FROM public.f('t')").ok());
  EXPECT_FALSE(ParseUdfQuery("SELECT * FROM dana.('t')").ok());
  EXPECT_FALSE(ParseUdfQuery("SELECT * FROM dana.f(t)").ok());
  EXPECT_FALSE(ParseUdfQuery("SELECT * FROM dana.f('t'").ok());
  EXPECT_FALSE(ParseUdfQuery("SELECT * FROM dana.f('')").ok());
  EXPECT_FALSE(ParseUdfQuery("").ok());
}

std::unique_ptr<dsl::Algo> TinyLinear() {
  auto algo = std::make_unique<dsl::Algo>("lin");
  auto mo = algo->Model("mo", {4});
  auto in = algo->Input("in", {4});
  auto out = algo->Output("out");
  auto g = algo->Merge((dsl::Sigma(mo * in, 0) - out) * in, 4,
                       dsl::OpKind::kAdd);
  EXPECT_TRUE(algo->SetModel(mo, mo - 0.1 * g).ok());
  algo->SetEpochs(2);
  return algo;
}

TEST(SessionTest, EndToEndQueryTrainsAndRegistersCatalogMetadata) {
  Session session;
  ml::DatasetSpec spec;
  spec.kind = ml::AlgoKind::kLinearRegression;
  spec.dims = 4;
  spec.tuples = 200;
  auto data = ml::GenerateDataset(spec);
  storage::PageLayout layout;
  ASSERT_TRUE(session.catalog()
                  ->RegisterTable(
                      std::move(ml::BuildTable("t", data, layout)).ValueOrDie())
                  .ok());
  ASSERT_TRUE(session.RegisterUdf(TinyLinear()).ok());

  auto report = session.ExecuteQuery("SELECT * FROM dana.lin('t');");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epochs_run, 2u);
  EXPECT_EQ(report->tuples_processed, 400u);

  // The compiled design landed in the catalog (Figure 2) as a loadable
  // binary: deserializing it yields the same accelerator.
  auto blob = session.catalog()->GetUdfMetadata("lin");
  ASSERT_TRUE(blob.ok());
  auto loaded = compiler::DeserializeUdf(*blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->udf_name, "lin");
  EXPECT_FALSE(loaded->strider_program.code.empty());

  // Second query reuses the compiled design.
  EXPECT_TRUE(session.ExecuteQuery("SELECT * FROM dana.lin('t')").ok());
}

TEST(SessionTest, UnknownUdfOrTableFail) {
  Session session;
  EXPECT_TRUE(session.ExecuteQuery("SELECT * FROM dana.nope('t')")
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(session.RegisterUdf(TinyLinear()).ok());
  EXPECT_TRUE(session.ExecuteQuery("SELECT * FROM dana.lin('ghost')")
                  .status()
                  .IsNotFound());
}

TEST(SessionTest, DuplicateUdfRejected) {
  Session session;
  ASSERT_TRUE(session.RegisterUdf(TinyLinear()).ok());
  EXPECT_TRUE(session.RegisterUdf(TinyLinear()).IsAlreadyExists());
}

TEST(SessionTest, GetCompiledBeforeQueryIsNotFound) {
  Session session;
  ASSERT_TRUE(session.RegisterUdf(TinyLinear()).ok());
  EXPECT_TRUE(session.GetCompiled("lin").status().IsNotFound());
}

}  // namespace
}  // namespace dana::runtime
