#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compiler/codegen.h"
#include "compiler/compiler.h"
#include "compiler/hw_generator.h"
#include "compiler/scalar_program.h"
#include "compiler/scheduler.h"
#include "hdfg/translator.h"
#include "ml/algorithms.h"

namespace dana::compiler {
namespace {

ScalarProgram Lower(ml::AlgoKind kind, ml::AlgoParams params) {
  auto algo = std::move(ml::BuildAlgo(kind, params)).ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  return std::move(LowerGraph(graph)).ValueOrDie();
}

ml::AlgoParams SmallParams(uint32_t dims, uint32_t coef = 4) {
  ml::AlgoParams p;
  p.dims = dims;
  p.merge_coef = coef;
  p.epochs = 2;
  return p;
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

TEST(LoweringTest, LinearRegressionOpCounts) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(16));
  // Per-tuple: 16 muls (mo*in) + 15 adds (sigma) + 1 sub + 16 muls (er*in).
  EXPECT_EQ(prog.tuple_ops.size(), 16u + 15 + 1 + 16);
  // Merge boundary carries the d-wide gradient.
  EXPECT_EQ(prog.merge_slots.size(), 16u);
  // Per-batch: 16 (g*inv) + 16 (lr*...) + 16 (mo - ...).
  EXPECT_EQ(prog.batch_ops.size(), 48u);
  ASSERT_EQ(prog.model_writes.size(), 1u);
  EXPECT_EQ(prog.model_writes[0].elems.size(), 16u);
  EXPECT_EQ(prog.merge_coef, 4u);
  EXPECT_EQ(prog.max_epochs, 2u);
}

TEST(LoweringTest, VarTablesPopulated) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLogisticRegression, SmallParams(8));
  EXPECT_EQ(prog.model_vars.size(), 1u);
  EXPECT_EQ(prog.input_vars.size(), 1u);
  EXPECT_EQ(prog.output_vars.size(), 1u);
  EXPECT_GE(prog.meta_vars.size(), 2u);  // lr, inv_coef
  EXPECT_EQ(prog.ModelElements(), 8u);
  EXPECT_EQ(prog.TupleElements(), 9u);  // 8 features + label
}

TEST(LoweringTest, LrmfShapes) {
  ml::AlgoParams p = SmallParams(12, 2);
  p.rank = 3;
  ScalarProgram prog = Lower(ml::AlgoKind::kLowRankMF, p);
  EXPECT_EQ(prog.ModelElements(), 36u);   // [12][3]
  EXPECT_EQ(prog.TupleElements(), 12u);   // rating row, no label
  EXPECT_EQ(prog.merge_slots.size(), 36u);
  EXPECT_EQ(prog.model_writes[0].elems.size(), 36u);
}

TEST(LoweringTest, TopologicalOrderWithinRegions) {
  ScalarProgram prog = Lower(ml::AlgoKind::kSvm, SmallParams(32));
  auto check = [](const std::vector<ScalarOp>& ops) {
    for (size_t i = 0; i < ops.size(); ++i) {
      for (const ValueRef* r : {&ops[i].a, &ops[i].b}) {
        if (r->kind == ValueRef::Kind::kSub) {
          EXPECT_LT(r->index, i) << "forward reference in op " << i;
        }
      }
    }
  };
  check(prog.tuple_ops);
  // Batch/epoch ops may reference tuple ops (cross-region), but
  // same-region references must be backward.
  for (size_t i = 0; i < prog.batch_ops.size(); ++i) {
    for (const ValueRef* r : {&prog.batch_ops[i].a, &prog.batch_ops[i].b}) {
      if (r->kind == ValueRef::Kind::kSub &&
          r->region == ValueRegion::kBatch) {
        EXPECT_LT(r->index, i);
      }
    }
  }
}

TEST(LoweringTest, ConvergenceLandsInEpochRegion) {
  ml::AlgoParams p = SmallParams(8);
  p.convergence_norm = 0.01;
  ScalarProgram prog = Lower(ml::AlgoKind::kLinearRegression, p);
  EXPECT_TRUE(prog.has_convergence);
  EXPECT_GT(prog.epoch_ops.size(), 0u);
  EXPECT_EQ(prog.convergence.kind, ValueRef::Kind::kSub);
  EXPECT_EQ(prog.convergence.region, ValueRegion::kEpoch);
}

TEST(LoweringTest, SubNodeCountMatchesGraphEstimate) {
  auto algo = std::move(ml::BuildAlgo(ml::AlgoKind::kLinearRegression,
                                      SmallParams(64)))
                  .ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  auto prog = std::move(LowerGraph(graph)).ValueOrDie();
  EXPECT_EQ(prog.tuple_ops.size(),
            graph.TotalSubNodes(hdfg::Region::kPerTuple));
}

TEST(LoweringTest, ProgramDumpShowsRegions) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(4));
  const std::string s = prog.ToString();
  EXPECT_NE(s.find("tuple ("), std::string::npos);
  EXPECT_NE(s.find("merges ("), std::string::npos);
  EXPECT_NE(s.find("write model0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

SchedulerConfig Cfg(uint32_t acs, bool simd = true) {
  SchedulerConfig c;
  c.num_acs = acs;
  c.selective_simd = simd;
  return c;
}

class SchedulerSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(SchedulerSweep, RespectsDependenciesAndResources) {
  const auto [dims, acs] = GetParam();
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLogisticRegression, SmallParams(dims));
  Scheduler sched(Cfg(acs));
  auto s = sched.Run(prog.tuple_ops);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->placements.size(), prog.tuple_ops.size());

  // (1) Dependencies finish before consumers start.
  for (size_t i = 0; i < prog.tuple_ops.size(); ++i) {
    for (const ValueRef* r :
         {&prog.tuple_ops[i].a, &prog.tuple_ops[i].b}) {
      if (r->kind == ValueRef::Kind::kSub) {
        EXPECT_LE(s->placements[r->index].finish_cycle,
                  s->placements[i].start_cycle);
      }
    }
  }
  // (2) No two ops share (ac, au, cycle); lanes within bounds.
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> used;
  for (const auto& p : s->placements) {
    EXPECT_LT(p.ac, acs);
    EXPECT_LT(p.au, engine::kAusPerAc);
    for (uint32_t c = p.start_cycle; c < p.finish_cycle; ++c) {
      EXPECT_TRUE(used.insert({p.ac, p.au, c}).second)
          << "overlap at ac" << p.ac << " au" << p.au << " cycle " << c;
    }
  }
  // (3) Makespan sane: at least the serial lower bound.
  const uint64_t total_aus = static_cast<uint64_t>(acs) * engine::kAusPerAc;
  EXPECT_GE(s->makespan,
            prog.tuple_ops.size() / total_aus);
  EXPECT_GT(s->makespan, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SchedulerSweep,
                         ::testing::Combine(::testing::Values(8u, 54u, 300u),
                                            ::testing::Values(1u, 4u, 16u)));

TEST(SchedulerTest, SelectiveSimdOneOpcodePerClusterCycle) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLogisticRegression, SmallParams(64));
  Scheduler sched(Cfg(4));
  auto s = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  std::map<std::pair<uint32_t, uint32_t>, engine::AluOp> issued;
  for (size_t i = 0; i < prog.tuple_ops.size(); ++i) {
    const auto& p = s.placements[i];
    auto key = std::make_pair(p.ac, p.start_cycle);
    auto [it, fresh] = issued.emplace(key, prog.tuple_ops[i].op);
    if (!fresh) {
      EXPECT_EQ(it->second, prog.tuple_ops[i].op)
          << "two opcodes issued by one AC in one cycle";
    }
  }
}

TEST(SchedulerTest, MoreClustersNeverSlower) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(256));
  Scheduler s1(Cfg(1)), s8(Cfg(8));
  auto m1 = std::move(s1.Run(prog.tuple_ops)).ValueOrDie().makespan;
  auto m8 = std::move(s8.Run(prog.tuple_ops)).ValueOrDie().makespan;
  EXPECT_LE(m8, m1);
  EXPECT_LT(m8, m1 / 2);  // wide elementwise work parallelizes well
}

TEST(SchedulerTest, EmptyProgramHasZeroMakespan) {
  Scheduler sched(Cfg(2));
  auto s = sched.Run({});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->makespan, 0u);
}

TEST(SchedulerTest, MakespanAtLeastCriticalPath) {
  // A pure chain: each op depends on the previous one; no parallelism.
  std::vector<ScalarOp> chain;
  chain.push_back({engine::AluOp::kAdd, ValueRef::Const(1.0),
                   ValueRef::Const(2.0)});
  for (int i = 1; i < 32; ++i) {
    chain.push_back({engine::AluOp::kAdd,
                     ValueRef::Sub(ValueRegion::kTuple, i - 1),
                     ValueRef::Const(1.0)});
  }
  Scheduler sched(Cfg(8));
  auto s = std::move(sched.Run(chain)).ValueOrDie();
  EXPECT_GE(s.makespan, 32u);  // latency 1 each, serial
}

TEST(SchedulerTest, UtilizationBounded) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(128));
  Scheduler sched(Cfg(2));
  auto s = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  const double u = s.Utilization(2 * engine::kAusPerAc);
  EXPECT_GT(u, 0.05);
  EXPECT_LE(u, 1.0);
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

TEST(CodegenTest, AuMicroOpEncodeDecodeRoundTrip) {
  engine::AuMicroOp op;
  op.op = engine::AluOp::kMul;
  op.src1 = {engine::SrcKind::kScratch, 300};
  op.src2 = {engine::SrcKind::kBus, 1};
  op.dst = engine::DstKind::kScratch;
  op.dst_addr = 123;
  auto back = engine::AuMicroOp::Decode(op.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, op.op);
  EXPECT_EQ(back->src1.kind, op.src1.kind);
  EXPECT_EQ(back->src1.addr, op.src1.addr);
  EXPECT_EQ(back->src2.kind, op.src2.kind);
  EXPECT_EQ(back->dst, op.dst);
  EXPECT_EQ(back->dst_addr, op.dst_addr);
}

TEST(CodegenTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(engine::AuMicroOp::Decode(~0ull).ok());
  EXPECT_FALSE(engine::AuMicroOp::Decode(63).ok());  // opcode 63 invalid
}

TEST(CodegenTest, EmissionCoversEveryScheduledOp) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(32));
  Scheduler sched(Cfg(4));
  auto s = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  auto programs =
      EmitAcPrograms(prog.tuple_ops, s, ValueRegion::kTuple, 4);
  ASSERT_TRUE(programs.ok()) << programs.status().ToString();
  ASSERT_EQ(programs->size(), 4u);
  uint64_t lanes = 0;
  for (const auto& acp : *programs) {
    for (const auto& instr : acp.instructions) {
      EXPECT_NE(instr.active_mask, 0);
      for (uint32_t l = 0; l < engine::kAusPerAc; ++l) {
        if (instr.active_mask & (1u << l)) {
          ++lanes;
          EXPECT_EQ(instr.lanes[l].op, instr.op)
              << "selective SIMD lane opcode mismatch";
        }
      }
    }
  }
  EXPECT_EQ(lanes, prog.tuple_ops.size());
  EXPECT_GT(EncodedSizeBytes(*programs), 0u);
}

TEST(CodegenTest, InstructionStreamsOrderedByCycle) {
  ScalarProgram prog = Lower(ml::AlgoKind::kSvm, SmallParams(16));
  Scheduler sched(Cfg(2));
  auto s = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  auto programs =
      std::move(EmitAcPrograms(prog.tuple_ops, s, ValueRegion::kTuple, 2))
          .ValueOrDie();
  // Instruction count per cluster can't exceed its scheduled slots.
  uint64_t total_instrs = 0;
  for (const auto& acp : *&programs) total_instrs += acp.instructions.size();
  EXPECT_LE(total_instrs, prog.tuple_ops.size());
  EXPECT_GT(total_instrs, 0u);
}

// ---------------------------------------------------------------------------
// Hardware generator (§6.1)
// ---------------------------------------------------------------------------

storage::PageLayout DefaultLayout() { return storage::PageLayout{}; }

WorkloadShape ShapeFor(uint32_t payload, uint64_t tuples) {
  WorkloadShape s;
  s.tuple_payload_bytes = payload;
  s.num_tuples = tuples;
  s.tuples_per_page = DefaultLayout().TuplesPerPage(payload);
  s.num_pages = (tuples + s.tuples_per_page - 1) / s.tuples_per_page;
  return s;
}

TEST(HwGeneratorTest, RespectsResourceCaps) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLogisticRegression, SmallParams(54, 64));
  FpgaSpec fpga;
  HardwareGenerator hw(fpga);
  auto d = hw.Generate(prog, DefaultLayout(), ShapeFor(55 * 4, 10000));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_LE(d->total_aus, fpga.max_compute_units);
  EXPECT_LE(d->dsps_used, fpga.dsp_slices);
  EXPECT_LE(d->luts_used, fpga.luts);
  EXPECT_LE(d->bram_used, fpga.bram_bytes);
  EXPECT_LE(d->num_threads, 64u);  // bounded by the merge coefficient
  EXPECT_GE(d->num_page_buffers, 1u);
}

TEST(HwGeneratorTest, ThreadsBoundedByMergeCoefficient) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(16, 2));
  HardwareGenerator hw(FpgaSpec{});
  auto d = hw.Generate(prog, DefaultLayout(), ShapeFor(17 * 4, 1000));
  ASSERT_TRUE(d.ok());
  EXPECT_LE(d->num_threads, 2u);
}

TEST(HwGeneratorTest, ForceThreadsHonored) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLinearRegression, SmallParams(16, 64));
  HardwareGenerator::Options opt;
  opt.force_threads = 4;
  HardwareGenerator hw(FpgaSpec{}, opt);
  auto d = hw.Generate(prog, DefaultLayout(), ShapeFor(17 * 4, 1000));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_threads, 4u);
}

TEST(HwGeneratorTest, MimdAblationShrinksFabric) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLogisticRegression, SmallParams(128, 64));
  HardwareGenerator simd(FpgaSpec{});
  HardwareGenerator::Options opt;
  opt.mimd_only = true;
  HardwareGenerator mimd(FpgaSpec{}, opt);
  auto shape = ShapeFor(129 * 4, 10000);
  auto ds = std::move(simd.Generate(prog, DefaultLayout(), shape)).ValueOrDie();
  auto dm = std::move(mimd.Generate(prog, DefaultLayout(), shape)).ValueOrDie();
  EXPECT_LT(dm.total_aus, ds.total_aus);
}

TEST(HwGeneratorTest, ModelTooLargeForBramFails) {
  ml::AlgoParams p = SmallParams(4000, 4);
  p.rank = 4000;  // 16M-element model = 64 MB > 44 MB BRAM
  ScalarProgram prog = Lower(ml::AlgoKind::kLowRankMF, p);
  HardwareGenerator hw(FpgaSpec{});
  auto d = hw.Generate(prog, DefaultLayout(), ShapeFor(4000 * 4, 100));
  EXPECT_TRUE(d.status().IsResourceExhausted());
}

TEST(HwGeneratorTest, EstimatorMonotonicInBandwidth) {
  ScalarProgram prog =
      Lower(ml::AlgoKind::kLogisticRegression, SmallParams(54, 64));
  HardwareGenerator hw(FpgaSpec{});
  auto shape = ShapeFor(55 * 4, 100000);
  auto d = std::move(hw.Generate(prog, DefaultLayout(), shape)).ValueOrDie();
  const uint64_t slow = EstimateEpochCycles(prog, d, FpgaSpec{},
                                            DefaultLayout(), shape, 0.25);
  const uint64_t base = EstimateEpochCycles(prog, d, FpgaSpec{},
                                            DefaultLayout(), shape, 1.0);
  const uint64_t fast = EstimateEpochCycles(prog, d, FpgaSpec{},
                                            DefaultLayout(), shape, 4.0);
  EXPECT_GE(slow, base);
  EXPECT_GE(base, fast);
}

TEST(HwGeneratorTest, MergeCyclesGrowWithThreadsAndElems) {
  // One thread, 100 elements, 8 bus lanes: 13 cycles on the shared bus.
  EXPECT_EQ(MergeCycles(1, 100, 0, 8), 13u);
  EXPECT_GT(MergeCycles(8, 100, 10, 8), MergeCycles(2, 100, 10, 8));
  EXPECT_GT(MergeCycles(4, 1000, 10, 8), MergeCycles(4, 100, 10, 8));
  // Model broadcast is independent of the thread count (snooped bus).
  EXPECT_EQ(MergeCycles(1, 0, 80, 8), 10u);
}

// ---------------------------------------------------------------------------
// Full compile pipeline
// ---------------------------------------------------------------------------

TEST(UdfCompilerTest, CompilesAllFourAlgorithms) {
  for (auto kind :
       {ml::AlgoKind::kLinearRegression, ml::AlgoKind::kLogisticRegression,
        ml::AlgoKind::kSvm, ml::AlgoKind::kLowRankMF}) {
    ml::AlgoParams p = SmallParams(24, 4);
    p.rank = 3;
    auto algo = std::move(ml::BuildAlgo(kind, p)).ValueOrDie();
    UdfCompiler compiler{FpgaSpec{}};
    const uint32_t payload =
        kind == ml::AlgoKind::kLowRankMF ? 24 * 4 : 25 * 4;
    auto udf = compiler.Compile(*algo, DefaultLayout(),
                                ShapeFor(payload, 1000));
    ASSERT_TRUE(udf.ok()) << ml::AlgoKindName(kind) << ": "
                          << udf.status().ToString();
    EXPECT_FALSE(udf->strider_program.code.empty());
    EXPECT_FALSE(udf->ac_programs.empty());
    EXPECT_GT(udf->design.tuple_schedule.makespan, 0u);
    const std::string blob = udf->CatalogBlob();
    EXPECT_NE(blob.find("strider program"), std::string::npos);
    EXPECT_NE(blob.find("design:"), std::string::npos);
  }
}

TEST(UdfCompilerTest, RejectsMismatchedTupleWidth) {
  auto algo = std::move(ml::BuildAlgo(ml::AlgoKind::kLinearRegression,
                                      SmallParams(24, 4)))
                  .ValueOrDie();
  UdfCompiler compiler{FpgaSpec{}};
  auto udf =
      compiler.Compile(*algo, DefaultLayout(), ShapeFor(999, 1000));
  EXPECT_TRUE(udf.status().IsInvalidArgument());
}

}  // namespace
}  // namespace dana::compiler
