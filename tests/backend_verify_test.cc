#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "compiler/codegen.h"
#include "compiler/scalar_program.h"
#include "compiler/scheduler.h"
#include "dsl/algo.h"
#include "engine/ac_executor.h"
#include "engine/evaluator.h"
#include "hdfg/interpreter.h"
#include "hdfg/translator.h"
#include "ml/algorithms.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "strider/codegen.h"
#include "strider/simulator.h"

namespace dana {
namespace {

// ---------------------------------------------------------------------------
// AC-program verifying executor: the emitted instruction streams are a
// faithful encoding of the schedule and compute the same values.
// ---------------------------------------------------------------------------

class AcExecutorTest : public ::testing::TestWithParam<ml::AlgoKind> {};

TEST_P(AcExecutorTest, EmittedStreamsExecuteLikeTheEvaluator) {
  const ml::AlgoKind kind = GetParam();
  ml::AlgoParams p;
  p.dims = 20;
  p.rank = 3;
  p.merge_coef = 4;
  p.learning_rate = kind == ml::AlgoKind::kLowRankMF ? 0.5 : 0.3;
  auto algo = std::move(ml::BuildAlgo(kind, p)).ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  auto prog = std::move(compiler::LowerGraph(graph)).ValueOrDie();

  compiler::SchedulerConfig cfg;
  cfg.num_acs = 4;
  compiler::Scheduler sched(cfg);
  auto schedule = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  auto programs = std::move(compiler::EmitAcPrograms(
                                prog.tuple_ops, schedule,
                                compiler::ValueRegion::kTuple, 4))
                      .ValueOrDie();

  engine::AcProgramExecutor executor(prog.tuple_ops, schedule, programs);
  ASSERT_TRUE(executor.Verify().ok());

  // Execute with a synthetic tuple and compare with the evaluator's slots.
  Rng rng(77);
  engine::TupleData tuple;
  tuple.inputs.resize(prog.input_vars.size());
  tuple.outputs.resize(prog.output_vars.size());
  for (size_t i = 0; i < prog.input_vars.size(); ++i) {
    tuple.inputs[i].resize(hdfg::NumElements(prog.input_vars[i]->dims));
    for (auto& v : tuple.inputs[i]) {
      v = static_cast<float>(rng.Gaussian());
    }
  }
  for (size_t i = 0; i < prog.output_vars.size(); ++i) {
    tuple.outputs[i] = {static_cast<float>(rng.Gaussian())};
  }
  std::vector<float> model = ml::InitialModel(kind, p);
  for (auto& v : model) v += 0.1f;  // away from zero

  auto leaf = [&](const compiler::ValueRef& ref) -> float {
    using K = compiler::ValueRef::Kind;
    switch (ref.kind) {
      case K::kModel:
        return model[ref.index];
      case K::kInput:
        return tuple.inputs[ref.var_id][ref.index];
      case K::kOutput:
        return tuple.outputs[ref.var_id][ref.index];
      case K::kMeta:
        return static_cast<float>(prog.meta_vars[ref.var_id]->meta_value);
      case K::kConst:
        return static_cast<float>(ref.constant);
      default:
        ADD_FAILURE() << "unexpected leaf kind";
        return 0;
    }
  };
  auto values = std::move(executor.Run(leaf)).ValueOrDie();

  // Straight-line execution through the evaluator for the same tuple.
  engine::ScalarEvaluator evaluator(prog);
  ASSERT_TRUE(evaluator.SetModel(0, model).ok());
  ASSERT_TRUE(evaluator.EvalBatch({&tuple, 1}).ok());
  // Merge slot sources are per-tuple sub values: compare through them.
  for (const auto& slot : prog.merge_slots) {
    if (slot.src.kind == compiler::ValueRef::Kind::kSub) {
      const float expect = values[slot.src.index];
      // With batch size 1 the merged value equals the per-tuple value.
      // (Evaluator slots are internal; merge values are its observable.)
      SUCCEED();
      (void)expect;
    }
  }
  // Compare every scheduled op's value against recomputation in program
  // order (the evaluator's own semantics).
  std::vector<float> straight(prog.tuple_ops.size());
  auto resolve = [&](const compiler::ValueRef& ref) -> float {
    if (ref.kind == compiler::ValueRef::Kind::kSub) {
      return straight[ref.index];
    }
    if (ref.kind == compiler::ValueRef::Kind::kNone) return 0;
    return leaf(ref);
  };
  for (size_t i = 0; i < prog.tuple_ops.size(); ++i) {
    straight[i] = engine::ApplyAluOp(prog.tuple_ops[i].op,
                                     resolve(prog.tuple_ops[i].a),
                                     resolve(prog.tuple_ops[i].b));
  }
  for (size_t i = 0; i < straight.size(); ++i) {
    EXPECT_EQ(values[i], straight[i]) << "op " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, AcExecutorTest,
    ::testing::Values(ml::AlgoKind::kLinearRegression,
                      ml::AlgoKind::kLogisticRegression, ml::AlgoKind::kSvm,
                      ml::AlgoKind::kLowRankMF));

TEST(AcExecutorTest, DetectsTamperedMask) {
  ml::AlgoParams p;
  p.dims = 8;
  p.merge_coef = 2;
  auto algo = std::move(ml::BuildAlgo(ml::AlgoKind::kLinearRegression, p))
                  .ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  auto prog = std::move(compiler::LowerGraph(graph)).ValueOrDie();
  compiler::Scheduler sched(compiler::SchedulerConfig{.num_acs = 2});
  auto schedule = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  auto programs = std::move(compiler::EmitAcPrograms(
                                prog.tuple_ops, schedule,
                                compiler::ValueRegion::kTuple, 2))
                      .ValueOrDie();
  // Tamper: flip a lane bit.
  ASSERT_FALSE(programs[0].instructions.empty());
  programs[0].instructions[0].active_mask ^= 0x80;
  engine::AcProgramExecutor executor(prog.tuple_ops, schedule, programs);
  EXPECT_TRUE(executor.Verify().IsCorruption());
}

TEST(AcExecutorTest, DetectsTamperedOpcode) {
  ml::AlgoParams p;
  p.dims = 8;
  p.merge_coef = 2;
  auto algo = std::move(ml::BuildAlgo(ml::AlgoKind::kLinearRegression, p))
                  .ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  auto prog = std::move(compiler::LowerGraph(graph)).ValueOrDie();
  compiler::Scheduler sched(compiler::SchedulerConfig{.num_acs = 2});
  auto schedule = std::move(sched.Run(prog.tuple_ops)).ValueOrDie();
  auto programs = std::move(compiler::EmitAcPrograms(
                                prog.tuple_ops, schedule,
                                compiler::ValueRegion::kTuple, 2))
                      .ValueOrDie();
  for (auto& instr : programs[0].instructions) {
    for (uint32_t l = 0; l < engine::kAusPerAc; ++l) {
      if (instr.active_mask & (1u << l)) {
        instr.lanes[l].op = engine::AluOp::kSqrt;  // not the cluster op
        instr.op = engine::AluOp::kMul;
        engine::AcProgramExecutor executor(prog.tuple_ops, schedule,
                                           programs);
        EXPECT_TRUE(executor.Verify().IsCorruption());
        return;
      }
    }
  }
  FAIL() << "no active lane found";
}

// ---------------------------------------------------------------------------
// MySQL/InnoDB-flavoured page layout: same Strider program structure,
// different configuration registers (paper §5.1.2's portability claim).
// ---------------------------------------------------------------------------

TEST(MySqlLayoutTest, PageCodecRoundTrip) {
  const storage::PageLayout layout = storage::PageLayout::MySqlLike();
  EXPECT_EQ(layout.header_size, 56u);
  std::vector<uint8_t> buf(layout.page_size);
  storage::Page page(buf.data(), layout);
  page.InitEmpty();
  EXPECT_EQ(page.lower(), 56u);
  std::vector<uint8_t> payload = {9, 8, 7, 6};
  ASSERT_TRUE(page.AddTuple(payload, 4).ok());
  auto got = page.GetTuplePayload(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(0, std::memcmp(got->data(), payload.data(), payload.size()));
  EXPECT_TRUE(page.Validate().ok());
}

TEST(MySqlLayoutTest, StriderWalksInnodbStylePages) {
  const storage::PageLayout layout = storage::PageLayout::MySqlLike();
  storage::Table table("t", storage::Schema::Dense(30), layout);
  std::vector<double> row(31);
  for (int r = 0; r < 800; ++r) {
    for (int i = 0; i <= 30; ++i) row[i] = r + i * 0.5;
    ASSERT_TRUE(table.AppendRow(row).ok());
  }
  auto prog = strider::BuildPageWalkProgram(layout);
  ASSERT_TRUE(prog.ok());
  // The config registers differ from the PostgreSQL program...
  auto pg_prog = strider::BuildPageWalkProgram(storage::PageLayout());
  ASSERT_TRUE(pg_prog.ok());
  EXPECT_NE(prog->config, pg_prog->config);
  // ...but the instruction stream is identical (one ISA, many engines).
  ASSERT_EQ(prog->code.size(), pg_prog->code.size());
  for (size_t i = 0; i < prog->code.size(); ++i) {
    EXPECT_EQ(prog->code[i].Encode(), pg_prog->code[i].Encode());
  }

  strider::StriderSim sim;
  uint64_t extracted = 0;
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    auto run = sim.Run(*prog, {table.PageData(p), layout.page_size});
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->tuples.size(), table.TuplesOnPage(p));
    extracted += run->tuples.size();
  }
  EXPECT_EQ(extracted, 800u);
}

// ---------------------------------------------------------------------------
// Randomized cross-validation: arbitrary well-formed DSL programs must
// agree between the float64 interpreter and the fp32 engine evaluator,
// and their schedules must satisfy all invariants.
// ---------------------------------------------------------------------------

/// Builds a random single-model UDF over vectors of width `d` using every
/// DSL operator with probability weights; always ends in a valid merge +
/// model update.
std::unique_ptr<dsl::Algo> RandomAlgo(uint64_t seed, uint32_t d,
                                      uint32_t coef) {
  Rng rng(seed);
  auto algo = std::make_unique<dsl::Algo>("fuzz");
  auto mo = algo->Model("mo", {d});
  auto in = algo->Input("in", {d});
  auto out = algo->Output("out");
  auto m1 = algo->Meta("m1", rng.Uniform(0.1, 0.9));

  std::vector<dsl::Expr> pool = {mo, in, mo * in, mo + in};
  const int steps = 3 + static_cast<int>(rng.UniformInt(5));
  for (int s = 0; s < steps; ++s) {
    dsl::Expr a = pool[rng.UniformInt(pool.size())];
    dsl::Expr b = pool[rng.UniformInt(pool.size())];
    dsl::Expr next;
    switch (rng.UniformInt(8)) {
      case 0:
        next = a + b;
        break;
      case 1:
        next = a - b;
        break;
      case 2:
        next = a * b;
        break;
      case 3:
        next = a * m1 + b;
        break;
      case 4:
        next = dsl::Sigmoid(a);
        break;
      case 5:
        next = dsl::Gaussian(a);
        break;
      case 6:
        next = (a > b) * a + (1.0 - (a > b)) * b;  // max via indicators
        break;
      default:
        next = a * (dsl::Sigma(b, 0) - out);  // scalar re-broadcast
        break;
    }
    pool.push_back(next);
  }
  // Anchor the gradient to the input so the lowered program always has
  // an input variable (a gradient independent of the data would be legal
  // DSL but a degenerate learner).
  auto grad = pool.back() * in;
  auto g = algo->Merge(grad, coef, dsl::OpKind::kAdd);
  EXPECT_TRUE(algo->SetModel(mo, mo - m1 * g).ok());
  algo->SetEpochs(1);
  return algo;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, InterpreterEvaluatorAndSchedulerAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xF00D);
  const uint32_t d = 2 + static_cast<uint32_t>(rng.UniformInt(14));
  const uint32_t coef = 1 + static_cast<uint32_t>(rng.UniformInt(4));
  auto algo = RandomAlgo(seed, d, coef);

  auto graph_r = hdfg::Translator::Translate(*algo);
  ASSERT_TRUE(graph_r.ok()) << graph_r.status().ToString();
  const hdfg::Graph& graph = *graph_r;
  auto prog_r = compiler::LowerGraph(graph);
  ASSERT_TRUE(prog_r.ok()) << prog_r.status().ToString();
  const compiler::ScalarProgram& prog = *prog_r;

  // --- functional agreement over one random batch ------------------------
  hdfg::Interpreter interp(graph);
  engine::ScalarEvaluator eval(prog);
  std::vector<hdfg::TupleBinding> bindings(coef);
  std::vector<engine::TupleData> tuples(coef);
  const dsl::Var* in_var = prog.input_vars[0].get();
  const dsl::Var* out_var = prog.output_vars.empty()
                                ? nullptr
                                : prog.output_vars[0].get();
  for (uint32_t t = 0; t < coef; ++t) {
    hdfg::Tensor x;
    x.dims = {d};
    x.data.resize(d);
    tuples[t].inputs.resize(1);
    tuples[t].inputs[0].resize(d);
    for (uint32_t i = 0; i < d; ++i) {
      const float v = static_cast<float>(rng.Uniform(-1.0, 1.0));
      x.data[i] = v;
      tuples[t].inputs[0][i] = v;
    }
    bindings[t][in_var] = x;
    const float y = static_cast<float>(rng.Uniform(-1.0, 1.0));
    if (out_var != nullptr) {
      bindings[t][out_var] = hdfg::Tensor::Scalar(y);
    }
    if (!prog.output_vars.empty()) tuples[t].outputs = {{y}};
  }
  ASSERT_TRUE(interp.EvalBatch(bindings).ok());
  ASSERT_TRUE(eval.EvalBatch(tuples).ok());

  const auto& m64 = interp.ModelValue(prog.model_vars[0].get()).data;
  const auto& m32 = eval.Model(0);
  ASSERT_EQ(m64.size(), m32.size());
  for (size_t i = 0; i < m64.size(); ++i) {
    EXPECT_NEAR(m32[i], m64[i], 1e-3 * (1.0 + std::fabs(m64[i])))
        << "seed " << seed << " element " << i;
  }

  // --- scheduling + codegen invariants ------------------------------------
  compiler::Scheduler sched(compiler::SchedulerConfig{.num_acs = 2});
  auto schedule_r = sched.Run(prog.tuple_ops);
  ASSERT_TRUE(schedule_r.ok());
  const compiler::Schedule& schedule = *schedule_r;
  for (size_t i = 0; i < prog.tuple_ops.size(); ++i) {
    for (const compiler::ValueRef* r :
         {&prog.tuple_ops[i].a, &prog.tuple_ops[i].b}) {
      if (r->kind == compiler::ValueRef::Kind::kSub) {
        ASSERT_LE(schedule.placements[r->index].finish_cycle,
                  schedule.placements[i].start_cycle)
            << "seed " << seed;
      }
    }
  }
  auto programs = compiler::EmitAcPrograms(prog.tuple_ops, schedule,
                                           compiler::ValueRegion::kTuple, 2);
  ASSERT_TRUE(programs.ok());
  engine::AcProgramExecutor executor(prog.tuple_ops, schedule, *programs);
  EXPECT_TRUE(executor.Verify().ok()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace dana
