// Tests for dana_lint (src/lint): the tokenizer's comment/string/raw-string
// stripping, each rule firing exactly once on its fixture, the clean and
// suppressed fixtures, the suppression round-trip, per-file exemptions, the
// whole-tree scan, the deterministic JSON summary — and the gate that the
// production tree itself lints clean.
#include "lint/lint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using dana::lint::Finding;
using dana::lint::LintSource;
using dana::lint::LintTree;
using dana::lint::ReportJson;
using dana::lint::Rules;
using dana::lint::TreeReport;
using dana::lint::UnorderedNames;

std::string FixtureDir() { return DANA_LINT_FIXTURE_DIR; }

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixtureDir() + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(DanaLintRules, FourRulesWithStableIds) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_STREQ(rules[0].id, "unordered-snapshot");
  EXPECT_STREQ(rules[1].id, "unseeded-random");
  EXPECT_STREQ(rules[2].id, "wall-clock");
  EXPECT_STREQ(rules[3].id, "float-metric");
}

TEST(DanaLintRules, EachRuleFiresExactlyOnceOnItsFixture) {
  struct Case {
    const char* file;
    const char* rule;
  };
  const Case cases[] = {
      {"fixture_unordered_snapshot.cc", "unordered-snapshot"},
      {"fixture_unseeded_random.cc", "unseeded-random"},
      {"fixture_wall_clock.cc", "wall-clock"},
      {"fixture_float_metric.cc", "float-metric"},
  };
  for (const Case& c : cases) {
    std::vector<Finding> findings = LintSource(c.file, ReadFixture(c.file));
    ASSERT_EQ(findings.size(), 1u) << c.file;
    EXPECT_EQ(findings[0].rule, c.rule) << c.file;
    EXPECT_EQ(findings[0].file, c.file);
    EXPECT_GT(findings[0].line, 0u);
    EXPECT_FALSE(findings[0].message.empty());
  }
}

TEST(DanaLintRules, CleanFixtureHasNoFindings) {
  std::vector<Finding> findings =
      LintSource("fixture_clean.cc", ReadFixture("fixture_clean.cc"));
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

TEST(DanaLintSuppression, RoundTrip) {
  std::string text = ReadFixture("fixture_suppressed.cc");
  EXPECT_TRUE(LintSource("fixture_suppressed.cc", text).empty())
      << "inline waivers must silence the findings";
  // Strip the waivers; the same code must now fire both rules, in token
  // order.
  std::string stripped = text;
  size_t pos = 0;
  while ((pos = stripped.find("dana-lint:", pos)) != std::string::npos) {
    stripped.replace(pos, 10, "disabled--");
  }
  std::vector<Finding> findings = LintSource("fixture_suppressed.cc", stripped);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "unordered-snapshot");
  EXPECT_EQ(findings[1].rule, "unseeded-random");
}

TEST(DanaLintTokenizer, CommentsStringsAndRawStringsAreInert) {
  const char* text = R"src(
// rand() and std::chrono::system_clock in a line comment.
/* std::random_device inside a block comment */
const char* kDoc = "call rand() then time(nullptr)";
const char* kRaw = R"x(for (auto& kv : some_unordered_) {})x";
)src";
  EXPECT_TRUE(LintSource("inert.cc", text).empty());
}

TEST(DanaLintExemptions, PrimitiveHomesMayUseTheirPrimitives) {
  const char* rng = "int Reseed() { return std::random_device{}(); }";
  EXPECT_EQ(LintSource("src/sched/x.cc", rng).size(), 1u);
  EXPECT_TRUE(LintSource("src/common/random.h", rng).empty());

  const char* timer =
      "long Tick() {"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();"
      "}";
  EXPECT_EQ(LintSource("src/sched/x.cc", timer).size(), 1u);
  EXPECT_TRUE(LintSource("bench/bench_harness.cc", timer).empty());
}

TEST(DanaLintFloatMetric, LiteralSuffixAndBareDoubleAreCaught) {
  const char* bad =
      "void F(M* m, double wait_s, double raw) {"
      "  m->Count(\"sched.wait\", 0, wait_s);"  // _s suffix
      "  m->Count(\"sched.frac\", 0, 0.5);"     // float literal
      "}";
  EXPECT_EQ(LintSource("src/sched/x.cc", bad).size(), 2u);

  const char* ok =
      "void F(M* m, uint64_t frames) {"
      "  m->Count(\"pool.frames\", 0, static_cast<double>(frames));"
      "  m->Count(\"pool.hits\", 0);"
      "  m->Observe(\"pool.warm_frac\", 0, 0.5);"
      "}";
  EXPECT_TRUE(LintSource("src/sched/x.cc", ok).empty());

  // obs/ owns the accumulation plumbing and is exempt wholesale.
  EXPECT_TRUE(LintSource("src/obs/metrics.cc", bad).empty());
}

TEST(DanaLintUnordered, DeclarationHarvestIncludesAliases) {
  const char* text =
      "using SlotMap = std::unordered_map<int, int>;"
      "struct S {"
      "  SlotMap by_slot_;"
      "  std::unordered_set<std::string> names_;"
      "  std::map<int, int> ordered_;"
      "};";
  std::vector<std::string> names = UnorderedNames(text);
  ASSERT_EQ(names.size(), 2u);  // sorted, deduped
  EXPECT_EQ(names[0], "by_slot_");
  EXPECT_EQ(names[1], "names_");
}

TEST(DanaLintUnordered, CrossFileNamesReachTheIteratingFile) {
  // Member declared in a "header", iterated in a "source" — the tree scan
  // feeds the harvested names into every file's scan.
  const char* source =
      "std::string Registry::SnapshotNames() {"
      "  std::string out;"
      "  for (const auto& kv : by_name_) { out += kv.first; }"
      "  return out;"
      "}";
  EXPECT_TRUE(LintSource("src/x.cc", source).empty())
      << "without the header's declaration the name is unknown";
  std::vector<Finding> findings =
      LintSource("src/x.cc", source, {"by_name_"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-snapshot");
}

TEST(DanaLintTree, FixtureTreeScansDeterministically) {
  TreeReport report = LintTree({FixtureDir()});
  EXPECT_EQ(report.files_scanned, 6u);
  ASSERT_EQ(report.findings.size(), 4u);
  // Sorted by (file, line, rule): fixture file names happen to sort in
  // rule-alphabetical order too, so just assert each rule appears once.
  for (const auto& rule : Rules()) {
    size_t n = 0;
    for (const Finding& f : report.findings) {
      if (f.rule == rule.id) ++n;
    }
    EXPECT_EQ(n, 1u) << rule.id;
  }

  dana::obs::Json doc = ReportJson(report);
  ASSERT_NE(doc.Find("schema_version"), nullptr);
  EXPECT_EQ(doc.Find("schema_version")->AsNumber(), 1);
  EXPECT_EQ(doc.Find("files_scanned")->AsNumber(), 6);
  EXPECT_EQ(doc.Find("total_findings")->AsNumber(), 4);
  const dana::obs::Json* counts = doc.Find("rule_counts");
  ASSERT_NE(counts, nullptr);
  for (const auto& rule : Rules()) {
    ASSERT_NE(counts->Find(rule.id), nullptr) << rule.id;
    EXPECT_EQ(counts->Find(rule.id)->AsNumber(), 1) << rule.id;
  }
  EXPECT_EQ(doc.Find("findings")->size(), 4u);

  // Byte-identical across runs: the whole summary re-serializes equal.
  EXPECT_EQ(doc.Dump(2), ReportJson(LintTree({FixtureDir()})).Dump(2));
}

// The gate the CI job re-runs via `ctest -L lint` / the dana_lint binary:
// the production tree is clean today, and stays that way.
TEST(DanaLintTree, ProductionSrcTreeIsClean) {
  namespace fs = std::filesystem;
  fs::path src =
      fs::path(FixtureDir()).parent_path().parent_path() / "src";
  ASSERT_TRUE(fs::is_directory(src));
  TreeReport report = LintTree({src.string()});
  EXPECT_GT(report.files_scanned, 20u);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
