// dana_lint fixture: near-misses that must all stay clean.
//
//  - ordered (std::map) iteration inside a snapshot path;
//  - an unordered container routed through a sorting view (the call is
//    assumed to impose its own order);
//  - unordered iteration outside any snapshot/report function;
//  - banned identifiers appearing only in comments and string literals.
//
// This file is scanned by lint_test, never compiled.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Mentions of rand(), std::random_device and system_clock in prose — and
// in the string below — are inert.
static const char* kDoc = "never call rand() or time(nullptr) here";

struct Snapshotter {
  std::string ToJson() const {
    std::string out;
    for (const auto& kv : ordered_) {  // std::map: deterministic, fine
      out += kv.first;
    }
    for (const auto& name : SortedKeys(cache_)) {  // sorted view: fine
      out += name;
    }
    return out;
  }

  void Insert(const std::string& k, int v) {
    cache_[k] = v;
    for (const auto& kv : cache_) {  // not a snapshot path: fine
      (void)kv;
    }
  }

  std::vector<std::string> SortedKeys(
      const std::unordered_map<std::string, int>& m) const;

  std::map<std::string, int> ordered_;
  std::unordered_map<std::string, int> cache_;
};
