// dana_lint fixture: trips `wall-clock` exactly once.
//
// The deterministic core observes only simulated time (SimTime); host
// clock reads leak real-time jitter into scheduling decisions. Bench
// timers (bench/) are the sanctioned exception.
//
// This file is scanned by lint_test, never compiled.
#include <chrono>

long NowNanos() {
  return std::chrono::system_clock::now()  // <- wall-clock fires here
      .time_since_epoch()
      .count();
}
