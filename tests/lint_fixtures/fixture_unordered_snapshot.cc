// dana_lint fixture: trips `unordered-snapshot` exactly once.
//
// Iterating a std::unordered_map inside a serialization path makes the
// emitted bytes depend on hash order / libstdc++ version; the CI
// determinism gate diffs these outputs byte-for-byte.
//
// This file is scanned by lint_test, never compiled.
#include <string>
#include <unordered_map>

struct Catalog {
  std::string ToJson() const {
    std::string out;
    for (const auto& kv : entries_) {  // <- unordered-snapshot fires here
      out += kv.first;
    }
    return out;
  }
  std::unordered_map<std::string, int> entries_;
};
