// dana_lint fixture: trips `unseeded-random` exactly once.
//
// Raw PRNG/entropy primitives bypass the seeded dana::Rng and make runs
// irreproducible; only common/random.h may reference them.
//
// This file is scanned by lint_test, never compiled.
#include <cstdlib>

int NoisyPick(int n) {
  return rand() % n;  // <- unseeded-random fires here
}
