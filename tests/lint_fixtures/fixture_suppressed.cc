// dana_lint fixture: real violations, each waived with an inline
// suppression — the file must scan clean, and lint_test strips the
// waivers to confirm both findings come back (the round-trip).
//
// This file is scanned by lint_test, never compiled.
#include <cstdlib>
#include <unordered_set>

struct DebugDump {
  int Dump() const {
    int n = 0;
    // dana-lint: allow(unordered-snapshot)
    for (int v : live_) n += v;
    n += rand();  // dana-lint: allow(unseeded-random)
    return n;
  }
  std::unordered_set<int> live_;
};
