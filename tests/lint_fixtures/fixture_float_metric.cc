// dana_lint fixture: trips `float-metric` exactly once.
//
// Counters feed the byte-diffed metric snapshots; accumulating floats
// into them makes totals depend on arrival order. Float-valued
// measurements belong in histograms (Observe) — and obs/ itself owns the
// accumulation plumbing.
//
// This file is scanned by lint_test, never compiled.
struct Metrics;

void RecordWait(Metrics& m, int slot, double wait_s) {
  m.Count("sched.wait_total", slot, wait_s);  // <- float-metric fires here
}
