#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.h"
#include "compiler/compiler.h"
#include "engine/evaluator.h"
#include "hdfg/interpreter.h"
#include "hdfg/translator.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "ml/reference.h"
#include "storage/buffer_pool.h"

namespace dana {
namespace {

using compiler::ScalarProgram;
using engine::ScalarEvaluator;
using engine::TupleData;

ml::AlgoParams Params(uint32_t dims, uint32_t coef, ml::AlgoKind kind) {
  ml::AlgoParams p;
  p.dims = dims;
  p.rank = 4;
  p.merge_coef = coef;
  p.epochs = 3;
  p.learning_rate = kind == ml::AlgoKind::kLowRankMF ? 0.5 : 0.3;
  return p;
}

ScalarProgram Lower(ml::AlgoKind kind, const ml::AlgoParams& p) {
  auto algo = std::move(ml::BuildAlgo(kind, p)).ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  return std::move(compiler::LowerGraph(graph)).ValueOrDie();
}

TupleData MakeTuple(const ScalarProgram& prog,
                    const std::vector<double>& row) {
  TupleData t;
  t.inputs.resize(prog.input_vars.size());
  t.outputs.resize(prog.output_vars.size());
  const uint64_t d = hdfg::NumElements(prog.input_vars[0]->dims);
  t.inputs[0].assign(row.begin(), row.begin() + d);
  if (!prog.output_vars.empty()) {
    t.outputs[0] = {static_cast<float>(row[d])};
  }
  return t;
}

// ---------------------------------------------------------------------------
// ALU semantics
// ---------------------------------------------------------------------------

TEST(AluTest, OpSemantics) {
  using engine::AluOp;
  using engine::ApplyAluOp;
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kAdd, 2, 3), 5);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kSub, 2, 3), -1);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kMul, 2, 3), 6);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kDiv, 3, 2), 1.5);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kLt, 1, 2), 1.0f);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kGt, 1, 2), 0.0f);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kSigmoid, 0, 0), 0.5f);
  EXPECT_NEAR(ApplyAluOp(AluOp::kGaussian, 1, 0), std::exp(-1.0f), 1e-6);
  EXPECT_FLOAT_EQ(ApplyAluOp(AluOp::kSqrt, 9, 0), 3.0f);
}

TEST(AluTest, LatenciesPositiveAndOrdered) {
  using engine::AluOp;
  using engine::AluOpLatency;
  EXPECT_EQ(AluOpLatency(AluOp::kAdd), 1u);
  EXPECT_GT(AluOpLatency(AluOp::kMul), AluOpLatency(AluOp::kAdd));
  EXPECT_GT(AluOpLatency(AluOp::kDiv), AluOpLatency(AluOp::kMul));
  EXPECT_GT(AluOpLatency(AluOp::kSigmoid), 1u);
}

// ---------------------------------------------------------------------------
// ScalarEvaluator vs the double-precision interpreter
// ---------------------------------------------------------------------------

class EvaluatorVsInterpreter : public ::testing::TestWithParam<ml::AlgoKind> {
};

TEST_P(EvaluatorVsInterpreter, BatchesProduceSameModel) {
  const ml::AlgoKind kind = GetParam();
  ml::AlgoParams p = Params(12, 4, kind);
  auto algo = std::move(ml::BuildAlgo(kind, p)).ValueOrDie();
  auto graph = std::move(hdfg::Translator::Translate(*algo)).ValueOrDie();
  auto prog = std::move(compiler::LowerGraph(graph)).ValueOrDie();

  ml::DatasetSpec spec;
  spec.kind = kind;
  spec.dims = p.dims;
  spec.rank = p.rank;
  spec.tuples = 64;
  ml::Dataset data = ml::GenerateDataset(spec);

  ScalarEvaluator evaluator(prog);
  hdfg::Interpreter interpreter(graph);

  // Both engines start from the shared deterministic initial model.
  const std::vector<float> init = ml::InitialModel(kind, p);
  ASSERT_TRUE(evaluator.SetModel(0, init).ok());
  hdfg::Tensor init64;
  init64.dims = prog.model_vars[0]->dims;
  init64.data.assign(init.begin(), init.end());
  interpreter.SetModelValue(prog.model_vars[0].get(), std::move(init64));

  // Find the DSL input/output vars for interpreter bindings.
  const dsl::Var* in_var = prog.input_vars[0].get();
  const dsl::Var* out_var =
      prog.output_vars.empty() ? nullptr : prog.output_vars[0].get();

  std::vector<TupleData> batch;
  std::vector<hdfg::TupleBinding> bindings;
  for (const auto& row : data.rows) {
    batch.push_back(MakeTuple(prog, row));
    hdfg::TupleBinding b;
    hdfg::Tensor in;
    in.dims = in_var->dims;
    in.data.assign(row.begin(), row.begin() + p.dims);
    b[in_var] = in;
    if (out_var) b[out_var] = hdfg::Tensor::Scalar(row[p.dims]);
    bindings.push_back(std::move(b));
    if (batch.size() == p.merge_coef) {
      ASSERT_TRUE(evaluator.EvalBatch(batch).ok());
      ASSERT_TRUE(interpreter.EvalBatch(bindings).ok());
      batch.clear();
      bindings.clear();
    }
  }

  const auto& m32 = evaluator.Model(0);
  const auto& m64 = interpreter.ModelValue(prog.model_vars[0].get()).data;
  ASSERT_EQ(m32.size(), m64.size());
  for (size_t i = 0; i < m32.size(); ++i) {
    EXPECT_NEAR(m32[i], m64[i], 1e-3 * (1.0 + std::fabs(m64[i])))
        << "element " << i << " for " << ml::AlgoKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, EvaluatorVsInterpreter,
    ::testing::Values(ml::AlgoKind::kLinearRegression,
                      ml::AlgoKind::kLogisticRegression, ml::AlgoKind::kSvm,
                      ml::AlgoKind::kLowRankMF));

TEST(EvaluatorTest, ModelWritesAreStaged) {
  // The update mo' = mo - g must read the pre-update mo everywhere even
  // though writes and reads interleave element-wise.
  ml::AlgoParams p = Params(4, 1, ml::AlgoKind::kLinearRegression);
  auto prog = Lower(ml::AlgoKind::kLinearRegression, p);
  ScalarEvaluator ev(prog);
  std::vector<float> init = {1, 2, 3, 4};
  ASSERT_TRUE(ev.SetModel(0, init).ok());
  TupleData t;
  t.inputs = {{0, 0, 0, 0}};
  t.outputs = {{0}};
  ASSERT_TRUE(ev.EvalBatch({&t, 1}).ok());
  EXPECT_EQ(ev.Model(0), init);  // zero gradient: unchanged
}

TEST(EvaluatorTest, RejectsWrongModelSize) {
  auto prog = Lower(ml::AlgoKind::kLinearRegression,
                    Params(4, 1, ml::AlgoKind::kLinearRegression));
  ScalarEvaluator ev(prog);
  std::vector<float> bad = {1, 2};
  EXPECT_TRUE(ev.SetModel(0, bad).IsInvalidArgument());
  EXPECT_TRUE(ev.SetModel(9, bad).IsOutOfRange());
}

TEST(EvaluatorTest, RejectsMismatchedTuple) {
  auto prog = Lower(ml::AlgoKind::kLinearRegression,
                    Params(4, 1, ml::AlgoKind::kLinearRegression));
  ScalarEvaluator ev(prog);
  TupleData t;  // no inputs
  EXPECT_TRUE(ev.EvalBatch({&t, 1}).IsInvalidArgument());
  EXPECT_TRUE(ev.EvalBatch({}).IsInvalidArgument());
}

TEST(EvaluatorTest, CountsExecutedOps) {
  auto prog = Lower(ml::AlgoKind::kLinearRegression,
                    Params(4, 1, ml::AlgoKind::kLinearRegression));
  ScalarEvaluator ev(prog);
  TupleData t;
  t.inputs = {{1, 1, 1, 1}};
  t.outputs = {{1}};
  ASSERT_TRUE(ev.EvalBatch({&t, 1}).ok());
  EXPECT_EQ(ev.ops_executed(),
            prog.tuple_ops.size() + prog.batch_ops.size());
}

// ---------------------------------------------------------------------------
// Accelerator end-to-end
// ---------------------------------------------------------------------------

struct AccelFixture {
  std::unique_ptr<storage::Table> table;
  std::unique_ptr<storage::BufferPool> pool;
  compiler::CompiledUdf udf;
  ml::Dataset data;
  ml::AlgoParams params;
  ml::AlgoKind kind;

  static AccelFixture Make(ml::AlgoKind kind, uint32_t dims, uint32_t coef,
                           uint64_t tuples,
                           compiler::HardwareGenerator::Options hw = {}) {
    AccelFixture f;
    f.kind = kind;
    f.params = Params(dims, coef, kind);
    ml::DatasetSpec spec;
    spec.kind = kind;
    spec.dims = dims;
    spec.rank = f.params.rank;
    spec.tuples = tuples;
    f.data = ml::GenerateDataset(spec);
    storage::PageLayout layout;
    f.table = std::move(ml::BuildTable("t", f.data, layout)).ValueOrDie();
    f.pool = std::make_unique<storage::BufferPool>(64ull << 20, 32 * 1024,
                                                   storage::DiskModel{});

    auto algo = std::move(ml::BuildAlgo(kind, f.params)).ValueOrDie();
    compiler::WorkloadShape shape;
    shape.num_tuples = f.table->num_tuples();
    shape.num_pages = f.table->num_pages();
    shape.tuples_per_page = f.table->TuplesOnPage(0);
    shape.tuple_payload_bytes = f.table->schema().RowBytes();
    compiler::UdfCompiler compiler{compiler::FpgaSpec{}, hw};
    f.udf = std::move(compiler.Compile(*algo, layout, shape)).ValueOrDie();
    return f;
  }

  accel::RunReport Train(accel::RunOptions opt = {}) {
    if (opt.initial_models.empty()) {
      opt.initial_models = {ml::InitialModel(kind, params)};
    }
    accel::Accelerator acc(udf);
    return std::move(acc.Train(*table, pool.get(), opt)).ValueOrDie();
  }
};

class AcceleratorAlgoTest : public ::testing::TestWithParam<ml::AlgoKind> {};

TEST_P(AcceleratorAlgoTest, TrainingMatchesReferenceAndReducesLoss) {
  const ml::AlgoKind kind = GetParam();
  auto f = AccelFixture::Make(kind, 16, 4, 256);
  auto report = f.Train();

  EXPECT_EQ(report.epochs_run, 3u);
  EXPECT_EQ(report.tuples_processed, 3u * 256);
  EXPECT_GT(report.fpga_cycles, 0u);

  ml::ReferenceTrainer ref(kind, f.params);
  auto ref_model = std::move(ref.Train(f.data, 3)).ValueOrDie();
  ASSERT_EQ(report.final_models[0].size(), ref_model.size());
  for (size_t i = 0; i < ref_model.size(); ++i) {
    EXPECT_NEAR(report.final_models[0][i], ref_model[i],
                1e-3 * (1 + std::fabs(ref_model[i])))
        << "element " << i;
  }

  // Training reduced the loss vs the zero model.
  std::vector<double> zero(ref_model.size(), 0.0);
  std::vector<double> trained(report.final_models[0].begin(),
                              report.final_models[0].end());
  EXPECT_LT(ref.Loss(f.data, trained), ref.Loss(f.data, zero));
}

INSTANTIATE_TEST_SUITE_P(
    Algos, AcceleratorAlgoTest,
    ::testing::Values(ml::AlgoKind::kLinearRegression,
                      ml::AlgoKind::kLogisticRegression, ml::AlgoKind::kSvm,
                      ml::AlgoKind::kLowRankMF));

TEST(AcceleratorTest, StriderBypassIsSlower) {
  auto f = AccelFixture::Make(ml::AlgoKind::kLogisticRegression, 54, 16,
                              2000);
  f.pool->Prewarm(*f.table);
  auto with = f.Train();
  f.pool->Clear();
  f.pool->Prewarm(*f.table);
  accel::RunOptions bypass;
  bypass.strider_bypass = true;
  auto without = f.Train(bypass);
  EXPECT_GT(without.total_time.nanos(), with.total_time.nanos() * 1.5)
      << "CPU-side extraction should cost far more than Striders";
  // Both train the same model regardless of the data path.
  EXPECT_EQ(with.final_models[0], without.final_models[0]);
}

TEST(AcceleratorTest, BandwidthScalingMonotonic) {
  auto f = AccelFixture::Make(ml::AlgoKind::kLogisticRegression, 54, 16,
                              4000);
  f.pool->Prewarm(*f.table);
  std::vector<double> times;
  for (double bw : {0.25, 1.0, 4.0}) {
    accel::RunOptions opt;
    opt.bandwidth_scale = bw;
    f.pool->Clear();
    f.pool->Prewarm(*f.table);
    times.push_back(f.Train(opt).fpga_time.nanos());
  }
  EXPECT_GE(times[0], times[1]);
  EXPECT_GE(times[1], times[2]);
}

TEST(AcceleratorTest, ColdCacheAddsIoTime) {
  auto f = AccelFixture::Make(ml::AlgoKind::kLinearRegression, 32, 8, 4000);
  f.pool->Prewarm(*f.table);
  auto warm = f.Train();
  EXPECT_EQ(warm.io_time.nanos(), 0.0);
  f.pool->Clear();
  auto cold = f.Train();
  EXPECT_GT(cold.io_time.nanos(), 0.0);
  EXPECT_GE(cold.total_time.nanos(), warm.total_time.nanos());
}

TEST(AcceleratorTest, ConvergenceStopsEarly) {
  ml::AlgoParams p = Params(8, 4, ml::AlgoKind::kLinearRegression);
  p.epochs = 50;
  p.convergence_norm = 0.5;
  ml::DatasetSpec spec;
  spec.kind = ml::AlgoKind::kLinearRegression;
  spec.dims = 8;
  spec.tuples = 200;
  spec.label_noise = 0.0;
  auto data = ml::GenerateDataset(spec);
  storage::PageLayout layout;
  auto table = std::move(ml::BuildTable("t", data, layout)).ValueOrDie();
  storage::BufferPool pool(64ull << 20, 32 * 1024, storage::DiskModel{});

  auto algo =
      std::move(ml::BuildAlgo(ml::AlgoKind::kLinearRegression, p)).ValueOrDie();
  compiler::WorkloadShape shape;
  shape.num_tuples = table->num_tuples();
  shape.num_pages = table->num_pages();
  shape.tuples_per_page = table->TuplesOnPage(0);
  shape.tuple_payload_bytes = table->schema().RowBytes();
  compiler::UdfCompiler compiler{compiler::FpgaSpec{}};
  auto udf = std::move(compiler.Compile(*algo, layout, shape)).ValueOrDie();

  accel::Accelerator acc(udf);
  auto report = std::move(acc.Train(*table, &pool, {})).ValueOrDie();
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.epochs_run, 50u);
}

TEST(AcceleratorTest, InitialModelRespected) {
  auto f = AccelFixture::Make(ml::AlgoKind::kLinearRegression, 8, 1, 4);
  accel::RunOptions opt;
  opt.initial_models = {std::vector<float>(8, 2.0f)};
  opt.max_epochs_override = 1;
  auto report = f.Train(opt);
  // With a nonzero start the result differs from the zero start.
  auto zero_report = f.Train();
  EXPECT_NE(report.final_models[0], zero_report.final_models[0]);
}

TEST(AcceleratorTest, BatchedPassSharesStreamAndScalesEngine) {
  auto f = AccelFixture::Make(ml::AlgoKind::kLogisticRegression, 54, 16,
                              2000);
  f.pool->Prewarm(*f.table);
  auto single = f.Train();
  f.pool->Clear();
  f.pool->Prewarm(*f.table);
  accel::RunOptions batched;
  batched.batch_queries = 4;
  auto four = f.Train(batched);

  ASSERT_EQ(single.epochs_run, four.epochs_run);
  for (size_t e = 0; e < single.epochs.size(); ++e) {
    // One page-streaming sweep regardless of batch size...
    EXPECT_DOUBLE_EQ(four.epochs[e].axi.nanos(), single.epochs[e].axi.nanos());
    EXPECT_DOUBLE_EQ(four.epochs[e].strider.nanos(),
                     single.epochs[e].strider.nanos());
    EXPECT_DOUBLE_EQ(four.epochs[e].shared.nanos(),
                     single.epochs[e].shared.nanos());
    // ...while engine compute replicates per co-trained model.
    EXPECT_NEAR(four.epochs[e].engine.nanos(),
                4.0 * single.epochs[e].engine.nanos(),
                1e-6 * four.epochs[e].engine.nanos());
    EXPECT_NEAR(four.epochs[e].per_query.nanos(),
                single.epochs[e].engine.nanos(),
                1e-6 * single.epochs[e].engine.nanos());
  }
  // Batch service beats 4 serial passes: stream + 4x engine, pipelined,
  // is far below 4 x (stream + engine).
  EXPECT_LT(four.total_time.nanos(), 4.0 * single.total_time.nanos());
  // All four co-trained models are the one functionally-trained model.
  EXPECT_EQ(four.final_models[0], single.final_models[0]);
}

TEST(AcceleratorTest, EpochBreakdownSumsConsistently) {
  auto f = AccelFixture::Make(ml::AlgoKind::kSvm, 20, 8, 1000);
  f.pool->Prewarm(*f.table);
  auto report = f.Train();
  ASSERT_EQ(report.epochs.size(), report.epochs_run);
  dana::SimTime sum;
  for (const auto& e : report.epochs) {
    EXPECT_GE(e.wall.nanos(), 0.0);
    sum += e.wall;
  }
  EXPECT_NEAR(sum.nanos(), report.total_time.nanos(),
              1e-6 * report.total_time.nanos() + 1.0);
}

TEST(AcceleratorTest, MoreThreadsFasterOnWideParallelWorkload) {
  compiler::HardwareGenerator::Options one;
  one.force_threads = 1;
  compiler::HardwareGenerator::Options many;
  many.force_threads = 16;
  auto f1 = AccelFixture::Make(ml::AlgoKind::kLogisticRegression, 54, 64,
                               3000, one);
  auto f16 = AccelFixture::Make(ml::AlgoKind::kLogisticRegression, 54, 64,
                                3000, many);
  f1.pool->Prewarm(*f1.table);
  f16.pool->Prewarm(*f16.table);
  // Compare engine compute only (narrow model: extraction is the same).
  auto r1 = f1.Train();
  auto r16 = f16.Train();
  dana::SimTime e1, e16;
  for (const auto& e : r1.epochs) e1 += e.engine;
  for (const auto& e : r16.epochs) e16 += e.engine;
  EXPECT_LT(e16.nanos(), e1.nanos());
}

}  // namespace
}  // namespace dana
