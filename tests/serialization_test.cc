#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "compiler/serialization.h"
#include "ml/algorithms.h"
#include "ml/datasets.h"
#include "storage/buffer_pool.h"

namespace dana::compiler {
namespace {

struct Built {
  std::unique_ptr<storage::Table> table;
  CompiledUdf udf;
  ml::AlgoParams params;
  ml::AlgoKind kind;
};

Built Build(ml::AlgoKind kind, uint32_t dims) {
  Built b;
  b.kind = kind;
  b.params.dims = dims;
  b.params.rank = 3;
  b.params.merge_coef = 4;
  b.params.epochs = 2;
  b.params.learning_rate = kind == ml::AlgoKind::kLowRankMF ? 0.5 : 0.3;
  ml::DatasetSpec spec;
  spec.kind = kind;
  spec.dims = dims;
  spec.rank = 3;
  spec.tuples = 200;
  auto data = ml::GenerateDataset(spec);
  storage::PageLayout layout;
  b.table = std::move(ml::BuildTable("t", data, layout)).ValueOrDie();

  auto algo = std::move(ml::BuildAlgo(kind, b.params)).ValueOrDie();
  WorkloadShape shape;
  shape.num_tuples = b.table->num_tuples();
  shape.num_pages = b.table->num_pages();
  shape.tuples_per_page = b.table->TuplesOnPage(0);
  shape.tuple_payload_bytes = b.table->schema().RowBytes();
  UdfCompiler compiler{FpgaSpec{}};
  b.udf = std::move(compiler.Compile(*algo, layout, shape)).ValueOrDie();
  return b;
}

class SerializationTest : public ::testing::TestWithParam<ml::AlgoKind> {};

TEST_P(SerializationTest, RoundTripIsExact) {
  Built b = Build(GetParam(), 12);
  const std::string blob = SerializeUdf(b.udf);
  EXPECT_GT(blob.size(), 100u);
  auto back = DeserializeUdf(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  // Re-serializing the deserialized object must produce identical bytes.
  EXPECT_EQ(SerializeUdf(*back), blob);

  // Spot-check structural equality.
  EXPECT_EQ(back->udf_name, b.udf.udf_name);
  EXPECT_EQ(back->program.tuple_ops.size(), b.udf.program.tuple_ops.size());
  EXPECT_EQ(back->program.merge_slots.size(),
            b.udf.program.merge_slots.size());
  EXPECT_EQ(back->design.num_threads, b.udf.design.num_threads);
  EXPECT_EQ(back->design.tuple_schedule.makespan,
            b.udf.design.tuple_schedule.makespan);
  EXPECT_EQ(back->strider_program.code.size(),
            b.udf.strider_program.code.size());
  EXPECT_EQ(back->page_layout.page_size, b.udf.page_layout.page_size);
}

TEST_P(SerializationTest, DeserializedUdfTrainsIdentically) {
  Built b = Build(GetParam(), 10);
  auto back =
      std::move(DeserializeUdf(SerializeUdf(b.udf))).ValueOrDie();

  accel::RunOptions opt;
  opt.initial_models = {ml::InitialModel(b.kind, b.params)};

  storage::BufferPool pool1(64ull << 20, 32 * 1024, storage::DiskModel{});
  accel::Accelerator acc1(b.udf);
  auto r1 = std::move(acc1.Train(*b.table, &pool1, opt)).ValueOrDie();

  storage::BufferPool pool2(64ull << 20, 32 * 1024, storage::DiskModel{});
  accel::Accelerator acc2(back);
  auto r2 = std::move(acc2.Train(*b.table, &pool2, opt)).ValueOrDie();

  // Bit-identical training and identical simulated timing.
  EXPECT_EQ(r1.final_models, r2.final_models);
  EXPECT_EQ(r1.fpga_cycles, r2.fpga_cycles);
  EXPECT_EQ(r1.epochs_run, r2.epochs_run);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, SerializationTest,
    ::testing::Values(ml::AlgoKind::kLinearRegression,
                      ml::AlgoKind::kLogisticRegression, ml::AlgoKind::kSvm,
                      ml::AlgoKind::kLowRankMF));

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_TRUE(DeserializeUdf("").status().IsCorruption());
  EXPECT_TRUE(DeserializeUdf("not a blob").status().IsCorruption());
  std::string bad_magic = "\x04\x00\x00\x00NOPE";
  bad_magic.resize(64, '\0');
  EXPECT_TRUE(DeserializeUdf(bad_magic).status().IsCorruption());
}

TEST(SerializationTest, RejectsWrongVersion) {
  Built b = Build(ml::AlgoKind::kLinearRegression, 4);
  std::string blob = SerializeUdf(b.udf);
  // Version field sits right after the 4-byte-length + "DANA" magic.
  blob[8] = 99;
  EXPECT_TRUE(DeserializeUdf(blob).status().IsInvalidArgument());
}

TEST(SerializationTest, RejectsTruncation) {
  Built b = Build(ml::AlgoKind::kLinearRegression, 4);
  const std::string blob = SerializeUdf(b.udf);
  for (size_t cut : {blob.size() / 4, blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(DeserializeUdf(blob.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsTrailingBytes) {
  Built b = Build(ml::AlgoKind::kLinearRegression, 4);
  std::string blob = SerializeUdf(b.udf);
  blob += "junk";
  EXPECT_TRUE(DeserializeUdf(blob).status().IsCorruption());
}

}  // namespace
}  // namespace dana::compiler
