#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/eviction_policy.h"

namespace dana::storage {
namespace {

// ---------------------------------------------------------------------------
// Clock bit-compatibility
// ---------------------------------------------------------------------------

/// Reference implementation of the seed buffer pool's replacement: frames
/// fill in order, each hit sets the frame's reference bit, and a full pool
/// runs the classic second-chance hand sweep from where it last stopped.
/// The refactored pool delegates victim selection to ClockEvictionPolicy;
/// this simulator pins that the delegation reproduced the seed behaviour
/// decision for decision.
class ReferenceClock {
 public:
  explicit ReferenceClock(size_t frames) : ref_(frames, 0) {}

  /// Touches (table, page); returns true on hit. `evicted` reports the
  /// frame index evicted this touch, or -1.
  bool Touch(uint32_t table, uint64_t page, int* evicted) {
    *evicted = -1;
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i].first == table && keys_[i].second == page) {
        ref_[i] = 1;
        return true;
      }
    }
    if (keys_.size() < ref_.size()) {
      keys_.emplace_back(table, page);
      ref_[keys_.size() - 1] = 1;
      return false;
    }
    while (ref_[hand_] != 0) {
      ref_[hand_] = 0;
      hand_ = (hand_ + 1) % ref_.size();
    }
    *evicted = static_cast<int>(hand_);
    ++evictions_;
    keys_[hand_] = {table, page};
    ref_[hand_] = 1;
    hand_ = (hand_ + 1) % ref_.size();
    return false;
  }

  uint64_t evictions() const { return evictions_; }
  size_t resident() const { return keys_.size(); }

 private:
  std::vector<std::pair<uint32_t, uint64_t>> keys_;
  std::vector<uint8_t> ref_;
  size_t hand_ = 0;
  uint64_t evictions_ = 0;
};

TEST(ClockCompatTest, MatchesReferenceClockOnRandomTrace) {
  constexpr size_t kFrames = 16;
  auto pool = BufferPool::SizedInFrames(kFrames, 8 * 1024, DiskModel{},
                                        EvictionKind::kClock,
                                        /*os_frames=*/0);
  ReferenceClock ref(kFrames);
  const uint32_t t0 = pool.InternTable("a");
  const uint32_t t1 = pool.InternTable("b");
  // Deterministic mixed trace: two tables, 48 distinct pages, enough
  // re-references that reference bits and hand position both matter.
  uint64_t x = 0x243F6A8885A308D3ull;
  for (int step = 0; step < 4000; ++step) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t table = (x >> 33) & 1 ? t1 : t0;
    const uint64_t page = (x >> 40) % 24;
    int evicted = -1;
    const bool ref_hit = ref.Touch(table, page, &evicted);
    const bool pool_hit = pool.TouchPage(table, page);
    ASSERT_EQ(pool_hit, ref_hit) << "step " << step;
    ASSERT_EQ(pool.resident_frames(), ref.resident()) << "step " << step;
    ASSERT_EQ(pool.stats().evictions, ref.evictions()) << "step " << step;
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(ClockCompatTest, OversizedScanKeepsMissingOnRescan) {
  // The seed invariant the sched suites depend on: a cyclic sequential
  // scan of a table larger than the pool never hits (each touch evicts
  // the page the scan will want next).
  auto pool = BufferPool::SizedInFrames(8, 8 * 1024, DiskModel{},
                                        EvictionKind::kClock, 0);
  const uint32_t tid = pool.InternTable("big");
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t p = 0; p < 12; ++p) {
      EXPECT_FALSE(pool.TouchPage(tid, p)) << "pass " << pass << " p " << p;
    }
  }
  EXPECT_EQ(pool.resident_frames(), 8u);
}

// ---------------------------------------------------------------------------
// LRU vs clock divergence
// ---------------------------------------------------------------------------

TEST(LruEvictionTest, DivergesFromClockOnCraftedTrace) {
  // Crafted 3-frame trace where recency order and hand order part ways:
  //   touch 0,1,2 (fill), 3 (evict 0), 4 (evict 1), 2 (hit), 5
  // At the last touch clock's hand sweep clears every reference bit and
  // evicts page 2 (the only hit of the trace), while LRU protects the
  // recently-used page 2 and evicts page 3 (the least recent).
  auto clock_pool = BufferPool::SizedInFrames(3, 8 * 1024, DiskModel{},
                                              EvictionKind::kClock, 0);
  auto lru_pool = BufferPool::SizedInFrames(3, 8 * 1024, DiskModel{},
                                            EvictionKind::kLru, 0);
  for (BufferPool* pool : {&clock_pool, &lru_pool}) {
    const uint32_t tid = pool->InternTable("t");
    for (uint64_t p : {0u, 1u, 2u, 3u, 4u}) {
      EXPECT_FALSE(pool->TouchPage(tid, p));
    }
    EXPECT_TRUE(pool->TouchPage(tid, 2));
    EXPECT_FALSE(pool->TouchPage(tid, 5));
  }
  // The policies now disagree about page 2.
  EXPECT_FALSE(clock_pool.TouchPage(clock_pool.InternTable("t"), 2));
  EXPECT_TRUE(lru_pool.TouchPage(lru_pool.InternTable("t"), 2));
}

// ---------------------------------------------------------------------------
// Promotional (SLRU-style) promotion/demotion order
// ---------------------------------------------------------------------------

TEST(PromotionalEvictionTest, ReReferencePromotesAndProbationEvictsFirst) {
  // 4 frames, protected capacity 2. Insert 0..3 (all probationary), then
  // re-reference 1 and 0 (promote to protected), then 2 (protected
  // overflows, demoting 1 back to probationary MRU). The next miss must
  // take the probationary LRU — page 3, never touched since insert.
  auto pool = BufferPool::SizedInFrames(4, 8 * 1024, DiskModel{},
                                        EvictionKind::kPromotional, 0);
  const uint32_t tid = pool.InternTable("t");
  for (uint64_t p : {0u, 1u, 2u, 3u}) {
    EXPECT_FALSE(pool.TouchPage(tid, p));
  }
  EXPECT_TRUE(pool.TouchPage(tid, 1));  // probation -> protected
  EXPECT_TRUE(pool.TouchPage(tid, 0));  // probation -> protected (full)
  EXPECT_TRUE(pool.TouchPage(tid, 2));  // promotes; demotes 1 to probation
  EXPECT_FALSE(pool.TouchPage(tid, 4));  // evicts probationary LRU = 3
  EXPECT_TRUE(pool.TouchPage(tid, 1));
  EXPECT_TRUE(pool.TouchPage(tid, 0));
  EXPECT_TRUE(pool.TouchPage(tid, 2));
  EXPECT_FALSE(pool.TouchPage(tid, 3));  // 3 was the victim
}

TEST(PromotionalEvictionTest, ProtectedSurvivesScanFlood) {
  // The ZNCache property the tier sweep banks on: a hot, re-referenced
  // working set in the protected segment survives a one-pass cold scan
  // that would flood clock or LRU.
  auto pool = BufferPool::SizedInFrames(8, 8 * 1024, DiskModel{},
                                        EvictionKind::kPromotional, 0);
  const uint32_t hot = pool.InternTable("hot");
  const uint32_t cold = pool.InternTable("cold");
  for (uint64_t p = 0; p < 4; ++p) pool.TouchPage(hot, p);
  for (uint64_t p = 0; p < 4; ++p) EXPECT_TRUE(pool.TouchPage(hot, p));
  for (uint64_t p = 0; p < 16; ++p) pool.TouchPage(cold, p);  // flood
  for (uint64_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(pool.TouchPage(hot, p)) << "hot page " << p;
  }
}

// ---------------------------------------------------------------------------
// OS-tier admission after saturation (the fixed bug) and demotion cascade
// ---------------------------------------------------------------------------

TEST(PageTierTest, FullTierEvictsInsteadOfRefusingAdmission) {
  // The legacy os_cached_ set admitted until full and then never changed:
  // a page first read after saturation could never become OS-cached. The
  // PageTier must instead displace a victim — for every policy.
  for (EvictionKind kind : {EvictionKind::kClock, EvictionKind::kLru,
                            EvictionKind::kPromotional}) {
    PageTier tier(kind, 3);
    const PageKey k1{0, 1}, k2{0, 2}, k3{0, 3}, k4{0, 4};
    EXPECT_FALSE(tier.Insert(k1, nullptr));
    EXPECT_FALSE(tier.Insert(k2, nullptr));
    EXPECT_FALSE(tier.Insert(k3, nullptr));
    ASSERT_EQ(tier.resident(), 3u);
    tier.Touch(k2);  // k2 is hot; a sane policy spares it
    PageKey evicted{0, 0};
    EXPECT_TRUE(tier.Insert(k4, &evicted)) << EvictionKindName(kind);
    EXPECT_TRUE(tier.Contains(k4)) << EvictionKindName(kind);
    EXPECT_FALSE(evicted == k2 && tier.Contains(k2) == false)
        << EvictionKindName(kind);
    EXPECT_TRUE(tier.Contains(k2)) << EvictionKindName(kind);
    EXPECT_EQ(tier.resident(), 3u);
    EXPECT_EQ(tier.evictions(), 1u);
  }
}

TEST(TieredPoolTest, PostSaturationHotPageDisplacesColdOne) {
  // End to end through the BufferPool: with an evicting OS tier, a page
  // demoted after the tier saturates still gets admitted (displacing a
  // colder one) — the regression the never-evicting set failed.
  auto pool = BufferPool::SizedInFrames(2, 8 * 1024, DiskModel{},
                                        EvictionKind::kLru,
                                        /*os_frames=*/2);
  const uint32_t tid = pool.InternTable("t");
  // Touch 0..5: the pool keeps the trailing 2 pages, the OS tier receives
  // the demotions and keeps ITS trailing 2 — the tier kept evicting long
  // after it first filled.
  for (uint64_t p = 0; p < 6; ++p) pool.TouchPage(tid, p);
  EXPECT_EQ(pool.tier_resident_frames(BufferPool::kOsTier), 2u);
  EXPECT_GT(pool.stats().os_evictions, 0u);
  // Pool holds {4, 5}; OS tier holds the latest demotions {2, 3}.
  EXPECT_TRUE(pool.TouchPage(tid, 4));
  EXPECT_TRUE(pool.TouchPage(tid, 5));
  const uint64_t os_hits_before = pool.stats().os_hits;
  pool.TouchPage(tid, 3);  // OS-tier hit: promoted back into the pool
  EXPECT_EQ(pool.stats().os_hits, os_hits_before + 1);
}

TEST(TieredPoolTest, OsHitPromotesAndExclusivityHolds) {
  auto pool = BufferPool::SizedInFrames(2, 8 * 1024, DiskModel{},
                                        EvictionKind::kLru, 4);
  const uint32_t tid = pool.InternTable("t");
  for (uint64_t p = 0; p < 4; ++p) pool.TouchPage(tid, p);
  // Pool {2, 3}; OS {0, 1}. A page is never in both tiers at once.
  EXPECT_EQ(pool.resident_frames(), 2u);
  EXPECT_EQ(pool.tier_resident_frames(BufferPool::kOsTier), 2u);
  pool.TouchPage(tid, 0);  // promote 0; demote pool victim (2) to OS
  EXPECT_TRUE(pool.TouchPage(tid, 0));
  EXPECT_EQ(pool.resident_frames() +
                pool.tier_resident_frames(BufferPool::kOsTier),
            4u);
  EXPECT_EQ(pool.stats().os_hits, 1u);
}

TEST(TieredPoolTest, SsdTierCatchesOsDemotions) {
  // Optional third tier: OS victims cascade to the SSD-style capacity
  // tier instead of dropping.
  auto pool = BufferPool::SizedInFrames(2, 8 * 1024, DiskModel{},
                                        EvictionKind::kLru,
                                        /*os_frames=*/2, /*ssd_frames=*/4);
  const uint32_t tid = pool.InternTable("t");
  for (uint64_t p = 0; p < 8; ++p) pool.TouchPage(tid, p);
  EXPECT_EQ(pool.resident_frames(), 2u);
  EXPECT_EQ(pool.tier_resident_frames(BufferPool::kOsTier), 2u);
  EXPECT_GT(pool.tier_resident_frames(BufferPool::kSsdTier), 0u);
  const uint64_t ssd_hits_before = pool.stats().ssd_hits;
  pool.TouchPage(tid, 2);  // long-demoted page: only the SSD tier has it
  EXPECT_EQ(pool.stats().ssd_hits, ssd_hits_before + 1);
}

TEST(TieredPoolTest, TierResidentShareSplitsByTable) {
  auto pool = BufferPool::SizedInFrames(4, 8 * 1024, DiskModel{},
                                        EvictionKind::kPromotional, 8);
  const uint32_t a = pool.InternTable("a");
  const uint32_t b = pool.InternTable("b");
  pool.ScanTable(a, 8);
  pool.ScanTable(b, 4);
  const double a_pool = pool.ResidentShare(a, 8);
  const double a_os = pool.TierResidentShare(BufferPool::kOsTier, a, 8);
  const double b_pool = pool.ResidentShare(b, 4);
  const double b_os = pool.TierResidentShare(BufferPool::kOsTier, b, 4);
  // Shares are per-table fractions in [0, 1]; the tiers are exclusive, so
  // each table's pool + OS shares never exceed 1, and b's scan displaced
  // a into the tier.
  EXPECT_LE(a_pool + a_os, 1.0 + 1e-12);
  EXPECT_LE(b_pool + b_os, 1.0 + 1e-12);
  EXPECT_GT(a_os, 0.0);
  EXPECT_GT(b_pool, 0.0);
}

TEST(TieredPoolTest, ClearResetsEveryTier) {
  auto pool = BufferPool::SizedInFrames(2, 8 * 1024, DiskModel{},
                                        EvictionKind::kLru, 2, 2);
  const uint32_t tid = pool.InternTable("t");
  for (uint64_t p = 0; p < 8; ++p) pool.TouchPage(tid, p);
  pool.Clear();
  EXPECT_EQ(pool.resident_frames(), 0u);
  EXPECT_EQ(pool.tier_resident_frames(BufferPool::kOsTier), 0u);
  EXPECT_EQ(pool.tier_resident_frames(BufferPool::kSsdTier), 0u);
  // And the trace replays identically from the cleared state.
  for (uint64_t p = 0; p < 8; ++p) EXPECT_FALSE(pool.TouchPage(tid, p));
  EXPECT_EQ(pool.tier_resident_frames(BufferPool::kOsTier), 2u);
}

TEST(EvictionKindTest, ParseRoundTripsAndRejectsUnknown) {
  for (EvictionKind kind : {EvictionKind::kClock, EvictionKind::kLru,
                            EvictionKind::kPromotional}) {
    auto parsed = ParseEvictionKind(EvictionKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseEvictionKind("mru").ok());
}

}  // namespace
}  // namespace dana::storage
