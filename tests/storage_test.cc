#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/page.h"
#include "storage/residency.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dana::storage {
namespace {

// ---------------------------------------------------------------------------
// ItemId packing
// ---------------------------------------------------------------------------

TEST(ItemIdTest, PackUnpackRoundTrip) {
  for (uint32_t off : {0u, 1u, 24u, 32767u}) {
    for (uint32_t flags : {kLpUnused, kLpNormal, kLpRedirect, kLpDead}) {
      for (uint32_t len : {0u, 5u, 32767u}) {
        uint32_t o, f, l;
        UnpackItemId(PackItemId(off, flags, len), &o, &f, &l);
        EXPECT_EQ(o, off);
        EXPECT_EQ(f, flags);
        EXPECT_EQ(l, len);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Page codec
// ---------------------------------------------------------------------------

class PageTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  PageLayout layout() const {
    PageLayout l;
    l.page_size = GetParam();
    return l;
  }
};

TEST_P(PageTest, InitEmptySetsBounds) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size, 0xAB);
  Page page(buf.data(), l);
  page.InitEmpty();
  EXPECT_EQ(page.lower(), l.header_size);
  EXPECT_EQ(page.upper(), l.page_size);
  EXPECT_EQ(page.special(), l.page_size);
  EXPECT_EQ(page.ItemCount(), 0u);
  EXPECT_TRUE(page.Validate().ok());
}

TEST_P(PageTest, AddAndGetTuple) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size);
  Page page(buf.data(), l);
  page.InitEmpty();

  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto slot = page.AddTuple(payload, 5);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 0u);
  EXPECT_EQ(page.ItemCount(), 1u);

  auto got = page.GetTuplePayload(0);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), payload.size());
  EXPECT_EQ(0, std::memcmp(got->data(), payload.data(), payload.size()));
}

TEST_P(PageTest, TuplesGrowDownward) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size);
  Page page(buf.data(), l);
  page.InitEmpty();
  std::vector<uint8_t> payload(16, 0x7);
  ASSERT_TRUE(page.AddTuple(payload, 4).ok());
  const uint16_t upper1 = page.upper();
  ASSERT_TRUE(page.AddTuple(payload, 4).ok());
  EXPECT_EQ(page.upper(), upper1 - (l.tuple_header_size + 16));
  EXPECT_TRUE(page.Validate().ok());
}

TEST_P(PageTest, FillsToComputedCapacity) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size);
  Page page(buf.data(), l);
  page.InitEmpty();
  const uint32_t payload_size = 100;
  std::vector<uint8_t> payload(payload_size, 1);
  const uint32_t expect = l.TuplesPerPage(payload_size);
  uint32_t added = 0;
  while (page.AddTuple(payload, 25).ok()) ++added;
  EXPECT_EQ(added, expect);
  EXPECT_TRUE(page.Validate().ok());
  // The next add reports exhaustion, not corruption.
  EXPECT_TRUE(page.AddTuple(payload, 25).status().IsResourceExhausted());
}

TEST_P(PageTest, GetTupleOutOfRange) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size);
  Page page(buf.data(), l);
  page.InitEmpty();
  EXPECT_TRUE(page.GetTuplePayload(0).status().IsOutOfRange());
}

TEST_P(PageTest, TupleHeaderFields) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size);
  Page page(buf.data(), l);
  page.InitEmpty();
  std::vector<uint8_t> payload(8, 0xEE);
  ASSERT_TRUE(page.AddTuple(payload, 3).ok());
  auto raw = page.GetTupleRaw(0);
  ASSERT_TRUE(raw.ok());
  // infomask2 low bits carry the attribute count; hoff is the header size.
  uint16_t infomask2;
  std::memcpy(&infomask2, raw->data() + 18, 2);
  EXPECT_EQ(infomask2 & 0x07FF, 3);
  EXPECT_EQ((*raw)[22], l.tuple_header_size);
}

TEST_P(PageTest, ValidateDetectsCorruptLower) {
  PageLayout l = layout();
  std::vector<uint8_t> buf(l.page_size);
  Page page(buf.data(), l);
  page.InitEmpty();
  // lower > upper is corruption.
  const uint16_t bad = static_cast<uint16_t>(l.page_size);
  std::memcpy(buf.data() + l.lower_offset, &bad, 2);
  const uint16_t upper = 100;
  std::memcpy(buf.data() + l.upper_offset, &upper, 2);
  EXPECT_TRUE(page.Validate().IsCorruption());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageTest,
                         ::testing::Values(8 * 1024, 16 * 1024, 32 * 1024));

// ---------------------------------------------------------------------------
// Schema codec
// ---------------------------------------------------------------------------

TEST(SchemaTest, DenseFactory) {
  Schema s = Schema::Dense(4);
  EXPECT_EQ(s.num_columns(), 5u);  // 4 features + label
  EXPECT_EQ(s.RowBytes(), 20u);
  EXPECT_EQ(s.columns().back().name, "label");
}

TEST(SchemaTest, EncodeDecodeRoundTripFloat4) {
  Schema s = Schema::Dense(3);
  std::vector<double> row = {1.5, -2.25, 0.125, 1.0};
  std::vector<uint8_t> buf(s.RowBytes());
  ASSERT_TRUE(s.EncodeRow(row, buf.data()).ok());
  std::vector<double> out;
  ASSERT_TRUE(s.DecodeRow(buf.data(), s.RowBytes(), &out).ok());
  EXPECT_EQ(out, row);  // all values exactly representable in fp32
}

TEST(SchemaTest, MixedColumnTypes) {
  Schema s({{"a", ColumnType::kFloat8},
            {"b", ColumnType::kInt32},
            {"c", ColumnType::kFloat4}});
  EXPECT_EQ(s.RowBytes(), 16u);
  EXPECT_EQ(s.ColumnOffset(1), 8u);
  std::vector<double> row = {3.14159265358979, 42.0, 2.5};
  std::vector<uint8_t> buf(s.RowBytes());
  ASSERT_TRUE(s.EncodeRow(row, buf.data()).ok());
  std::vector<double> out;
  ASSERT_TRUE(s.DecodeRow(buf.data(), s.RowBytes(), &out).ok());
  EXPECT_DOUBLE_EQ(out[0], 3.14159265358979);
  EXPECT_DOUBLE_EQ(out[1], 42.0);
  EXPECT_DOUBLE_EQ(out[2], 2.5);
}

TEST(SchemaTest, EncodeWrongWidthFails) {
  Schema s = Schema::Dense(2);
  std::vector<uint8_t> buf(s.RowBytes());
  EXPECT_TRUE(s.EncodeRow({1.0}, buf.data()).IsInvalidArgument());
}

TEST(SchemaTest, DecodeShortBufferFails) {
  Schema s = Schema::Dense(2);
  std::vector<uint8_t> buf(4);
  std::vector<double> out;
  EXPECT_TRUE(s.DecodeRow(buf.data(), 4, &out).IsCorruption());
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

PageLayout SmallLayout() {
  PageLayout l;
  l.page_size = 8 * 1024;
  return l;
}

TEST(TableTest, AppendAndReadBack) {
  Table t("t", Schema::Dense(3), SmallLayout());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({1.0 * i, 2.0 * i, 3.0 * i, 1.0}).ok());
  }
  EXPECT_EQ(t.num_tuples(), 10u);
  std::vector<double> row;
  ASSERT_TRUE(t.ReadRow(0, 4, &row).ok());
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 12.0);
}

TEST(TableTest, SpillsToMultiplePages) {
  Table t("t", Schema::Dense(100), SmallLayout());
  const uint32_t per_page = SmallLayout().TuplesPerPage(101 * 4);
  const uint32_t n = per_page * 3 + 1;
  std::vector<double> row(101, 0.5);
  for (uint32_t i = 0; i < n; ++i) ASSERT_TRUE(t.AppendRow(row).ok());
  EXPECT_EQ(t.num_pages(), 4u);
  EXPECT_EQ(t.TuplesOnPage(0), per_page);
  EXPECT_EQ(t.TuplesOnPage(3), 1u);
}

TEST(TableTest, ReadAllRowsMatchesInserted) {
  Table t("t", Schema::Dense(2), SmallLayout());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(t.AppendRow({i * 0.5, i * 0.25, static_cast<double>(i)}).ok());
  }
  auto rows = t.ReadAllRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 500u);
  EXPECT_DOUBLE_EQ((*rows)[499][2], 499.0);
}

TEST(TableTest, RowTooWideForPageFails) {
  PageLayout l = SmallLayout();
  Table t("t", Schema::Dense(4000), l);  // 16 KB row on an 8 KB page
  std::vector<double> row(4001, 1.0);
  EXPECT_FALSE(t.AppendRow(row).ok());
}

TEST(TableTest, PagesValidateAsPostgresPages) {
  Table t("t", Schema::Dense(10), SmallLayout());
  std::vector<double> row(11, 2.0);
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(t.AppendRow(row).ok());
  for (uint64_t p = 0; p < t.num_pages(); ++p) {
    Page page(const_cast<uint8_t*>(t.PageData(p)), t.layout());
    EXPECT_TRUE(page.Validate().ok()) << "page " << p;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

std::unique_ptr<Table> MakeTable(uint32_t pages_wanted,
                                 const std::string& name = "bp") {
  auto t = std::make_unique<Table>(name, Schema::Dense(100), SmallLayout());
  std::vector<double> row(101, 1.0);
  while (t->num_pages() < pages_wanted) {
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  return t;
}

TEST(BufferPoolTest, MissThenHit) {
  auto t = MakeTable(4);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  ASSERT_TRUE(pool.FetchPage(*t, 0).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  ASSERT_TRUE(pool.FetchPage(*t, 0).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, MissChargesIoTime) {
  auto t = MakeTable(2);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  ASSERT_TRUE(pool.FetchPage(*t, 0).ok());
  EXPECT_GT(pool.stats().io_time.nanos(), 0.0);
  const auto after_miss = pool.stats().io_time;
  ASSERT_TRUE(pool.FetchPage(*t, 0).ok());
  EXPECT_EQ(pool.stats().io_time.nanos(), after_miss.nanos());
}

TEST(BufferPoolTest, FetchedBytesMatchTable) {
  auto t = MakeTable(3);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  auto frame = pool.FetchPage(*t, 2);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(0, std::memcmp(*frame, t->PageData(2), 8 * 1024));
}

TEST(BufferPoolTest, EvictsWhenFull) {
  auto t = MakeTable(8);
  BufferPool pool(4 * 8 * 1024, 8 * 1024, DiskModel{});  // 4 frames
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  EXPECT_EQ(pool.stats().misses, 8u);
  EXPECT_GE(pool.stats().evictions, 4u);
}

TEST(BufferPoolTest, SequentialRescanOfOversizedTableKeepsMissing) {
  auto t = MakeTable(8);
  BufferPool pool(4 * 8 * 1024, 8 * 1024, DiskModel{});
  for (int scan = 0; scan < 2; ++scan) {
    for (uint64_t p = 0; p < 8; ++p) {
      ASSERT_TRUE(pool.FetchPage(*t, p).ok());
    }
  }
  // A 2x-oversized sequential scan with clock replacement cannot hit much.
  EXPECT_GE(pool.stats().misses, 12u);
}

TEST(BufferPoolTest, PrewarmMakesResidentWithoutIo) {
  auto t = MakeTable(4);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t);
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(*t), 1.0);
  EXPECT_EQ(pool.stats().io_time.nanos(), 0.0);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, PrewarmCapsAtCapacity) {
  auto t = MakeTable(8);
  BufferPool pool(4 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t);
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(*t), 0.5);
}

TEST(BufferPoolTest, ClearDropsResidency) {
  auto t = MakeTable(4);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t);
  pool.Clear();
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(*t), 0.0);
}

TEST(BufferPoolTest, RejectsMismatchedPageSize) {
  auto t = MakeTable(2);  // 8 KB pages
  BufferPool pool(1 << 20, 32 * 1024, DiskModel{});
  EXPECT_TRUE(pool.FetchPage(*t, 0).status().IsInvalidArgument());
}

TEST(BufferPoolTest, RejectsOutOfRangePage) {
  auto t = MakeTable(2);
  BufferPool pool(1 << 20, 8 * 1024, DiskModel{});
  EXPECT_TRUE(pool.FetchPage(*t, 99).status().IsOutOfRange());
}

// ---------------------------------------------------------------------------
// BufferPoolGroup (per-slot execution contexts)
// ---------------------------------------------------------------------------

TEST(BufferPoolGroupTest, SlotsHaveIndependentCachingState) {
  auto t = MakeTable(4);
  BufferPoolGroup group(16 * 8 * 1024, 8 * 1024, DiskModel{});
  group.Resize(2);
  ASSERT_EQ(group.size(), 2u);

  // Slot 0 scans the table twice: 4 misses then 4 hits.
  for (int scan = 0; scan < 2; ++scan) {
    for (uint64_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(group.pool(0)->FetchPage(*t, p).ok());
    }
  }
  EXPECT_EQ(group.pool(0)->stats().misses, 4u);
  EXPECT_EQ(group.pool(0)->stats().hits, 4u);
  // Slot 1 never fetched: its pool is untouched — no aliasing of slot 0's
  // residency or counters.
  EXPECT_EQ(group.pool(1)->stats().misses, 0u);
  EXPECT_EQ(group.pool(1)->stats().hits, 0u);
  EXPECT_DOUBLE_EQ(group.pool(1)->ResidentFraction(*t), 0.0);

  // Slot 1's first scan misses everything despite slot 0's warm cache.
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(group.pool(1)->FetchPage(*t, p).ok());
  }
  EXPECT_EQ(group.pool(1)->stats().misses, 4u);
}

TEST(BufferPoolGroupTest, RollupSumsAcrossPools) {
  auto t = MakeTable(4);
  BufferPoolGroup group(16 * 8 * 1024, 8 * 1024, DiskModel{});
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(group.pool(0)->FetchPage(*t, p).ok());
    ASSERT_TRUE(group.pool(1)->FetchPage(*t, p).ok());
  }
  ASSERT_TRUE(group.pool(0)->FetchPage(*t, 0).ok());  // one hit on slot 0
  const BufferPoolStats rollup = group.Rollup();
  EXPECT_EQ(rollup.misses, 8u);
  EXPECT_EQ(rollup.hits, 1u);
  EXPECT_DOUBLE_EQ(rollup.io_time.nanos(),
                   group.pool(0)->stats().io_time.nanos() +
                       group.pool(1)->stats().io_time.nanos());
}

TEST(BufferPoolGroupTest, GrowsLazilyAndNeverBelowOne) {
  BufferPoolGroup group(8 * 8 * 1024, 8 * 1024, DiskModel{});
  EXPECT_EQ(group.size(), 1u);
  group.Resize(0);
  EXPECT_EQ(group.size(), 1u);
  (void)group.pool(3);  // indexing past the end grows the group
  EXPECT_EQ(group.size(), 4u);
  group.Resize(2);  // never shrinks
  EXPECT_EQ(group.size(), 4u);
}

TEST(DiskModelTest, SeqReadTimeScalesWithBytes) {
  DiskModel d;
  const auto t1 = d.SeqReadTime(1 << 20, 32 * 1024);
  const auto t2 = d.SeqReadTime(2 << 20, 32 * 1024);
  EXPECT_GT(t2.nanos(), t1.nanos() * 1.5);
  EXPECT_EQ(d.SeqReadTime(0, 32 * 1024).nanos(), 0.0);
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, RegisterLookupDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterTable(MakeTable(1)).ok());
  EXPECT_TRUE(cat.HasTable("bp"));
  ASSERT_TRUE(cat.GetTable("bp").ok());
  EXPECT_TRUE(cat.RegisterTable(MakeTable(1)).IsAlreadyExists());
  ASSERT_TRUE(cat.DropTable("bp").ok());
  EXPECT_TRUE(cat.GetTable("bp").status().IsNotFound());
  EXPECT_TRUE(cat.DropTable("bp").IsNotFound());
}

TEST(CatalogTest, UdfMetadataRoundTrip) {
  Catalog cat;
  EXPECT_TRUE(cat.GetUdfMetadata("f").status().IsNotFound());
  cat.PutUdfMetadata("f", "design blob");
  auto blob = cat.GetUdfMetadata("f");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "design blob");
  cat.PutUdfMetadata("f", "v2");
  EXPECT_EQ(*cat.GetUdfMetadata("f"), "v2");
  EXPECT_EQ(cat.UdfNames(), std::vector<std::string>{"f"});
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog cat;
  auto t1 = std::make_unique<Table>("zeta", Schema::Dense(1), SmallLayout());
  auto t2 = std::make_unique<Table>("alpha", Schema::Dense(1), SmallLayout());
  ASSERT_TRUE(cat.RegisterTable(std::move(t1)).ok());
  ASSERT_TRUE(cat.RegisterTable(std::move(t2)).ok());
  EXPECT_EQ(cat.TableNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

// ---------------------------------------------------------------------------
// Residency introspection (resident_frames / last_table / partial prewarm)
// ---------------------------------------------------------------------------

TEST(ResidencyIntrospectionTest, ResidentFramesTrackFetchesAndClear) {
  auto t = MakeTable(8);
  BufferPool pool(4 * 8 * 1024, 8 * 1024, DiskModel{});  // 4 frames
  EXPECT_EQ(pool.resident_frames(), 0u);
  EXPECT_EQ(pool.last_table(), "");
  for (uint64_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  EXPECT_EQ(pool.resident_frames(), 3u);
  EXPECT_EQ(pool.last_table(), "bp");
  // Overflowing the pool evicts but never exceeds capacity.
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  EXPECT_EQ(pool.resident_frames(), 4u);
  pool.ResetStats();  // stats reset must not touch residency state
  EXPECT_EQ(pool.resident_frames(), 4u);
  pool.Clear();
  EXPECT_EQ(pool.resident_frames(), 0u);
  EXPECT_EQ(pool.last_table(), "");
}

TEST(ResidencyIntrospectionTest, PartialPrewarmLeavesFractionResident) {
  auto t = MakeTable(8);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t, 0.5);
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(*t), 0.5);
  EXPECT_EQ(pool.resident_frames(), 4u);
  // A rescan pays I/O only for the un-warmed half.
  BufferPool cold(16 * 8 * 1024, 8 * 1024, DiskModel{});
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
    ASSERT_TRUE(cold.FetchPage(*t, p).ok());
  }
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_GT(pool.stats().io_time.nanos(), 0.0);
  EXPECT_LT(pool.stats().io_time.nanos(), cold.stats().io_time.nanos());
}

TEST(ResidencyIntrospectionTest, GroupRollupSumsResidentFrames) {
  auto t = MakeTable(6);
  BufferPoolGroup group(4 * 8 * 1024, 8 * 1024, DiskModel{});
  ASSERT_TRUE(group.pool(0)->FetchPage(*t, 0).ok());
  ASSERT_TRUE(group.pool(2)->FetchPage(*t, 0).ok());
  ASSERT_TRUE(group.pool(2)->FetchPage(*t, 1).ok());
  EXPECT_EQ(group.TotalResidentFrames(), 3u);
  EXPECT_EQ(group.pool(0)->resident_frames() +
                group.pool(1)->resident_frames() +
                group.pool(2)->resident_frames(),
            group.TotalResidentFrames());
}

/// Property-style coverage: any seeded interleaving of fetches, prewarms,
/// and clears across a pool group must keep the residency accounting
/// consistent — per-pool resident frames sum to the group rollup, never
/// exceed pool capacity, and match a recount of the frame table via
/// ResidentFraction.
TEST(ResidencyIntrospectionTest, PropertyResidencyAccountingInvariants) {
  // Pages are keyed by table *name* (catalog semantics), so the two tables
  // need distinct names to occupy distinct frames.
  auto small = MakeTable(3, "bp_small");
  auto big = MakeTable(10, "bp_big");
  const std::vector<const Table*> tables = {small.get(), big.get()};
  // Logical tables mixed into the same pools via data-free TouchPage: the
  // accounting invariants must hold across physical and logical frames.
  const std::vector<std::pair<std::string, uint64_t>> logical = {
      {"lg_half", 2}, {"lg_over", 7}};
  BufferPoolGroup group(4 * 8 * 1024, 8 * 1024, DiskModel{});  // 4 frames/pool
  constexpr size_t kSlots = 3;
  dana::Rng rng(20260726);
  for (int step = 0; step < 2000; ++step) {
    const size_t slot = rng.UniformInt(kSlots);
    const Table& table = *tables[rng.UniformInt(tables.size())];
    const uint64_t action = rng.UniformInt(100);
    if (action < 78) {
      ASSERT_TRUE(
          group.pool(slot)->FetchPage(table, rng.UniformInt(table.num_pages()))
              .ok());
    } else if (action < 88) {
      const auto& [name, pages] = logical[rng.UniformInt(logical.size())];
      if (rng.UniformInt(2) == 0) {
        group.pool(slot)->ScanTable(name, pages);
      } else {
        group.pool(slot)->TouchPage(name, rng.UniformInt(pages));
      }
    } else if (action < 94) {
      group.pool(slot)->Prewarm(table, rng.Uniform());
    } else if (action < 97) {
      group.pool(slot)->Clear();
    } else {
      group.pool(slot)->ResetStats();
    }

    uint64_t sum = 0;
    BufferPoolStats rollup = group.Rollup();
    uint64_t hits = 0, misses = 0;
    for (size_t s = 0; s < group.size(); ++s) {
      const BufferPool* pool = group.pool(s);
      EXPECT_LE(pool->resident_frames(), pool->num_frames());
      sum += pool->resident_frames();
      hits += pool->stats().hits;
      misses += pool->stats().misses;
      // The incremental count agrees with a from-scratch recount of which
      // pages each table has resident, and the per-table frame counts
      // partition the pool total exactly.
      double fraction_pages = 0;
      uint64_t per_table_sum = 0;
      for (const Table* t : tables) {
        fraction_pages += pool->ResidentFraction(*t) *
                          static_cast<double>(t->num_pages());
        EXPECT_NEAR(pool->ResidentFraction(*t) *
                        static_cast<double>(t->num_pages()),
                    static_cast<double>(pool->resident_frames(t->name())),
                    1e-6);
        per_table_sum += pool->resident_frames(t->name());
      }
      for (const auto& [name, pages] : logical) {
        const uint64_t frames = pool->resident_frames(name);
        EXPECT_LE(frames, pages);
        EXPECT_NEAR(pool->ResidentShare(name, pages),
                    static_cast<double>(frames) / static_cast<double>(pages),
                    1e-12);
        fraction_pages += static_cast<double>(frames);
        per_table_sum += frames;
      }
      EXPECT_NEAR(fraction_pages, static_cast<double>(pool->resident_frames()),
                  1e-6);
      EXPECT_EQ(per_table_sum, pool->resident_frames());
    }
    ASSERT_EQ(sum, group.TotalResidentFrames());
    ASSERT_EQ(hits, rollup.hits);
    ASSERT_EQ(misses, rollup.misses);
  }
}

// ---------------------------------------------------------------------------
// Shared-pool mode (data-free residency probes; physical ground truth)
// ---------------------------------------------------------------------------

TEST(SharedPoolTest, TouchPageHitsMissesAndEvictsLikeFetch) {
  BufferPool pool = BufferPool::SizedInFrames(4, 8 * 1024, DiskModel{});
  EXPECT_EQ(pool.num_frames(), 4u);
  EXPECT_FALSE(pool.TouchPage("t", 0));  // miss installs
  EXPECT_TRUE(pool.TouchPage("t", 0));   // repeat hits
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  // Data-free probes never charge I/O time: the shared pool is occupancy
  // ground truth, not a data server.
  EXPECT_EQ(pool.stats().io_time.nanos(), 0.0);
  EXPECT_EQ(pool.last_table(), "t");
  // Overflow evicts under install pressure, capacity never exceeded.
  for (uint64_t p = 0; p < 8; ++p) pool.TouchPage("t", p);
  EXPECT_EQ(pool.resident_frames(), 4u);
  EXPECT_GE(pool.stats().evictions, 4u);
}

TEST(SharedPoolTest, ScanLeavesTrailingWindowOfOversizedTable) {
  BufferPool pool = BufferPool::SizedInFrames(4, 8 * 1024, DiskModel{});
  pool.ScanTable("big", 8);
  // A sequential scan of a 2x-oversized table under clock replacement ends
  // with the trailing pool-sized window resident.
  EXPECT_EQ(pool.resident_frames("big"), 4u);
  EXPECT_DOUBLE_EQ(pool.ResidentShare("big", 8), 0.5);
  // A pool-fitting table ends fully resident, and a repeat sweep is an
  // all-hit no-op for it.
  pool.Clear();
  pool.ScanTable("fits", 3);
  EXPECT_DOUBLE_EQ(pool.ResidentShare("fits", 3), 1.0);
  const uint64_t evictions = pool.stats().evictions;
  pool.ScanTable("fits", 3);
  EXPECT_DOUBLE_EQ(pool.ResidentShare("fits", 3), 1.0);
  EXPECT_EQ(pool.stats().evictions, evictions);
}

TEST(SharedPoolTest, CrossTableEvictionFollowsClockHandOrder) {
  // a and b fill the pool; c's installs must come out of whatever the
  // clock hand reaches first — the physical behaviour the logical ledger
  // (proportional decay) only approximates.
  BufferPool pool = BufferPool::SizedInFrames(10, 8 * 1024, DiskModel{});
  pool.ScanTable("a", 3);
  pool.ScanTable("b", 3);
  EXPECT_EQ(pool.resident_frames("a"), 3u);
  EXPECT_EQ(pool.resident_frames("b"), 3u);
  pool.ScanTable("c", 5);
  // 4 free frames absorb, 1 install evicts: the hand (parked past b's
  // frames) wraps and takes a's first frame — not 0.5 frames from each.
  EXPECT_EQ(pool.resident_frames("c"), 5u);
  EXPECT_EQ(pool.resident_frames("a") + pool.resident_frames("b"), 5u);
  EXPECT_EQ(pool.resident_frames(), 10u);
  EXPECT_NE(pool.resident_frames("a"), pool.resident_frames("b"));
}

TEST(SharedPoolTest, FetchMaterializesDataLessFrameOnHit) {
  auto t = MakeTable(2);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  // A residency probe installed the page without an image; a later data
  // fetch must serve the real bytes, as a hit.
  EXPECT_FALSE(pool.TouchPage("bp", 1));
  auto frame = pool.FetchPage(*t, 1);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(0, std::memcmp(*frame, t->PageData(1), 8 * 1024));
}

TEST(SharedPoolTest, TablesAliasByName) {
  // Catalog semantics: pages are identified by (table name, page number),
  // so two Table objects with one name share cached pages — what lets a
  // slot's tables share one pool across workload instances.
  auto t1 = MakeTable(2, "same");
  auto t2 = MakeTable(2, "same");
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  ASSERT_TRUE(pool.FetchPage(*t1, 0).ok());
  ASSERT_TRUE(pool.FetchPage(*t2, 0).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.resident_frames("same"), 1u);
}

TEST(PrewarmEdgeCaseTest, ZeroAndOverflowingFractionsClamp) {
  auto t = MakeTable(8);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t, 0.0);
  EXPECT_EQ(pool.resident_frames(), 0u);
  pool.Prewarm(*t, -3.0);  // clamped to 0
  EXPECT_EQ(pool.resident_frames(), 0u);
  pool.Prewarm(*t, 7.5);  // clamped to 1
  EXPECT_DOUBLE_EQ(pool.ResidentFraction(*t), 1.0);
  EXPECT_EQ(pool.resident_frames("bp"), 8u);
}

TEST(PrewarmEdgeCaseTest, RepeatedPrewarmNeverDoubleCounts) {
  auto t = MakeTable(6);
  BufferPool pool(16 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t, 0.5);
  EXPECT_EQ(pool.resident_frames("bp"), 3u);
  pool.Prewarm(*t, 0.5);  // already resident: no installs, no growth
  EXPECT_EQ(pool.resident_frames("bp"), 3u);
  pool.Prewarm(*t, 1.0);  // tops up the missing half only
  EXPECT_EQ(pool.resident_frames("bp"), 6u);
  EXPECT_EQ(pool.resident_frames(), 6u);
}

TEST(PrewarmEdgeCaseTest, PrewarmIntoPressureEvictsOtherTables) {
  // Prewarm's installs obey the same eviction discipline as a scan: a
  // co-located table's frames go under install pressure, and the per-table
  // accounting tracks the handoff exactly.
  auto t = MakeTable(3, "warmed");
  BufferPool pool = BufferPool::SizedInFrames(4, 8 * 1024, DiskModel{});
  pool.ScanTable("other", 3);
  EXPECT_EQ(pool.resident_frames("other"), 3u);
  pool.Prewarm(*t);  // 3 installs, 1 free frame: 2 of "other"'s evicted
  EXPECT_EQ(pool.resident_frames("warmed"), 3u);
  EXPECT_EQ(pool.resident_frames("other"), 1u);
  EXPECT_EQ(pool.resident_frames(), 4u);
}

// ---------------------------------------------------------------------------
// CacheResidencyModel (logical per-slot cross-table ledger)
// ---------------------------------------------------------------------------

TEST(CacheResidencyModelTest, FreshSlotsAreCold) {
  CacheResidencyModel model;
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "t"), 0.0);
  EXPECT_TRUE(model.ResidentTables(0).empty());
  EXPECT_DOUBLE_EQ(model.PoolShareTotal(0), 0.0);
}

TEST(CacheResidencyModelTest, RunLeavesTableAsResidentAsPoolAllows) {
  CacheResidencyModel model;
  model.OnRun(0, "small", /*size_ratio=*/0.25);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "small"), 1.0);
  model.OnRun(0, "huge", /*size_ratio=*/4.0);
  // A 4x-oversized table keeps only its trailing pool-sized window.
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "huge"), 0.25);
  // Slots are independent.
  EXPECT_DOUBLE_EQ(model.ResidentFraction(1, "small"), 0.0);
}

TEST(CacheResidencyModelTest, OtherTablesEvictOnlyUnderInstallPressure) {
  CacheResidencyModel model;
  model.OnRun(0, "a", 0.5);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "a"), 1.0);
  // b's installs fit in the free half of the pool: a is untouched.
  model.OnRun(0, "b", 0.5);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "a"), 1.0);
  EXPECT_DOUBLE_EQ(model.PoolShareTotal(0), 1.0);
  // A fully-warm repeat of b installs nothing and must not decay a.
  model.OnRun(0, "b", 0.5);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "a"), 1.0);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "b"), 1.0);
  // d needs half the (now full) pool: a and b each give up half.
  model.OnRun(0, "d", 0.5);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "a"), 0.5);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "b"), 0.5);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "d"), 1.0);
  // A pool-sized scan sweeps everything else out.
  model.OnRun(0, "c", 1.0);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "a"), 0.0);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "b"), 0.0);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "d"), 0.0);
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "c"), 1.0);
  model.Reset();
  EXPECT_DOUBLE_EQ(model.ResidentFraction(0, "c"), 0.0);
}

/// Property: after any interleaving of runs, every slot's pool shares sum
/// to at most one pool and every residency stays within [0, 1].
TEST(CacheResidencyModelTest, PropertyPoolShareNeverOverflows) {
  const std::vector<std::pair<std::string, double>> tables = {
      {"tiny", 0.02}, {"half", 0.5}, {"fit", 1.0}, {"big", 2.5}, {"huge", 6.0}};
  CacheResidencyModel model;
  dana::Rng rng(0xC0FFEE);
  for (int step = 0; step < 5000; ++step) {
    const auto& [id, ratio] = tables[rng.UniformInt(tables.size())];
    const uint32_t slot = static_cast<uint32_t>(rng.UniformInt(4));
    model.OnRun(slot, id, ratio);
    for (uint32_t s = 0; s < 4; ++s) {
      ASSERT_LE(model.PoolShareTotal(s), 1.0 + 1e-9);
      for (const auto& [tid, tratio] : tables) {
        const double f = model.ResidentFraction(s, tid);
        ASSERT_GE(f, 0.0);
        ASSERT_LE(f, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace dana::storage
