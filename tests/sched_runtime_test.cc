// Threaded-runtime parity suite (ctest label: sched_runtime).
//
// SchedulerOptions::runtime_mode = kThreaded executes every dispatch on a
// real per-slot worker thread while the discrete-event engine remains the
// *oracle*: scheduling decisions serialize in oracle order, time stays
// virtual, and the resulting report must match the simulated run not just
// in aggregate but field for field — per-query dispatch order, slot
// placement, start/completion/service/compile nanos, batch sizes, warm
// fractions, preemption counts, and a byte-identical sched.* metric
// snapshot. Wall-clock time is the only thing allowed to differ, and no
// report field measures it. The suite runs identical seeds through both
// modes across the full matrix (three policies x run-to-completion /
// preemptive x 1/4/8 slots), through the closed-loop paths (including the
// newly composed closed-loop preemption), and against the real
// DanaQueryExecutor whose fill-once caches the threaded mode leans on.
//
// The second half stress-tests the concurrency primitives the threaded
// path introduced: the CompileCache / FillOnceMap fill-once/wait contract
// (K threads requesting one cold key -> exactly one build) and the atomic
// MetricRegistry. The CI tsan job runs this binary under ThreadSanitizer,
// and the determinism step runs the label twice and diffs the logs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fill_once.h"
#include "compiler/compiler.h"
#include "obs/metrics.h"
#include "sched/compile_cache.h"
#include "sched/executor.h"
#include "sched/scheduler.h"
#include "sched/workload_driver.h"

namespace dana::sched {
namespace {

/// Deterministic synthetic epoch-sliced costs (the sched_perf shape): one
/// epoch of `id` occupies shared_s + size * per_query_s seconds over
/// `epochs` epochs. Every map is written during single-threaded setup and
/// only read afterwards, so concurrent slot workers share it safely; all
/// costs are strictly positive, the contract the threaded overlap path
/// assumes (RuntimeMode::kThreaded).
class RuntimeExecutor : public QueryExecutor {
 public:
  void Set(const std::string& id, uint32_t epochs, double epoch_shared_s,
           double epoch_per_query_s, double estimate_s,
           double compile_s = 0.0) {
    specs_[id] = {epochs, epoch_shared_s, epoch_per_query_s, compile_s};
    estimates_[id] = dana::SimTime::Seconds(estimate_s);
  }

  void SetWarm(const std::string& id, uint32_t slot, double fraction) {
    warmth_[{id, slot}] = fraction;
    modeled_.insert(id);
  }

  double WarmFraction(const std::string& id, uint32_t slot) override {
    auto it = warmth_.find({id, slot});
    return it == warmth_.end() ? 0.0 : it->second;
  }

  Result<std::unique_ptr<BatchExecution>> Begin(
      const QueryBatch& batch) override {
    auto it = specs_.find(batch.workload_id);
    if (it == specs_.end()) return Status::NotFound(batch.workload_id);
    return std::unique_ptr<BatchExecution>(new Execution(
        batch, it->second, WarmFraction(batch.workload_id, batch.slot),
        modeled_.count(batch.workload_id) > 0));
  }

  Result<dana::SimTime> Estimate(const std::string& id) override {
    auto it = estimates_.find(id);
    if (it == estimates_.end()) return Status::NotFound(id);
    return it->second;
  }

 private:
  struct Spec {
    uint32_t epochs;
    double shared_s;
    double per_query_s;
    double compile_s;
  };

  class Execution : public BatchExecution {
   public:
    Execution(QueryBatch batch, Spec spec, double warm, bool modeled)
        : BatchExecution(std::move(batch)),
          spec_(spec),
          warm_(warm),
          modeled_(modeled) {}

    uint32_t total_epochs() const override { return spec_.epochs; }
    uint32_t epochs_run() const override { return done_; }
    dana::SimTime compile_cost() const override {
      return dana::SimTime::Seconds(spec_.compile_s);
    }
    double warm_fraction() const override { return warm_; }
    bool residency_modeled() const override { return modeled_; }

    dana::SimTime EpochCost() const {
      return dana::SimTime::Seconds(
          spec_.shared_s + spec_.per_query_s * batch_.size());
    }

    Result<SliceCost> NextSlice(uint32_t max_epochs) override {
      const uint32_t remaining = spec_.epochs - done_;
      if (remaining == 0) {
        return Status::FailedPrecondition("already finished");
      }
      const uint32_t n =
          max_epochs == 0 ? remaining : std::min(max_epochs, remaining);
      SliceCost s;
      s.epochs = n;
      s.service = EpochCost() * static_cast<double>(n);
      s.shared = dana::SimTime::Seconds(spec_.shared_s) *
                 static_cast<double>(n);
      s.per_query = dana::SimTime::Seconds(spec_.per_query_s) *
                    static_cast<double>(n);
      done_ += n;
      s.finished = done_ == spec_.epochs;
      return s;
    }

    Result<dana::SimTime> PeekService(uint32_t epochs) const override {
      const uint32_t remaining = spec_.epochs - done_;
      const uint32_t n =
          epochs == 0 ? remaining : std::min(epochs, remaining);
      return EpochCost() * static_cast<double>(n);
    }

    Status Checkpoint() override { return Status::OK(); }
    Status Resume(uint32_t slot) override {
      batch_.slot = slot;
      return Status::OK();
    }

   private:
    Spec spec_;
    double warm_;
    bool modeled_;
    uint32_t done_ = 0;
  };

  std::map<std::string, Spec> specs_;
  std::map<std::string, dana::SimTime> estimates_;
  std::map<std::pair<std::string, uint32_t>, double> warmth_;
  std::set<std::string> modeled_;
};

/// The sched_perf catalog: two short interactive-ish algorithms, two mid,
/// two long trainings, with pre-pinned warmth so affinity placement has
/// something to read from the first dispatch.
RuntimeExecutor MakeExecutor() {
  RuntimeExecutor e;
  e.Set("lookup", 1, 1.5, 0.5, 2.0, 0.2);
  e.Set("score", 2, 1.0, 0.5, 3.0, 0.2);
  e.Set("logit", 4, 1.5, 0.5, 7.0, 0.5);
  e.Set("svm", 6, 1.5, 1.0, 11.0, 0.5);
  e.Set("train", 12, 2.0, 1.0, 26.0, 1.0);
  e.Set("lrmf", 20, 2.5, 1.0, 55.0, 1.0);
  e.SetWarm("logit", 1, 0.8);
  e.SetWarm("train", 0, 0.6);
  return e;
}

std::vector<QueryRequest> Stream(uint64_t seed, uint32_t queries,
                                 double rate_qps,
                                 uint32_t interactive_ranks = 0) {
  DriverOptions opts;
  opts.seed = seed;
  opts.num_queries = queries;
  opts.arrival_rate_qps = rate_qps;
  opts.popularity = Popularity::kZipfian;
  opts.zipf_exponent = 1.1;
  opts.interactive_ranks = interactive_ranks;
  WorkloadDriver driver({"lookup", "score", "logit", "svm", "train", "lrmf"},
                        opts);
  auto stream = driver.Generate();
  EXPECT_TRUE(stream.ok());
  return *stream;
}

struct RunOutcome {
  ScheduleReport report;
  std::string metrics_json;
};

RunOutcome RunWith(SchedulerOptions opts, RuntimeMode mode,
                   const std::vector<QueryRequest>& stream) {
  RuntimeExecutor exec = MakeExecutor();
  obs::MetricRegistry registry;
  opts.metrics = &registry;
  opts.runtime_mode = mode;
  Scheduler scheduler(opts, &exec);
  auto report = scheduler.Run(stream);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return {};
  return {std::move(*report), registry.ToJson().Dump()};
}

RunOutcome RunClosedLoopWith(SchedulerOptions opts, RuntimeMode mode,
                             const std::vector<std::vector<std::string>>&
                                 sessions,
                             dana::SimTime think,
                             const std::vector<QueryClass>& classes = {}) {
  RuntimeExecutor exec = MakeExecutor();
  obs::MetricRegistry registry;
  opts.metrics = &registry;
  opts.runtime_mode = mode;
  Scheduler scheduler(opts, &exec);
  auto report = scheduler.RunClosedLoop(sessions, think, classes);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return {};
  return {std::move(*report), registry.ToJson().Dump()};
}

/// Field-for-field report agreement (no metrics): what two runs must share
/// when they make identical scheduling decisions, even across engines that
/// emit different live telemetry.
void ExpectReportParity(const RunOutcome& oracle, const RunOutcome& threaded,
                        const std::string& what) {
  ASSERT_EQ(oracle.report.queries.size(), threaded.report.queries.size())
      << what;
  for (size_t i = 0; i < oracle.report.queries.size(); ++i) {
    const QueryStat& a = oracle.report.queries[i];
    const QueryStat& b = threaded.report.queries[i];
    EXPECT_EQ(a.id, b.id) << what << " position " << i;
    EXPECT_EQ(a.slot, b.slot) << what << " query " << a.id;
    EXPECT_EQ(a.start.nanos(), b.start.nanos()) << what << " query " << a.id;
    EXPECT_EQ(a.completion.nanos(), b.completion.nanos())
        << what << " query " << a.id;
    EXPECT_EQ(a.service.nanos(), b.service.nanos())
        << what << " query " << a.id;
    EXPECT_EQ(a.compile.nanos(), b.compile.nanos())
        << what << " query " << a.id;
    EXPECT_EQ(a.batch_size, b.batch_size) << what << " query " << a.id;
    EXPECT_EQ(a.preemptions, b.preemptions) << what << " query " << a.id;
    EXPECT_DOUBLE_EQ(a.warm_fraction, b.warm_fraction)
        << what << " query " << a.id;
  }
  EXPECT_EQ(oracle.report.makespan.nanos(), threaded.report.makespan.nanos())
      << what;
  EXPECT_EQ(oracle.report.compile_hits, threaded.report.compile_hits) << what;
  EXPECT_EQ(oracle.report.compile_misses, threaded.report.compile_misses)
      << what;
  EXPECT_EQ(oracle.report.batches, threaded.report.batches) << what;
  EXPECT_EQ(oracle.report.preemptions, threaded.report.preemptions) << what;
}

/// The oracle-parity contract: everything the report states — not just
/// aggregates — must match the simulated run, and so must the full metric
/// snapshot (same engine, so same telemetry set). Wall-clock time is the
/// only permitted difference, and no compared field measures it.
void ExpectOracleParity(const RunOutcome& oracle, const RunOutcome& threaded,
                        const std::string& what) {
  ExpectReportParity(oracle, threaded, what);
  // One string carries every counter, gauge, and histogram percentile.
  EXPECT_EQ(oracle.metrics_json, threaded.metrics_json) << what;
}

const uint32_t kWidths[] = {1, 4, 8};
const Policy kPolicies[] = {Policy::kFcfs, Policy::kSjf, Policy::kRoundRobin};

// ---------------------------------------------------------------------------
// Run-to-completion parity: the same-tick overlap path
// ---------------------------------------------------------------------------

TEST(ThreadedParityTest, RunToCompletionAllPoliciesAndWidths) {
  const auto stream = Stream(0xC0FFEE, 48, 0.3);
  for (uint32_t slots : kWidths) {
    for (Policy policy : kPolicies) {
      SchedulerOptions opts{.slots = slots, .policy = policy, .max_batch = 3};
      ExpectOracleParity(RunWith(opts, RuntimeMode::kSimulated, stream),
                         RunWith(opts, RuntimeMode::kThreaded, stream),
                         std::string("rtc/") + PolicyName(policy) + "/x" +
                             std::to_string(slots));
    }
  }
}

TEST(ThreadedParityTest, RunToCompletionAffinityAndAging) {
  // Affinity reads slot warmth at decision time while other slots may be
  // pricing in flight; the busy-mask must keep those reads on free slots
  // only, exactly as the simulated oracle sees them.
  const auto stream = Stream(0xBEEF, 40, 0.35);
  for (uint32_t slots : kWidths) {
    SchedulerOptions opts{.slots = slots,
                          .policy = Policy::kSjf,
                          .max_batch = 2,
                          .sjf_aging_weight = 0.2,
                          .affinity_weight = 0.5};
    ExpectOracleParity(RunWith(opts, RuntimeMode::kSimulated, stream),
                       RunWith(opts, RuntimeMode::kThreaded, stream),
                       "rtc/sjf-aged-affinity/x" + std::to_string(slots));
  }
}

// ---------------------------------------------------------------------------
// Preemptive parity: slot workers behind the event-driven engine
// ---------------------------------------------------------------------------

TEST(ThreadedParityTest, PreemptiveAllPoliciesAndWidths) {
  const auto stream = Stream(0x5EED, 40, 0.3, /*interactive_ranks=*/2);
  for (uint32_t slots : kWidths) {
    for (Policy policy : kPolicies) {
      SchedulerOptions opts{.slots = slots,
                            .policy = policy,
                            .max_batch = 3,
                            .affinity_weight = 0.5,
                            .preemption_quantum_epochs = 3,
                            .context_switch_cost = dana::SimTime::Millis(250)};
      ExpectOracleParity(RunWith(opts, RuntimeMode::kSimulated, stream),
                         RunWith(opts, RuntimeMode::kThreaded, stream),
                         std::string("preempt/") + PolicyName(policy) + "/x" +
                             std::to_string(slots));
    }
  }
}

TEST(ThreadedParityTest, PreemptiveBatchWindow) {
  // Batch-formation holds are the subtlest event-engine client; the
  // threaded proxy must not perturb hold expiry or seizure order.
  const auto stream = Stream(0xF00D, 36, 0.35, /*interactive_ranks=*/2);
  SchedulerOptions opts{.slots = 2,
                        .policy = Policy::kFcfs,
                        .max_batch = 4,
                        .affinity_weight = 0.5,
                        .preemption_quantum_epochs = 4,
                        .context_switch_cost = dana::SimTime::Millis(100),
                        .batch_window = dana::SimTime::Seconds(3)};
  ExpectOracleParity(RunWith(opts, RuntimeMode::kSimulated, stream),
                     RunWith(opts, RuntimeMode::kThreaded, stream),
                     "preempt/window");
}

// ---------------------------------------------------------------------------
// Closed-loop: threaded parity and the newly composed preemption
// ---------------------------------------------------------------------------

const std::vector<std::vector<std::string>> kSessions = {
    {"lookup", "score", "lookup"},
    {"train", "lookup"},
    {"logit", "svm"},
    {"score", "score", "score"},
    {"lrmf"},
};

TEST(ThreadedParityTest, ClosedLoopRunToCompletion) {
  for (Policy policy : kPolicies) {
    for (uint32_t slots : {1u, 4u}) {
      SchedulerOptions opts{.slots = slots, .policy = policy, .max_batch = 2};
      ExpectOracleParity(
          RunClosedLoopWith(opts, RuntimeMode::kSimulated, kSessions,
                            dana::SimTime::Seconds(0.5)),
          RunClosedLoopWith(opts, RuntimeMode::kThreaded, kSessions,
                            dana::SimTime::Seconds(0.5)),
          std::string("closed/") + PolicyName(policy) + "/x" +
              std::to_string(slots));
    }
  }
}

TEST(ThreadedParityTest, ClosedLoopPreemptive) {
  const std::vector<QueryClass> classes = {
      QueryClass::kInteractive, QueryClass::kBatch, QueryClass::kBatch,
      QueryClass::kInteractive, QueryClass::kBatch};
  for (Policy policy : kPolicies) {
    for (uint32_t slots : {1u, 4u}) {
      SchedulerOptions opts{.slots = slots,
                            .policy = policy,
                            .max_batch = 2,
                            .preemption_quantum_epochs = 2,
                            .context_switch_cost = dana::SimTime::Millis(200)};
      ExpectOracleParity(
          RunClosedLoopWith(opts, RuntimeMode::kSimulated, kSessions,
                            dana::SimTime::Seconds(0.5), classes),
          RunClosedLoopWith(opts, RuntimeMode::kThreaded, kSessions,
                            dana::SimTime::Seconds(0.5), classes),
          std::string("closed-preempt/") + PolicyName(policy) + "/x" +
              std::to_string(slots));
    }
  }
}

TEST(ClosedLoopPreemptionTest, QuantumWithoutInteractiveMatchesRtcPath) {
  // With every session batch-class, an armed quantum never fires: the
  // event-driven closed loop must reproduce the run-to-completion closed
  // loop field for field (same interning, estimate-resolution, and id
  // orders by construction).
  for (Policy policy : kPolicies) {
    SchedulerOptions rtc{.slots = 2, .policy = policy, .max_batch = 2};
    SchedulerOptions preemptive = rtc;
    preemptive.preemption_quantum_epochs = 2;
    preemptive.context_switch_cost = dana::SimTime::Millis(200);
    auto a = RunClosedLoopWith(rtc, RuntimeMode::kSimulated, kSessions,
                               dana::SimTime::Seconds(0.5));
    auto b = RunClosedLoopWith(preemptive, RuntimeMode::kSimulated, kSessions,
                               dana::SimTime::Seconds(0.5));
    EXPECT_EQ(b.report.preemptions, 0u);
    // Report-level only: the event engine legitimately emits its own live
    // slice telemetry (sched.slices) the run-to-completion path lacks.
    ExpectReportParity(a, b, std::string("closed-quantum-noop/") +
                                 PolicyName(policy));
  }
}

TEST(ClosedLoopPreemptionTest, InteractiveSessionPreemptsBatchTraining) {
  // One slot, a long batch training session against an interactive
  // lookup session: the composed closed-loop preemption must checkpoint
  // the training at epoch boundaries so the interactive queries get in —
  // the scenario RunClosedLoop used to reject outright.
  const std::vector<std::vector<std::string>> sessions = {
      {"train", "train"},
      {"lookup", "lookup", "lookup"},
  };
  const std::vector<QueryClass> classes = {QueryClass::kBatch,
                                           QueryClass::kInteractive};
  RuntimeExecutor exec = MakeExecutor();
  Scheduler scheduler({.slots = 1,
                       .policy = Policy::kFcfs,
                       .preemption_quantum_epochs = 2,
                       .context_switch_cost = dana::SimTime::Millis(100)},
                      &exec);
  auto report =
      scheduler.RunClosedLoop(sessions, dana::SimTime::Seconds(1), classes);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->queries.size(), 5u);
  EXPECT_EQ(report->ClassQueries(QueryClass::kInteractive), 3u);
  EXPECT_GE(report->preemptions, 1u);
  // Preempting works: no interactive query waits out a full training run
  // (12 epochs x 3s); it rides in at the next armed epoch boundary.
  for (const QueryStat& q : report->queries) {
    if (q.query_class == QueryClass::kInteractive) {
      EXPECT_LT(q.Wait().seconds(), 12.0 * 3.0) << "query " << q.id;
    }
  }
}

TEST(ClosedLoopPreemptionTest, BatchWindowIsStillRejected) {
  // The batch-formation window remains the one open-stream-only knob; the
  // rejection must stay actionable (InvalidArgument naming the option),
  // while the quantum — rejected before this fix — now composes.
  RuntimeExecutor exec = MakeExecutor();
  Scheduler windowed({.slots = 1,
                      .policy = Policy::kFcfs,
                      .max_batch = 2,
                      .batch_window = dana::SimTime::Seconds(1)},
                     &exec);
  const Status err =
      windowed.RunClosedLoop({{"lookup"}}, dana::SimTime::Zero()).status();
  EXPECT_TRUE(err.IsInvalidArgument());
  EXPECT_NE(err.ToString().find("batch_window"), std::string::npos);

  Scheduler quantum({.slots = 1,
                     .policy = Policy::kFcfs,
                     .preemption_quantum_epochs = 1},
                    &exec);
  EXPECT_TRUE(
      quantum.RunClosedLoop({{"lookup"}}, dana::SimTime::Zero()).ok());
}

// ---------------------------------------------------------------------------
// Real executor: fill-once caches under the threaded runtime
// ---------------------------------------------------------------------------

TEST(ThreadedParityTest, DanaExecutorRunToCompletion) {
  // The real executor's cold paths (compile cache, endpoint measurement)
  // are fill-once; same-tick overlapped dispatches must price exactly what
  // the simulated oracle priced, and physical per-slot pools must end in
  // the same state regardless of which thread swept them.
  DriverOptions dopts;
  dopts.seed = 0xDA7A;
  dopts.num_queries = 12;
  dopts.arrival_rate_qps = 0.03;
  dopts.popularity = Popularity::kZipfian;
  dopts.zipf_exponent = 1.2;
  WorkloadDriver driver({"wlan", "sn_lrmf", "sn_linear"}, dopts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());

  auto run = [&](RuntimeMode mode) {
    DanaQueryExecutor executor;
    obs::MetricRegistry registry;
    Scheduler scheduler({.slots = 2,
                         .policy = Policy::kSjf,
                         .max_batch = 2,
                         .affinity_weight = 0.5,
                         .metrics = &registry,
                         .runtime_mode = mode},
                        &executor);
    auto report = scheduler.Run(*stream);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return RunOutcome{std::move(*report), registry.ToJson().Dump()};
  };
  ExpectOracleParity(run(RuntimeMode::kSimulated),
                     run(RuntimeMode::kThreaded), "dana/rtc");
}

TEST(ThreadedParityTest, DanaExecutorPreemptive) {
  DriverOptions dopts;
  dopts.seed = 0xDA7A;
  dopts.num_queries = 12;
  dopts.arrival_rate_qps = 0.03;
  dopts.popularity = Popularity::kZipfian;
  dopts.zipf_exponent = 1.2;
  dopts.interactive_ranks = 1;
  WorkloadDriver driver({"wlan", "sn_lrmf", "sn_linear"}, dopts);
  auto stream = driver.Generate();
  ASSERT_TRUE(stream.ok());

  auto run = [&](RuntimeMode mode) {
    DanaQueryExecutor executor;
    obs::MetricRegistry registry;
    Scheduler scheduler({.slots = 2,
                         .policy = Policy::kSjf,
                         .max_batch = 2,
                         .affinity_weight = 0.5,
                         .preemption_quantum_epochs = 2,
                         .context_switch_cost = dana::SimTime::Millis(50),
                         .metrics = &registry,
                         .runtime_mode = mode},
                        &executor);
    auto report = scheduler.Run(*stream);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return RunOutcome{std::move(*report), registry.ToJson().Dump()};
  };
  ExpectOracleParity(run(RuntimeMode::kSimulated),
                     run(RuntimeMode::kThreaded), "dana/preempt");
}

// ---------------------------------------------------------------------------
// Compile-cache stampede: fill-once/wait under real threads
// ---------------------------------------------------------------------------

TEST(CompileCacheStampedeTest, ColdKeyCompilesExactlyOnce) {
  constexpr int kThreads = 8;
  CompileCache cache;
  std::atomic<int> builds{0};
  std::atomic<bool> build_started{false};
  auto builder = [&]() -> dana::Result<compiler::CompiledUdf> {
    builds.fetch_add(1, std::memory_order_relaxed);
    build_started.store(true, std::memory_order_release);
    // Hold the fill open long enough that every waiter piles onto the
    // in-flight entry instead of hitting a ready one.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    compiler::CompiledUdf udf;
    udf.udf_name = "stampede";
    return udf;
  };

  std::vector<const compiler::CompiledUdf*> got(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    auto r = cache.GetOrCompile("design", builder);
    if (r.ok()) got[0] = *r;
  });
  // Admit the waiters only once the single build is provably in flight.
  while (!build_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  for (int i = 1; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto r = cache.GetOrCompile("design", builder);
      if (r.ok()) got[i] = *r;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1) << "stampede must collapse to one compile";
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(got[0], nullptr);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(got[i], got[0]) << "all requesters share the one design";
  }
  EXPECT_EQ(got[0]->udf_name, "stampede");
}

TEST(CompileCacheStampedeTest, FailedBuildReachesWaitersAndIsNotCached) {
  constexpr int kThreads = 4;
  CompileCache cache;
  std::atomic<int> builds{0};
  std::atomic<bool> build_started{false};
  auto failing = [&]() -> dana::Result<compiler::CompiledUdf> {
    builds.fetch_add(1, std::memory_order_relaxed);
    build_started.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return dana::Status::Internal("synthetic compile failure");
  };

  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    statuses[0] = cache.GetOrCompile("bad", failing).status();
  });
  while (!build_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  for (int i = 1; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      statuses[i] = cache.GetOrCompile("bad", failing).status();
    });
  }
  for (std::thread& t : threads) t.join();

  // One build ran; it and every waiter got the error, nobody a stale value.
  EXPECT_EQ(builds.load(), 1);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(statuses[i].IsInternal()) << statuses[i].ToString();
  }
  // The failure counted the one miss (matching single-threaded
  // accounting), no hits, and was not cached: the next requester retries
  // from scratch and succeeds.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find("bad"), nullptr);

  auto ok_builder = [&]() -> dana::Result<compiler::CompiledUdf> {
    compiler::CompiledUdf udf;
    udf.udf_name = "recovered";
    return udf;
  };
  auto retried = cache.GetOrCompile("bad", ok_builder);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ((*retried)->udf_name, "recovered");
  EXPECT_EQ(cache.misses(), 2u);
  auto hit = cache.GetOrCompile("bad", ok_builder);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, *retried);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FillOnceMapTest, SingleThreadedSemantics) {
  dana::FillOnceMap<std::string, int> map;
  int fills = 0;
  bool filled_here = false;
  auto fill = [&]() -> dana::Result<int> {
    ++fills;
    return 42;
  };
  auto a = map.GetOrFill("k", fill, &filled_here);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(filled_here);
  EXPECT_EQ(**a, 42);
  auto b = map.GetOrFill("k", fill, &filled_here);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(filled_here);
  EXPECT_EQ(*a, *b) << "ready hits return the same stable pointer";
  EXPECT_EQ(fills, 1);
  EXPECT_EQ(map.size(), 1u);

  // A failed fill is not cached; the next request retries the filler.
  auto fail = [&]() -> dana::Result<int> {
    ++fills;
    return dana::Status::IOError("transient");
  };
  EXPECT_TRUE(map.GetOrFill("bad", fail).status().IsIOError());
  EXPECT_EQ(map.Find("bad"), nullptr);
  auto recovered = map.GetOrFill("bad", fill);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(**recovered, 42);
  EXPECT_EQ(fills, 3);
}

// ---------------------------------------------------------------------------
// MetricRegistry: exact totals under concurrent publishing
// ---------------------------------------------------------------------------

TEST(MetricRegistryStressTest, ConcurrentPublishesCountExactly) {
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  obs::MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Resolve-once hot-path idiom for the shared counter; the helpers
      // exercise concurrent name->metric creation too.
      obs::Counter* shared = registry.counter("stress.shared");
      const std::string own = "stress.thread." + std::to_string(t);
      for (int i = 0; i < kOps; ++i) {
        shared->Increment();
        obs::Count(&registry, own);
        obs::Observe(&registry, "stress.latency", i % 7);
        obs::SetGauge(&registry, "stress.gauge", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Integral counts are exactly representable: no increment may be lost.
  EXPECT_DOUBLE_EQ(registry.counter("stress.shared")->value(),
                   static_cast<double>(kThreads) * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        registry.counter("stress.thread." + std::to_string(t))->value(),
        static_cast<double>(kOps));
  }
  obs::Histogram* h = registry.histogram("stress.latency");
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kOps);
  // Every thread records the same multiset; order-independent readouts are
  // exact no matter how the interleaving went.
  double per_thread_sum = 0;
  for (int i = 0; i < kOps; ++i) per_thread_sum += i % 7;
  EXPECT_DOUBLE_EQ(h->Sum(), per_thread_sum * kThreads);
  EXPECT_DOUBLE_EQ(h->Min(), 0.0);
  EXPECT_DOUBLE_EQ(h->Max(), 6.0);
  // The gauge holds one of the written values (last write wins).
  const double g = registry.gauge("stress.gauge")->value();
  EXPECT_GE(g, 0.0);
  EXPECT_LE(g, kOps - 1);
}

}  // namespace
}  // namespace dana::sched
