#include <gtest/gtest.h>

#include "ml/workloads.h"
#include "runtime/systems.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dana::storage {
namespace {

PageLayout SmallLayout() {
  PageLayout l;
  l.page_size = 8 * 1024;
  return l;
}

std::unique_ptr<Table> MakeTable(uint32_t pages_wanted) {
  auto t = std::make_unique<Table>("t", Schema::Dense(100), SmallLayout());
  std::vector<double> row(101, 1.0);
  while (t->num_pages() < pages_wanted) {
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  return t;
}

// ---------------------------------------------------------------------------
// OS page-cache tier of the buffer pool
// ---------------------------------------------------------------------------

TEST(OsCacheTest, RereadsAreCheaperThanFirstReads) {
  auto t = MakeTable(8);
  // Pool holds 2 frames; OS cache holds everything.
  BufferPool pool(2 * 8 * 1024, 8 * 1024, DiskModel{});
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  const double first_scan = pool.stats().io_time.nanos();
  pool.ResetStats();
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  const double second_scan = pool.stats().io_time.nanos();
  // Same miss count (pool too small), but served from the OS cache.
  EXPECT_GT(second_scan, 0.0);
  EXPECT_LT(second_scan, first_scan / 5);
}

TEST(OsCacheTest, CapacityBoundsCachedPages) {
  auto t = MakeTable(8);
  // OS cache caps at 4 pages: half of every re-scan still hits disk.
  BufferPool pool(2 * 8 * 1024, 8 * 1024, DiskModel{},
                  /*os_cache_bytes=*/4 * 8 * 1024);
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  pool.ResetStats();
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  const double rescan = pool.stats().io_time.nanos();
  // Compare with an uncapped pool's re-scan: must be clearly slower.
  BufferPool fast(2 * 8 * 1024, 8 * 1024, DiskModel{});
  for (int scan = 0; scan < 2; ++scan) {
    if (scan == 1) fast.ResetStats();
    for (uint64_t p = 0; p < 8; ++p) {
      ASSERT_TRUE(fast.FetchPage(*t, p).ok());
    }
  }
  EXPECT_GT(rescan, fast.stats().io_time.nanos() * 2);
}

TEST(OsCacheTest, MarkOsCachedSkipsDiskOnFirstRead) {
  auto t = MakeTable(4);
  BufferPool pool(2 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.MarkOsCached(*t);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(pool.FetchPage(*t, p).ok());
  }
  // All misses served at OS-cache speed.
  DiskModel d;
  const double os_time = 4.0 * 8 * 1024 / d.os_cache_bw * 1e9;
  EXPECT_NEAR(pool.stats().io_time.nanos(), os_time, os_time * 0.01);
}

TEST(OsCacheTest, ClearDropsOsCacheToo) {
  auto t = MakeTable(4);
  BufferPool pool(2 * 8 * 1024, 8 * 1024, DiskModel{});
  pool.Prewarm(*t);  // marks OS-cached as well
  pool.Clear();
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(*t, 3).ok());
  // Cold again: full disk cost.
  DiskModel d;
  EXPECT_GT(pool.stats().io_time.nanos(),
            8 * 1024 / d.seq_read_bw * 1e9 * 0.9);
}

// ---------------------------------------------------------------------------
// Warm/cold semantics through WorkloadInstance
// ---------------------------------------------------------------------------

TEST(OsCacheTest, WorkloadWarmPrepHasNoFirstEpochIo) {
  const ml::Workload* w = ml::FindWorkload("rs_lr");
  ASSERT_NE(w, nullptr);
  ml::Workload scaled = *w;
  scaled.tuples = 2000;
  auto instance =
      std::move(runtime::WorkloadInstance::Create(scaled)).ValueOrDie();

  instance->PrepareCache(runtime::CacheState::kWarm);
  const storage::Table& table = instance->table();
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    ASSERT_TRUE(instance->pool()->FetchPage(table, p).ok());
  }
  EXPECT_EQ(instance->pool()->stats().io_time.nanos(), 0.0)
      << "warm cache: table resident in the (scaled) pool";

  instance->PrepareCache(runtime::CacheState::kCold);
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    ASSERT_TRUE(instance->pool()->FetchPage(table, p).ok());
  }
  EXPECT_GT(instance->pool()->stats().io_time.nanos(), 0.0);
}

TEST(OsCacheTest, OversizedTableWarmStillPaysSomeIo) {
  // S/E-style workload: the (virtually scaled) table exceeds the pool, so
  // even a warm run re-fetches pages — but from the OS cache, not disk.
  const ml::Workload* w = ml::FindWorkload("se_svm");
  ASSERT_NE(w, nullptr);
  ml::Workload scaled = *w;
  scaled.tuples = 300;
  // Recompute the virtual scale so pool:table proportions match the paper.
  scaled.scale =
      static_cast<double>(w->paper.tuples) / scaled.tuples;
  auto instance =
      std::move(runtime::WorkloadInstance::Create(scaled)).ValueOrDie();
  instance->PrepareCache(runtime::CacheState::kWarm);
  const storage::Table& table = instance->table();
  EXPECT_LT(instance->pool()->ResidentFraction(table), 1.0)
      << "table must exceed the scaled pool for this workload";
  for (uint64_t p = 0; p < table.num_pages(); ++p) {
    ASSERT_TRUE(instance->pool()->FetchPage(table, p).ok());
  }
  EXPECT_GT(instance->pool()->stats().misses, 0u);
}

}  // namespace
}  // namespace dana::storage
